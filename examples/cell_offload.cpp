// Retargeting to a Cell B.E.-style machine (paper §I names the Cell as a
// prime heterogeneous example; §IV-C step 4 names its toolchain: xlc +
// gcc-spu). The same vecadd program used against the GPGPU testbed targets
// a PPE Master + 8 SPE Workers PDL: pre-selection picks the "cell"
// variant, the compile plan switches toolchains, and execution runs on
// eight simulated SPE devices with local-store memory regions.
//
//   $ ./cell_offload
#include <cstdio>
#include <vector>

#include "cascabel/builtin_variants.hpp"
#include "cascabel/rt.hpp"
#include "cascabel/translator.hpp"
#include "discovery/presets.hpp"
#include "kernels/vector_ops.hpp"
#include "starvm/trace_export.hpp"

namespace {

constexpr const char* kProgram = R"(
#pragma cascabel task : x86 : Ivecadd : vecadd01 : ( A: readwrite, B: read )
void vectoradd(double *A, double *B, int n) {
  for (int i = 0; i < n; ++i) A[i] += B[i];
}
int main() {
  const int N = 65536;
  static double A[65536];
  static double B[65536];
#pragma cascabel execute Ivecadd : spe (A:BLOCK:N, B:BLOCK:N)
  vectoradd(A, B, N);
  return 0;
}
)";

}  // namespace

int main() {
  using namespace cascabel;
  pdl::Platform cell = pdl::discovery::cell_be_platform();

  // An SPE implementation variant (expert-provided, paper Figure 1).
  TaskRepository repo = TaskRepository::with_defaults();
  register_builtin_variants(repo);
  TaskVariant spe_variant;
  spe_variant.pragma.task_interface = "Ivecadd";
  spe_variant.pragma.variant_name = "vecadd_spe";
  spe_variant.pragma.target_platforms = {"cell"};
  spe_variant.pragma.params = {{"A", AccessMode::kReadWrite},
                               {"B", AccessMode::kRead}};
  repo.add_variant(spe_variant);
  repo.bind(BoundImpl{"vecadd_spe", starvm::DeviceKind::kAccelerator,
                      [](const starvm::ExecContext& ctx) {
                        kernels::vector_add(ctx.buffer(0), ctx.buffer(1),
                                            ctx.handle(0).cols());
                      },
                      [](const std::vector<starvm::BufferView>& buffers) {
                        return static_cast<double>(buffers[0].handle->cols());
                      }});

  // Translate: the compile plan must switch to the Cell toolchain.
  auto translation = translate(kProgram, "vecadd.cpp", cell);
  if (!translation.ok()) {
    std::printf("translation failed: %s\n", translation.error().str().c_str());
    return 1;
  }
  std::printf("=== compile plan for the Cell target (paper §IV-C step 4) ===\n%s\n",
              translation.value().compile_plan.to_makefile().c_str());

  // Execute on the eight simulated SPEs.
  rt::Context ctx(cell, std::move(repo));
  const std::size_t n = 65536;
  std::vector<double> a(n, 1.0), b(n, 41.0);
  auto status = ctx.execute(
      "Ivecadd", "spe",
      {rt::arg(a.data(), n, AccessMode::kReadWrite, DistributionKind::kBlock),
       rt::arg(b.data(), n, AccessMode::kRead, DistributionKind::kBlock)});
  if (!status.ok()) {
    std::printf("execute failed: %s\n", status.error().str().c_str());
    return 1;
  }
  (void)ctx.wait();

  bool ok = true;
  for (double v : a) ok &= (v == 42.0);
  const auto stats = ctx.stats();
  std::uint64_t spe_tasks = 0;
  for (const auto& d : stats.devices) {
    if (d.kind == starvm::DeviceKind::kAccelerator) spe_tasks += d.tasks_run;
  }
  std::printf("=== execution on %zu device(s) ===\n", stats.devices.size());
  std::printf("result %s; %llu of %llu tasks ran on SPEs\n", ok ? "correct" : "WRONG",
              static_cast<unsigned long long>(spe_tasks),
              static_cast<unsigned long long>(stats.tasks_completed));
  std::printf("\n%s", starvm::to_ascii_gantt(stats).c_str());
  return ok ? 0 : 1;
}
