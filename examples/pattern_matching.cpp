// Platform patterns (paper §II, §III): multiple logical platform patterns
// co-existing for a single physical system, and pattern matching as the
// basis for expressing architectural constraints of optimized code.
//
//   $ ./pattern_matching
#include <cstdio>
#include <vector>

#include "discovery/presets.hpp"
#include "pdl/pattern.hpp"
#include "pdl/serializer.hpp"

int main() {
  using namespace pdl;

  const Platform testbed = discovery::paper_platform_starpu_2gpu();
  std::printf("concrete platform: %s\n", testbed.name().c_str());
  std::printf("structural summary: %s\n\n",
              pattern_to_string(*testbed.masters()[0]).c_str());

  // Multiple logical control-views of the same physical machine
  // (paper: "Multiple logic platform patterns can co-exist for a single
  // target system").
  struct View {
    const char* description;
    const char* pattern;
  };
  const std::vector<View> views = {
      {"OpenCL-style host-device view", "M[W(ARCHITECTURE=gpu)]"},
      {"dual-GPU view", "M[W(ARCHITECTURE=gpu)x2]"},
      {"SMP view (8 CPU cores)", "M[W(ARCHITECTURE=x86_core)x8]"},
      {"hybrid view (cores + GPUs)",
       "M[W(ARCHITECTURE=x86_core)x8,W(ARCHITECTURE=gpu)x2]"},
      {"quad-GPU requirement (unsatisfied)", "M[W(ARCHITECTURE=gpu)x4]"},
      {"Cell-style view (unsatisfied)", "M[W(ARCHITECTURE=spe)x8]"},
  };

  std::printf("%-40s %-8s\n", "logical platform pattern", "matches");
  for (const auto& view : views) {
    const MatchResult result = match(view.pattern, testbed);
    std::printf("%-40s %-8s", view.description, result ? "yes" : "no");
    if (!result) std::printf("  (%s)", result.reason.c_str());
    std::printf("\n");
  }

  // Architectural constraints for optimized code (paper §II): a hand-tuned
  // kernel declares its requirements; tools check them before selecting it.
  std::printf("\nexpert kernel requires: M[W(ARCHITECTURE=gpu)x2] + 8 cores\n");
  const MatchResult requirement =
      match("M(ARCHITECTURE=x86)[W(ARCHITECTURE=x86_core)x8,W(ARCHITECTURE=gpu)x2]",
            testbed);
  std::printf("requirement satisfied: %s\n", requirement ? "yes" : "no");
  if (requirement) {
    std::printf("static mapping bound %zu PU(s)\n", requirement.bindings.size());
  }
  return requirement ? 0 : 1;
}
