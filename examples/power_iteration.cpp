// A second domain scenario: power iteration (dominant eigenvalue of a
// dense matrix) as a *multi-call-site* task program. Each iteration
// offloads the matrix-vector product through the Idgemm interface (an
// n x 1 DGEMM) and normalizes on the host — the shape of many iterative
// solvers the paper's introduction motivates: repeated offload of a heavy
// kernel with host-side glue between calls, data handles reused across
// iterations.
//
//   $ ./power_iteration [n] [iterations]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cascabel/builtin_variants.hpp"
#include "cascabel/rt.hpp"
#include "discovery/presets.hpp"
#include "kernels/matrix.hpp"
#include "kernels/vector_ops.hpp"
#include "starvm/trace_export.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 512;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 8;

  // Symmetric matrix with a strongly dominant eigenvalue: random symmetric
  // noise + n*I + a rank-one boost (2·ones), so lambda_max ~ 3n with a gap
  // of ~2n — power iteration converges in a handful of steps.
  kernels::Matrix a(n, n);
  a.fill_random(42);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = (a.at(i, j) + a.at(j, i)) / 2.0 + 2.0;
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
    a.at(i, i) += static_cast<double>(n);
  }

  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> y(n, 0.0);

  cascabel::TaskRepository repo = cascabel::TaskRepository::with_defaults();
  cascabel::register_builtin_variants(repo);
  cascabel::rt::Context ctx(pdl::discovery::paper_platform_starpu_2gpu(),
                            std::move(repo));

  double eigenvalue = 0.0;
  for (int iter = 0; iter < iterations; ++iter) {
    std::fill(y.begin(), y.end(), 0.0);
    if (iter > 0) ctx.host_modified(y.data());
    // y += A * x as an n x 1 DGEMM: C=y (BLOCK rows), A (BLOCK rows),
    // B=x broadcast. Handles for A and x are registered once and reused.
    auto status = ctx.execute(
        "Idgemm", "all",
        {cascabel::rt::arg_matrix(y.data(), n, 1,
                                  cascabel::AccessMode::kReadWrite,
                                  cascabel::DistributionKind::kBlock),
         cascabel::rt::arg_matrix(a.data(), n, n, cascabel::AccessMode::kRead,
                                  cascabel::DistributionKind::kBlock),
         cascabel::rt::arg_matrix(x.data(), n, 1, cascabel::AccessMode::kRead,
                                  cascabel::DistributionKind::kNone)});
    if (!status.ok()) {
      std::fprintf(stderr, "execute failed: %s\n", status.error().str().c_str());
      return 1;
    }
    (void)ctx.wait();

    // Host-side glue: Rayleigh quotient and normalization. The runtime is
    // told about the direct host writes so its transfer model re-fetches.
    eigenvalue = kernels::ddot(n, x.data(), y.data());
    const double norm = kernels::dnrm2(n, y.data());
    for (std::size_t i = 0; i < n; ++i) x[i] = y[i] / norm;
    ctx.host_modified(x.data());
    std::printf("iteration %2d: lambda ~= %.6f\n", iter + 1, eigenvalue);
  }

  // Residual check: ||A x - lambda x|| should be small by now.
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) y[i] += a.at(i, j) * x[j];
  }
  kernels::daxpy(n, -eigenvalue, x.data(), y.data());
  const double residual = kernels::dnrm2(n, y.data());
  std::printf("\nresidual ||Ax - lambda x|| = %.3e\n", residual);

  const auto stats = ctx.stats();
  std::printf("%d offloaded calls -> %llu tasks; modeled makespan %.3f ms\n",
              iterations, static_cast<unsigned long long>(stats.tasks_completed),
              stats.makespan_seconds * 1e3);
  std::printf("\n%s", starvm::to_ascii_gantt(stats).c_str());
  return residual < 1e-3 * eigenvalue ? 0 : 1;
}
