// Quickstart: build the paper's Listing-1 platform in code, serialize it to
// PDL XML, parse it back, validate it, and query it.
//
//   $ ./quickstart
#include <cstdio>

#include "pdl/model.hpp"
#include "pdl/parser.hpp"
#include "pdl/query.hpp"
#include "pdl/serializer.hpp"
#include "pdl/validate.hpp"
#include "pdl/well_known.hpp"

int main() {
  using namespace pdl;

  // 1. Build the Listing-1 platform: an x86 Master controlling a GPU Worker
  //    connected by an rDMA interconnect.
  Platform platform;
  ProcessingUnit* master = platform.add_master("0");
  master->descriptor().add(props::kArchitecture, props::kArchX86);

  ProcessingUnit* gpu = master->add_child(PuKind::kWorker, "1");
  gpu->descriptor().add(props::kArchitecture, props::kArchGpu);

  Interconnect ic;
  ic.type = "rDMA";
  ic.from = "0";
  ic.to = "1";
  master->interconnects().push_back(ic);

  // 2. Serialize — a bare <Master> root, exactly the paper's shape.
  SerializeOptions options;
  options.bare_master_root = true;
  const std::string xml = serialize(platform, options);
  std::printf("=== PDL document ===\n%s\n", xml.c_str());

  // 3. Parse it back and validate the structural rules of §III-A.
  Diagnostics diags;
  auto parsed = parse_platform(xml, diags);
  if (!parsed || !validate(parsed.value(), diags)) {
    std::printf("invalid PDL:\n");
    for (const auto& d : diags) std::printf("  %s\n", d.str().c_str());
    return 1;
  }

  // 4. Query it.
  const Platform& p = parsed.value();
  std::printf("=== Queries ===\n");
  std::printf("total PUs: %d, workers: %d, depth: %d\n", total_pu_count(p),
              worker_count(p), hierarchy_depth(p));
  for (const ProcessingUnit* pu : pus_with_property(p, props::kArchitecture, "gpu")) {
    std::printf("gpu worker: id=%s controlled by %s\n", pu->id().c_str(),
                pu->parent()->id().c_str());
  }
  const auto path = data_path(p, "0", "1");
  std::printf("data path 0 -> 1: %zu hop(s), via %s\n", path.size(),
              path.empty() || path[0].interconnect == nullptr
                  ? "control link"
                  : path[0].interconnect->type.c_str());
  std::printf("quickstart OK\n");
  return 0;
}
