// The paper's Listings 3+4 end-to-end: an annotated serial vecadd program
// is translated by Cascabel against a GPGPU platform description, the
// generated source is printed, and the program is executed in-process
// through the cascabel::rt veneer.
//
//   $ ./vecadd_offload
#include <cstdio>
#include <vector>

#include "cascabel/builtin_variants.hpp"
#include "cascabel/rt.hpp"
#include "cascabel/translator.hpp"
#include "discovery/presets.hpp"

namespace {

constexpr const char* kAnnotatedProgram = R"(
// Task definition (paper Listing 3).
#pragma cascabel task : x86 \
  : Ivecadd \
  : vecadd01 \
  : ( A: readwrite, B: read )
void vectoradd(double *A, double *B, int n) {
  for (int i = 0; i < n; ++i) A[i] += B[i];
}

int main() {
  const int N = 4096;
  static double A[4096];
  static double B[4096];
  // Task execution (paper Listing 4).
#pragma cascabel execute Ivecadd : executionset01 (A:BLOCK:N, B:BLOCK:N)
  vectoradd(A, B, N);
  return 0;
}
)";

}  // namespace

int main() {
  using namespace cascabel;

  // Translate against the paper's GPU testbed.
  pdl::Platform target = pdl::discovery::paper_platform_starpu_2gpu();
  auto translation = translate(kAnnotatedProgram, "vecadd.cpp", target);
  if (!translation.ok()) {
    std::printf("translation failed: %s\n", translation.error().str().c_str());
    return 1;
  }

  std::printf("=== Generated source (Cascabel output) ===\n%s\n",
              translation.value().output_source.c_str());
  std::printf("=== Compile plan ===\n%s\n",
              translation.value().compile_plan.to_makefile().c_str());

  // Execute the same call in-process through the rt veneer.
  TaskRepository repo = TaskRepository::with_defaults();
  register_builtin_variants(repo);
  rt::Context ctx(target, std::move(repo));

  const std::size_t n = 4096;
  std::vector<double> a(n, 1.0), b(n, 2.0);
  auto status = ctx.execute(
      "Ivecadd", "all",
      {rt::arg(a.data(), n, AccessMode::kReadWrite, DistributionKind::kBlock),
       rt::arg(b.data(), n, AccessMode::kRead, DistributionKind::kBlock)});
  if (!status.ok()) {
    std::printf("execute failed: %s\n", status.error().str().c_str());
    return 1;
  }
  (void)ctx.wait();

  bool ok = true;
  for (double v : a) ok &= (v == 3.0);
  const auto stats = ctx.stats();
  std::printf("=== Execution ===\n");
  std::printf("result %s; %llu task(s) over %zu device(s), modeled makespan %.3f ms\n",
              ok ? "correct" : "WRONG",
              static_cast<unsigned long long>(stats.tasks_completed),
              stats.devices.size(), stats.makespan_seconds * 1e3);
  for (const auto& d : stats.devices) {
    std::printf("  %-12s %-12s tasks=%llu busy=%.3f ms\n", d.name.c_str(),
                std::string(starvm::to_string(d.kind)).c_str(),
                static_cast<unsigned long long>(d.tasks_run),
                d.busy_seconds * 1e3);
  }
  return ok ? 0 : 1;
}
