// Automatic PDL generation (paper Figure 1 and §V): describe the machine
// this program runs on, attach the paper's two GPUs from the simulated
// device database, and print the resulting PDL document — including the
// `ocl:` extension properties of paper Listing 2.
//
//   $ ./discover_platform
#include <cstdio>

#include "discovery/discovery.hpp"
#include "pdl/extension.hpp"
#include "pdl/query.hpp"
#include "pdl/serializer.hpp"
#include "pdl/validate.hpp"
#include "pdl/well_known.hpp"

int main() {
  using namespace pdl;
  using namespace pdl::discovery;

  // What does this host look like?
  const HostCpuInfo cpu = read_host_cpu();
  std::printf("host: %s, %d socket(s), %d core(s), %d logical cpu(s)\n",
              cpu.model_name.c_str(), cpu.sockets, cpu.physical_cores,
              cpu.logical_cpus);

  // Generate a GPGPU platform: this host + the paper's two GPUs (simulated
  // device database stands in for the OpenCL runtime query).
  Platform platform = make_gpgpu_platform(
      cpu, cpu.physical_cores, {"GeForce GTX 480", "GeForce GTX 285"});

  Diagnostics diags;
  const bool structure_ok = validate(platform, diags);
  const bool schema_ok = builtin_registry().validate_properties(platform, diags);
  std::printf("validation: structure=%s schema=%s (%zu diagnostic(s))\n",
              structure_ok ? "ok" : "BAD", schema_ok ? "ok" : "BAD", diags.size());

  std::printf("\n=== Generated PDL ===\n%s\n", serialize(platform).c_str());

  // Show the Listing-2 style properties of the first GPU.
  std::printf("=== GPU worker properties (ocl: subschema) ===\n");
  for (const ProcessingUnit* pu :
       pus_with_property(platform, props::kArchitecture, "gpu")) {
    for (const auto& prop : pu->descriptor().properties()) {
      if (prop.xsi_type == props::kOclPropertyType) {
        std::printf("  %s: %s = %s%s%s\n", pu->id().c_str(), prop.name.c_str(),
                    prop.value.c_str(), prop.unit.empty() ? "" : " ",
                    prop.unit.c_str());
      }
    }
    break;  // first GPU is enough for the demo
  }
  return structure_ok && schema_ok ? 0 : 1;
}
