// Tiled Cholesky on the heterogeneous testbed: the dependency-heavy DAG
// workload of StarPU-class runtimes, driven from a PDL descriptor. Where
// the case study's DGEMM is embarrassingly parallel, Cholesky's POTRF /
// TRSM / SYRK / GEMM tiles form a genuine task graph — the runtime derives
// it purely from access modes, and the Gantt chart shows the pipeline
// narrowing toward the critical path.
//
//   $ ./cholesky_dag [n] [tiles]      (default 256, 8)
#include <cstdio>
#include <cstdlib>

#include "discovery/presets.hpp"
#include "kernels/cholesky.hpp"
#include "kernels/matrix.hpp"
#include "solvers/tiled_cholesky.hpp"
#include "starvm/bridge.hpp"
#include "starvm/trace_export.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 256;
  const int tiles = argc > 2 ? std::atoi(argv[2]) : 8;

  // SPD input: M·Mᵀ-free construction (diagonally dominant symmetric).
  kernels::Matrix a(n, n);
  a.fill_random(21);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = (a.at(i, j) + a.at(j, i)) / 2.0;
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
    a.at(i, i) += static_cast<double>(n);
  }
  kernels::Matrix original = a;

  // Engine from the paper's GPU testbed descriptor.
  auto config = starvm::engine_config_from_platform(
      pdl::discovery::paper_platform_starpu_2gpu());
  if (!config.ok()) {
    std::fprintf(stderr, "bridge failed: %s\n", config.error().str().c_str());
    return 1;
  }
  starvm::Engine engine(std::move(config).value());

  auto result = solvers::tiled_cholesky(engine, a.data(), n, tiles);
  if (!result.ok()) {
    std::fprintf(stderr, "cholesky failed: %s\n", result.error().str().c_str());
    return 1;
  }

  const double residual =
      kernels::cholesky_residual(n, a.data(), n, original.data(), n);
  const auto stats = engine.stats();
  std::printf("tiled Cholesky %zux%zu, %dx%d tiles on '%s'\n", n, n, tiles, tiles,
              "testbed-starpu-2gpu");
  std::printf("tasks: %d (%.2f GFLOP total), residual %.3e\n",
              result.value().tasks_submitted, result.value().total_flops / 1e9,
              residual);
  std::printf("modeled makespan: %.3f ms over %zu devices\n\n",
              stats.makespan_seconds * 1e3, stats.devices.size());
  std::printf("%s", starvm::to_ascii_gantt(stats).c_str());
  return residual < 1e-8 ? 0 : 1;
}
