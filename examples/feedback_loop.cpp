// The paper's §VI future work, demonstrated: run a workload for real,
// observe the per-device rates the runtime actually achieved, write them
// back into the platform description as *unfixed* properties (the PDL's
// to-be-instantiated-by-a-runtime mechanism, §III-B), and compare the
// schedules the descriptor predicts before and after.
//
// The testbed descriptor claims 9.8 GFLOPS per CPU core (GotoBLAS2 on a
// Xeon X5550); the machine this example runs on is whatever it is. Round 1
// executes the case-study DGEMM in hybrid mode — CPU costs are *measured*
// — and the feedback pass instantiates the observed rate. Round 2 shows
// how the modeled schedule shifts once the descriptor tells the truth.
//
//   $ ./feedback_loop
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "cascabel/builtin_variants.hpp"
#include "cascabel/feedback.hpp"
#include "cascabel/rt.hpp"
#include "discovery/presets.hpp"
#include "kernels/matrix.hpp"
#include "pdl/query.hpp"
#include "pdl/well_known.hpp"
#include "starvm/trace_export.hpp"

namespace {

starvm::EngineStats run_dgemm(const pdl::Platform& target, std::size_t n,
                              starvm::ExecutionMode mode,
                              const std::string& store_path = "") {
  cascabel::TaskRepository repo = cascabel::TaskRepository::with_defaults();
  cascabel::register_builtin_variants(repo);
  cascabel::rt::Options options;
  options.mode = mode;
  options.perf_store_path = store_path;
  cascabel::rt::Context ctx(target, std::move(repo), options);

  kernels::Matrix a(n, n), b(n, n), c(n, n);
  if (mode == starvm::ExecutionMode::kHybrid) {
    a.fill_random(1);
    b.fill_random(2);
  }
  auto status = ctx.execute(
      "Idgemm", "all",
      {cascabel::rt::arg_matrix(c.data(), n, n, cascabel::AccessMode::kReadWrite,
                                cascabel::DistributionKind::kBlock),
       cascabel::rt::arg_matrix(a.data(), n, n, cascabel::AccessMode::kRead,
                                cascabel::DistributionKind::kBlock),
       cascabel::rt::arg_matrix(b.data(), n, n, cascabel::AccessMode::kRead,
                                cascabel::DistributionKind::kNone)});
  if (!status.ok()) {
    std::fprintf(stderr, "execute failed: %s\n", status.error().str().c_str());
    std::exit(1);
  }
  (void)ctx.wait();
  return ctx.stats();
}

void print_rates(const pdl::Platform& platform, const char* title) {
  std::printf("%s\n", title);
  for (const pdl::ProcessingUnit* pu : pdl::all_pus(platform)) {
    const pdl::Property* sustained =
        pu->descriptor().find(pdl::props::kSustainedGflops);
    const pdl::Property* measured =
        pu->descriptor().find(pdl::props::kMeasuredGflops);
    if (sustained == nullptr && measured == nullptr) continue;
    std::printf("  %-10s sustained=%-10s measured=%s\n", pu->id().c_str(),
                sustained ? sustained->value.c_str() : "-",
                measured ? measured->value.c_str() : "-");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // The descriptor author marks the CPU rate as unfixed: "measure me".
  pdl::Platform target = pdl::discovery::paper_platform_starpu_2gpu();
  auto* cores =
      const_cast<pdl::ProcessingUnit*>(pdl::find_pu(target, "cpu_cores"));
  if (auto* p = cores->descriptor().find(pdl::props::kSustainedGflops)) {
    p->fixed = false;
  }
  print_rates(target, "=== descriptor before feedback (datasheet rates) ===");

  std::printf("=== round 1: real execution (hybrid), DGEMM N=512 ===\n");
  const starvm::EngineStats observed =
      run_dgemm(target, 512, starvm::ExecutionMode::kHybrid);
  std::printf("%s\n", starvm::to_ascii_gantt(observed).c_str());

  cascabel::RefineReport report;
  pdl::Platform refined = cascabel::refine_platform(target, observed, &report);
  std::printf("feedback: %d PU(s) annotated, %d unfixed SUSTAINED_GFLOPS "
              "re-instantiated\n\n",
              report.pus_updated, report.sustained_updated);
  print_rates(refined, "=== descriptor after feedback (measured rates) ===");

  std::printf("=== round 2: modeled schedules at paper scale (N=8192) ===\n");
  const double before =
      run_dgemm(target, 8192, starvm::ExecutionMode::kPureSim).makespan_seconds;
  const double after =
      run_dgemm(refined, 8192, starvm::ExecutionMode::kPureSim).makespan_seconds;
  std::printf("predicted makespan, datasheet descriptor: %8.3f s\n", before);
  std::printf("predicted makespan, measured descriptor:  %8.3f s\n", after);
  std::printf("\nthe refined descriptor predicts with this machine's real CPU "
              "rate\ninstead of the 2011 testbed's — the §VI loop is closed.\n");

  // Round 3: the loop closed *inside* the runtime. The warm-up run persists
  // its learned per-(variant, device) rates to a store on engine shutdown; a
  // fresh context pointed at the same store starts with warm HEFT estimates
  // and ranks variants by measured rate instead of declared specificity.
  std::printf("\n=== round 3: persisted perf store drives variant selection ===\n");
  const std::string store_path = "feedback_loop.perfstore";
  std::remove(store_path.c_str());
  (void)run_dgemm(target, 512, starvm::ExecutionMode::kHybrid, store_path);

  {
    cascabel::TaskRepository repo = cascabel::TaskRepository::with_defaults();
    cascabel::register_builtin_variants(repo);
    cascabel::rt::Options warm_options;
    warm_options.mode = starvm::ExecutionMode::kHybrid;
    warm_options.perf_store_path = store_path;
    cascabel::rt::Context warm(target, std::move(repo), warm_options);
    const starvm::perf_store::Store* store = warm.perf_store();
    std::printf("store reloaded: %s (%zu learned rate cell(s))\n",
                store != nullptr ? "yes" : "no",
                store != nullptr ? store->entries.size() : std::size_t{0});

    kernels::Matrix a(512, 512), b(512, 512), c(512, 512);
    a.fill_random(1);
    b.fill_random(2);
    (void)warm.execute(
        "Idgemm", "all",
        {cascabel::rt::arg_matrix(c.data(), 512, 512,
                                  cascabel::AccessMode::kReadWrite,
                                  cascabel::DistributionKind::kBlock),
         cascabel::rt::arg_matrix(a.data(), 512, 512, cascabel::AccessMode::kRead,
                                  cascabel::DistributionKind::kBlock),
         cascabel::rt::arg_matrix(b.data(), 512, 512, cascabel::AccessMode::kRead,
                                  cascabel::DistributionKind::kNone)});
    (void)warm.wait();
    for (const auto& d : warm.diagnostics()) {
      const std::string text = d.str();
      if (text.find("perf store") != std::string::npos) {
        std::printf("  %s\n", text.c_str());
      }
    }
    const starvm::EngineStats warm_stats = warm.stats();
    std::printf("engine preloaded %llu store cell(s); measured rates now rank "
                "the Idgemm variants.\n",
                static_cast<unsigned long long>(warm_stats.perf_store_entries));
  }  // the warm context's engine re-saves the store here, on shutdown
  std::remove(store_path.c_str());
  std::remove((store_path + ".tmp").c_str());
  return 0;
}
