// The paper's §IV-D case study, end-to-end: one annotated serial DGEMM
// program, translated against three PDL descriptors (single / starpu /
// starpu+2gpu), executed on the starvm runtime, speedups printed — the
// Figure-5 experiment at example scale. bench/fig5_dgemm_speedup runs the
// full parameter sweep.
//
//   $ ./dgemm_pipeline [N]     (default N=512)
//
// Set PDL_TRACE=<file> to capture a merged Chrome trace (toolchain wall
// time + the last configuration's modeled schedule); PDL_METRICS=<file>
// writes a metrics snapshot at exit. See docs/OBSERVABILITY.md.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cascabel/builtin_variants.hpp"
#include "cascabel/rt.hpp"
#include "cascabel/translator.hpp"
#include "discovery/presets.hpp"
#include "kernels/dgemm.hpp"
#include "kernels/matrix.hpp"
#include "obs/env.hpp"
#include "obs/trace.hpp"
#include "starvm/trace_export.hpp"

namespace {

constexpr const char* kCaseStudyProgram = R"(
// Serial input: double-precision matrix multiplication via an optimized
// library call (our kernels library stands in for GotoBlas2).
#pragma cascabel task : x86 : Idgemm : dgemm_input : ( C: readwrite, A: read, B: read )
void dgemm_serial(double *C, double *A, double *B, int n) {
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int k = 0; k < n; ++k) sum += A[i*n+k] * B[k*n+j];
      C[i*n+j] += sum;
    }
}

int main() {
  const int n = 8192;
  double *C = new double[n*n];
  double *A = new double[n*n];
  double *B = new double[n*n];
#pragma cascabel execute Idgemm : all (C:BLOCK:n:n, A:BLOCK:n:n, B:WHOLE:n:n)
  dgemm_serial(C, A, B, n);
  delete[] C; delete[] A; delete[] B;
  return 0;
}
)";

/// Translate + execute against one target; returns the engine statistics
/// (makespan plus the task trace the merged Chrome trace is built from).
starvm::EngineStats run_configuration(const pdl::Platform& target, std::size_t n,
                                      bool verify) {
  auto translation = cascabel::translate(kCaseStudyProgram, "dgemm.cpp", target);
  if (!translation.ok()) {
    std::printf("translation for %s failed: %s\n", target.name().c_str(),
                translation.error().str().c_str());
    std::exit(1);
  }

  cascabel::TaskRepository repo = cascabel::TaskRepository::with_defaults();
  cascabel::register_builtin_variants(repo);
  cascabel::rt::Context ctx(target, std::move(repo));

  kernels::Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);

  auto status = ctx.execute(
      "Idgemm", "all",
      {cascabel::rt::arg_matrix(c.data(), n, n, cascabel::AccessMode::kReadWrite,
                                cascabel::DistributionKind::kBlock),
       cascabel::rt::arg_matrix(a.data(), n, n, cascabel::AccessMode::kRead,
                                cascabel::DistributionKind::kBlock),
       cascabel::rt::arg_matrix(b.data(), n, n, cascabel::AccessMode::kRead,
                                cascabel::DistributionKind::kNone)});
  if (!status.ok()) {
    std::printf("execute failed: %s\n", status.error().str().c_str());
    std::exit(1);
  }
  (void)ctx.wait();

  if (verify) {
    kernels::Matrix ref(n, n);
    kernels::dgemm_naive(n, n, n, a.data(), b.data(), ref.data());
    const double err = kernels::max_abs_diff(c.data(), ref.data(), n * n);
    if (err > 1e-9) {
      std::printf("VERIFICATION FAILED for %s: err=%g\n", target.name().c_str(), err);
      std::exit(1);
    }
  }
  return ctx.stats();
}

}  // namespace

int main(int argc, char** argv) {
  obs::init_from_env();
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 512;
  std::printf("Cascabel case study (paper §IV-D) — DGEMM %zux%zu\n", n, n);
  std::printf("same input program, three PDL descriptors:\n\n");

  const double t_single =
      run_configuration(pdl::discovery::paper_platform_single(), n, true)
          .makespan_seconds;
  const double t_cpu =
      run_configuration(pdl::discovery::paper_platform_starpu_cpu(), n, true)
          .makespan_seconds;
  const starvm::EngineStats gpu_stats =
      run_configuration(pdl::discovery::paper_platform_starpu_2gpu(), n, true);
  const double t_gpu = gpu_stats.makespan_seconds;

  std::printf("%-14s %14s %10s\n", "configuration", "makespan [ms]", "speedup");
  std::printf("%-14s %14.2f %10.2f\n", "single", t_single * 1e3, 1.0);
  std::printf("%-14s %14.2f %10.2f\n", "starpu", t_cpu * 1e3, t_single / t_cpu);
  std::printf("%-14s %14.2f %10.2f\n", "starpu+2gpu", t_gpu * 1e3, t_single / t_gpu);
  std::printf("\nall three results verified against the naive reference.\n");

  // With PDL_TRACE set, replace the span-only atexit trace with the merged
  // timeline: toolchain wall time plus the 2-GPU configuration's schedule.
  const std::string trace_path = obs::env_trace_path();
  if (!trace_path.empty()) {
    const std::string trace = starvm::merged_chrome_trace(
        obs::Tracer::instance().snapshot(), &gpu_stats);
    if (obs::write_text_file(trace_path, trace)) {
      std::printf("merged trace -> %s\n", trace_path.c_str());
    }
  }
  return 0;
}
