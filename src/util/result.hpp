// Result<T>: a lightweight expected-like type used across the PDL toolchain.
//
// The toolchain consumes documents and source files from disk, so most
// front-end entry points can fail for reasons the caller must be able to
// report (malformed XML, invalid PDL structure, unknown pragma syntax).
// Those return Result<T> instead of throwing; internal logic errors still
// use assertions/exceptions.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace pdl::util {

/// A failure description carried by Result<T>.
///
/// `where` is a free-form source locator ("file.xml:12:4" or a pragma
/// location); empty when the error is not tied to a location.
struct Error {
  std::string message;
  std::string where;

  /// Human-readable "where: message" (or just the message).
  std::string str() const {
    return where.empty() ? message : where + ": " + message;
  }
};

/// Minimal expected-like result: either a value of T or an Error.
///
/// gcc 12 / C++20 has no std::expected; this is the small subset the
/// toolchain needs (construction, ok(), value access, error access, map).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}       // NOLINT(google-explicit-constructor)

  /// Convenience factory for failures.
  static Result failure(std::string message, std::string where = {}) {
    return Result(Error{std::move(message), std::move(where)});
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  /// Value or a caller-supplied fallback.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// Apply `f` to the value if present, propagate the error otherwise.
  template <typename F>
  auto map(F&& f) const -> Result<decltype(f(std::declval<const T&>()))> {
    if (!ok()) return error();
    return f(value());
  }

 private:
  std::variant<T, Error> data_;
};

/// Result<void> analogue: success flag plus optional error.
class [[nodiscard]] Status {
 public:
  Status() = default;                                    // success
  Status(Error error) : error_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  static Status failure(std::string message, std::string where = {}) {
    return Status(Error{std::move(message), std::move(where)});
  }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace pdl::util
