#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pdl::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[pdl %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace pdl::util
