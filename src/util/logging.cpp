#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/trace.hpp"
#include "util/string_util.hpp"

namespace pdl::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;
std::once_flag g_env_once;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

/// Seconds since the first logging call, on the steady clock.
double monotonic_seconds() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void env_init_once() {
  std::call_once(g_env_once, [] {
    monotonic_seconds();  // pin the timestamp epoch to startup
    apply_env_log_level();
  });
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view text) {
  if (text.size() == 1 && text[0] >= '0' && text[0] <= '4') {
    return static_cast<LogLevel>(text[0] - '0');
  }
  if (iequals(text, "debug")) return LogLevel::kDebug;
  if (iequals(text, "info")) return LogLevel::kInfo;
  if (iequals(text, "warn") || iequals(text, "warning")) return LogLevel::kWarn;
  if (iequals(text, "error")) return LogLevel::kError;
  if (iequals(text, "off") || iequals(text, "none")) return LogLevel::kOff;
  return std::nullopt;
}

void apply_env_log_level() {
  const char* value = std::getenv("PDL_LOG_LEVEL");
  if (value == nullptr) return;
  if (const auto level = parse_log_level(value)) {
    g_level.store(*level, std::memory_order_relaxed);
  }
}

void set_log_level(LogLevel level) {
  env_init_once();  // explicit calls always win over the environment
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
  env_init_once();
  return g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const double now = monotonic_seconds();
  const unsigned tid = obs::thread_ordinal();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[pdl %.6f %s t%u] %s\n", now, level_tag(level), tid,
               message.c_str());
}

}  // namespace pdl::util
