// Small string helpers shared by the XML parser, pragma parser and codegen.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pdl::util {

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on a single character, trimming each field and dropping empties.
std::vector<std::string> split_trimmed(std::string_view s, char sep);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-case copy.
std::string to_lower(std::string_view s);

/// ASCII upper-case copy.
std::string to_upper(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// Parse a base-10 integer; nullopt on any non-numeric content.
std::optional<std::int64_t> parse_int(std::string_view s);

/// Parse a floating-point value; nullopt on any non-numeric content.
std::optional<double> parse_double(std::string_view s);

/// Replace every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

/// "1:4:2" -> file:line:col display helper used by diagnostics.
std::string location_string(std::string_view file, int line, int column);

/// Read an entire file; nullopt if it cannot be opened.
std::optional<std::string> read_file(const std::string& path);

/// Write an entire file; false if it cannot be written.
bool write_file(const std::string& path, std::string_view contents);

}  // namespace pdl::util
