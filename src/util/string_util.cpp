#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace pdl::util {

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && is_space(s[begin])) ++begin;
  std::size_t end = s.size();
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_trimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const auto& field : split(s, sep)) {
    auto t = trim(field);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // Only plain decimal/scientific notation: strtod also accepts "inf",
  // "nan" and hex floats ("0x1p3"), none of which are valid PDL property
  // values — a non-finite parse would poison every model downstream.
  bool any_digit = false;
  for (const char c : s) {
    if (c >= '0' && c <= '9') {
      any_digit = true;
    } else if (c != '.' && c != '+' && c != '-' && c != 'e' && c != 'E') {
      return std::nullopt;
    }
  }
  if (!any_digit) return std::nullopt;
  // std::from_chars<double> is available in gcc 12 but be conservative with
  // locale-free strtod on a NUL-terminated copy.
  std::string copy(s);
  char* endp = nullptr;
  errno = 0;
  double value = std::strtod(copy.c_str(), &endp);
  if (endp != copy.c_str() + copy.size()) return std::nullopt;
  // Overflow ("1e999") returns HUGE_VAL with ERANGE: reject rather than
  // silently hand back infinity. Underflow-to-zero is accepted.
  if (errno == ERANGE && !std::isfinite(value)) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string location_string(std::string_view file, int line, int column) {
  std::ostringstream os;
  if (!file.empty()) os << file << ":";
  os << line << ":" << column;
  return os.str();
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool write_file(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  return static_cast<bool>(out);
}

}  // namespace pdl::util
