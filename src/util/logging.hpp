// Thread-safe leveled logging for the toolchain.
//
// Tools built on the library (cascabel driver, benches) want progress and
// diagnostics on stderr without pulling in a logging framework. Severity is
// filtered by a process-global level; each message is emitted atomically as
//
//   [pdl <seconds-since-start> <SEVERITY> t<thread>] <message>
//
// where the timestamp is monotonic (steady clock) and the thread tag is a
// dense per-process thread ordinal. The initial level comes from the
// PDL_LOG_LEVEL environment variable (debug|info|warn|error|off, or 0-4)
// and defaults to warn; set_log_level() overrides it.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace pdl::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parse a PDL_LOG_LEVEL value: severity name (any case) or digit 0-4.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Re-read PDL_LOG_LEVEL and apply it; no-op when unset or unparsable.
/// Runs automatically before the first level query or message.
void apply_env_log_level();

/// Process-global minimum severity; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one message (appends '\n'); thread-safe.
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Stream-style builder: LogStream(kInfo) << "x=" << x; emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_message(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace pdl::util

#define PDL_LOG_DEBUG ::pdl::util::detail::LogStream(::pdl::util::LogLevel::kDebug)
#define PDL_LOG_INFO ::pdl::util::detail::LogStream(::pdl::util::LogLevel::kInfo)
#define PDL_LOG_WARN ::pdl::util::detail::LogStream(::pdl::util::LogLevel::kWarn)
#define PDL_LOG_ERROR ::pdl::util::detail::LogStream(::pdl::util::LogLevel::kError)
