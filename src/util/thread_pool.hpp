// Fixed-size thread pool with a parallel_for helper.
//
// Used by the parallel DGEMM kernel (S8) and available to library users.
// starvm has its own per-device worker threads and does not use this pool;
// mixing the two would hide which "device" performed work.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pdl::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>=1; 0 is clamped to hardware_concurrency).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the pool; blocks until done.
  /// Work is divided into contiguous chunks, one per worker, which is the
  /// right shape for the dense kernels this pool serves.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    std::function<void()> work;
    std::promise<void> done;
    /// Submission time, for the queue-wait histogram (obs metrics).
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Job> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool sized to hardware concurrency, created on first use.
/// Callers that repeatedly fan out small kernels (dgemm_parallel per task)
/// share this instead of paying thread creation + join per call.
ThreadPool& global_pool();

}  // namespace pdl::util
