#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"

namespace pdl::util {

namespace {

// Pool telemetry (obs registry): queue depth, executed tasks and the
// submit-to-dequeue latency distribution, shared by every pool instance.
obs::Gauge& queue_depth() {
  static obs::Gauge& g = obs::gauge("thread_pool.queue_depth");
  return g;
}
obs::Counter& tasks_executed() {
  static obs::Counter& c = obs::counter("thread_pool.tasks_executed");
  return c;
}
obs::Histogram& wait_us() {
  static obs::Histogram& h = obs::histogram("thread_pool.wait_us");
  return h;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  Job job;
  job.work = std::move(task);
  job.enqueued = std::chrono::steady_clock::now();
  std::future<void> fut = job.done.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push(std::move(job));
  }
  queue_depth().add(1);
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, workers_.size());
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (stopping_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    queue_depth().add(-1);
    wait_us().record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - job.enqueued)
            .count()));
    job.work();
    job.done.set_value();
    tasks_executed().inc();
  }
}

ThreadPool& global_pool() {
  // Meyers singleton: constructed on first use, joined at exit. Sized to
  // hardware concurrency (the 0 convention of the constructor).
  static ThreadPool pool(0);
  return pool;
}

}  // namespace pdl::util
