// Monotonic wall-clock stopwatch used by benches and runtime statistics.
#pragma once

#include <chrono>

namespace pdl::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pdl::util
