// Always-on flight recorder: per-producer lock-free SPSC ring buffers of
// fixed-size binary records, cheap enough to leave enabled on the starvm
// hot path and bounded enough to forget about (capacity × 64 bytes per
// ring, oldest records overwritten).
//
// Each slot is a seqlock over 8 atomic 64-bit words: the producer stamps
// the slot odd, stores the payload with relaxed atomics, then stamps it
// even with release semantics. A consumer may snapshot at any time from
// any thread; a record whose stamp changed between the two reads (the
// producer lapped it mid-read) is simply dropped. Every access is atomic,
// so concurrent overruns are torn-read-safe under TSan, not just in
// practice.
//
// Ownership contract: record() on one ring must come from a single
// producer at a time (a worker thread owning its device ring, or writers
// serialized by a mutex, as the engine's fault path is). snapshot() is
// safe from anywhere, any time — that is the whole point of a flight
// recorder: the post-mortem dump runs while the crash is still unfolding.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace obs {

/// What one flight record describes. Values are stable across versions —
/// dumps are forensic artifacts, renumbering would corrupt old ones.
enum class FlightKind : std::uint8_t {
  kTaskStart = 1,   ///< an execution attempt began (t0 = start)
  kTaskEnd = 2,     ///< an attempt completed (t0..t1, value = exec seconds)
  kTransfer = 3,    ///< modeled data movement (t0..t1, value = seconds)
  kQueueDepth = 4,  ///< ready-queue depth sampled at pop time (value)
  kRetry = 5,       ///< a failed task was re-queued with backoff
  kBlacklist = 6,   ///< a device stopped receiving work
  kFailure = 7,     ///< an execution attempt failed
  kTimeout = 8,     ///< the watchdog rejected an attempt
  kReroute = 9,     ///< a queued task moved off a blacklisted device
  kTaskFailed = 10, ///< a task permanently failed
  kCancelled = 11,  ///< a task was cancelled by a failed dependency
};

const char* to_string(FlightKind kind);

/// One decoded record. Times are engine virtual-clock seconds; t1 == 0 for
/// point events (no end timestamp). `value`/`value2` are kind-specific
/// (exec seconds and transfer seconds for kTaskEnd, depth for kQueueDepth).
struct FlightEvent {
  std::uint64_t seq = 0;    ///< per-ring sequence number (gaps = overwritten)
  std::uint32_t ring = 0;   ///< which ring produced it (FlightRecorder index)
  FlightKind kind = FlightKind::kTaskStart;
  std::uint32_t aux = 0;    ///< attempt number (task records) / kind-specific
  std::uint64_t task = 0;   ///< task id; 0 when the event concerns a device
  std::int64_t device = -1;
  double t0 = 0.0;
  double t1 = 0.0;
  double value = 0.0;
  double value2 = 0.0;

  /// True when the record carries a real end timestamp.
  bool has_end() const { return t1 > t0 || (t1 == t0 && t1 > 0.0); }
};

/// Single-producer, any-consumer ring of 64-byte seqlock slots. Capacity
/// is rounded up to a power of two (minimum 8 slots).
class FlightRing {
 public:
  explicit FlightRing(std::size_t capacity);

  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  /// Append one record (single producer per ring; see the header comment).
  void record(FlightKind kind, std::uint32_t aux, std::uint64_t task,
              std::int64_t device, double t0, double t1, double value,
              double value2 = 0.0);

  /// Append every consistent record still resident, oldest first. Lock-free
  /// and safe concurrently with record(); records the producer laps during
  /// the read are skipped.
  void snapshot_into(std::vector<FlightEvent>& out, std::uint32_t ring) const;

  std::size_t capacity() const { return mask_ + 1; }
  std::uint64_t produced() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Records lost to wraparound (bounded memory is the contract).
  std::uint64_t overwritten() const {
    const std::uint64_t n = produced();
    return n > capacity() ? n - capacity() : 0;
  }

 private:
  struct Slot {
    // w[0] is the stamp: 2*seq+1 while being written, 2*seq+2 when
    // complete, 0 never written. w[1..7] is the payload.
    std::atomic<std::uint64_t> w[8];
  };
  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

/// A fixed set of flight rings (the engine keeps one per device plus one
/// for the mutex-serialized fault path) with a merged snapshot.
class FlightRecorder {
 public:
  FlightRecorder(std::size_t ring_count, std::size_t records_per_ring);

  FlightRing& ring(std::size_t i) { return *rings_[i]; }
  const FlightRing& ring(std::size_t i) const { return *rings_[i]; }
  std::size_t ring_count() const { return rings_.size(); }

  /// Every resident record of every ring, ordered by (t0, ring, seq).
  std::vector<FlightEvent> snapshot() const;

  std::uint64_t produced() const;
  std::uint64_t overwritten() const;
  std::size_t memory_bytes() const;

 private:
  std::vector<std::unique_ptr<FlightRing>> rings_;
};

/// Resolve a task id to a display label for dump rendering; empty = none.
using FlightLabelFn = std::function<std::string(std::uint64_t)>;

/// One JSON object per line. The first line is a header carrying `reason`
/// plus produced/overwritten totals; each record line has kind, seq, ring,
/// task (+label when the resolver knows it), device, t0/t1 (microseconds)
/// and the kind-specific values.
std::string flight_events_jsonl(const std::vector<FlightEvent>& events,
                                const std::string& reason,
                                std::uint64_t produced, std::uint64_t overwritten,
                                const FlightLabelFn& label = {});

}  // namespace obs
