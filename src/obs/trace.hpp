// Span-based wall-time tracer for the toolchain pipeline.
//
// A Span measures one scoped unit of work (parse, validate, pre-selection,
// codegen, ...) on the steady clock, tagged with the recording thread.
// Recording is off by default: a disabled tracer costs one relaxed atomic
// load per Span. Enable with Tracer::instance().set_enabled(true) or via
// the PDL_TRACE environment variable (obs/env.hpp).
//
// Export: to_chrome_trace() renders spans alone; for one timeline that
// also carries the engine's virtual-clock schedule, use
// starvm::merged_chrome_trace() (starvm/trace_export.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

/// Dense per-process thread numbering (0 = first thread that asked).
std::uint32_t thread_ordinal();

/// Escape a string for inclusion in a JSON string literal.
std::string json_escape(std::string_view s);

struct SpanRecord {
  std::string name;
  std::string detail;  ///< optional argument shown in the trace viewer
  double start_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
};

class Tracer {
 public:
  static Tracer& instance();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds on the steady clock since the tracer's epoch.
  double now_us() const;

  void record(SpanRecord record);
  std::vector<SpanRecord> snapshot() const;
  void clear();

 private:
  Tracer();
  std::atomic<bool> enabled_{false};
  double epoch_seconds_ = 0.0;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

inline bool tracing_enabled() { return Tracer::instance().enabled(); }

/// RAII span: records [construction, destruction) when the tracer was
/// enabled at construction time.
class Span {
 public:
  explicit Span(std::string name, std::string detail = {});
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  std::string detail_;
  double start_us_ = -1.0;  ///< < 0: tracing was off, nothing to record
};

/// Chrome trace-event JSON array of the spans alone (pid 1).
std::string to_chrome_trace(const std::vector<SpanRecord>& spans);

/// Append span events (plus thread_name metadata) to an event stream under
/// construction; `first` tracks comma placement across appenders.
void append_chrome_span_events(std::string& out,
                               const std::vector<SpanRecord>& spans, int pid,
                               bool& first);

}  // namespace obs
