#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <sstream>

#include "obs/trace.hpp"

namespace obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t cap = 8;
  while (cap < n) cap <<= 1;
  return cap;
}

std::uint64_t pack_kind_aux(FlightKind kind, std::uint32_t aux) {
  return static_cast<std::uint64_t>(kind) |
         (static_cast<std::uint64_t>(aux) << 8);
}

}  // namespace

const char* to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::kTaskStart: return "task_start";
    case FlightKind::kTaskEnd: return "task_end";
    case FlightKind::kTransfer: return "transfer";
    case FlightKind::kQueueDepth: return "queue_depth";
    case FlightKind::kRetry: return "retry";
    case FlightKind::kBlacklist: return "blacklist";
    case FlightKind::kFailure: return "failure";
    case FlightKind::kTimeout: return "timeout";
    case FlightKind::kReroute: return "reroute";
    case FlightKind::kTaskFailed: return "task_failed";
    case FlightKind::kCancelled: return "cancelled";
  }
  return "?";
}

FlightRing::FlightRing(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity);
  mask_ = cap - 1;
  // std::atomic members value-initialize to zero; stamp 0 = never written.
  slots_ = std::make_unique<Slot[]>(cap);
}

void FlightRing::record(FlightKind kind, std::uint32_t aux, std::uint64_t task,
                        std::int64_t device, double t0, double t1,
                        double value, double value2) {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[seq & mask_];
  // Seqlock write: odd stamp, release fence, relaxed payload, even stamp
  // with release. A reader that revalidates the stamp after its payload
  // loads either sees a fully consistent record or discards the slot.
  s.w[0].store(2 * seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.w[1].store(pack_kind_aux(kind, aux), std::memory_order_relaxed);
  s.w[2].store(task, std::memory_order_relaxed);
  s.w[3].store(static_cast<std::uint64_t>(device), std::memory_order_relaxed);
  s.w[4].store(std::bit_cast<std::uint64_t>(t0), std::memory_order_relaxed);
  s.w[5].store(std::bit_cast<std::uint64_t>(t1), std::memory_order_relaxed);
  s.w[6].store(std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
  s.w[7].store(std::bit_cast<std::uint64_t>(value2), std::memory_order_relaxed);
  s.w[0].store(2 * seq + 2, std::memory_order_release);
}

void FlightRing::snapshot_into(std::vector<FlightEvent>& out,
                               std::uint32_t ring) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = capacity();
  const std::uint64_t begin = head > cap ? head - cap : 0;
  for (std::uint64_t seq = begin; seq < head; ++seq) {
    const Slot& s = slots_[seq & mask_];
    const std::uint64_t stamp = s.w[0].load(std::memory_order_acquire);
    if (stamp != 2 * seq + 2) continue;  // mid-write or already overwritten
    std::uint64_t w[8];
    for (int i = 1; i < 8; ++i) w[i] = s.w[i].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.w[0].load(std::memory_order_relaxed) != stamp) continue;  // lapped

    FlightEvent e;
    e.seq = seq;
    e.ring = ring;
    e.kind = static_cast<FlightKind>(w[1] & 0xff);
    e.aux = static_cast<std::uint32_t>(w[1] >> 8);
    e.task = w[2];
    e.device = static_cast<std::int64_t>(w[3]);
    e.t0 = std::bit_cast<double>(w[4]);
    e.t1 = std::bit_cast<double>(w[5]);
    e.value = std::bit_cast<double>(w[6]);
    e.value2 = std::bit_cast<double>(w[7]);
    out.push_back(e);
  }
}

FlightRecorder::FlightRecorder(std::size_t ring_count,
                               std::size_t records_per_ring) {
  rings_.reserve(ring_count);
  for (std::size_t i = 0; i < ring_count; ++i) {
    rings_.push_back(std::make_unique<FlightRing>(records_per_ring));
  }
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> events;
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    rings_[i]->snapshot_into(events, static_cast<std::uint32_t>(i));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     if (a.t0 != b.t0) return a.t0 < b.t0;
                     if (a.ring != b.ring) return a.ring < b.ring;
                     return a.seq < b.seq;
                   });
  return events;
}

std::uint64_t FlightRecorder::produced() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->produced();
  return n;
}

std::uint64_t FlightRecorder::overwritten() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->overwritten();
  return n;
}

std::size_t FlightRecorder::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& r : rings_) bytes += r->capacity() * 8 * sizeof(std::uint64_t);
  return bytes;
}

std::string flight_events_jsonl(const std::vector<FlightEvent>& events,
                                const std::string& reason,
                                std::uint64_t produced,
                                std::uint64_t overwritten,
                                const FlightLabelFn& label) {
  std::ostringstream os;
  os << "{\"flight_dump\":{\"reason\":\"" << json_escape(reason)
     << "\",\"records\":" << events.size() << ",\"produced\":" << produced
     << ",\"overwritten\":" << overwritten << "}}\n";
  char buf[64];
  const auto num = [&](double v) -> const char* {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
  };
  for (const FlightEvent& e : events) {
    os << "{\"kind\":\"" << to_string(e.kind) << "\",\"ring\":" << e.ring
       << ",\"seq\":" << e.seq << ",\"task\":" << e.task;
    if (label) {
      const std::string name = label(e.task);
      if (!name.empty()) os << ",\"label\":\"" << json_escape(name) << "\"";
    }
    os << ",\"device\":" << e.device << ",\"aux\":" << e.aux
       << ",\"t0_us\":" << num(e.t0 * 1e6);
    if (e.has_end()) os << ",\"t1_us\":" << num(e.t1 * 1e6);
    os << ",\"value\":" << num(e.value);
    if (e.value2 != 0.0) os << ",\"value2\":" << num(e.value2);
    os << "}\n";
  }
  return os.str();
}

}  // namespace obs
