#include "obs/env.hpp"

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace obs {

namespace {

std::mutex g_written_mutex;
std::set<std::string>& written_paths() {
  // Leaked on purpose: the atexit hook below consults this set, and a
  // function-local static would be destroyed before the hook runs when the
  // set is first touched after init_from_env() registered it.
  static std::set<std::string>* paths = new std::set<std::string>();
  return *paths;
}

bool already_written(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_written_mutex);
  return written_paths().count(path) != 0;
}

void mark_written(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_written_mutex);
  written_paths().insert(path);
}

std::string env_value(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : "";
}

void flush_env_outputs() {
  const std::string trace_path = env_trace_path();
  if (!trace_path.empty() && !already_written(trace_path)) {
    write_text_file(trace_path, to_chrome_trace(Tracer::instance().snapshot()));
  }
  const std::string metrics_path = env_metrics_path();
  if (!metrics_path.empty() && !already_written(metrics_path)) {
    write_metrics_file(metrics_path);
  }
}

}  // namespace

std::string env_trace_path() {
  const std::string value = env_value("PDL_TRACE");
  return value == "0" || value == "1" ? "" : value;
}

std::string env_metrics_path() {
  const std::string value = env_value("PDL_METRICS");
  return value == "0" ? "" : value;
}

bool init_from_env() {
  const std::string trace = env_value("PDL_TRACE");
  const std::string metrics = env_metrics_path();
  const bool trace_active = !trace.empty() && trace != "0";
  if (trace_active) Tracer::instance().set_enabled(true);
  if (trace_active || !metrics.empty()) {
    set_metrics_enabled(true);
    static std::once_flag atexit_once;
    std::call_once(atexit_once, [] { std::atexit(flush_env_outputs); });
    return true;
  }
  return false;
}

bool write_metrics_file(const std::string& path) {
  return write_text_file(path, metrics_snapshot_json() + "\n");
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  if (!out) return false;
  mark_written(path);
  return true;
}

}  // namespace obs
