#include "obs/env.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace obs {

namespace {

std::mutex g_written_mutex;
std::set<std::string>& written_paths() {
  // Leaked on purpose: the atexit hook below consults this set, and a
  // function-local static would be destroyed before the hook runs when the
  // set is first touched after init_from_env() registered it.
  static std::set<std::string>* paths = new std::set<std::string>();
  return *paths;
}

bool already_written(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_written_mutex);
  return written_paths().count(path) != 0;
}

void mark_written(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_written_mutex);
  written_paths().insert(path);
}

std::string env_value(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : "";
}

void flush_env_outputs() {
  const std::string trace_path = env_trace_path();
  if (!trace_path.empty() && !already_written(trace_path)) {
    write_text_file(trace_path, to_chrome_trace(Tracer::instance().snapshot()));
  }
  const std::string metrics_path = env_metrics_path();
  if (!metrics_path.empty() && !already_written(metrics_path)) {
    write_metrics_file(metrics_path);
  }
  // Final Prometheus snapshot regardless of the periodic exporter: the
  // file should hold the process's last word, not a mid-run sample.
  const std::string prom_path = env_metrics_prom_path();
  if (!prom_path.empty()) write_prometheus_file(prom_path);
}

}  // namespace

std::string env_trace_path() {
  const std::string value = env_value("PDL_TRACE");
  return value == "0" || value == "1" ? "" : value;
}

std::string env_metrics_path() {
  const std::string value = env_value("PDL_METRICS");
  return value == "0" ? "" : value;
}

std::string env_metrics_prom_path() {
  const std::string value = env_value("PDL_METRICS_PROM");
  return value == "0" ? "" : value;
}

bool write_prometheus_file(const std::string& path) {
  // tmp + rename: a scraper reading mid-write must never see a torn file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) return false;
    out << render_prometheus();
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  mark_written(path);
  return true;
}

bool start_prometheus_exporter(const std::string& path, unsigned period_ms) {
  static std::atomic<bool> running{false};
  bool expected = false;
  if (!running.compare_exchange_strong(expected, true)) return false;
  if (period_ms == 0) period_ms = 1000;
  // Detached on purpose: the exporter lives for the process; joining it at
  // exit would stall shutdown for up to a period. Writes after static
  // destruction are impossible — the registry is leaked (Registry::global).
  std::thread([path, period_ms] {
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(period_ms));
      write_prometheus_file(path);
    }
  }).detach();
  return true;
}

bool init_from_env() {
  const std::string trace = env_value("PDL_TRACE");
  const std::string metrics = env_metrics_path();
  const std::string prom = env_metrics_prom_path();
  const bool trace_active = !trace.empty() && trace != "0";
  if (trace_active) Tracer::instance().set_enabled(true);
  if (trace_active || !metrics.empty() || !prom.empty()) {
    set_metrics_enabled(true);
    if (!prom.empty()) {
      unsigned period_ms = 1000;
      const std::string period = env_value("PDL_METRICS_PROM_PERIOD_MS");
      if (!period.empty()) {
        period_ms = static_cast<unsigned>(std::strtoul(period.c_str(), nullptr, 10));
      }
      start_prometheus_exporter(prom, period_ms);
    }
    static std::once_flag atexit_once;
    std::call_once(atexit_once, [] { std::atexit(flush_env_outputs); });
    return true;
  }
  return false;
}

bool write_metrics_file(const std::string& path) {
  return write_text_file(path, metrics_snapshot_json() + "\n");
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  if (!out) return false;
  mark_written(path);
  return true;
}

}  // namespace obs
