// Structured observability events with a pluggable sink.
//
// Producers (the starvm scheduler, chiefly) build an Event and hand it to
// emit_event(); whatever sink the process installed decides where it goes.
// JsonlFileSink appends one JSON object per line (JSONL); MemorySink
// buffers rendered lines for tests. Without a sink, emit_event() is a
// cheap no-op — producers should guard expensive event construction with
// has_event_sink().
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

/// One event under construction: a name plus typed key/value fields,
/// rendered as a single JSON object {"event":<name>,...}.
class Event {
 public:
  explicit Event(std::string name) : name_(std::move(name)) {}

  Event& str(std::string_view key, std::string_view value);
  Event& num(std::string_view key, double value);
  Event& num(std::string_view key, std::uint64_t value);
  /// Pre-rendered JSON value (arrays/objects built by the caller).
  Event& raw(std::string_view key, std::string_view json_value);

  const std::string& name() const { return name_; }
  std::string to_json() const;

 private:
  std::string name_;
  std::string body_;  ///< accumulated `,"key":value` fragments
};

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const Event& event) = 0;
};

/// Install the process-global sink (nullptr uninstalls); returns the
/// previous one so scoped users can restore it.
std::shared_ptr<EventSink> set_event_sink(std::shared_ptr<EventSink> sink);

/// Cheap check producers use to skip event construction entirely.
bool has_event_sink();

/// Hand an event to the installed sink; no-op without one.
void emit_event(const Event& event);

/// Appends one JSON line per event to a file ("w" truncates on open).
class JsonlFileSink final : public EventSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;
  bool ok() const { return file_ != nullptr; }
  void emit(const Event& event) override;

 private:
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
};

/// Buffers rendered JSON lines in memory (tests).
class MemorySink final : public EventSink {
 public:
  void emit(const Event& event) override;
  std::vector<std::string> lines() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

}  // namespace obs
