#include "obs/event_sink.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>

#include "obs/trace.hpp"

namespace obs {

namespace {

std::mutex g_sink_mutex;
std::shared_ptr<EventSink> g_sink;
std::atomic<bool> g_has_sink{false};

}  // namespace

Event& Event::str(std::string_view key, std::string_view value) {
  body_ += ",\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  return *this;
}

Event& Event::num(std::string_view key, double value) {
  char buf[48];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof buf, "%.6g", value);
  } else {
    std::snprintf(buf, sizeof buf, "null");  // JSON has no NaN/Inf
  }
  body_ += ",\"" + json_escape(key) + "\":" + buf;
  return *this;
}

Event& Event::num(std::string_view key, std::uint64_t value) {
  body_ += ",\"" + json_escape(key) + "\":" + std::to_string(value);
  return *this;
}

Event& Event::raw(std::string_view key, std::string_view json_value) {
  body_ += ",\"" + json_escape(key) + "\":";
  body_ += json_value;
  return *this;
}

std::string Event::to_json() const {
  return "{\"event\":\"" + json_escape(name_) + "\"" + body_ + "}";
}

std::shared_ptr<EventSink> set_event_sink(std::shared_ptr<EventSink> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::shared_ptr<EventSink> previous = std::move(g_sink);
  g_sink = std::move(sink);
  g_has_sink.store(g_sink != nullptr, std::memory_order_relaxed);
  return previous;
}

bool has_event_sink() { return g_has_sink.load(std::memory_order_relaxed); }

void emit_event(const Event& event) {
  std::shared_ptr<EventSink> sink;
  {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    sink = g_sink;
  }
  if (sink) sink->emit(event);
}

JsonlFileSink::JsonlFileSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

JsonlFileSink::~JsonlFileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlFileSink::emit(const Event& event) {
  if (file_ == nullptr) return;
  const std::string line = event.to_json();
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(file_, "%s\n", line.c_str());
}

void MemorySink::emit(const Event& event) {
  const std::string line = event.to_json();
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(line);
}

std::vector<std::string> MemorySink::lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

}  // namespace obs
