// Process-wide metrics registry (counters, gauges, log2 histograms).
//
// Instruments are created once by name and live for the process lifetime,
// so hot paths cache a reference and update it with relaxed atomics:
//
//   static obs::Counter& nodes = obs::counter("xml.nodes_parsed");
//   nodes.inc();
//
// Registry::reset() zeroes every instrument in place (pointers stay valid),
// which lets tools snapshot per-invocation numbers and tests start clean.
// snapshot_json() renders the whole registry as one JSON object (see
// docs/OBSERVABILITY.md for the schema).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, in-flight tasks); tracks a high-water
/// mark so a post-hoc snapshot still shows the peak.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    update_high(v);
  }
  void add(std::int64_t delta) {
    const std::int64_t v =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    update_high(v);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t high_water() const { return high_.load(std::memory_order_relaxed); }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    high_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_high(std::int64_t v) {
    std::int64_t cur = high_.load(std::memory_order_relaxed);
    while (v > cur &&
           !high_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> high_{0};
};

/// Distribution of non-negative integer samples (typically microseconds)
/// over fixed log2 buckets: bucket i holds samples whose bit width is i,
/// i.e. values in [2^(i-1), 2^i - 1]; bucket 0 holds zeros.
class Histogram {
 public:
  static constexpr int kBucketCount = 32;

  void record(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Largest value bucket i can hold (2^i - 1; the last bucket is open).
  static std::uint64_t bucket_upper_bound(int i);
  static int bucket_index(std::uint64_t v);

  /// Estimated q-quantile (0 < q <= 1) by linear interpolation inside the
  /// log2 bucket containing the target rank, clamped to the observed max.
  /// 0 when the histogram is empty. Approximate by construction: exact to
  /// within the bucket's width (a factor of 2 at worst).
  double quantile(double q) const;

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Name -> instrument map. Lookup takes a mutex; cache the reference.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Histograms carry count/sum/max, estimated p50/p95/p99, and the sparse
  /// bucket list.
  std::string snapshot_json() const;

  /// Prometheus text exposition format (the starvmd scrape surface).
  /// Names are prefixed "pdl_" with dots mapped to underscores. Counters
  /// render as `counter`, gauges as `gauge` (plus a `_high_water` gauge),
  /// histograms as `histogram` with cumulative log2 `le` buckets plus
  /// `_p50`/`_p95`/`_p99` gauges (quantile estimates; see
  /// Histogram::quantile).
  std::string render_prometheus() const;

  /// Zero every instrument in place; previously returned references stay
  /// valid (instruments are never destroyed before process exit).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide switch for *hot-path* instrument updates (the starvm
/// engine's per-task counters/gauges/histograms). Off by default so an
/// engine that nobody is observing pays one relaxed load per task instead
/// of a handful of shared atomic read-modify-writes. Flipped on by
/// obs::init_from_env() and by the tools when a trace or metrics output
/// is requested. Direct instrument use (inc()/record() on a cached
/// reference) is never gated — cold-path instrumentation such as the XML
/// parser's counters stays unconditional.
void set_metrics_enabled(bool on);
bool metrics_enabled();

/// Shorthands for the global registry.
inline Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return Registry::global().gauge(name);
}
inline Histogram& histogram(const std::string& name) {
  return Registry::global().histogram(name);
}
inline std::string metrics_snapshot_json() {
  return Registry::global().snapshot_json();
}
inline std::string render_prometheus() {
  return Registry::global().render_prometheus();
}

}  // namespace obs
