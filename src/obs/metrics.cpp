#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace obs {

std::uint64_t Histogram::bucket_upper_bound(int i) {
  if (i <= 0) return 0;
  if (i >= kBucketCount - 1) return ~0ull;
  return (1ull << i) - 1;
}

int Histogram::bucket_index(std::uint64_t v) {
  int width = 0;
  while (v != 0) {
    ++width;
    v >>= 1;
  }
  return width < kBucketCount ? width : kBucketCount - 1;
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target sample (1-based, nearest-rank then interpolated).
  const double target = q * static_cast<double>(n);
  double cum = 0.0;
  for (int i = 0; i < kBucketCount; ++i) {
    const double in_bucket = static_cast<double>(bucket(i));
    if (in_bucket == 0.0) continue;
    if (cum + in_bucket >= target) {
      // Linear interpolation across the bucket's value range. Bucket 0
      // holds only zeros; bucket i >= 1 covers [2^(i-1), 2^i - 1].
      if (i == 0) return 0.0;
      const double lo = static_cast<double>(i == 1 ? 1 : (1ull << (i - 1)));
      const double hi = static_cast<double>(bucket_upper_bound(i));
      const double frac =
          in_bucket > 0.0 ? (target - cum) / in_bucket : 0.0;
      const double est = lo + (hi - lo) * std::min(std::max(frac, 0.0), 1.0);
      // Never report beyond the largest observed sample.
      return std::min(est, static_cast<double>(max()));
    }
    cum += in_bucket;
  }
  return static_cast<double>(max());
}

namespace {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

Registry& Registry::global() {
  // Leaked on purpose: atexit hooks (obs::init_from_env) and destructors of
  // other statics snapshot metrics at shutdown, after a destructible static
  // here would already be gone.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string Registry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"value\":" << g->value()
       << ",\"high_water\":" << g->high_water() << "}";
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    char q50[32], q95[32], q99[32];
    std::snprintf(q50, sizeof(q50), "%.9g", h->quantile(0.50));
    std::snprintf(q95, sizeof(q95), "%.9g", h->quantile(0.95));
    std::snprintf(q99, sizeof(q99), "%.9g", h->quantile(0.99));
    os << "\"" << name << "\":{\"count\":" << h->count() << ",\"sum\":" << h->sum()
       << ",\"max\":" << h->max() << ",\"p50\":" << q50 << ",\"p95\":" << q95
       << ",\"p99\":" << q99 << ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n == 0) continue;  // sparse: empty buckets carry no information
      if (!first_bucket) os << ",";
      first_bucket = false;
      os << "{\"le\":" << Histogram::bucket_upper_bound(i) << ",\"count\":" << n
         << "}";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

namespace {

/// "starvm.task_exec_us" -> "pdl_starvm_task_exec_us": Prometheus metric
/// names allow [a-zA-Z0-9_:] only.
std::string prom_name(const std::string& name) {
  std::string out = "pdl_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void prom_number(std::ostringstream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

std::string Registry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " counter\n" << pn << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " gauge\n" << pn << " " << g->value() << "\n";
    os << "# TYPE " << pn << "_high_water gauge\n"
       << pn << "_high_water " << g->high_water() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " histogram\n";
    std::uint64_t cum = 0;
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n == 0) continue;  // sparse, like the JSON rendering
      cum += n;
      os << pn << "_bucket{le=\"" << Histogram::bucket_upper_bound(i)
         << "\"} " << cum << "\n";
    }
    os << pn << "_bucket{le=\"+Inf\"} " << h->count() << "\n";
    os << pn << "_sum " << h->sum() << "\n";
    os << pn << "_count " << h->count() << "\n";
    // Quantile estimates as companion gauges: Prometheus histograms have
    // no native quantile series, and mixing types under one name is
    // invalid exposition.
    for (const auto& [suffix, q] :
         {std::pair<const char*, double>{"_p50", 0.50},
          {"_p95", 0.95},
          {"_p99", 0.99}}) {
      os << "# TYPE " << pn << suffix << " gauge\n" << pn << suffix << " ";
      prom_number(os, h->quantile(q));
      os << "\n";
    }
  }
  return os.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace obs
