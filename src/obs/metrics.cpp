#include "obs/metrics.hpp"

#include <sstream>

namespace obs {

std::uint64_t Histogram::bucket_upper_bound(int i) {
  if (i <= 0) return 0;
  if (i >= kBucketCount - 1) return ~0ull;
  return (1ull << i) - 1;
}

int Histogram::bucket_index(std::uint64_t v) {
  int width = 0;
  while (v != 0) {
    ++width;
    v >>= 1;
  }
  return width < kBucketCount ? width : kBucketCount - 1;
}

namespace {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

Registry& Registry::global() {
  // Leaked on purpose: atexit hooks (obs::init_from_env) and destructors of
  // other statics snapshot metrics at shutdown, after a destructible static
  // here would already be gone.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string Registry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"value\":" << g->value()
       << ",\"high_water\":" << g->high_water() << "}";
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << h->count() << ",\"sum\":" << h->sum()
       << ",\"max\":" << h->max() << ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n == 0) continue;  // sparse: empty buckets carry no information
      if (!first_bucket) os << ",";
      first_bucket = false;
      os << "{\"le\":" << Histogram::bucket_upper_bound(i) << ",\"count\":" << n
         << "}";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace obs
