#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <set>

namespace obs {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Tracer::Tracer() : epoch_seconds_(steady_seconds()) {}

Tracer& Tracer::instance() {
  // Leaked on purpose: the obs::init_from_env atexit hook exports the trace
  // at shutdown, after a destructible static here would already be gone.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

double Tracer::now_us() const { return (steady_seconds() - epoch_seconds_) * 1e6; }

void Tracer::record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

Span::Span(std::string name, std::string detail)
    : name_(std::move(name)), detail_(std::move(detail)) {
  Tracer& tracer = Tracer::instance();
  if (tracer.enabled()) start_us_ = tracer.now_us();
}

Span::~Span() {
  if (start_us_ < 0.0) return;
  Tracer& tracer = Tracer::instance();
  SpanRecord record;
  record.name = std::move(name_);
  record.detail = std::move(detail_);
  record.start_us = start_us_;
  record.dur_us = tracer.now_us() - start_us_;
  record.tid = thread_ordinal();
  tracer.record(std::move(record));
}

void append_chrome_span_events(std::string& out,
                               const std::vector<SpanRecord>& spans, int pid,
                               bool& first) {
  const auto comma = [&] {
    if (!first) out += ",";
    first = false;
  };
  std::set<std::uint32_t> tids;
  for (const auto& span : spans) tids.insert(span.tid);
  for (const std::uint32_t tid : tids) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(tid) + ",\"args\":{\"name\":\"host thread " +
           std::to_string(tid) + "\"}}";
  }
  char buf[64];
  for (const auto& span : spans) {
    comma();
    out += "{\"name\":\"" + json_escape(span.name) + "\",\"ph\":\"X\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":" + std::to_string(span.tid);
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f,\"dur\":%.3f", span.start_us,
                  span.dur_us);
    out += buf;
    if (!span.detail.empty()) {
      out += ",\"args\":{\"detail\":\"" + json_escape(span.detail) + "\"}";
    }
    out += "}";
  }
}

std::string to_chrome_trace(const std::vector<SpanRecord>& spans) {
  std::string out = "[";
  bool first = true;
  append_chrome_span_events(out, spans, 1, first);
  out += "]";
  return out;
}

}  // namespace obs
