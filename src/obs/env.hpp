// Environment-variable opt-in for observability.
//
//   PDL_TRACE=<path>    enable the tracer; write a Chrome trace to <path>
//   PDL_TRACE=1         enable the tracer without an output file (the
//                       program decides where the trace goes)
//   PDL_METRICS=<path>  write a metrics snapshot to <path> at exit
//   PDL_METRICS_PROM=<path>
//                       write a Prometheus text-format snapshot to <path>
//                       at exit AND periodically while the process runs
//                       (PDL_METRICS_PROM_PERIOD_MS, default 1000), via
//                       tmp+rename so scrapers never read a torn file
//
// Tools call init_from_env() at startup; benches, tests and examples can
// do the same to opt in without flag plumbing. Programs that produce a
// richer artifact themselves (e.g. cascabelc's merged trace) write their
// file first and the atexit fallback skips paths already written.
#pragma once

#include <string>

namespace obs {

/// PDL_TRACE's value when it names a file ("" when unset, "0" or "1").
std::string env_trace_path();

/// PDL_METRICS's value ("" when unset or "0").
std::string env_metrics_path();

/// PDL_METRICS_PROM's value ("" when unset or "0").
std::string env_metrics_prom_path();

/// Write the Prometheus rendering of the metrics registry to `path`
/// atomically (tmp file + rename). False on I/O error.
bool write_prometheus_file(const std::string& path);

/// Start (at most once per process) a detached background thread that
/// rewrites `path` with a fresh Prometheus snapshot every `period_ms`.
/// Returns false when an exporter is already running. Used by
/// init_from_env() for PDL_METRICS_PROM; callable directly by services.
bool start_prometheus_exporter(const std::string& path,
                               unsigned period_ms = 1000);

/// Apply the environment: enable the tracer when PDL_TRACE is set (and not
/// "0"), and register an atexit hook that writes the env-named trace and
/// metrics files not explicitly written earlier. Idempotent; returns true
/// when either variable is active.
bool init_from_env();

/// Write the global metrics registry snapshot as JSON. False on I/O error.
bool write_metrics_file(const std::string& path);

/// Write arbitrary text (a rendered trace) to `path`. False on I/O error.
/// Marks `path` as written so the init_from_env() atexit hook skips it.
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace obs
