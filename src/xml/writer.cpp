#include "xml/writer.hpp"

#include "xml/parser.hpp"

namespace pdl::xml {

namespace {

bool has_element_children(const Element& e) {
  for (const auto& c : e.children()) {
    if (c->is_element()) return true;
  }
  return false;
}

void write_element(std::string& out, const Element& e, const WriteOptions& options,
                   int depth) {
  const std::string indent =
      options.pretty ? std::string(static_cast<std::size_t>(depth) *
                                       static_cast<std::size_t>(options.indent_width),
                                   ' ')
                     : std::string();
  out += indent;
  out += '<';
  out += e.name();
  for (const auto& a : e.attributes()) {
    out += ' ';
    out += a.name;
    out += "=\"";
    out += escape_attribute(a.value);
    out += '"';
  }
  if (e.children().empty()) {
    out += "/>";
    if (options.pretty) out += '\n';
    return;
  }
  out += '>';

  // Mixed/leaf content (text only) stays on one line; element content nests.
  const bool nested = has_element_children(e);
  if (nested && options.pretty) out += '\n';
  for (const auto& c : e.children()) {
    switch (c->kind()) {
      case NodeKind::kElement:
        write_element(out, *c->as_element(), options, depth + 1);
        break;
      case NodeKind::kText:
        if (nested && options.pretty) {
          out += std::string(
              static_cast<std::size_t>(depth + 1) *
                  static_cast<std::size_t>(options.indent_width),
              ' ');
        }
        out += escape_text(c->text());
        if (nested && options.pretty) out += '\n';
        break;
      case NodeKind::kCData:
        out += "<![CDATA[";
        out += c->text();
        out += "]]>";
        if (nested && options.pretty) out += '\n';
        break;
      case NodeKind::kComment:
        if (nested && options.pretty) {
          out += std::string(
              static_cast<std::size_t>(depth + 1) *
                  static_cast<std::size_t>(options.indent_width),
              ' ');
        }
        out += "<!--";
        out += c->text();
        out += "-->";
        if (nested && options.pretty) out += '\n';
        break;
      case NodeKind::kProcInstr:
        out += "<?";
        out += c->text();
        out += "?>";
        if (nested && options.pretty) out += '\n';
        break;
    }
  }
  if (nested && options.pretty) out += indent;
  out += "</";
  out += e.name();
  out += '>';
  if (options.pretty) out += '\n';
}

}  // namespace

std::string write(const Document& doc, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"" + doc.xml_version() + "\" encoding=\"" + doc.encoding() +
           "\"?>";
    if (options.pretty) out += '\n';
  }
  if (doc.root() != nullptr) write_element(out, *doc.root(), options, 0);
  return out;
}

std::string write(const Element& element, const WriteOptions& options) {
  std::string out;
  write_element(out, element, options, 0);
  return out;
}

}  // namespace pdl::xml
