// XML serialization: Document/Element -> text, with optional pretty-printing.
#pragma once

#include <string>

#include "xml/dom.hpp"

namespace pdl::xml {

struct WriteOptions {
  bool pretty = true;        ///< Indent nested elements, one per line.
  int indent_width = 2;      ///< Spaces per nesting level when pretty.
  bool declaration = true;   ///< Emit <?xml version=... encoding=...?>.
};

/// Serialize a whole document.
std::string write(const Document& doc, const WriteOptions& options = {});

/// Serialize a single element subtree (no declaration).
std::string write(const Element& element, const WriteOptions& options = {});

}  // namespace pdl::xml
