#include "xml/parser.hpp"

#include <cctype>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/string_util.hpp"

namespace pdl::xml {

namespace {

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool is_ws(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }

/// UTF-8 encode a code point (PDL values may contain arbitrary text).
void append_utf8(std::string& out, unsigned long cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  util::Result<Document> run() {
    Document doc;
    skip_prolog(doc);
    if (!error_.message.empty()) return error_;
    skip_misc();
    if (at_end()) return fail("document has no root element");
    if (peek() != '<') return fail("expected '<' before root element");
    auto root = parse_element();
    if (!root) return error_;
    doc.set_root(std::move(root));
    skip_misc();
    if (!at_end()) return fail("content after root element");
    return doc;
  }

 private:
  // --- Input primitives ---------------------------------------------------

  bool at_end() const { return pos_ >= text_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  bool match(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }
  void advance() {
    if (at_end()) return;
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }
  void advance(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) advance();
  }
  void skip_ws() {
    while (!at_end() && is_ws(peek())) advance();
  }

  util::Error fail(std::string message) {
    if (error_.message.empty()) {
      error_ = util::Error{std::move(message),
                           util::location_string(options_.source_name, line_, column_)};
    }
    return error_;
  }

  // --- Grammar ------------------------------------------------------------

  void skip_prolog(Document& doc) {
    skip_ws();
    if (match("<?xml")) {
      // Parse the declaration's version/encoding pseudo-attributes.
      advance(5);
      std::string version = "1.0";
      std::string encoding = "UTF-8";
      while (!at_end() && !match("?>")) {
        skip_ws();
        if (match("?>")) break;
        auto name = parse_name();
        if (name.empty()) {
          fail("malformed XML declaration");
          return;
        }
        skip_ws();
        if (peek() != '=') {
          fail("expected '=' in XML declaration");
          return;
        }
        advance();
        skip_ws();
        auto value = parse_quoted();
        if (!value) return;
        if (name == "version") version = *value;
        if (name == "encoding") encoding = *value;
      }
      if (!match("?>")) {
        fail("unterminated XML declaration");
        return;
      }
      advance(2);
      doc.set_declaration(version, encoding);
    }
  }

  /// Skip whitespace, comments, PIs and DOCTYPE between top-level items.
  void skip_misc() {
    while (true) {
      skip_ws();
      if (match("<!--")) {
        skip_comment();
      } else if (match("<?")) {
        skip_pi();
      } else if (match("<!DOCTYPE")) {
        skip_doctype();
      } else {
        return;
      }
      if (!error_.message.empty()) return;
    }
  }

  void skip_comment() {
    advance(4);  // <!--
    const auto end = text_.find("-->", pos_);
    if (end == std::string_view::npos) {
      fail("unterminated comment");
      return;
    }
    while (pos_ < end) advance();
    advance(3);
  }

  void skip_pi() {
    advance(2);  // <?
    const auto end = text_.find("?>", pos_);
    if (end == std::string_view::npos) {
      fail("unterminated processing instruction");
      return;
    }
    while (pos_ < end) advance();
    advance(2);
  }

  void skip_doctype() {
    // Skip to the matching '>' accounting for an optional internal subset.
    advance(9);  // <!DOCTYPE
    int bracket_depth = 0;
    while (!at_end()) {
      const char c = peek();
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth <= 0) {
        advance();
        return;
      }
      advance();
    }
    fail("unterminated DOCTYPE");
  }

  std::string parse_name() {
    if (at_end() || !is_name_start(peek())) return {};
    std::string name;
    while (!at_end() && is_name_char(peek())) {
      name += peek();
      advance();
    }
    return name;
  }

  std::optional<std::string> parse_quoted() {
    const char quote = peek();
    if (quote != '"' && quote != '\'') {
      fail("expected quoted value");
      return std::nullopt;
    }
    advance();
    std::string raw;
    while (!at_end() && peek() != quote) {
      if (peek() == '<') {
        fail("'<' not allowed in attribute value");
        return std::nullopt;
      }
      raw += peek();
      advance();
    }
    if (at_end()) {
      fail("unterminated attribute value");
      return std::nullopt;
    }
    advance();  // closing quote
    auto decoded = decode_entities(raw);
    if (!decoded) {
      fail(decoded.error().message);
      return std::nullopt;
    }
    return std::move(decoded).value();
  }

  std::unique_ptr<Element> parse_element() {
    const SourcePos open_pos{line_, column_};
    advance();  // '<'
    auto name = parse_name();
    if (name.empty()) {
      fail("expected element name");
      return nullptr;
    }
    ++elements_parsed_;
    auto element = std::make_unique<Element>(name);
    element->set_pos(open_pos);

    // Attributes.
    while (true) {
      skip_ws();
      if (at_end()) {
        fail("unterminated start tag for <" + name + ">");
        return nullptr;
      }
      if (peek() == '>' || match("/>")) break;
      auto attr_name = parse_name();
      if (attr_name.empty()) {
        fail("expected attribute name in <" + name + ">");
        return nullptr;
      }
      skip_ws();
      if (peek() != '=') {
        fail("expected '=' after attribute '" + attr_name + "'");
        return nullptr;
      }
      advance();
      skip_ws();
      auto value = parse_quoted();
      if (!value) return nullptr;
      if (element->attribute(attr_name)) {
        fail("duplicate attribute '" + attr_name + "' in <" + name + ">");
        return nullptr;
      }
      element->set_attribute(attr_name, *value);
    }

    if (match("/>")) {
      advance(2);
      return element;
    }
    advance();  // '>'

    // Content.
    if (!parse_content(*element, name)) return nullptr;
    return element;
  }

  bool parse_content(Element& element, const std::string& name) {
    std::string pending_text;
    const auto flush_text = [&] {
      if (pending_text.empty()) return true;
      const bool ws_only = util::trim(pending_text).empty();
      if (!ws_only || options_.keep_whitespace_text) {
        auto decoded = decode_entities(pending_text);
        if (!decoded) {
          fail(decoded.error().message);
          return false;
        }
        element.append_text(std::move(decoded).value());
      }
      pending_text.clear();
      return true;
    };

    while (true) {
      if (at_end()) {
        fail("unterminated element <" + name + ">");
        return false;
      }
      if (match("</")) {
        if (!flush_text()) return false;
        advance(2);
        auto close_name = parse_name();
        skip_ws();
        if (peek() != '>') {
          fail("malformed end tag for </" + close_name + ">");
          return false;
        }
        advance();
        if (close_name != name) {
          fail("mismatched end tag: expected </" + name + ">, got </" + close_name + ">");
          return false;
        }
        return true;
      }
      if (match("<!--")) {
        if (!flush_text()) return false;
        const SourcePos cpos{line_, column_};
        const auto begin = pos_ + 4;
        skip_comment();
        if (!error_.message.empty()) return false;
        if (options_.keep_comments) {
          auto node = std::make_unique<Node>(NodeKind::kComment);
          node->set_text(std::string(text_.substr(begin, pos_ - 3 - begin)));
          node->set_pos(cpos);
          element.append(std::move(node));
        }
        continue;
      }
      if (match("<![CDATA[")) {
        if (!flush_text()) return false;
        const SourcePos cpos{line_, column_};
        advance(9);
        const auto end = text_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          fail("unterminated CDATA section");
          return false;
        }
        auto node = std::make_unique<Node>(NodeKind::kCData);
        node->set_text(std::string(text_.substr(pos_, end - pos_)));
        node->set_pos(cpos);
        element.append(std::move(node));
        while (pos_ < end) advance();
        advance(3);
        continue;
      }
      if (match("<?")) {
        if (!flush_text()) return false;
        skip_pi();
        if (!error_.message.empty()) return false;
        continue;
      }
      if (peek() == '<') {
        if (!flush_text()) return false;
        auto child = parse_element();
        if (!child) return false;
        element.append(std::move(child));
        continue;
      }
      pending_text += peek();
      advance();
    }
  }

  std::string_view text_;
  const ParseOptions& options_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  util::Error error_;

 public:
  std::size_t elements_parsed_ = 0;
};

}  // namespace

util::Result<Document> parse(std::string_view text, const ParseOptions& options) {
  obs::Span span("xml.parse", options.source_name);
  static obs::Counter& documents = obs::counter("xml.documents_parsed");
  static obs::Counter& nodes = obs::counter("xml.nodes_parsed");
  static obs::Counter& bytes = obs::counter("xml.bytes_parsed");
  static obs::Counter& errors = obs::counter("xml.parse_errors");
  Parser parser(text, options);
  auto result = parser.run();
  bytes.inc(text.size());
  nodes.inc(parser.elements_parsed_);
  if (result.ok()) {
    documents.inc();
  } else {
    errors.inc();
  }
  return result;
}

util::Result<Document> parse_file(const std::string& path, ParseOptions options) {
  auto contents = util::read_file(path);
  if (!contents) {
    return util::Error{"cannot open file", path};
  }
  if (options.source_name == "<memory>") options.source_name = path;
  return parse(*contents, options);
}

util::Result<std::string> decode_entities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c != '&') {
      out += c;
      ++i;
      continue;
    }
    const auto semi = text.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return util::Error{"unterminated entity reference"};
    }
    const std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "amp") {
      out += '&';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      std::string_view digits = entity.substr(1);
      int base = 10;
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty()) return util::Error{"empty character reference"};
      unsigned long cp = 0;
      for (char d : digits) {
        int v;
        if (d >= '0' && d <= '9') {
          v = d - '0';
        } else if (base == 16 && d >= 'a' && d <= 'f') {
          v = d - 'a' + 10;
        } else if (base == 16 && d >= 'A' && d <= 'F') {
          v = d - 'A' + 10;
        } else {
          return util::Error{"malformed character reference '&" + std::string(entity) + ";'"};
        }
        cp = cp * static_cast<unsigned long>(base) + static_cast<unsigned long>(v);
        if (cp > 0x10FFFF) return util::Error{"character reference out of range"};
      }
      // XML 1.0 forbids U+0000; UTF-16 surrogates (D800–DFFF) are not
      // Unicode scalar values and would encode as invalid UTF-8 that fails
      // to round-trip through the writer.
      if (cp == 0) return util::Error{"character reference to U+0000"};
      if (cp >= 0xD800 && cp <= 0xDFFF) {
        return util::Error{"character reference to UTF-16 surrogate '&" +
                           std::string(entity) + ";'"};
      }
      append_utf8(out, cp);
    } else {
      return util::Error{"unknown entity '&" + std::string(entity) + ";'"};
    }
    i = semi + 1;
  }
  return out;
}

std::string escape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_attribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\n': out += "&#10;"; break;
      case '\t': out += "&#9;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace pdl::xml
