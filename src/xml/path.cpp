#include "xml/path.hpp"

#include <cstddef>
#include <optional>
#include <string>

#include "util/string_util.hpp"

namespace pdl::xml {

namespace {

struct Predicate {
  // Exactly one of the two forms is active.
  std::optional<std::pair<std::string, std::string>> attr_equals;
  std::optional<std::size_t> index;  // 1-based position among matches
};

struct Step {
  std::string name;  // "*" matches any element
  std::vector<Predicate> predicates;
};

/// Parse one step "name[@a='v'][2]"; returns false on syntax error.
bool parse_step(std::string_view text, Step& step) {
  const auto bracket = text.find('[');
  step.name = std::string(util::trim(text.substr(0, bracket)));
  if (step.name.empty()) return false;
  std::string_view rest = bracket == std::string_view::npos ? std::string_view{}
                                                            : text.substr(bracket);
  while (!rest.empty()) {
    if (rest[0] != '[') return false;
    const auto close = rest.find(']');
    if (close == std::string_view::npos) return false;
    std::string_view body = util::trim(rest.substr(1, close - 1));
    Predicate pred;
    if (!body.empty() && body[0] == '@') {
      const auto eq = body.find('=');
      if (eq == std::string_view::npos) return false;
      std::string attr(util::trim(body.substr(1, eq - 1)));
      std::string_view value = util::trim(body.substr(eq + 1));
      if (value.size() < 2 || (value.front() != '\'' && value.front() != '"') ||
          value.back() != value.front()) {
        return false;
      }
      pred.attr_equals = {std::move(attr), std::string(value.substr(1, value.size() - 2))};
    } else {
      auto idx = util::parse_int(body);
      if (!idx || *idx < 1) return false;
      pred.index = static_cast<std::size_t>(*idx);
    }
    step.predicates.push_back(std::move(pred));
    rest = rest.substr(close + 1);
  }
  return true;
}

bool name_matches(const Element& e, const std::string& pattern) {
  return pattern == "*" || e.name() == pattern || e.local_name() == pattern;
}

void collect_descendants(const Element& e, const std::string& name,
                         std::vector<const Element*>& out) {
  for (const auto& c : e.children()) {
    if (const auto* child = c->as_element()) {
      if (name_matches(*child, name)) out.push_back(child);
      collect_descendants(*child, name, out);
    }
  }
}

std::vector<const Element*> apply_predicates(std::vector<const Element*> matches,
                                             const Step& step) {
  for (const auto& pred : step.predicates) {
    std::vector<const Element*> filtered;
    if (pred.attr_equals) {
      for (const auto* e : matches) {
        if (auto v = e->attribute(pred.attr_equals->first);
            v && *v == pred.attr_equals->second) {
          filtered.push_back(e);
        }
      }
    } else if (pred.index) {
      if (*pred.index <= matches.size()) filtered.push_back(matches[*pred.index - 1]);
    }
    matches = std::move(filtered);
  }
  return matches;
}

}  // namespace

std::vector<const Element*> select_all(const Element& context, std::string_view path) {
  path = util::trim(path);
  if (path.empty()) return {};

  // Descendant-or-self axis: "//name".
  if (util::starts_with(path, "//")) {
    Step step;
    if (!parse_step(path.substr(2), step)) return {};
    std::vector<const Element*> out;
    if (name_matches(context, step.name)) out.push_back(&context);
    collect_descendants(context, step.name, out);
    return apply_predicates(std::move(out), step);
  }

  bool anchored = false;
  if (!path.empty() && path[0] == '/') {
    anchored = true;
    path = path.substr(1);
  }

  std::vector<Step> steps;
  for (const auto& part : util::split(path, '/')) {
    Step step;
    if (!parse_step(part, step)) return {};
    steps.push_back(std::move(step));
  }
  if (steps.empty()) return {};

  std::vector<const Element*> frontier;
  std::size_t first_step = 0;
  if (anchored) {
    // Leading '/': first step names the context element itself.
    auto matches = apply_predicates(
        name_matches(context, steps[0].name) ? std::vector<const Element*>{&context}
                                             : std::vector<const Element*>{},
        steps[0]);
    frontier = std::move(matches);
    first_step = 1;
  } else {
    frontier.push_back(&context);
  }

  for (std::size_t s = first_step; s < steps.size(); ++s) {
    std::vector<const Element*> next;
    for (const auto* e : frontier) {
      std::vector<const Element*> matches;
      for (const auto& c : e->children()) {
        if (const auto* child = c->as_element()) {
          if (name_matches(*child, steps[s].name)) matches.push_back(child);
        }
      }
      matches = apply_predicates(std::move(matches), steps[s]);
      next.insert(next.end(), matches.begin(), matches.end());
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return frontier;
}

std::vector<Element*> select_all(Element& context, std::string_view path) {
  auto matches = select_all(static_cast<const Element&>(context), path);
  std::vector<Element*> out;
  out.reserve(matches.size());
  for (const auto* e : matches) out.push_back(const_cast<Element*>(e));
  return out;
}

const Element* select_first(const Element& context, std::string_view path) {
  auto matches = select_all(context, path);
  return matches.empty() ? nullptr : matches.front();
}

Element* select_first(Element& context, std::string_view path) {
  auto matches = select_all(context, path);
  return matches.empty() ? nullptr : matches.front();
}

std::string select_text(const Element& context, std::string_view path) {
  const Element* e = select_first(context, path);
  return e != nullptr ? e->text_content() : std::string();
}

}  // namespace pdl::xml
