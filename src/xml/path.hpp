// Minimal path queries over the DOM — the slice of XPath the PDL toolchain
// needs for descriptor lookups and tests.
//
// Grammar (steps separated by '/'):
//   path      := ['/'] step ('/' step)*  |  '//' name
//   step      := name predicate* | '*' predicate*
//   predicate := '[' '@' attr '=' '\'' value '\'' ']' | '[' index ']'
//
// Examples:
//   "Master/Worker"                    children named Worker under Master
//   "Master/Worker[@id='1']"           attribute match
//   "Master/*[2]"                      second child element (1-based)
//   "//Property"                       every descendant named Property
//
// Paths are evaluated relative to a context element; a leading '/' anchors
// the first step at the context element itself (checking its name).
#pragma once

#include <string_view>
#include <vector>

#include "xml/dom.hpp"

namespace pdl::xml {

/// All elements matching `path` relative to `context`.
std::vector<const Element*> select_all(const Element& context, std::string_view path);
std::vector<Element*> select_all(Element& context, std::string_view path);

/// First match or nullptr.
const Element* select_first(const Element& context, std::string_view path);
Element* select_first(Element& context, std::string_view path);

/// Text content of the first match ("" when no match).
std::string select_text(const Element& context, std::string_view path);

}  // namespace pdl::xml
