// In-memory XML document model for the PDL toolchain (substrate S1).
//
// The paper's PDL is XML with XSD-style extension (namespaced xsi:type
// properties), so the DOM supports: elements with attributes, text, CDATA,
// comments, processing instructions, and namespace prefix resolution via
// xmlns declarations. It is a strict tree: elements own their children.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pdl::xml {

enum class NodeKind { kElement, kText, kCData, kComment, kProcInstr };

struct Attribute {
  std::string name;   ///< Qualified name as written ("xsi:type").
  std::string value;  ///< Entity-decoded value.
};

/// Source position of a node (1-based; 0 when synthesized in memory).
struct SourcePos {
  int line = 0;
  int column = 0;
};

class Element;

/// Base of all DOM nodes. Non-element nodes carry their text in `text`.
class Node {
 public:
  explicit Node(NodeKind kind) : kind_(kind) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  bool is_element() const { return kind_ == NodeKind::kElement; }

  /// Downcasts; nullptr when the node is not an element.
  Element* as_element();
  const Element* as_element() const;

  /// Text/CData/Comment/PI content; empty for elements.
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  Element* parent() const { return parent_; }
  SourcePos pos() const { return pos_; }
  void set_pos(SourcePos pos) { pos_ = pos; }

 private:
  friend class Element;
  NodeKind kind_;
  std::string text_;
  Element* parent_ = nullptr;
  SourcePos pos_;
};

/// Element node: qualified name, attributes, ordered children.
class Element : public Node {
 public:
  explicit Element(std::string name)
      : Node(NodeKind::kElement), name_(std::move(name)) {}

  // --- Name & namespaces -------------------------------------------------

  /// Qualified name as written, e.g. "ocl:Property".
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Local part of the name ("Property" for "ocl:Property").
  std::string_view local_name() const;
  /// Prefix part ("ocl" for "ocl:Property", "" when unprefixed).
  std::string_view prefix() const;

  /// Resolve a namespace prefix to its URI by walking xmlns declarations up
  /// the ancestor chain; "" prefix resolves default xmlns. nullopt if unbound.
  std::optional<std::string> resolve_namespace(std::string_view prefix) const;

  // --- Attributes ---------------------------------------------------------

  const std::vector<Attribute>& attributes() const { return attributes_; }
  /// Value of the attribute with the given qualified name; nullopt if absent.
  std::optional<std::string> attribute(std::string_view name) const;
  /// Value of the attribute, or `fallback` when absent.
  std::string attribute_or(std::string_view name, std::string fallback) const;
  /// Sets (replacing) or appends an attribute.
  void set_attribute(std::string_view name, std::string_view value);
  /// Removes an attribute if present; returns whether it existed.
  bool remove_attribute(std::string_view name);

  // --- Children -----------------------------------------------------------

  const std::vector<std::unique_ptr<Node>>& children() const { return children_; }

  /// Appends a child node (takes ownership) and returns a raw pointer to it.
  Node* append(std::unique_ptr<Node> child);
  /// Convenience: append a new child element with the given name.
  Element* append_element(std::string name);
  /// Convenience: append a text node.
  Node* append_text(std::string text);

  /// First child element with the given qualified name (nullptr if none).
  Element* first_child(std::string_view name);
  const Element* first_child(std::string_view name) const;

  /// All child elements; optionally filtered by qualified name.
  std::vector<Element*> child_elements(std::string_view name = {});
  std::vector<const Element*> child_elements(std::string_view name = {}) const;

  /// Concatenated text content of immediate Text/CData children, trimmed.
  std::string text_content() const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
};

/// A parsed document: prolog info plus the single root element.
class Document {
 public:
  Document() = default;

  Element* root() { return root_.get(); }
  const Element* root() const { return root_.get(); }
  /// Replaces the root element.
  Element* set_root(std::unique_ptr<Element> root);
  /// Creates and installs a fresh root element with the given name.
  Element* create_root(std::string name);

  const std::string& xml_version() const { return xml_version_; }
  const std::string& encoding() const { return encoding_; }
  void set_declaration(std::string version, std::string encoding) {
    xml_version_ = std::move(version);
    encoding_ = std::move(encoding);
  }

 private:
  std::unique_ptr<Element> root_;
  std::string xml_version_ = "1.0";
  std::string encoding_ = "UTF-8";
};

}  // namespace pdl::xml
