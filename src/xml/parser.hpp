// Recursive-descent XML parser producing a pdl::xml::Document.
//
// Supports the XML surface PDL documents use: declaration, comments, CDATA,
// processing instructions, DOCTYPE (skipped), namespaced element/attribute
// names, single/double-quoted attributes, the five predefined entities plus
// numeric character references. Errors carry 1-based line/column positions.
#pragma once

#include <string>
#include <string_view>

#include "util/result.hpp"
#include "xml/dom.hpp"

namespace pdl::xml {

struct ParseOptions {
  /// Keep whitespace-only text nodes (default: dropped — PDL is data XML).
  bool keep_whitespace_text = false;
  /// Keep comment nodes in the tree.
  bool keep_comments = false;
  /// Name used in error locations ("<memory>" when parsing from a string).
  std::string source_name = "<memory>";
};

/// Parse a complete document from text.
util::Result<Document> parse(std::string_view text, const ParseOptions& options = {});

/// Parse a document from a file on disk.
util::Result<Document> parse_file(const std::string& path, ParseOptions options = {});

/// Decode the predefined entities and numeric character references in `text`.
/// Unknown entities are an error.
util::Result<std::string> decode_entities(std::string_view text);

/// Escape text for use as element content (&, <, >).
std::string escape_text(std::string_view text);

/// Escape text for use inside a double-quoted attribute value.
std::string escape_attribute(std::string_view text);

}  // namespace pdl::xml
