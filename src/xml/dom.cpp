#include "xml/dom.hpp"

#include "util/string_util.hpp"

namespace pdl::xml {

Element* Node::as_element() {
  return is_element() ? static_cast<Element*>(this) : nullptr;
}

const Element* Node::as_element() const {
  return is_element() ? static_cast<const Element*>(this) : nullptr;
}

std::string_view Element::local_name() const {
  const auto pos = name_.find(':');
  if (pos == std::string::npos) return name_;
  return std::string_view(name_).substr(pos + 1);
}

std::string_view Element::prefix() const {
  const auto pos = name_.find(':');
  if (pos == std::string::npos) return {};
  return std::string_view(name_).substr(0, pos);
}

std::optional<std::string> Element::resolve_namespace(std::string_view prefix) const {
  const std::string attr_name =
      prefix.empty() ? std::string("xmlns") : "xmlns:" + std::string(prefix);
  for (const Element* e = this; e != nullptr; e = e->parent()) {
    if (auto v = e->attribute(attr_name)) return v;
  }
  // The xml prefix is implicitly bound per the XML namespaces spec.
  if (prefix == "xml") return std::string("http://www.w3.org/XML/1998/namespace");
  return std::nullopt;
}

std::optional<std::string> Element::attribute(std::string_view name) const {
  for (const auto& a : attributes_) {
    if (a.name == name) return a.value;
  }
  return std::nullopt;
}

std::string Element::attribute_or(std::string_view name, std::string fallback) const {
  auto v = attribute(name);
  return v ? *v : std::move(fallback);
}

void Element::set_attribute(std::string_view name, std::string_view value) {
  for (auto& a : attributes_) {
    if (a.name == name) {
      a.value = std::string(value);
      return;
    }
  }
  attributes_.push_back(Attribute{std::string(name), std::string(value)});
}

bool Element::remove_attribute(std::string_view name) {
  for (auto it = attributes_.begin(); it != attributes_.end(); ++it) {
    if (it->name == name) {
      attributes_.erase(it);
      return true;
    }
  }
  return false;
}

Node* Element::append(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

Element* Element::append_element(std::string name) {
  auto child = std::make_unique<Element>(std::move(name));
  Element* raw = child.get();
  append(std::move(child));
  return raw;
}

Node* Element::append_text(std::string text) {
  auto child = std::make_unique<Node>(NodeKind::kText);
  child->set_text(std::move(text));
  return append(std::move(child));
}

Element* Element::first_child(std::string_view name) {
  for (auto& c : children_) {
    if (auto* e = c->as_element(); e != nullptr && e->name() == name) return e;
  }
  return nullptr;
}

const Element* Element::first_child(std::string_view name) const {
  return const_cast<Element*>(this)->first_child(name);
}

std::vector<Element*> Element::child_elements(std::string_view name) {
  std::vector<Element*> out;
  for (auto& c : children_) {
    if (auto* e = c->as_element(); e != nullptr && (name.empty() || e->name() == name)) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<const Element*> Element::child_elements(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (const auto* e = c->as_element(); e != nullptr && (name.empty() || e->name() == name)) {
      out.push_back(e);
    }
  }
  return out;
}

std::string Element::text_content() const {
  std::string out;
  for (const auto& c : children_) {
    if (c->kind() == NodeKind::kText || c->kind() == NodeKind::kCData) {
      out += c->text();
    }
  }
  return std::string(util::trim(out));
}

Element* Document::set_root(std::unique_ptr<Element> root) {
  root_ = std::move(root);
  return root_.get();
}

Element* Document::create_root(std::string name) {
  return set_root(std::make_unique<Element>(std::move(name)));
}

}  // namespace pdl::xml
