#include "discovery/discovery.hpp"

#include <set>

#include "pdl/well_known.hpp"
#include "util/string_util.hpp"

namespace pdl::discovery {

HostCpuInfo parse_cpuinfo(const std::string& cpuinfo_text) {
  HostCpuInfo info;
  std::set<std::string> physical_ids;
  std::set<std::pair<std::string, std::string>> cores;  // (physical id, core id)
  int processor_count = 0;
  std::string current_physical_id = "0";

  for (const auto& line : util::split(cpuinfo_text, '\n')) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string key(util::trim(line.substr(0, colon)));
    const std::string value(util::trim(line.substr(colon + 1)));
    if (key == "processor") {
      ++processor_count;
    } else if (key == "model name" && info.model_name == "unknown-cpu") {
      info.model_name = value;
    } else if (key == "vendor_id" && info.vendor == "unknown") {
      info.vendor = value;
    } else if (key == "cpu MHz" && info.mhz == 0.0) {
      info.mhz = util::parse_double(value).value_or(0.0);
    } else if (key == "physical id") {
      current_physical_id = value;
      physical_ids.insert(value);
    } else if (key == "core id") {
      cores.insert({current_physical_id, value});
    }
  }

  info.logical_cpus = processor_count > 0 ? processor_count : 1;
  info.sockets = physical_ids.empty() ? 1 : static_cast<int>(physical_ids.size());
  info.physical_cores =
      cores.empty() ? info.logical_cpus : static_cast<int>(cores.size());
  return info;
}

HostCpuInfo read_host_cpu() {
  auto text = util::read_file("/proc/cpuinfo");
  if (!text) return HostCpuInfo{};
  return parse_cpuinfo(*text);
}

HostMemInfo parse_meminfo(const std::string& meminfo_text) {
  HostMemInfo info;
  for (const auto& line : util::split(meminfo_text, '\n')) {
    if (!util::starts_with(line, "MemTotal:")) continue;
    for (const auto& token : util::split_trimmed(line.substr(9), ' ')) {
      if (auto kb = util::parse_int(token)) {
        info.total_bytes = *kb * 1024;
        break;
      }
    }
    break;
  }
  return info;
}

HostMemInfo read_host_memory() {
  auto text = util::read_file("/proc/meminfo");
  if (!text) return HostMemInfo{};
  return parse_meminfo(*text);
}

namespace {

/// Shared shape of the host master: descriptor, RAM region, core workers.
std::unique_ptr<ProcessingUnit> make_host_master(const HostCpuInfo& cpu,
                                                 std::int64_t ram_bytes,
                                                 int cpu_workers) {
  auto master = std::make_unique<ProcessingUnit>(PuKind::kMaster, "0");
  auto& d = master->descriptor();
  d.add(props::kArchitecture, props::kArchX86);
  d.add(props::kModel, cpu.model_name);
  d.add(props::kVendor, cpu.vendor);
  d.add(props::kCores, std::to_string(cpu.physical_cores));
  if (cpu.mhz > 0) {
    d.add(props::kFrequencyMhz, std::to_string(static_cast<int>(cpu.mhz)));
  }

  MemoryRegion ram;
  ram.id = "mr_host";
  if (ram_bytes > 0) {
    Property size;
    size.name = props::kSize;
    size.value = std::to_string(ram_bytes / 1024);
    size.unit = "kB";
    ram.descriptor.add(std::move(size));
  }
  ram.descriptor.add(props::kShared, "true");
  master->memory_regions().push_back(std::move(ram));

  if (cpu_workers > 0) {
    auto worker = std::make_unique<ProcessingUnit>(PuKind::kWorker, "cpu_cores",
                                                   cpu_workers);
    worker->descriptor().add(props::kArchitecture, "x86_core");
    if (cpu.mhz > 0) {
      worker->descriptor().add(props::kFrequencyMhz,
                               std::to_string(static_cast<int>(cpu.mhz)));
    }
    worker->logic_groups().push_back("cpu");
    master->add_child(std::move(worker));
  }
  return master;
}

}  // namespace

std::unique_ptr<ProcessingUnit> make_gpu_worker(const SimDeviceSpec& spec,
                                                std::string id) {
  auto worker = std::make_unique<ProcessingUnit>(PuKind::kWorker, std::move(id));
  auto& d = worker->descriptor();
  d.add(props::kArchitecture, props::kArchGpu);

  // The `ocl:` extension block, exactly the properties of paper Listing 2.
  const auto add_ocl = [&](const char* name, std::string value, std::string unit = {}) {
    Property p;
    p.name = name;
    p.value = std::move(value);
    p.unit = std::move(unit);
    p.fixed = false;  // generated at runtime in the paper -> unfixed
    p.xsi_type = props::kOclPropertyType;
    d.add(std::move(p));
  };
  add_ocl(props::kOclDeviceName, spec.name);
  add_ocl(props::kOclMaxComputeUnits, std::to_string(spec.compute_units));
  add_ocl(props::kOclMaxWorkItemDimensions, std::to_string(spec.max_work_item_dims));
  add_ocl(props::kOclGlobalMemSize, std::to_string(spec.global_mem_kb), "kB");
  add_ocl(props::kOclLocalMemSize, std::to_string(spec.local_mem_kb), "kB");
  add_ocl(props::kOclMaxClockFrequency, std::to_string(spec.clock_mhz));

  // CUDA extension block (the case study's variants are CUDA-based).
  const auto add_cuda = [&](const char* name, std::string value) {
    Property p;
    p.name = name;
    p.value = std::move(value);
    p.fixed = false;
    p.xsi_type = props::kCudaPropertyType;
    d.add(std::move(p));
  };
  add_cuda(props::kCudaComputeCapability, spec.compute_capability);
  add_cuda(props::kCudaMultiprocessors, std::to_string(spec.multiprocessors));

  // Base properties the starvm bridge and performance models read. The
  // sustained rate is performance-relevant platform information made
  // explicit in the PDL (paper §II usage scenarios: performance prediction).
  d.add(props::kPeakGflops, std::to_string(spec.peak_dp_gflops));
  d.add(props::kSustainedGflops,
        std::to_string(spec.peak_dp_gflops * spec.dgemm_efficiency));
  d.add(props::kModel, spec.name);

  MemoryRegion mr;
  mr.id = "mr_" + worker->id();
  Property size;
  size.name = props::kSize;
  size.value = std::to_string(spec.global_mem_kb);
  size.unit = "kB";
  mr.descriptor.add(std::move(size));
  mr.descriptor.add(props::kShared, "false");
  worker->memory_regions().push_back(std::move(mr));

  worker->logic_groups().push_back("gpu");
  return worker;
}

Platform discover_host() {
  const HostCpuInfo cpu = read_host_cpu();
  const HostMemInfo mem = read_host_memory();
  Platform platform("host");
  platform.add_master(make_host_master(cpu, mem.total_bytes, cpu.physical_cores));
  return platform;
}

Platform make_gpgpu_platform(const HostCpuInfo& cpu, int cpu_workers,
                             const std::vector<std::string>& device_names) {
  Platform platform("gpgpu");
  // The gpu workers carry ocl:/cuda: extension properties; declaring the
  // prefixes keeps serialized output and the A105 analysis rule consistent.
  platform.declare_namespace("ocl", "urn:pdl:ext:opencl");
  platform.declare_namespace("cuda", "urn:pdl:ext:cuda");
  ProcessingUnit* master = platform.add_master(
      make_host_master(cpu, read_host_memory().total_bytes, cpu_workers));

  int index = 1;
  for (const auto& name : device_names) {
    const SimDeviceSpec* spec = find_device(name);
    if (spec == nullptr) continue;  // unknown device: skip, callers validate
    auto worker = make_gpu_worker(*spec, "gpu" + std::to_string(index));
    const std::string worker_id = worker->id();
    master->add_child(std::move(worker));

    Interconnect ic;
    ic.type = "PCIe";
    ic.from = master->id();
    ic.to = worker_id;
    ic.scheme = "rDMA";
    Property bw;
    bw.name = props::kIcBandwidthGBs;
    bw.value = std::to_string(spec->pcie_bandwidth_gbs);
    ic.descriptor.add(std::move(bw));
    Property lat;
    lat.name = props::kIcLatencyUs;
    lat.value = std::to_string(spec->pcie_latency_us);
    ic.descriptor.add(std::move(lat));
    master->interconnects().push_back(std::move(ic));
    ++index;
  }
  return platform;
}

}  // namespace pdl::discovery
