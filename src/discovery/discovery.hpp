// Automatic PDL descriptor generation (paper Figure 1: "Possible automatic
// generation of PDL descriptors for various platforms"; §V positions hwloc
// as a complementary source of such information).
//
// Reads the host's CPU/memory configuration from /proc and sysfs (the
// hwloc substitution, see DESIGN.md) and attaches simulated accelerators
// from the device database to produce complete, valid Platform documents.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "discovery/device_db.hpp"
#include "pdl/model.hpp"

namespace pdl::discovery {

/// Host CPU summary assembled from /proc/cpuinfo (with conservative
/// fallbacks when running on exotic kernels).
struct HostCpuInfo {
  std::string model_name = "unknown-cpu";
  std::string vendor = "unknown";
  int sockets = 1;
  int physical_cores = 1;   ///< total across sockets
  int logical_cpus = 1;     ///< hyperthreads included
  double mhz = 0.0;
};

/// Host memory summary from /proc/meminfo.
struct HostMemInfo {
  std::int64_t total_bytes = 0;
};

/// Read the host CPU configuration; never fails (falls back to defaults).
HostCpuInfo read_host_cpu();

/// Parse a /proc/cpuinfo-format text (exposed for tests).
HostCpuInfo parse_cpuinfo(const std::string& cpuinfo_text);

/// Read the host memory configuration; never fails.
HostMemInfo read_host_memory();

/// Parse a /proc/meminfo-format text (exposed for tests).
HostMemInfo parse_meminfo(const std::string& meminfo_text);

/// Build a PDL description of this machine: one Master (the host CPU) with
/// one x86-core Worker per physical core and a host RAM MemoryRegion.
Platform discover_host();

/// Build a GPGPU platform: the given host plus one gpu Worker per named
/// device (looked up in the simulated device DB; unknown names are
/// skipped). Each gpu Worker carries the `ocl:`-typed properties of paper
/// Listing 2, a device MemoryRegion, and a PCIe-style Interconnect from
/// the Master. `cpu_workers` controls how many x86-core Workers the Master
/// keeps for CPU-side task execution.
Platform make_gpgpu_platform(const HostCpuInfo& cpu, int cpu_workers,
                             const std::vector<std::string>& device_names);

/// PDL for a gpu Worker built from a device spec (exposed so tools can
/// attach devices to custom hierarchies).
std::unique_ptr<ProcessingUnit> make_gpu_worker(const SimDeviceSpec& spec,
                                                std::string id);

}  // namespace pdl::discovery
