#include "discovery/device_db.hpp"

namespace pdl::discovery {

const std::vector<SimDeviceSpec>& simulated_device_db() {
  // Datasheet parameters for the paper's testbed GPUs plus a few
  // contemporaries, so examples can target platforms the authors mention
  // (Cell-style accelerators are modeled in presets.cpp instead).
  static const std::vector<SimDeviceSpec> db = {
      {
          // The paper's Listing 2 device and primary GPU (Fermi GF100).
          .name = "GeForce GTX 480",
          .compute_units = 15,
          .max_work_item_dims = 3,
          .global_mem_kb = 1572864,  // exactly the paper's Listing 2 value
          .local_mem_kb = 48,
          .clock_mhz = 1401,
          .compute_capability = "2.0",
          .multiprocessors = 15,
          .peak_dp_gflops = 168.0,  // GeForce Fermi: DP = 1/8 SP
          .dgemm_efficiency = 0.62,
          .pcie_bandwidth_gbs = 5.6,
          .pcie_latency_us = 12.0,
      },
      {
          // The paper's second GPU (GT200).
          .name = "GeForce GTX 285",
          .compute_units = 30,
          .max_work_item_dims = 3,
          .global_mem_kb = 1048576,
          .local_mem_kb = 16,
          .clock_mhz = 1476,
          .compute_capability = "1.3",
          .multiprocessors = 30,
          .peak_dp_gflops = 88.5,
          .dgemm_efficiency = 0.80,  // GT200 DGEMM runs close to its low DP peak
          .pcie_bandwidth_gbs = 5.2,
          .pcie_latency_us = 12.0,
      },
      {
          // A smaller contemporary for heterogeneity tests.
          .name = "Tesla C1060",
          .compute_units = 30,
          .max_work_item_dims = 3,
          .global_mem_kb = 4194304,
          .local_mem_kb = 16,
          .clock_mhz = 1296,
          .compute_capability = "1.3",
          .multiprocessors = 30,
          .peak_dp_gflops = 77.8,
          .dgemm_efficiency = 0.80,
          .pcie_bandwidth_gbs = 5.0,
          .pcie_latency_us = 12.0,
      },
  };
  return db;
}

const SimDeviceSpec* find_device(std::string_view name) {
  for (const auto& d : simulated_device_db()) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

}  // namespace pdl::discovery
