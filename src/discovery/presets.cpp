#include "discovery/presets.hpp"

#include "discovery/discovery.hpp"
#include "pdl/well_known.hpp"

namespace pdl::discovery {

HostCpuInfo paper_testbed_cpu() {
  HostCpuInfo cpu;
  cpu.model_name = "Intel Xeon X5550";
  cpu.vendor = "GenuineIntel";
  cpu.sockets = 2;
  cpu.physical_cores = 8;
  cpu.logical_cpus = 16;
  cpu.mhz = 2660.0;
  return cpu;
}

namespace {

/// Master describing the dual-X5550 host (without any workers).
std::unique_ptr<ProcessingUnit> testbed_master() {
  const HostCpuInfo cpu = paper_testbed_cpu();
  auto master = std::make_unique<ProcessingUnit>(PuKind::kMaster, "0");
  auto& d = master->descriptor();
  d.add(props::kArchitecture, props::kArchX86);
  d.add(props::kModel, cpu.model_name);
  d.add(props::kVendor, cpu.vendor);
  d.add(props::kCores, std::to_string(cpu.physical_cores));
  d.add(props::kFrequencyMhz, "2660");
  // Nehalem: 4 DP flops/cycle/core -> 10.64 GFLOPS per core.
  d.add(props::kPeakGflops, "10.64");
  d.add(props::kSustainedGflops, "9.8");
  d.add(props::kCompiler, "gcc");
  d.add(props::kRuntimeLibrary, "starvm");

  MemoryRegion ram;
  ram.id = "mr_host";
  Property size;
  size.name = props::kSize;
  size.value = "25165824";  // 24 GB
  size.unit = "kB";
  ram.descriptor.add(std::move(size));
  ram.descriptor.add(props::kShared, "true");
  master->memory_regions().push_back(std::move(ram));
  return master;
}

void add_cpu_workers(ProcessingUnit& master, int count) {
  auto worker = std::make_unique<ProcessingUnit>(PuKind::kWorker, "cpu_cores", count);
  worker->descriptor().add(props::kArchitecture, "x86_core");
  worker->descriptor().add(props::kFrequencyMhz, "2660");
  worker->descriptor().add(props::kPeakGflops, "10.64");
  // GotoBLAS2 reaches ~92% of peak on Nehalem; this models the paper's
  // single-core baseline and the per-core rate of the "starpu" program.
  worker->descriptor().add(props::kSustainedGflops, "9.8");
  worker->logic_groups().push_back("cpu");
  worker->logic_groups().push_back("all");
  master.add_child(std::move(worker));
}

void add_gpu(ProcessingUnit& master, const char* device_name, const char* id) {
  const SimDeviceSpec* spec = find_device(device_name);
  auto worker = make_gpu_worker(*spec, id);
  worker->logic_groups().push_back("all");
  const std::string worker_id = worker->id();
  master.add_child(std::move(worker));

  Interconnect ic;
  ic.type = "PCIe";
  ic.from = master.id();
  ic.to = worker_id;
  ic.scheme = "rDMA";
  Property bw;
  bw.name = props::kIcBandwidthGBs;
  bw.value = std::to_string(spec->pcie_bandwidth_gbs);
  ic.descriptor.add(std::move(bw));
  Property lat;
  lat.name = props::kIcLatencyUs;
  lat.value = std::to_string(spec->pcie_latency_us);
  ic.descriptor.add(std::move(lat));
  master.interconnects().push_back(std::move(ic));
}

}  // namespace

Platform paper_platform_single() {
  Platform platform("testbed-single");
  platform.add_master(testbed_master());
  return platform;
}

Platform paper_platform_starpu_cpu() {
  Platform platform("testbed-starpu");
  ProcessingUnit* master = platform.add_master(testbed_master());
  add_cpu_workers(*master, 8);
  return platform;
}

Platform paper_platform_starpu_2gpu() {
  Platform platform("testbed-starpu-2gpu");
  platform.declare_namespace("ocl", "urn:pdl:ext:opencl");
  platform.declare_namespace("cuda", "urn:pdl:ext:cuda");
  ProcessingUnit* master = platform.add_master(testbed_master());
  add_cpu_workers(*master, 8);
  add_gpu(*master, "GeForce GTX 480", "gpu1");
  add_gpu(*master, "GeForce GTX 285", "gpu2");
  return platform;
}

Platform cell_be_platform() {
  Platform platform("cell-be");
  platform.declare_namespace("cell", "urn:pdl:ext:cell");
  auto master = std::make_unique<ProcessingUnit>(PuKind::kMaster, "ppe0");
  auto& d = master->descriptor();
  d.add(props::kArchitecture, props::kArchPpe);
  d.add(props::kModel, "Cell Broadband Engine");
  d.add(props::kFrequencyMhz, "3200");
  d.add(props::kCompiler, "xlc");

  MemoryRegion ram;
  ram.id = "mr_xdr";
  Property size;
  size.name = props::kSize;
  size.value = "262144";  // 256 MB XDR
  size.unit = "kB";
  ram.descriptor.add(std::move(size));
  master->memory_regions().push_back(std::move(ram));

  auto spes = std::make_unique<ProcessingUnit>(PuKind::kWorker, "spe", 8);
  auto& sd = spes->descriptor();
  sd.add(props::kArchitecture, props::kArchSpe);
  sd.add(props::kFrequencyMhz, "3200");
  Property ls;
  ls.name = props::kCellLocalStoreSize;
  ls.value = "256";
  ls.unit = "kB";
  ls.fixed = true;
  ls.xsi_type = props::kCellPropertyType;
  sd.add(std::move(ls));
  MemoryRegion local_store;
  local_store.id = "mr_ls";
  Property ls_size;
  ls_size.name = props::kSize;
  ls_size.value = "256";
  ls_size.unit = "kB";
  local_store.descriptor.add(std::move(ls_size));
  local_store.descriptor.add(props::kShared, "false");
  spes->memory_regions().push_back(std::move(local_store));
  spes->logic_groups().push_back("spe");
  master->add_child(std::move(spes));

  Interconnect eib;
  eib.type = "EIB";
  eib.from = "ppe0";
  eib.to = "spe";
  eib.scheme = "DMA";
  Property bw;
  bw.name = props::kIcBandwidthGBs;
  bw.value = "25.6";
  eib.descriptor.add(std::move(bw));
  master->interconnects().push_back(std::move(eib));

  platform.add_master(std::move(master));
  return platform;
}

Platform manycore_platform(int workers) {
  // ET-SOC1-class: one RISC-V management core over `workers` identical
  // minion cores — platforms/manycore-1k.pdl.xml built in code, with the
  // worker count as a knob for benchmarks and tests.
  Platform platform("manycore-1k");
  auto master = std::make_unique<ProcessingUnit>(PuKind::kMaster, "mgmt");
  auto& d = master->descriptor();
  d.add(props::kArchitecture, "riscv");
  d.add(props::kModel, "ET-SOC1-class management core");
  d.add(props::kFrequencyMhz, "1000");
  d.add(props::kSustainedGflops, "2.0");
  d.add(props::kRuntimeLibrary, "starvm");

  MemoryRegion ram;
  ram.id = "mr_lpddr";
  Property size;
  size.name = props::kSize;
  size.value = "16777216";  // 16 GB LPDDR
  size.unit = "kB";
  ram.descriptor.add(std::move(size));
  ram.descriptor.add(props::kShared, "true");
  master->memory_regions().push_back(std::move(ram));

  auto minions =
      std::make_unique<ProcessingUnit>(PuKind::kWorker, "minion", workers);
  minions->descriptor().add(props::kArchitecture, "riscv_core");
  minions->descriptor().add(props::kFrequencyMhz, "1000");
  minions->descriptor().add(props::kSustainedGflops, "1.5");
  minions->logic_groups().push_back("minions");
  minions->logic_groups().push_back("all");
  master->add_child(std::move(minions));

  Interconnect noc;
  noc.type = "mesh-noc";
  noc.from = "mgmt";
  noc.to = "minion";
  noc.scheme = "LoadStore";
  Property bw;
  bw.name = props::kIcBandwidthGBs;
  bw.value = "32";
  noc.descriptor.add(std::move(bw));
  Property lat;
  lat.name = props::kIcLatencyUs;
  lat.value = "0.2";
  noc.descriptor.add(std::move(lat));
  master->interconnects().push_back(std::move(noc));

  platform.add_master(std::move(master));
  return platform;
}

Platform hierarchical_hybrid_platform() {
  // The Figure 2 shape: M -> {H -> {W,W,W}, H -> {W,W}, W}.
  Platform platform("hierarchical");
  ProcessingUnit* master = platform.add_master("m0");
  master->descriptor().add(props::kArchitecture, props::kArchX86);

  ProcessingUnit* h0 = master->add_child(PuKind::kHybrid, "h0");
  h0->descriptor().add(props::kArchitecture, props::kArchX86);
  ProcessingUnit* w00 = h0->add_child(PuKind::kWorker, "w00", 4);
  w00->descriptor().add(props::kArchitecture, "x86_core");
  ProcessingUnit* w01 = h0->add_child(PuKind::kWorker, "w01");
  w01->descriptor().add(props::kArchitecture, props::kArchGpu);

  ProcessingUnit* h1 = master->add_child(PuKind::kHybrid, "h1");
  h1->descriptor().add(props::kArchitecture, props::kArchX86);
  ProcessingUnit* w10 = h1->add_child(PuKind::kWorker, "w10", 4);
  w10->descriptor().add(props::kArchitecture, "x86_core");

  ProcessingUnit* w2 = master->add_child(PuKind::kWorker, "w2");
  w2->descriptor().add(props::kArchitecture, props::kArchGpu);
  return platform;
}

}  // namespace pdl::discovery
