// Simulated accelerator device database (substitute for the paper's Nvidia
// OpenCL run-time queries, see DESIGN.md "Substitutions").
//
// The paper generates PDL properties by querying OpenCL (Listing 2). We
// have no GPUs, so the same information comes from a curated database of
// paper-era devices with datasheet parameters. Entries carry everything the
// PDL generator and the starvm performance models need.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pdl::discovery {

struct SimDeviceSpec {
  std::string name;                  ///< CL_DEVICE_NAME, e.g. "GeForce GTX 480".
  int compute_units = 0;             ///< CL_DEVICE_MAX_COMPUTE_UNITS.
  int max_work_item_dims = 3;        ///< CL_DEVICE_MAX_WORK_ITEM_DIMENSIONS.
  std::int64_t global_mem_kb = 0;    ///< CL_DEVICE_GLOBAL_MEM_SIZE (kB).
  std::int64_t local_mem_kb = 0;     ///< CL_DEVICE_LOCAL_MEM_SIZE (kB).
  int clock_mhz = 0;                 ///< CL_DEVICE_MAX_CLOCK_FREQUENCY.
  std::string compute_capability;    ///< CUDA SM version ("2.0").
  int multiprocessors = 0;           ///< CUDA SM count.
  double peak_dp_gflops = 0.0;       ///< double-precision peak (datasheet).
  double dgemm_efficiency = 0.65;    ///< fraction of peak a tuned DGEMM reaches.
  double pcie_bandwidth_gbs = 5.5;   ///< effective host<->device bandwidth.
  double pcie_latency_us = 10.0;     ///< per-transfer latency.
};

/// All devices the simulated "runtime" can enumerate.
const std::vector<SimDeviceSpec>& simulated_device_db();

/// Lookup by exact device name; nullptr when unknown.
const SimDeviceSpec* find_device(std::string_view name);

}  // namespace pdl::discovery
