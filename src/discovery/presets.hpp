// Canned platform descriptions used throughout the reproduction:
// the paper's §IV-D testbed in its three PDL configurations, plus platforms
// for the paper's other motivating architectures (Cell B.E., hierarchical
// many-core with Hybrid PUs).
//
// The case study's point is that the *same* input program targets all of
// these by swapping the PDL descriptor; benches and examples pull their
// target platforms from here.
#pragma once

#include "discovery/discovery.hpp"
#include "pdl/model.hpp"

namespace pdl::discovery {

/// The paper testbed CPU: dual-socket 2.66 GHz Intel Xeon X5550 (quad-core).
HostCpuInfo paper_testbed_cpu();

/// "single": the serial input configuration — the Master alone, no worker
/// PUs (the input task implementation runs on the Master).
Platform paper_platform_single();

/// "starpu": Master + 8 x86-core Workers (data-parallel CPU execution).
Platform paper_platform_starpu_cpu();

/// "starpu+2gpu": Master + 8 x86-core Workers + GTX480 + GTX285 Workers
/// with PCIe interconnects — the full §IV-D machine.
Platform paper_platform_starpu_2gpu();

/// Cell B.E.-style platform: PPE Master + 8 SPE Workers with local-store
/// MemoryRegions and an EIB interconnect (paper §I names Cell as a prime
/// example of the architectures PDL must cover).
Platform cell_be_platform();

/// ET-SOC1-class many-core: one RISC-V management Master over `workers`
/// identical quantity-expanded minion Workers on a mesh NoC — the
/// scheduler-scalability platform (platforms/manycore-1k.pdl.xml ships the
/// 1088-worker XML form). All workers collapse into one placement class.
Platform manycore_platform(int workers = 1088);

/// A deep hierarchy exercising Hybrid PUs: a Master controlling two Hybrid
/// nodes, each controlling GPU and CPU-core Workers — the Figure 2 shape.
Platform hierarchical_hybrid_platform();

}  // namespace pdl::discovery
