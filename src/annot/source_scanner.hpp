// Lightweight C/C++ source scanning — the slice of the ROSE front-end the
// paper's prototype actually uses (see DESIGN.md "Substitutions"): locate
// cascabel pragmas, the function definition following a task pragma, and
// the call statement following an execute pragma.
//
// The scanner is comment-, string- and preprocessor-aware but does not
// build an AST; spans are byte ranges into the original text so the
// code generator can splice.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "annot/task_model.hpp"

namespace cascabel {

/// A raw "#pragma cascabel ..." occurrence: its text with backslash
/// continuations folded, plus its source range.
struct RawPragma {
  std::string text;  ///< content after "#pragma", single-spaced
  SourceRange range;
};

/// All cascabel pragmas in the text, in order.
std::vector<RawPragma> find_cascabel_pragmas(std::string_view source);

/// Scan forward from `from` to the next function *definition* and parse its
/// signature. Returns nullopt when none is found before `limit` (npos =
/// end). Handles comments/strings; skips declarations (no body).
std::optional<FunctionInfo> next_function_definition(std::string_view source,
                                                     std::size_t from,
                                                     std::size_t limit = std::string::npos);

/// Scan forward from `from` to the next statement and, when it is a plain
/// call `callee(arg, ...);`, extract callee and argument texts.
std::optional<CallSite> next_call_statement(std::string_view source, std::size_t from);

/// Position one past `pos`'s matching close of `open_char`/`close_char`
/// (e.g. braces), honoring comments/strings. npos when unbalanced.
std::size_t find_matching(std::string_view source, std::size_t open_pos, char open_char,
                          char close_char);

/// 1-based line number of byte `pos`.
int line_of(std::string_view source, std::size_t pos);

}  // namespace cascabel
