#include "annot/pragma_parser.hpp"

#include "util/string_util.hpp"

namespace cascabel {

using pdl::util::trim;

std::string_view to_string(AccessMode mode) {
  switch (mode) {
    case AccessMode::kRead: return "read";
    case AccessMode::kWrite: return "write";
    case AccessMode::kReadWrite: return "readwrite";
  }
  return "?";
}

std::optional<AccessMode> access_mode_from_string(std::string_view s) {
  if (pdl::util::iequals(s, "read")) return AccessMode::kRead;
  if (pdl::util::iequals(s, "write")) return AccessMode::kWrite;
  if (pdl::util::iequals(s, "readwrite")) return AccessMode::kReadWrite;
  return std::nullopt;
}

std::string_view to_string(DistributionKind kind) {
  switch (kind) {
    case DistributionKind::kNone: return "none";
    case DistributionKind::kBlock: return "BLOCK";
    case DistributionKind::kCyclic: return "CYCLIC";
    case DistributionKind::kBlockCyclic: return "BLOCKCYCLIC";
  }
  return "?";
}

std::optional<DistributionKind> distribution_from_string(std::string_view s) {
  if (pdl::util::iequals(s, "block")) return DistributionKind::kBlock;
  if (pdl::util::iequals(s, "cyclic")) return DistributionKind::kCyclic;
  if (pdl::util::iequals(s, "blockcyclic") || pdl::util::iequals(s, "block-cyclic")) {
    return DistributionKind::kBlockCyclic;
  }
  // "WHOLE"/"NONE": the parameter is not decomposed (broadcast to every
  // block task) but still carries extent sizes for registration.
  if (pdl::util::iequals(s, "whole") || pdl::util::iequals(s, "none")) {
    return DistributionKind::kNone;
  }
  return std::nullopt;
}

namespace {

/// Split on top-level ':' — colons nested in parentheses stay put.
std::vector<std::string> split_fields(std::string_view text) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ':' && depth == 0) {
      out.emplace_back(trim(text.substr(start, i - start)));
      start = i + 1;
    }
  }
  out.emplace_back(trim(text.substr(start)));
  return out;
}

/// Strip one balanced pair of outer parentheses, if present.
std::string_view strip_parens(std::string_view s) {
  s = trim(s);
  if (s.size() >= 2 && s.front() == '(' && s.back() == ')') {
    return trim(s.substr(1, s.size() - 2));
  }
  return s;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

}  // namespace

PragmaKind classify_pragma(std::string_view text) {
  text = trim(text);
  if (!pdl::util::starts_with(text, "cascabel")) return PragmaKind::kUnknown;
  const std::string_view rest = trim(text.substr(8));
  if (pdl::util::starts_with(rest, "task")) return PragmaKind::kTask;
  if (pdl::util::starts_with(rest, "execute")) return PragmaKind::kExecute;
  return PragmaKind::kUnknown;
}

pdl::util::Result<TaskPragma> parse_task_pragma(std::string_view text) {
  text = trim(text);
  if (!pdl::util::starts_with(text, "cascabel")) {
    return pdl::util::Error{"not a cascabel pragma"};
  }
  std::string_view rest = trim(text.substr(8));
  if (!pdl::util::starts_with(rest, "task")) {
    return pdl::util::Error{"not a cascabel task pragma"};
  }
  rest = trim(rest.substr(4));
  if (!rest.empty() && rest.front() == ':') rest = rest.substr(1);

  const auto fields = split_fields(rest);
  if (fields.size() != 4) {
    return pdl::util::Error{
        "task pragma needs 4 ':'-separated fields "
        "(platforms : interface : name : (params)), got " +
        std::to_string(fields.size())};
  }

  TaskPragma pragma;
  // Split the platform list on top-level commas only: entries of the form
  // pattern(M[Wx2,Wx4]) carry commas of their own (paper §II: variants may
  // state explicit architectural requirements in PDL pattern form).
  {
    int depth = 0;
    std::string current;
    const auto flush = [&] {
      const auto t = trim(current);
      if (!t.empty()) pragma.target_platforms.emplace_back(t);
      current.clear();
    };
    for (char c : fields[0]) {
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ',' && depth == 0) {
        flush();
        continue;
      }
      current += c;
    }
    flush();
  }
  if (pragma.target_platforms.empty()) {
    return pdl::util::Error{"task pragma: empty targetplatformlist"};
  }
  pragma.task_interface = fields[1];
  if (!is_identifier(pragma.task_interface)) {
    return pdl::util::Error{"task pragma: invalid taskidentifier '" + fields[1] + "'"};
  }
  pragma.variant_name = fields[2];
  if (!is_identifier(pragma.variant_name)) {
    return pdl::util::Error{"task pragma: invalid taskname '" + fields[2] + "'"};
  }

  const std::string_view params = strip_parens(fields[3]);
  for (const auto& entry : pdl::util::split_trimmed(params, ',')) {
    const auto colon = entry.find(':');
    if (colon == std::string::npos) {
      return pdl::util::Error{"task pragma: parameter '" + entry +
                              "' lacks an access specifier"};
    }
    ParamSpec spec;
    spec.name = std::string(trim(std::string_view(entry).substr(0, colon)));
    const auto mode = access_mode_from_string(
        trim(std::string_view(entry).substr(colon + 1)));
    if (!is_identifier(spec.name)) {
      return pdl::util::Error{"task pragma: invalid parameter name '" + spec.name + "'"};
    }
    if (!mode) {
      return pdl::util::Error{"task pragma: unknown access mode in '" + entry + "'"};
    }
    spec.mode = *mode;
    pragma.params.push_back(std::move(spec));
  }
  return pragma;
}

pdl::util::Result<ExecutePragma> parse_execute_pragma(std::string_view text) {
  text = trim(text);
  if (!pdl::util::starts_with(text, "cascabel")) {
    return pdl::util::Error{"not a cascabel pragma"};
  }
  std::string_view rest = trim(text.substr(8));
  if (!pdl::util::starts_with(rest, "execute")) {
    return pdl::util::Error{"not a cascabel execute pragma"};
  }
  rest = trim(rest.substr(7));

  // Grammar: taskidentifier : executiongroup ( distributions )
  // The distribution list is optional; the group field may directly abut it.
  ExecutePragma pragma;
  std::size_t i = 0;
  while (i < rest.size() && rest[i] != ':' && rest[i] != '(') ++i;
  pragma.task_interface = std::string(trim(rest.substr(0, i)));
  if (!is_identifier(pragma.task_interface)) {
    return pdl::util::Error{"execute pragma: invalid taskidentifier '" +
                            pragma.task_interface + "'"};
  }

  std::string_view tail = trim(rest.substr(i));
  if (!tail.empty() && tail.front() == ':') {
    tail = trim(tail.substr(1));
    std::size_t j = 0;
    while (j < tail.size() && tail[j] != '(') ++j;
    pragma.execution_group = std::string(trim(tail.substr(0, j)));
    if (!is_identifier(pragma.execution_group)) {
      return pdl::util::Error{"execute pragma: invalid executiongroup '" +
                              pragma.execution_group + "'"};
    }
    tail = trim(tail.substr(j));
  }

  if (!tail.empty()) {
    if (tail.front() != '(' || tail.back() != ')') {
      return pdl::util::Error{"execute pragma: malformed distribution list '" +
                              std::string(tail) + "'"};
    }
    const std::string_view dists = strip_parens(tail);
    for (const auto& entry : pdl::util::split_trimmed(dists, ',')) {
      const auto parts = pdl::util::split_trimmed(entry, ':');
      if (parts.empty() || parts.size() > 4) {
        return pdl::util::Error{"execute pragma: malformed distribution '" + entry +
                                "'"};
      }
      DistributionSpec spec;
      spec.param = parts[0];
      if (!is_identifier(spec.param)) {
        return pdl::util::Error{"execute pragma: invalid parameter name '" +
                                spec.param + "'"};
      }
      if (parts.size() >= 2) {
        const auto kind = distribution_from_string(parts[1]);
        if (!kind) {
          return pdl::util::Error{"execute pragma: unknown distribution '" + parts[1] +
                                  "'"};
        }
        spec.kind = *kind;
      }
      for (std::size_t s = 2; s < parts.size(); ++s) spec.sizes.push_back(parts[s]);
      pragma.distributions.push_back(std::move(spec));
    }
  }
  return pragma;
}

}  // namespace cascabel
