#include "annot/annotated_program.hpp"

#include "annot/pragma_parser.hpp"
#include "annot/source_scanner.hpp"
#include "util/string_util.hpp"

namespace cascabel {

const TaskVariant* AnnotatedProgram::find_variant(std::string_view name) const {
  for (const auto& v : variants) {
    if (v.pragma.variant_name == name) return &v;
  }
  return nullptr;
}

std::vector<const TaskVariant*> AnnotatedProgram::variants_of(
    std::string_view interface_name) const {
  std::vector<const TaskVariant*> out;
  for (const auto& v : variants) {
    if (v.pragma.task_interface == interface_name) out.push_back(&v);
  }
  return out;
}

pdl::util::Result<AnnotatedProgram> parse_annotated_source(std::string_view source,
                                                           std::string source_name,
                                                           pdl::Diagnostics& diags) {
  AnnotatedProgram program;
  program.source = std::string(source);
  program.source_name = std::move(source_name);

  const auto where = [&](const SourceRange& range) {
    return program.source_name + ":" + std::to_string(range.line);
  };

  const auto pragmas = find_cascabel_pragmas(source);
  for (const auto& raw : pragmas) {
    switch (classify_pragma(raw.text)) {
      case PragmaKind::kTask: {
        auto parsed = parse_task_pragma(raw.text);
        if (!parsed) {
          add_error(diags, parsed.error().message, where(raw.range));
          continue;
        }
        TaskVariant variant;
        variant.pragma = std::move(parsed).value();
        variant.pragma.range = raw.range;

        auto fn = next_function_definition(source, raw.range.end);
        if (!fn) {
          add_error(diags,
                    "task pragma '" + variant.pragma.variant_name +
                        "' is not followed by a function definition",
                    where(raw.range));
          continue;
        }
        // Cross-check pragma parameters against the function signature.
        for (const auto& param : variant.pragma.params) {
          bool found = false;
          for (const auto& name : fn->param_names) {
            if (name == param.name) found = true;
          }
          if (!found) {
            add_warning(diags,
                        "pragma parameter '" + param.name + "' does not appear in '" +
                            fn->name + "' signature",
                        where(raw.range));
          }
        }
        variant.function = std::move(*fn);
        variant.source_text = std::string(source.substr(
            variant.function.definition.begin,
            variant.function.definition.end - variant.function.definition.begin));

        if (program.find_variant(variant.pragma.variant_name) != nullptr) {
          add_error(diags,
                    "duplicate taskname '" + variant.pragma.variant_name + "'",
                    where(raw.range));
          continue;
        }
        program.variants.push_back(std::move(variant));
        break;
      }
      case PragmaKind::kExecute: {
        auto parsed = parse_execute_pragma(raw.text);
        if (!parsed) {
          add_error(diags, parsed.error().message, where(raw.range));
          continue;
        }
        auto call = next_call_statement(source, raw.range.end);
        if (!call) {
          add_error(diags,
                    "execute pragma '" + parsed.value().task_interface +
                        "' is not followed by a call statement",
                    where(raw.range));
          continue;
        }
        call->pragma = std::move(parsed).value();
        call->pragma.range = raw.range;
        program.calls.push_back(std::move(*call));
        break;
      }
      case PragmaKind::kUnknown:
        add_warning(diags, "unknown cascabel directive: '" + raw.text + "'",
                    where(raw.range));
        break;
    }
  }

  // Semantic checks: every call references a known interface; distributions
  // reference declared parameters.
  for (const auto& call : program.calls) {
    const auto impls = program.variants_of(call.pragma.task_interface);
    if (impls.empty()) {
      add_error(diags,
                "execute references unknown task interface '" +
                    call.pragma.task_interface + "'",
                where(call.pragma.range));
      continue;
    }
    for (const auto& dist : call.pragma.distributions) {
      bool known = false;
      for (const auto* impl : impls) {
        for (const auto& param : impl->pragma.params) {
          if (param.name == dist.param) known = true;
        }
      }
      if (!known) {
        add_warning(diags,
                    "distribution names unknown parameter '" + dist.param + "'",
                    where(call.pragma.range));
      }
    }
  }

  // Signature consistency across variants of one interface (paper: "same
  // functionality and function signature for all implementations").
  for (const auto& v : program.variants) {
    const auto impls = program.variants_of(v.pragma.task_interface);
    for (const auto* other : impls) {
      if (other == &v) continue;
      if (other->function.param_types.size() != v.function.param_types.size()) {
        add_error(diags,
                  "variants '" + v.pragma.variant_name + "' and '" +
                      other->pragma.variant_name + "' of interface '" +
                      v.pragma.task_interface + "' differ in arity",
                  where(v.pragma.range));
      }
    }
  }

  if (pdl::has_errors(diags)) {
    return pdl::util::Error{"annotated program has errors", program.source_name};
  }
  return program;
}

}  // namespace cascabel
