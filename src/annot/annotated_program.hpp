// Front-end driver: scan an annotated serial C/C++ program into task
// variants and call sites (Cascabel step 1, "task registration").
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "annot/task_model.hpp"
#include "pdl/diagnostics.hpp"
#include "util/result.hpp"

namespace cascabel {

/// A fully scanned input program.
struct AnnotatedProgram {
  std::string source;               ///< the original text (spans index into it)
  std::string source_name;          ///< for diagnostics
  std::vector<TaskVariant> variants;
  std::vector<CallSite> calls;

  /// The variant for a given variant name; nullptr when absent.
  const TaskVariant* find_variant(std::string_view name) const;
  /// All variants implementing a task interface.
  std::vector<const TaskVariant*> variants_of(std::string_view interface_name) const;
};

/// Parse an annotated program. Pragma syntax errors and dangling pragmas
/// (task pragma without a following function, execute pragma without a
/// following call) are reported in `diags`; the Result fails only when the
/// program is unusable (any error-severity diagnostic).
pdl::util::Result<AnnotatedProgram> parse_annotated_source(std::string_view source,
                                                           std::string source_name,
                                                           pdl::Diagnostics& diags);

}  // namespace cascabel
