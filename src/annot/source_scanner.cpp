#include "annot/source_scanner.hpp"

#include <cctype>

#include "util/string_util.hpp"

namespace cascabel {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// If `pos` sits at the start of a comment, string or char literal, advance
/// past it and return true. Otherwise leave `pos` alone and return false.
bool skip_noncode(std::string_view s, std::size_t& pos) {
  if (pos >= s.size()) return false;
  const char c = s[pos];
  if (c == '/' && pos + 1 < s.size()) {
    if (s[pos + 1] == '/') {
      while (pos < s.size() && s[pos] != '\n') ++pos;
      return true;
    }
    if (s[pos + 1] == '*') {
      const auto end = s.find("*/", pos + 2);
      pos = end == std::string_view::npos ? s.size() : end + 2;
      return true;
    }
  }
  if (c == '"' || c == '\'') {
    const char quote = c;
    ++pos;
    while (pos < s.size() && s[pos] != quote) {
      if (s[pos] == '\\') ++pos;  // escape
      ++pos;
    }
    if (pos < s.size()) ++pos;  // closing quote
    return true;
  }
  return false;
}

void skip_ws_and_comments(std::string_view s, std::size_t& pos) {
  while (pos < s.size()) {
    if (std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
      continue;
    }
    if (s[pos] == '/' && pos + 1 < s.size() && (s[pos + 1] == '/' || s[pos + 1] == '*')) {
      skip_noncode(s, pos);
      continue;
    }
    return;
  }
}

/// Split `text` on top-level commas (ignoring commas inside (), [], <>, {}).
std::vector<std::string> split_top_level(std::string_view text) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t start = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const char c = text[pos];
    if (c == '"' || c == '\'' || (c == '/' && pos + 1 < text.size() &&
                                  (text[pos + 1] == '/' || text[pos + 1] == '*'))) {
      skip_noncode(text, pos);
      continue;
    }
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    if (c == ',' && depth == 0) {
      out.emplace_back(pdl::util::trim(text.substr(start, pos - start)));
      start = pos + 1;
    }
    ++pos;
  }
  const auto last = pdl::util::trim(text.substr(start));
  if (!last.empty()) out.emplace_back(last);
  return out;
}

}  // namespace

int line_of(std::string_view source, std::size_t pos) {
  int line = 1;
  for (std::size_t i = 0; i < pos && i < source.size(); ++i) {
    if (source[i] == '\n') ++line;
  }
  return line;
}

std::vector<RawPragma> find_cascabel_pragmas(std::string_view source) {
  std::vector<RawPragma> out;
  std::size_t pos = 0;
  while (pos < source.size()) {
    if (skip_noncode(source, pos)) continue;
    if (source[pos] != '#') {
      ++pos;
      continue;
    }
    // A preprocessor directive: check it is "# pragma".
    const std::size_t hash = pos;
    std::size_t p = pos + 1;
    while (p < source.size() && (source[p] == ' ' || source[p] == '\t')) ++p;
    if (source.substr(p, 6) != "pragma") {
      // Skip to end of the directive (with continuations).
      while (pos < source.size() && source[pos] != '\n') {
        if (source[pos] == '\\' && pos + 1 < source.size() && source[pos + 1] == '\n') {
          pos += 2;
          continue;
        }
        ++pos;
      }
      continue;
    }
    p += 6;
    // Collect the full logical line (folding "\\\n" continuations).
    std::string text;
    while (p < source.size() && source[p] != '\n') {
      if (source[p] == '\\' && p + 1 < source.size() && source[p + 1] == '\n') {
        text += ' ';
        p += 2;
        continue;
      }
      text += source[p];
      ++p;
    }
    const std::string_view trimmed = pdl::util::trim(text);
    if (pdl::util::starts_with(trimmed, "cascabel")) {
      RawPragma pragma;
      pragma.text = std::string(trimmed);
      pragma.range = SourceRange{hash, p, line_of(source, hash)};
      out.push_back(std::move(pragma));
    }
    pos = p;
  }
  return out;
}

std::size_t find_matching(std::string_view source, std::size_t open_pos, char open_char,
                          char close_char) {
  if (open_pos >= source.size() || source[open_pos] != open_char) {
    return std::string_view::npos;
  }
  int depth = 0;
  std::size_t pos = open_pos;
  while (pos < source.size()) {
    if (skip_noncode(source, pos)) continue;
    const char c = source[pos];
    if (c == open_char) ++depth;
    if (c == close_char) {
      --depth;
      if (depth == 0) return pos + 1;
    }
    ++pos;
  }
  return std::string_view::npos;
}

namespace {

/// Parse "double *A" / "const float* x" / "void": type text + name.
void parse_param(std::string_view text, std::string& type, std::string& name) {
  // The name is the last identifier not followed by more identifier text.
  std::size_t name_begin = std::string_view::npos;
  std::size_t name_end = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    if (is_ident_start(text[pos])) {
      const std::size_t start = pos;
      while (pos < text.size() && is_ident_char(text[pos])) ++pos;
      // Skip array suffix positions; the last identifier wins.
      name_begin = start;
      name_end = pos;
      continue;
    }
    ++pos;
  }
  if (name_begin == std::string_view::npos) {
    type = std::string(pdl::util::trim(text));
    name.clear();
    return;
  }
  name = std::string(text.substr(name_begin, name_end - name_begin));
  std::string t(text.substr(0, name_begin));
  t += text.substr(name_end);
  type = std::string(pdl::util::trim(t));
  // Single-identifier params ("void", or an unnamed "double") are types.
  if (type.empty()) {
    type = name;
    name.clear();
  }
}

}  // namespace

std::optional<FunctionInfo> next_function_definition(std::string_view source,
                                                     std::size_t from,
                                                     std::size_t limit) {
  if (limit == std::string::npos) limit = source.size();
  std::size_t pos = from;
  std::size_t decl_start = std::string_view::npos;  // first token of the declaration

  while (pos < limit) {
    if (std::isspace(static_cast<unsigned char>(source[pos]))) {
      ++pos;
      continue;
    }
    if (skip_noncode(source, pos)) continue;
    const char c = source[pos];
    if (c == '#') {
      // Preprocessor line: skip and reset.
      while (pos < source.size() && source[pos] != '\n') {
        if (source[pos] == '\\' && pos + 1 < source.size() && source[pos + 1] == '\n') {
          pos += 2;
          continue;
        }
        ++pos;
      }
      decl_start = std::string_view::npos;
      continue;
    }
    if (c == ';' || c == '}' || c == '{') {
      ++pos;
      decl_start = std::string_view::npos;
      continue;
    }
    if (is_ident_start(c)) {
      const std::size_t ident_begin = pos;
      while (pos < source.size() && is_ident_char(source[pos])) ++pos;
      if (decl_start == std::string_view::npos) decl_start = ident_begin;

      // Lookahead: identifier '(' ... ')' then '{' => definition.
      std::size_t after = pos;
      skip_ws_and_comments(source, after);
      if (after < source.size() && source[after] == '(') {
        const std::size_t close = find_matching(source, after, '(', ')');
        if (close == std::string_view::npos) return std::nullopt;
        std::size_t brace = close;
        skip_ws_and_comments(source, brace);
        if (brace < source.size() && source[brace] == '{') {
          const std::size_t body_end = find_matching(source, brace, '{', '}');
          if (body_end == std::string_view::npos) return std::nullopt;

          FunctionInfo info;
          info.name = std::string(source.substr(ident_begin, pos - ident_begin));
          info.return_type = std::string(pdl::util::trim(
              source.substr(decl_start, ident_begin - decl_start)));
          const std::string_view params =
              source.substr(after + 1, close - after - 2);
          for (const auto& p : split_top_level(params)) {
            if (p == "void" || p.empty()) continue;
            std::string type, name;
            parse_param(p, type, name);
            info.param_types.push_back(std::move(type));
            info.param_names.push_back(std::move(name));
          }
          info.definition =
              SourceRange{decl_start, body_end, line_of(source, decl_start)};
          info.body = SourceRange{brace, body_end, line_of(source, brace)};
          return info;
        }
        // Declaration or call: continue scanning after the paren group.
        pos = close;
        continue;
      }
      continue;
    }
    ++pos;
  }
  return std::nullopt;
}

std::optional<CallSite> next_call_statement(std::string_view source, std::size_t from) {
  std::size_t pos = from;
  skip_ws_and_comments(source, pos);
  if (pos >= source.size() || !is_ident_start(source[pos])) return std::nullopt;

  const std::size_t stmt_begin = pos;
  // Callee may be qualified: ns::fn or obj.method — take the token chain.
  std::size_t callee_end = pos;
  while (callee_end < source.size() &&
         (is_ident_char(source[callee_end]) || source[callee_end] == ':' ||
          source[callee_end] == '.')) {
    ++callee_end;
  }
  std::size_t open = callee_end;
  skip_ws_and_comments(source, open);
  if (open >= source.size() || source[open] != '(') return std::nullopt;
  const std::size_t close = find_matching(source, open, '(', ')');
  if (close == std::string_view::npos) return std::nullopt;
  std::size_t semi = close;
  skip_ws_and_comments(source, semi);
  if (semi >= source.size() || source[semi] != ';') return std::nullopt;

  CallSite call;
  call.callee = std::string(source.substr(stmt_begin, callee_end - stmt_begin));
  call.args = split_top_level(source.substr(open + 1, close - open - 2));
  call.statement = SourceRange{stmt_begin, semi + 1, line_of(source, stmt_begin)};
  return call;
}

}  // namespace cascabel
