// The task model of Cascabel's annotation language (paper §IV-A).
//
// A *task* is a self-contained unit of work with input/output parameters.
// One task interface (taskidentifier) can have multiple *task
// implementations* (variants) for different platforms, all sharing the
// same functionality and function signature. The *execute* annotation
// marks a call-site and binds it to an execution group of PUs in the
// target PDL plus per-parameter data distributions.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "starvm/types.hpp"

namespace cascabel {

/// Parameter access specifiers (paper: read, write, readwrite).
enum class AccessMode { kRead, kWrite, kReadWrite };

std::string_view to_string(AccessMode mode);
std::optional<AccessMode> access_mode_from_string(std::string_view s);

/// Data distributions referenced by execute annotations (paper: "block,
/// cyclic, block-cyclic, and optional sizes").
enum class DistributionKind { kNone, kBlock, kCyclic, kBlockCyclic };

std::string_view to_string(DistributionKind kind);
std::optional<DistributionKind> distribution_from_string(std::string_view s);

/// Byte range in the original source text.
struct SourceRange {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< one past the last byte
  int line = 0;         ///< 1-based line of `begin`
};

/// One entry of a task pragma's parameterlist: "A: readwrite".
struct ParamSpec {
  std::string name;
  AccessMode mode = AccessMode::kRead;
};

/// One entry of an execute pragma's distribution list: "A:BLOCK:N" (vector
/// of extent N) or "C:BLOCK:n:n" (n x n matrix). The paper's grammar allows
/// "optional sizes"; sizes are spliced verbatim into generated code, so
/// they may be any C++ expression valid at the call site.
struct DistributionSpec {
  std::string param;
  DistributionKind kind = DistributionKind::kNone;
  std::vector<std::string> sizes;  ///< 0 (opaque), 1 (vector) or 2 (matrix) extents
};

/// Parsed "#pragma cascabel task : <platforms> : <interface> : <name> : (<params>)".
struct TaskPragma {
  std::vector<std::string> target_platforms;  ///< e.g. {"x86"}, {"cuda","opencl"}
  std::string task_interface;                 ///< taskidentifier, e.g. "Ivecadd"
  std::string variant_name;                   ///< taskname, e.g. "vecadd01"
  std::vector<ParamSpec> params;
  SourceRange range;
};

/// Parsed "#pragma cascabel execute <interface> : <group> (<distributions>)".
struct ExecutePragma {
  std::string task_interface;
  std::string execution_group;  ///< references a LogicGroupAttribute
  std::vector<DistributionSpec> distributions;
  SourceRange range;
};

/// The C/C++ function definition a task pragma annotates.
struct FunctionInfo {
  std::string return_type;
  std::string name;
  std::vector<std::string> param_types;  ///< parallel to param_names
  std::vector<std::string> param_names;
  SourceRange definition;  ///< full definition including the body
  SourceRange body;        ///< between (and including) the braces
};

/// A task implementation variant: pragma + the annotated function.
struct TaskVariant {
  TaskPragma pragma;
  FunctionInfo function;
  std::string source_text;  ///< the function definition's source
  /// Declared numerical-accuracy claim of this implementation (see
  /// starvm::ErrorModel): consumed by the A7xx static analysis and by the
  /// selection-time AccuracyGuard that vetoes faster-but-looser variants.
  starvm::ErrorModel error_model;
};

/// The statement an execute pragma annotates.
struct CallSite {
  ExecutePragma pragma;
  std::string callee;              ///< invoked function name
  std::vector<std::string> args;   ///< argument expressions, textual
  SourceRange statement;           ///< the full call statement incl. ';'
};

}  // namespace cascabel
