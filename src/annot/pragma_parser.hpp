// Parser for the cascabel pragma grammar (paper §IV-A):
//
//   #pragma cascabel task
//     : targetplatformlist        e.g.  x86   |  cuda, opencl
//     : taskidentifier            the task interface name
//     : taskname                  unique name of this implementation variant
//     : ( parameterlist )         A: readwrite, B: read
//
//   #pragma cascabel execute taskidentifier
//     : executiongroup            references a PDL LogicGroupAttribute
//     ( distributionslist )       A:BLOCK:N, B:CYCLIC:64
//
// Fields are separated by top-level ':' (colons inside parentheses belong
// to the parameter/distribution entries).
#pragma once

#include <string_view>

#include "annot/task_model.hpp"
#include "util/result.hpp"

namespace cascabel {

/// Which pragma a raw text is; kUnknown for other cascabel directives.
enum class PragmaKind { kTask, kExecute, kUnknown };

/// Classify "cascabel ..." text.
PragmaKind classify_pragma(std::string_view text);

/// Parse a task pragma ("cascabel task : ..." — text starts at "cascabel").
pdl::util::Result<TaskPragma> parse_task_pragma(std::string_view text);

/// Parse an execute pragma ("cascabel execute ...").
pdl::util::Result<ExecutePragma> parse_execute_pragma(std::string_view text);

}  // namespace cascabel
