// Tiled LU factorization (no pivoting) on the starvm runtime — the second
// DAG workload next to Cholesky, with a denser trailing-update graph
// (every (i, j) tile updated per step, not just the lower triangle).
//
//   for k in 0..T-1:
//     GETRF(A[k][k])                                   RW kk
//     for j > k: TRSM_L(A[k][k], A[k][j])              R kk, RW kj
//     for i > k: TRSM_U(A[k][k], A[i][k])              R kk, RW ik
//     for i > k, j > k: GEMM(A[i][k], A[k][j], A[i][j])
//
// Suitable for diagonally dominant matrices (no pivoting); the engine
// derives all ordering from access modes.
#pragma once

#include <cstddef>

#include "starvm/engine.hpp"
#include "util/result.hpp"

namespace solvers {

struct LuStats {
  int tasks_submitted = 0;
  double total_flops = 0.0;
};

/// Factor the row-major n x n matrix `a` in place (packed L\U) using
/// `tiles` x `tiles` blocks on `engine`. Requires n divisible by tiles.
/// Fails on a zero pivot (hybrid mode; unchecked in pure simulation).
pdl::util::Result<LuStats> tiled_lu(starvm::Engine& engine, double* a,
                                    std::size_t n, int tiles);

}  // namespace solvers
