#include "solvers/tiled_lu.hpp"

#include <atomic>

#include "kernels/lu.hpp"

namespace solvers {

using starvm::Access;
using starvm::BufferView;
using starvm::Codelet;
using starvm::DataHandle;
using starvm::DeviceKind;
using starvm::ExecContext;
using starvm::TaskDesc;

pdl::util::Result<LuStats> tiled_lu(starvm::Engine& engine, double* a,
                                    std::size_t n, int tiles) {
  if (tiles < 1 || n == 0 || n % static_cast<std::size_t>(tiles) != 0) {
    return pdl::util::Error{"tiled_lu: n must be a positive multiple of tiles"};
  }

  DataHandle* matrix = engine.register_matrix(a, n, n, 0, "lu_A");
  std::vector<DataHandle*> grid = engine.partition_tiles(matrix, tiles, tiles);
  const auto tile = [&](int r, int c) {
    return grid[static_cast<std::size_t>(r) * static_cast<std::size_t>(tiles) +
                static_cast<std::size_t>(c)];
  };

  std::atomic<bool> pivot_ok{true};

  Codelet getrf_cl;
  getrf_cl.name = "getrf";
  const auto getrf_fn = [&pivot_ok](const ExecContext& ctx) {
    const DataHandle& kk = ctx.handle(0);
    if (!kernels::getrf_nopiv(kk.rows(), ctx.buffer(0), kk.ld())) {
      pivot_ok.store(false);
    }
  };
  getrf_cl.impls = {{DeviceKind::kCpu, getrf_fn}, {DeviceKind::kAccelerator, getrf_fn}};
  getrf_cl.flops = [](const std::vector<BufferView>& buffers) {
    return kernels::getrf_flops(buffers[0].handle->rows());
  };

  Codelet trsm_l_cl;
  trsm_l_cl.name = "trsm_l";
  const auto trsm_l_fn = [](const ExecContext& ctx) {
    const DataHandle& kk = ctx.handle(0);
    const DataHandle& kj = ctx.handle(1);
    kernels::trsm_lln_unit(kk.rows(), kj.cols(), ctx.buffer(0), kk.ld(),
                           ctx.buffer(1), kj.ld());
  };
  trsm_l_cl.impls = {{DeviceKind::kCpu, trsm_l_fn},
                     {DeviceKind::kAccelerator, trsm_l_fn}};
  trsm_l_cl.flops = [](const std::vector<BufferView>& buffers) {
    const auto& kk = *buffers[0].handle;
    const auto& kj = *buffers[1].handle;
    return static_cast<double>(kk.rows()) * static_cast<double>(kk.rows()) *
           static_cast<double>(kj.cols());
  };

  Codelet trsm_u_cl;
  trsm_u_cl.name = "trsm_u";
  const auto trsm_u_fn = [](const ExecContext& ctx) {
    const DataHandle& kk = ctx.handle(0);
    const DataHandle& ik = ctx.handle(1);
    kernels::trsm_run_simd(ik.rows(), kk.rows(), ctx.buffer(0), kk.ld(), ctx.buffer(1),
                      ik.ld());
  };
  trsm_u_cl.impls = {{DeviceKind::kCpu, trsm_u_fn},
                     {DeviceKind::kAccelerator, trsm_u_fn}};
  trsm_u_cl.flops = trsm_l_cl.flops;

  Codelet gemm_cl;
  gemm_cl.name = "gemm_nn";
  const auto gemm_fn = [](const ExecContext& ctx) {
    const DataHandle& ik = ctx.handle(0);
    const DataHandle& kj = ctx.handle(1);
    const DataHandle& ij = ctx.handle(2);
    kernels::gemm_nn_minus(ij.rows(), ij.cols(), ik.cols(), ctx.buffer(0), ik.ld(),
                           ctx.buffer(1), kj.ld(), ctx.buffer(2), ij.ld());
  };
  gemm_cl.impls = {{DeviceKind::kCpu, gemm_fn}, {DeviceKind::kAccelerator, gemm_fn}};
  gemm_cl.flops = [](const std::vector<BufferView>& buffers) {
    return kernels::gemm_flops_nn(buffers[2].handle->rows(),
                                  buffers[2].handle->cols(),
                                  buffers[0].handle->cols());
  };

  LuStats stats;
  // Build the whole DAG as one batch: dependency inference, node
  // allocation and worker wakeup are then paid once per factorization
  // instead of once per tile task (submission order is preserved, so the
  // inferred edges are identical to per-task submission).
  std::vector<TaskDesc> batch;
  const auto submit = [&](const Codelet& codelet, std::vector<BufferView> buffers,
                          std::string label) {
    const double flops = codelet.flops ? codelet.flops(buffers) : 0.0;
    batch.push_back(TaskDesc{&codelet, std::move(buffers), std::move(label)});
    ++stats.tasks_submitted;
    stats.total_flops += flops;
  };

  for (int k = 0; k < tiles; ++k) {
    submit(getrf_cl, {{tile(k, k), Access::kReadWrite}},
           "getrf(" + std::to_string(k) + ")");
    for (int j = k + 1; j < tiles; ++j) {
      submit(trsm_l_cl,
             {{tile(k, k), Access::kRead}, {tile(k, j), Access::kReadWrite}},
             "trsmL(" + std::to_string(k) + "," + std::to_string(j) + ")");
    }
    for (int i = k + 1; i < tiles; ++i) {
      submit(trsm_u_cl,
             {{tile(k, k), Access::kRead}, {tile(i, k), Access::kReadWrite}},
             "trsmU(" + std::to_string(i) + "," + std::to_string(k) + ")");
    }
    for (int i = k + 1; i < tiles; ++i) {
      for (int j = k + 1; j < tiles; ++j) {
        submit(gemm_cl,
               {{tile(i, k), Access::kRead},
                {tile(k, j), Access::kRead},
                {tile(i, j), Access::kReadWrite}},
               "gemm(" + std::to_string(i) + "," + std::to_string(j) + ")");
      }
    }
  }

  engine.submit_batch(std::move(batch));
  const pdl::util::Status drain = engine.wait_all();
  engine.unpartition(matrix);
  if (!drain.ok()) {
    return pdl::util::Error{"lu tasks failed: " + drain.error().str()};
  }
  if (!pivot_ok.load()) {
    return pdl::util::Error{"zero pivot encountered (matrix needs pivoting)"};
  }
  return stats;
}

}  // namespace solvers
