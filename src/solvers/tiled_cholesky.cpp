#include "solvers/tiled_cholesky.hpp"

#include <atomic>

#include "kernels/cholesky.hpp"

namespace solvers {

using starvm::Access;
using starvm::BufferView;
using starvm::Codelet;
using starvm::DataHandle;
using starvm::DeviceKind;
using starvm::ExecContext;
using starvm::Implementation;
using starvm::TaskDesc;

pdl::util::Result<CholeskyStats> tiled_cholesky(starvm::Engine& engine, double* a,
                                                std::size_t n, int tiles) {
  if (tiles < 1 || n == 0 || n % static_cast<std::size_t>(tiles) != 0) {
    return pdl::util::Error{"tiled_cholesky: n must be a positive multiple of tiles"};
  }

  DataHandle* matrix = engine.register_matrix(a, n, n, 0, "cholesky_A");
  std::vector<DataHandle*> grid = engine.partition_tiles(matrix, tiles, tiles);
  const auto tile = [&](int r, int c) {
    return grid[static_cast<std::size_t>(r) * static_cast<std::size_t>(tiles) +
                static_cast<std::size_t>(c)];
  };

  std::atomic<bool> spd_ok{true};

  // The four tile codelets. Both device classes get the same host kernel
  // (accelerators are simulated); geometry and strides come from the
  // handles, so the kernels work on any tile size.
  Codelet potrf_cl;
  potrf_cl.name = "potrf";
  const auto potrf_fn = [&spd_ok](const ExecContext& ctx) {
    const DataHandle& kk = ctx.handle(0);
    if (!kernels::potrf(kk.rows(), ctx.buffer(0), kk.ld())) {
      spd_ok.store(false);
    }
  };
  potrf_cl.impls = {{DeviceKind::kCpu, potrf_fn}, {DeviceKind::kAccelerator, potrf_fn}};
  potrf_cl.flops = [](const std::vector<BufferView>& buffers) {
    return kernels::potrf_flops(buffers[0].handle->rows());
  };

  Codelet trsm_cl;
  trsm_cl.name = "trsm";
  const auto trsm_fn = [](const ExecContext& ctx) {
    const DataHandle& kk = ctx.handle(0);
    const DataHandle& ik = ctx.handle(1);
    kernels::trsm_rlt_simd(ik.rows(), kk.rows(), ctx.buffer(0), kk.ld(),
                           ctx.buffer(1), ik.ld());
  };
  trsm_cl.impls = {{DeviceKind::kCpu, trsm_fn}, {DeviceKind::kAccelerator, trsm_fn}};
  trsm_cl.flops = [](const std::vector<BufferView>& buffers) {
    return kernels::trsm_flops(buffers[1].handle->rows(),
                               buffers[0].handle->rows());
  };

  Codelet syrk_cl;
  syrk_cl.name = "syrk";
  const auto syrk_fn = [](const ExecContext& ctx) {
    const DataHandle& ik = ctx.handle(0);
    const DataHandle& ii = ctx.handle(1);
    kernels::syrk_ln_simd(ii.rows(), ik.cols(), ctx.buffer(0), ik.ld(),
                          ctx.buffer(1), ii.ld());
  };
  syrk_cl.impls = {{DeviceKind::kCpu, syrk_fn}, {DeviceKind::kAccelerator, syrk_fn}};
  syrk_cl.flops = [](const std::vector<BufferView>& buffers) {
    return kernels::syrk_flops(buffers[1].handle->rows(),
                               buffers[0].handle->cols());
  };

  Codelet gemm_cl;
  gemm_cl.name = "gemm_nt";
  const auto gemm_fn = [](const ExecContext& ctx) {
    const DataHandle& ik = ctx.handle(0);
    const DataHandle& jk = ctx.handle(1);
    const DataHandle& ij = ctx.handle(2);
    kernels::gemm_nt_minus(ij.rows(), ij.cols(), ik.cols(), ctx.buffer(0), ik.ld(),
                           ctx.buffer(1), jk.ld(), ctx.buffer(2), ij.ld());
  };
  gemm_cl.impls = {{DeviceKind::kCpu, gemm_fn}, {DeviceKind::kAccelerator, gemm_fn}};
  gemm_cl.flops = [](const std::vector<BufferView>& buffers) {
    return kernels::gemm_flops_nt(buffers[2].handle->rows(),
                                  buffers[2].handle->cols(),
                                  buffers[0].handle->cols());
  };

  CholeskyStats stats;
  // Build the whole DAG as one batch: dependency inference, node
  // allocation and worker wakeup are then paid once per factorization
  // instead of once per tile task (submission order is preserved, so the
  // inferred edges are identical to per-task submission).
  std::vector<TaskDesc> batch;
  const auto submit = [&](const Codelet& codelet, std::vector<BufferView> buffers,
                          std::string label) {
    double flops = codelet.flops ? codelet.flops(buffers) : 0.0;
    batch.push_back(TaskDesc{&codelet, std::move(buffers), std::move(label)});
    ++stats.tasks_submitted;
    stats.total_flops += flops;
  };

  // Right-looking tiled Cholesky; the DAG comes from the access modes.
  for (int k = 0; k < tiles; ++k) {
    submit(potrf_cl, {{tile(k, k), Access::kReadWrite}},
           "potrf(" + std::to_string(k) + ")");
    for (int i = k + 1; i < tiles; ++i) {
      submit(trsm_cl,
             {{tile(k, k), Access::kRead}, {tile(i, k), Access::kReadWrite}},
             "trsm(" + std::to_string(i) + "," + std::to_string(k) + ")");
    }
    for (int i = k + 1; i < tiles; ++i) {
      submit(syrk_cl,
             {{tile(i, k), Access::kRead}, {tile(i, i), Access::kReadWrite}},
             "syrk(" + std::to_string(i) + "," + std::to_string(k) + ")");
      for (int j = k + 1; j < i; ++j) {
        submit(gemm_cl,
               {{tile(i, k), Access::kRead},
                {tile(j, k), Access::kRead},
                {tile(i, j), Access::kReadWrite}},
               "gemm(" + std::to_string(i) + "," + std::to_string(j) + ")");
      }
    }
  }

  engine.submit_batch(std::move(batch));
  const pdl::util::Status drain = engine.wait_all();
  engine.unpartition(matrix);
  if (!drain.ok()) {
    return pdl::util::Error{"cholesky tasks failed: " + drain.error().str()};
  }
  if (!spd_ok.load()) {
    return pdl::util::Error{"matrix is not positive definite"};
  }
  return stats;
}

}  // namespace solvers
