// Tiled Cholesky factorization on the starvm runtime — the classic
// task-DAG workload of StarPU-class systems, and the dependency-heavy
// counterpart to the case study's embarrassingly parallel DGEMM.
//
// The right-looking algorithm over a T x T tile grid:
//   for k in 0..T-1:
//     POTRF(A[k][k])                                  RW kk
//     for i in k+1..T-1:  TRSM(A[k][k], A[i][k])      R kk, RW ik
//     for i in k+1..T-1:  SYRK(A[i][k], A[i][i])      R ik, RW ii
//       for j in k+1..i-1: GEMM(A[i][k], A[j][k], A[i][j])
//
// No explicit dependencies are stated: the engine derives the DAG from the
// access modes — exactly the property the paper's task annotations feed.
#pragma once

#include <cstddef>

#include "starvm/engine.hpp"
#include "util/result.hpp"

namespace solvers {

struct CholeskyStats {
  int tasks_submitted = 0;
  double total_flops = 0.0;
};

/// Factor the SPD row-major n x n matrix `a` in place (lower triangle
/// becomes L) using `tiles` x `tiles` blocks submitted to `engine`.
/// Requires tiles >= 1 and n divisible by tiles. Blocks until done.
/// Fails when a diagonal tile is not positive definite (hybrid mode; in
/// pure simulation nothing executes, so positive-definiteness is unchecked).
pdl::util::Result<CholeskyStats> tiled_cholesky(starvm::Engine& engine, double* a,
                                                std::size_t n, int tiles);

}  // namespace solvers
