// Core vocabulary of the starvm heterogeneous runtime (substrate S7, the
// StarPU substitute — see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace starvm {

/// What physically executes tasks.
enum class DeviceKind {
  kCpu,          ///< A host CPU core; executes implementations directly.
  kAccelerator,  ///< A simulated accelerator: executes on the host (for
                 ///< correctness) while time is charged from its model.
};

std::string_view to_string(DeviceKind kind);

/// Buffer access modes — the same contract as the paper's task-annotation
/// access specifiers (read / write / readwrite), used to infer inter-task
/// dependencies (sequential consistency per data handle, like StarPU).
enum class Access { kRead, kWrite, kReadWrite };

std::string_view to_string(Access access);
inline bool reads(Access a) { return a != Access::kWrite; }
inline bool writes(Access a) { return a != Access::kRead; }

/// How the engine advances time (see DESIGN.md "virtual-time accounting").
enum class ExecutionMode {
  /// Kernels run for real; CPU task cost = measured wall time, accelerator
  /// task cost = model. The default: correct results + modeled makespan.
  kHybrid,
  /// Nothing executes; every cost comes from the models. Used for
  /// paper-scale problem sizes (8192^3 DGEMM) that are too slow to run.
  kPureSim,
  /// The pure-sim discrete-event loop, but kernels DO execute (on the
  /// host, single-threaded, in virtual-clock order) while every cost still
  /// comes from the models. Scheduling, fault injection, and recovery are
  /// bit-for-bit reproducible across runs AND the numerics are real — the
  /// mode the fault-injection harness replays under.
  kDeterministic,
};

enum class SchedulerKind {
  kEager,         ///< Single shared FIFO; first idle capable device wins.
  kWorkStealing,  ///< Per-device deques with stealing.
  kHeft,          ///< Model-based earliest-finish-time (StarPU dmda-like).
};

std::string_view to_string(SchedulerKind kind);

/// Static numerical-accuracy model of one kernel implementation — the
/// contract the A7xx analysis (docs/ANALYSIS.md) and the autotuner's
/// AccuracyGuard consume. A rounding model claims that one execution adds at
/// most
///
///     coefficient * depth * (product of input magnitudes) * epsilon
///
/// of absolute error per output element, where `depth` is the accumulation
/// depth (the k of a GEMM-like kernel) and `epsilon` the unit roundoff of
/// the arithmetic actually used. The mixed-precision DGEMM's documented
/// bound 3·k·max|A|·max|B|·2⁻²⁴ is exactly this form with coefficient 3 and
/// epsilon = kUlpSingle.
struct ErrorModel {
  enum class Kind {
    kUnspecified,  ///< no claim made — analyses treat the output as unbounded
    kExact,        ///< adds no rounding error (copies, permutations, integers)
    kRounding,     ///< bounded by the closed form above
  };

  /// Unit roundoff of IEEE double (2^-53) and single (2^-24) arithmetic.
  static constexpr double kUlpDouble = 0x1p-53;
  static constexpr double kUlpSingle = 0x1p-24;

  Kind kind = Kind::kUnspecified;
  double coefficient = 1.0;  ///< leading constant of the documented bound
  double epsilon = 0.0;      ///< unit roundoff of the arithmetic used
  /// Default accumulation depth when the call site declares none; 0 means
  /// the depth must come from the task (graph `depth=` or guard config).
  double depth = 0.0;

  static ErrorModel exact() {
    ErrorModel m;
    m.kind = Kind::kExact;
    return m;
  }
  static ErrorModel rounding(double coefficient, double epsilon,
                             double depth = 0.0) {
    ErrorModel m;
    m.kind = Kind::kRounding;
    m.coefficient = coefficient;
    m.epsilon = epsilon;
    m.depth = depth;
    return m;
  }

  bool specified() const { return kind != Kind::kUnspecified; }

  /// Worst-case absolute error one execution adds per output element at
  /// accumulation depth `d` and input-magnitude product `magnitude`; 0 for
  /// exact models and (conservatively) 0 for unspecified ones — callers
  /// must check specified() before trusting the number.
  double term(double d, double magnitude) const {
    if (kind != Kind::kRounding) return 0.0;
    return coefficient * d * magnitude * epsilon;
  }
};

using DeviceId = int;
using MemoryNodeId = int;
using TaskId = std::uint64_t;

/// The host memory node; CPU devices always live here.
inline constexpr MemoryNodeId kHostNode = 0;

}  // namespace starvm
