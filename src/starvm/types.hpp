// Core vocabulary of the starvm heterogeneous runtime (substrate S7, the
// StarPU substitute — see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace starvm {

/// What physically executes tasks.
enum class DeviceKind {
  kCpu,          ///< A host CPU core; executes implementations directly.
  kAccelerator,  ///< A simulated accelerator: executes on the host (for
                 ///< correctness) while time is charged from its model.
};

std::string_view to_string(DeviceKind kind);

/// Buffer access modes — the same contract as the paper's task-annotation
/// access specifiers (read / write / readwrite), used to infer inter-task
/// dependencies (sequential consistency per data handle, like StarPU).
enum class Access { kRead, kWrite, kReadWrite };

std::string_view to_string(Access access);
inline bool reads(Access a) { return a != Access::kWrite; }
inline bool writes(Access a) { return a != Access::kRead; }

/// How the engine advances time (see DESIGN.md "virtual-time accounting").
enum class ExecutionMode {
  /// Kernels run for real; CPU task cost = measured wall time, accelerator
  /// task cost = model. The default: correct results + modeled makespan.
  kHybrid,
  /// Nothing executes; every cost comes from the models. Used for
  /// paper-scale problem sizes (8192^3 DGEMM) that are too slow to run.
  kPureSim,
  /// The pure-sim discrete-event loop, but kernels DO execute (on the
  /// host, single-threaded, in virtual-clock order) while every cost still
  /// comes from the models. Scheduling, fault injection, and recovery are
  /// bit-for-bit reproducible across runs AND the numerics are real — the
  /// mode the fault-injection harness replays under.
  kDeterministic,
};

enum class SchedulerKind {
  kEager,         ///< Single shared FIFO; first idle capable device wins.
  kWorkStealing,  ///< Per-device deques with stealing.
  kHeft,          ///< Model-based earliest-finish-time (StarPU dmda-like).
};

std::string_view to_string(SchedulerKind kind);

using DeviceId = int;
using MemoryNodeId = int;
using TaskId = std::uint64_t;

/// The host memory node; CPU devices always live here.
inline constexpr MemoryNodeId kHostNode = 0;

}  // namespace starvm
