#include "starvm/bridge.hpp"

#include <algorithm>

#include "pdl/query.hpp"
#include "pdl/well_known.hpp"
#include "util/string_util.hpp"

namespace starvm {

namespace {

/// Optional `reliability` properties (MAX_RETRIES, MTBF_HOURS), inherited
/// upward like the rate properties so a controller can declare them once.
void apply_reliability(const pdl::ProcessingUnit& pu, DeviceSpec& spec) {
  if (const pdl::Property* p = pdl::resolve_property(pu, pdl::props::kMaxRetries)) {
    if (auto v = p->as_double(); v && *v >= 0.0) {
      spec.max_retries = static_cast<int>(*v);
    }
  }
  if (const pdl::Property* p = pdl::resolve_property(pu, pdl::props::kMtbfHours)) {
    if (auto v = p->as_double(); v && *v > 0.0) spec.mtbf_hours = *v;
  }
}

}  // namespace

pdl::util::Result<EngineConfig> engine_config_from_platform(
    const pdl::Platform& platform, const BridgeOptions& options) {
  if (platform.masters().empty()) {
    return pdl::util::Error{"platform has no Master PU"};
  }

  EngineConfig config;
  config.scheduler = options.scheduler;
  config.mode = options.mode;
  config.record_decisions = options.record_decisions;

  std::vector<DeviceSpec> cpus;
  std::vector<DeviceSpec> accelerators;

  // Workers execute tasks; Hybrid PUs "act as master and worker at the
  // same time" (paper §III-A), so they contribute execution capacity too.
  std::vector<const pdl::ProcessingUnit*> executing_pus =
      pdl::pus_of_kind(platform, pdl::PuKind::kWorker);
  for (const pdl::ProcessingUnit* hybrid :
       pdl::pus_of_kind(platform, pdl::PuKind::kHybrid)) {
    executing_pus.push_back(hybrid);
  }

  for (const pdl::ProcessingUnit* pu : executing_pus) {
    const std::string arch = pdl::resolved_value(*pu, pdl::props::kArchitecture);
    if (pdl::util::iequals(arch, "x86_core") || pdl::util::iequals(arch, "x86") ||
        pdl::util::iequals(arch, "cpu_core") || pdl::util::iequals(arch, "ppe") ||
        pdl::util::iequals(arch, "riscv") ||
        pdl::util::iequals(arch, "riscv_core") || arch.empty()) {
      DeviceSpec spec;
      spec.kind = DeviceKind::kCpu;
      spec.sustained_gflops = pdl::props::sustained_gflops(*pu, 0.9, options.default_cpu_gflops);
      apply_reliability(*pu, spec);
      // Same naming rule as accelerators below: `id` when the PU stands
      // for one device, `id#i` only for real quantity expansions (a
      // quantity="1" CPU used to be named `id#0`, which broke name parity
      // with accelerators and split profile instance pooling).
      for (int i = 0; i < pu->quantity(); ++i) {
        spec.name = pu->quantity() == 1 ? pu->id()
                                        : pu->id() + "#" + std::to_string(i);
        cpus.push_back(spec);
      }
    } else {
      // Everything non-CPU is a simulated accelerator (gpu, spe, ...).
      DeviceSpec spec;
      spec.kind = DeviceKind::kAccelerator;
      spec.sustained_gflops = pdl::props::sustained_gflops(*pu, 0.65, options.default_accel_gflops);
      apply_reliability(*pu, spec);

      // Device memory capacity from the worker's MemoryRegion (SIZE).
      if (auto bytes = pdl::props::memory_capacity_bytes(*pu)) {
        spec.memory_bytes = static_cast<std::size_t>(*bytes);
      }

      // Link parameters from the Interconnect reaching this worker.
      if (const pdl::ProcessingUnit* controller = pu->parent()) {
        if (const pdl::Interconnect* ic =
                pdl::find_interconnect(platform, controller->id(), pu->id())) {
          if (auto bw = pdl::props::link_bandwidth_gbs(*ic)) {
            spec.link_bandwidth_gbs = *bw;
          }
          if (auto lat = pdl::props::link_latency_us(*ic)) {
            spec.link_latency_us = *lat;
          }
        }
      }
      for (int i = 0; i < pu->quantity(); ++i) {
        spec.name = pu->quantity() == 1 ? pu->id()
                                        : pu->id() + "#" + std::to_string(i);
        accelerators.push_back(spec);
      }
    }
  }

  if (cpus.empty() && accelerators.empty()) {
    // The "single" configuration: the Master executes the fall-back variant.
    const pdl::ProcessingUnit& master = *platform.masters().front();
    DeviceSpec spec;
    spec.kind = DeviceKind::kCpu;
    spec.name = "master:" + master.id();
    spec.sustained_gflops = pdl::props::sustained_gflops(master, 0.9, options.default_cpu_gflops);
    apply_reliability(master, spec);
    config.devices.push_back(std::move(spec));
    return config;
  }

  // StarPU-style driver cores: each accelerator consumes one CPU worker.
  std::size_t cpu_count = cpus.size();
  if (options.dedicate_driver_cores) {
    cpu_count -= std::min(cpu_count, accelerators.size());
  }
  config.devices.assign(cpus.begin(),
                        cpus.begin() + static_cast<std::ptrdiff_t>(cpu_count));
  config.devices.insert(config.devices.end(), accelerators.begin(),
                        accelerators.end());
  return config;
}

}  // namespace starvm
