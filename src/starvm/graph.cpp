#include "starvm/graph.hpp"

#include <algorithm>
#include <functional>
#include <queue>

namespace starvm {

namespace {

/// Root buffers are placed on disjoint ranges separated by a guard gap so
/// off-by-one range math in rules can never produce accidental overlap.
constexpr std::uint64_t kGuardGap = 64;

}  // namespace

int TaskGraph::add_buffer(std::string name, std::uint64_t bytes,
                          pdl::SourceLoc loc) {
  const std::uint64_t base = next_base_;
  next_base_ += bytes + kGuardGap;
  return add_buffer_at(std::move(name), base, bytes, std::move(loc));
}

int TaskGraph::add_buffer_at(std::string name, std::uint64_t base,
                             std::uint64_t bytes, pdl::SourceLoc loc) {
  if (base > UINT64_MAX - bytes) return -1;  // wrapped range: see header
  GraphBuffer buffer;
  buffer.name = std::move(name);
  buffer.base = base;
  buffer.bytes = bytes;
  buffer.loc = std::move(loc);
  const std::uint64_t end = base + bytes;  // no wrap: checked above
  next_base_ = std::max(next_base_,
                        end > UINT64_MAX - kGuardGap ? end : end + kGuardGap);
  buffers_.push_back(std::move(buffer));
  return static_cast<int>(buffers_.size() - 1);
}

std::vector<int> TaskGraph::partition(int buffer, int nblocks) {
  std::vector<int> blocks;
  if (buffer < 0 || buffer >= static_cast<int>(buffers_.size()) || nblocks < 1) {
    return blocks;
  }
  const std::uint64_t base = buffers_[buffer].base;
  const std::uint64_t bytes = buffers_[buffer].bytes;
  const std::uint64_t chunk = bytes / nblocks;
  const std::uint64_t remainder = bytes % nblocks;
  std::uint64_t offset = 0;
  for (int i = 0; i < nblocks; ++i) {
    // Same split as Engine::partition_vector: early blocks absorb the
    // remainder one byte at a time.
    const std::uint64_t len = chunk + (static_cast<std::uint64_t>(i) < remainder ? 1 : 0);
    GraphBuffer block;
    block.name = buffers_[buffer].name + "[" + std::to_string(i) + "]";
    block.base = base + offset;
    block.bytes = len;
    block.parent = buffer;
    block.loc = buffers_[buffer].loc;
    offset += len;
    buffers_.push_back(std::move(block));
    const int id = static_cast<int>(buffers_.size() - 1);
    buffers_[buffer].children.push_back(id);
    blocks.push_back(id);
  }
  return blocks;
}

int TaskGraph::add_task(std::string name, std::vector<GraphAccess> accesses,
                        std::vector<int> declared_deps, pdl::SourceLoc loc) {
  GraphTask task;
  task.name = std::move(name);
  task.accesses = std::move(accesses);
  task.declared_deps = std::move(declared_deps);
  task.loc = std::move(loc);
  tasks_.push_back(std::move(task));
  return static_cast<int>(tasks_.size() - 1);
}

void TaskGraph::set_buffer_tolerance(int buffer, double tolerance,
                                     pdl::SourceLoc loc) {
  if (buffer < 0 || buffer >= static_cast<int>(buffers_.size())) return;
  buffers_[static_cast<std::size_t>(buffer)].tolerance = tolerance;
  buffers_[static_cast<std::size_t>(buffer)].has_tolerance = true;
  buffers_[static_cast<std::size_t>(buffer)].tolerance_loc = std::move(loc);
}

void TaskGraph::set_buffer_range(int buffer, double range) {
  if (buffer < 0 || buffer >= static_cast<int>(buffers_.size())) return;
  buffers_[static_cast<std::size_t>(buffer)].range = range;
  buffers_[static_cast<std::size_t>(buffer)].has_range = true;
}

void TaskGraph::set_task_error_model(int task, ErrorModel model) {
  if (task < 0 || task >= static_cast<int>(tasks_.size())) return;
  tasks_[static_cast<std::size_t>(task)].error_model = model;
}

void TaskGraph::set_task_depth(int task, double depth) {
  if (task < 0 || task >= static_cast<int>(tasks_.size())) return;
  tasks_[static_cast<std::size_t>(task)].depth = depth;
}

void TaskGraph::set_task_flops(int task, double flops) {
  if (task < 0 || task >= static_cast<int>(tasks_.size())) return;
  tasks_[task].flops = flops;
}

int TaskGraph::root_of(int buffer) const {
  if (buffer < 0 || buffer >= static_cast<int>(buffers_.size())) return -1;
  int node = buffer;
  while (buffers_[node].parent >= 0) node = buffers_[node].parent;
  return node;
}

std::vector<TaskGraph::LiveInterval> TaskGraph::root_live_intervals() const {
  std::vector<LiveInterval> intervals(buffers_.size());
  for (int t = 0; t < static_cast<int>(tasks_.size()); ++t) {
    for (const GraphAccess& access : tasks_[t].accesses) {
      const int root = root_of(access.buffer);
      if (root < 0) continue;
      LiveInterval& li = intervals[root];
      if (li.first_task < 0) li.first_task = t;
      li.last_task = t;
    }
  }
  // Non-root handles carry their root's interval so callers can index by
  // whichever buffer id they hold.
  for (int b = 0; b < static_cast<int>(buffers_.size()); ++b) {
    const int root = root_of(b);
    if (root >= 0 && root != b) intervals[b] = intervals[root];
  }
  return intervals;
}

std::uint64_t TaskGraph::total_root_bytes() const {
  std::uint64_t total = 0;
  for (const GraphBuffer& buffer : buffers_) {
    if (buffer.parent < 0) total += buffer.bytes;
  }
  return total;
}

std::vector<TaskGraph::Edge> TaskGraph::edges(bool include_inferred) const {
  std::vector<Edge> result;
  // Per-buffer sequential-consistency state, replayed in submission order
  // exactly like Engine::submit.
  struct BufferState {
    int last_writer = -1;
    std::vector<int> readers_since_write;
  };
  std::vector<BufferState> state(buffers_.size());

  const auto add_edge = [&result](int from, int to, Edge::Kind kind, int buffer) {
    if (from == to) return;
    for (const auto& e : result) {
      if (e.from == from && e.to == to && e.kind == kind && e.buffer == buffer) {
        return;
      }
    }
    result.push_back(Edge{from, to, kind, buffer});
  };

  for (int t = 0; t < static_cast<int>(tasks_.size()); ++t) {
    const GraphTask& task = tasks_[t];
    // Backward declared deps become edges; forward/unknown ids are dropped,
    // matching Engine::submit (ids >= next_task_id_ are "satisfied").
    for (int dep : task.declared_deps) {
      if (dep >= 0 && dep < t) {
        add_edge(dep, t, Edge::kExplicit, -1);
      }
    }
    if (!include_inferred) continue;
    for (const GraphAccess& access : task.accesses) {
      if (access.buffer < 0 ||
          access.buffer >= static_cast<int>(buffers_.size())) {
        continue;
      }
      BufferState& bs = state[access.buffer];
      if (reads(access.mode) && bs.last_writer >= 0) {
        add_edge(bs.last_writer, t, Edge::kRaw, access.buffer);
      }
      if (writes(access.mode)) {
        if (bs.last_writer >= 0) {
          add_edge(bs.last_writer, t, Edge::kWaw, access.buffer);
        }
        for (int reader : bs.readers_since_write) {
          add_edge(reader, t, Edge::kWar, access.buffer);
        }
        bs.last_writer = t;
        bs.readers_since_write.clear();
      }
      if (reads(access.mode) && !writes(access.mode)) {
        bs.readers_since_write.push_back(t);
      }
    }
  }
  return result;
}

TaskGraph::Reachability TaskGraph::reachability(
    const std::vector<Edge>& edges) const {
  const int n = static_cast<int>(tasks_.size());
  std::vector<std::vector<int>> succ(n);
  for (const Edge& e : edges) {
    if (e.from >= 0 && e.from < n && e.to >= 0 && e.to < n) {
      succ[e.from].push_back(e.to);
    }
  }
  std::vector<bool> bits(static_cast<std::size_t>(n) * n, false);
  for (int start = 0; start < n; ++start) {
    std::queue<int> frontier;
    frontier.push(start);
    while (!frontier.empty()) {
      const int node = frontier.front();
      frontier.pop();
      for (int next : succ[node]) {
        const std::size_t idx = static_cast<std::size_t>(start) * n + next;
        if (!bits[idx]) {
          bits[idx] = true;
          frontier.push(next);
        }
      }
    }
  }
  return Reachability(n, std::move(bits));
}

bool TaskGraph::ranges_overlap(int a, int b) const {
  if (a == b || a < 0 || b < 0 || a >= static_cast<int>(buffers_.size()) ||
      b >= static_cast<int>(buffers_.size())) {
    return false;
  }
  const GraphBuffer& x = buffers_[a];
  const GraphBuffer& y = buffers_[b];
  if (x.bytes == 0 || y.bytes == 0) return false;
  return x.base < y.base + y.bytes && y.base < x.base + x.bytes;
}

bool TaskGraph::same_lineage(int a, int b) const {
  if (a < 0 || b < 0) return false;
  for (int node = a; node >= 0; node = buffers_[node].parent) {
    if (node == b) return true;
  }
  for (int node = b; node >= 0; node = buffers_[node].parent) {
    if (node == a) return true;
  }
  return false;
}

std::vector<int> TaskGraph::find_declared_cycle() const {
  const int n = static_cast<int>(tasks_.size());
  // DFS over declared deps (dep -> task direction) with a gray/black mark;
  // the first back edge closes the reported cycle.
  enum class Mark { kWhite, kGray, kBlack };
  std::vector<Mark> mark(n, Mark::kWhite);
  std::vector<int> stack;
  std::vector<int> cycle;

  std::function<bool(int)> visit = [&](int node) {
    mark[node] = Mark::kGray;
    stack.push_back(node);
    for (int dep : tasks_[node].declared_deps) {
      if (dep < 0 || dep >= n) continue;
      if (mark[dep] == Mark::kGray) {
        auto it = std::find(stack.begin(), stack.end(), dep);
        cycle.assign(it, stack.end());
        return true;
      }
      if (mark[dep] == Mark::kWhite && visit(dep)) return true;
    }
    stack.pop_back();
    mark[node] = Mark::kBlack;
    return false;
  };

  for (int t = 0; t < n; ++t) {
    if (mark[t] == Mark::kWhite && visit(t)) break;
  }
  return cycle;
}

}  // namespace starvm
