// Data handles: registered application buffers with replica tracking and
// BLOCK partitioning (the paper's distribution specifier).
//
// starvm follows StarPU's data-management design: the application registers
// buffers once, tasks name handles with access modes, and the runtime
// (a) infers dependencies and (b) accounts for transfers between memory
// nodes. Because accelerators are simulated, replicas are *bookkeeping
// only* — all real computation touches the host buffer; the valid-set per
// node drives the modeled transfer costs (MSI-style: a write leaves the
// writer's node as the only valid replica).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "starvm/types.hpp"

namespace starvm {

class Engine;

namespace detail {
struct TaskNode;
}

/// A registered buffer (or a partition block of one).
class DataHandle {
 public:
  /// Host pointer of this block (top-left element for matrix blocks).
  void* ptr() const { return ptr_; }
  /// Payload bytes (for matrix blocks: rows*cols*8, ignoring the stride gap).
  std::size_t bytes() const { return bytes_; }
  const std::string& name() const { return name_; }

  /// Matrix geometry in doubles. Vectors are 1 x n with ld = n.
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Row stride of the underlying allocation (== cols for unpartitioned).
  std::size_t ld() const { return ld_; }

  /// Parent handle when this is a partition block; nullptr for roots.
  DataHandle* parent() const { return parent_; }
  const std::vector<DataHandle*>& children() const { return children_; }
  bool partitioned() const { return !children_.empty(); }

  /// True when node `n` holds a valid replica (bookkeeping; see header).
  bool valid_on(MemoryNodeId n) const {
    return n >= 0 && n < 64 && (valid_ & node_bit(n)) != 0;
  }

  /// Lowest-numbered node holding a valid replica; -1 when none. The host
  /// is node 0, so "prefer the host, else the first valid node" is exactly
  /// the mask's lowest set bit — O(1) where the transfer-source search used
  /// to scan every node per buffer. Guarded by the engine's memory mutex.
  MemoryNodeId first_valid_node() const {
    return valid_ == 0 ? -1 : static_cast<MemoryNodeId>(std::countr_zero(valid_));
  }

 private:
  friend class Engine;

  void* ptr_ = nullptr;
  std::size_t bytes_ = 0;
  std::size_t rows_ = 0, cols_ = 0, ld_ = 0;
  std::string name_;
  DataHandle* parent_ = nullptr;
  std::vector<DataHandle*> children_;

  // --- engine-private state ---
  static std::uint64_t node_bit(MemoryNodeId n) { return std::uint64_t{1} << n; }

  /// Replica valid-set, one bit per memory node (ids are dense and small:
  /// host + one per accelerator; <= 64 nodes enforced at engine
  /// construction). A plain word instead of vector<bool> keeps handle
  /// registration allocation-free. Guarded by the engine's memory mutex.
  std::uint64_t valid_ = 0;
  /// Dependency-inference tails, guarded by the engine's submit mutex.
  detail::TaskNode* last_writer_ = nullptr;
  std::vector<detail::TaskNode*> readers_since_write_;
};

}  // namespace starvm
