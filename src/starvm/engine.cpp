#include "starvm/engine.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>
#include <tuple>

#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "starvm/perf_store.hpp"
#include "starvm/trace_export.hpp"
#include "util/stopwatch.hpp"

namespace starvm {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Engine telemetry (obs registry), shared by every engine instance.
obs::Counter& tasks_completed_counter() {
  static obs::Counter& c = obs::counter("starvm.tasks_completed");
  return c;
}
obs::Counter& tasks_submitted_counter() {
  static obs::Counter& c = obs::counter("starvm.tasks_submitted");
  return c;
}
obs::Histogram& submit_batch_histogram() {
  static obs::Histogram& h = obs::histogram("starvm.submit_batch_tasks");
  return h;
}
obs::Counter& transfers_counter() {
  static obs::Counter& c = obs::counter("starvm.transfers");
  return c;
}
obs::Counter& evictions_counter() {
  static obs::Counter& c = obs::counter("starvm.evictions");
  return c;
}
obs::Gauge& ready_queue_gauge() {
  static obs::Gauge& g = obs::gauge("starvm.ready_queue");
  return g;
}
obs::Histogram& task_exec_us_histogram() {
  static obs::Histogram& h = obs::histogram("starvm.task_exec_us");
  return h;
}
obs::Counter& task_failures_counter() {
  static obs::Counter& c = obs::counter("starvm.task_failures");
  return c;
}
obs::Counter& task_retries_counter() {
  static obs::Counter& c = obs::counter("starvm.task_retries");
  return c;
}
obs::Counter& task_timeouts_counter() {
  static obs::Counter& c = obs::counter("starvm.task_timeouts");
  return c;
}
obs::Counter& device_blacklists_counter() {
  static obs::Counter& c = obs::counter("starvm.device_blacklists");
  return c;
}

/// Flight-record kind for a fault-tolerance event (1:1; the recorder keeps
/// its own stable numbering so old dumps survive FaultEvent refactors).
obs::FlightKind flight_kind_of(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kFailure: return obs::FlightKind::kFailure;
    case FaultEvent::Kind::kTimeout: return obs::FlightKind::kTimeout;
    case FaultEvent::Kind::kRetry: return obs::FlightKind::kRetry;
    case FaultEvent::Kind::kBlacklist: return obs::FlightKind::kBlacklist;
    case FaultEvent::Kind::kReroute: return obs::FlightKind::kReroute;
    case FaultEvent::Kind::kTaskFailed: return obs::FlightKind::kTaskFailed;
    case FaultEvent::Kind::kCancelled: return obs::FlightKind::kCancelled;
  }
  return obs::FlightKind::kFailure;
}

/// Run one implementation attempt, turning ExecContext::fail() and thrown
/// exceptions into a failure reason. True on success.
bool run_attempt(const Implementation& impl, const ExecContext& ctx,
                 std::string& reason) {
  try {
    impl.fn(ctx);
    if (ctx.failed()) {
      reason = ctx.error().empty() ? "codelet reported failure" : ctx.error();
      return false;
    }
  } catch (const std::exception& e) {
    reason = std::string("codelet threw: ") + e.what();
    return false;
  } catch (...) {
    reason = "codelet threw an unknown exception";
    return false;
  }
  return true;
}

}  // namespace

EngineConfig EngineConfig::cpus(int n, double sustained_gflops) {
  EngineConfig config;
  for (int i = 0; i < n; ++i) {
    DeviceSpec spec;
    spec.name = "cpu" + std::to_string(i);
    spec.kind = DeviceKind::kCpu;
    spec.sustained_gflops = sustained_gflops;
    config.devices.push_back(std::move(spec));
  }
  return config;
}

std::string_view to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCpu: return "cpu";
    case DeviceKind::kAccelerator: return "accelerator";
  }
  return "?";
}

std::string_view to_string(Access access) {
  switch (access) {
    case Access::kRead: return "read";
    case Access::kWrite: return "write";
    case Access::kReadWrite: return "readwrite";
  }
  return "?";
}

std::string_view to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kEager: return "eager";
    case SchedulerKind::kWorkStealing: return "ws";
    case SchedulerKind::kHeft: return "heft";
  }
  return "?";
}

const char* to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kFailure: return "failure";
    case FaultEvent::Kind::kTimeout: return "timeout";
    case FaultEvent::Kind::kRetry: return "retry";
    case FaultEvent::Kind::kBlacklist: return "blacklist";
    case FaultEvent::Kind::kReroute: return "reroute";
    case FaultEvent::Kind::kTaskFailed: return "task_failed";
    case FaultEvent::Kind::kCancelled: return "cancelled";
  }
  return "?";
}

const char* to_string(TaskAttempt::Outcome outcome) {
  switch (outcome) {
    case TaskAttempt::Outcome::kCompleted: return "completed";
    case TaskAttempt::Outcome::kFailed: return "failed";
    case TaskAttempt::Outcome::kTimeout: return "timeout";
    case TaskAttempt::Outcome::kRerouted: return "rerouted";
    case TaskAttempt::Outcome::kCancelled: return "cancelled";
  }
  return "?";
}

Engine::Engine(EngineConfig config) : config_(std::move(config)) {
  if (config_.devices.empty()) {
    throw std::invalid_argument("starvm::Engine needs at least one device");
  }
  // Memory nodes: host = 0; every accelerator gets its own node.
  MemoryNodeId next_node = kHostNode + 1;
  for (std::size_t i = 0; i < config_.devices.size(); ++i) {
    // DeviceState embeds mutexes and atomics (immovable): build in place.
    detail::DeviceState& state = devices_.emplace_back();
    state.spec = config_.devices[i];
    state.id = static_cast<DeviceId>(i);
    state.node =
        state.spec.kind == DeviceKind::kAccelerator ? next_node++ : kHostNode;
  }
  if (static_cast<std::size_t>(next_node) > 64) {
    // DataHandle tracks replica validity in a 64-bit mask, one bit per
    // memory node (host + one per accelerator).
    throw std::invalid_argument(
        "starvm::Engine supports at most 63 accelerator memory nodes");
  }
  nodes_.resize(static_cast<std::size_t>(next_node));
  for (const auto& device : devices_) {
    if (device.node != kHostNode) {
      nodes_[static_cast<std::size_t>(device.node)].capacity =
          device.spec.memory_bytes;
    }
  }
  single_node_ = next_node == kHostNode + 1;
  // Node -> owning device spec, so the transfer model resolves a link in
  // O(1) instead of scanning every device per leg.
  node_spec_.assign(nodes_.size(), nullptr);
  for (const auto& device : devices_) {
    if (device.node != kHostNode) {
      node_spec_[static_cast<std::size_t>(device.node)] = &device.spec;
    }
  }
  build_placement_classes();

  detail::CostClassFn cost = [this](const detail::TaskNode& task, double* out) {
    estimated_cost_class_row(task, out);
  };
  // Simulation modes are a deterministic discrete-event loop driven by
  // wait_all() on the caller's thread: real worker threads would race in
  // *wall* time and distort which device pops next in *virtual* time. The
  // real-threads path instead uses the lock-split HybridDispatch.
  if (hybrid()) {
    dispatch_ = std::make_unique<detail::HybridDispatch>(
        config_.scheduler, &devices_, &classes_, cost);
  } else {
    // The oracle only steers the single-threaded simulation loop; real
    // worker threads cannot be serialized through it.
    oracle_ = config_.oracle;
    scheduler_ = detail::make_scheduler(config_.scheduler, &devices_,
                                        &classes_, std::move(cost), oracle_);
    if (config_.wrap_scheduler) {
      scheduler_ = config_.wrap_scheduler(std::move(scheduler_));
    }
  }
  decision_counter_ = &obs::counter("starvm.decisions." +
                                    std::string(to_string(config_.scheduler)));
  fault_plan_ = config_.fault_plan ? config_.fault_plan : FaultPlan::from_env();

  // Flight recorder: one ring per device plus one for the fault path
  // (whose producers fault_mutex_ serializes). Built before the workers so
  // the very first task is already recorded.
  if (config_.flight_records_per_device > 0) {
    flight_ = std::make_unique<obs::FlightRecorder>(
        devices_.size() + 1, config_.flight_records_per_device);
  }
  flight_dump_prefix_ = config_.flight_dump_prefix;
  if (flight_dump_prefix_.empty()) {
    const char* env = std::getenv("PDL_FLIGHT_DUMP");
    if (env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0')) {
      flight_dump_prefix_ = env;
    }
  }

  // Persisted perf store: preload previously learned rates so HEFT
  // estimates are warm from the very first task. A missing file is a clean
  // cold start; a wrong-version, corrupt or descriptor-mismatched store is
  // rejected (counted in perf_store_rejected) and the run proceeds from
  // declared rates. Done before the workers spawn: preload races nothing.
  perf_store_path_ = config_.perf_store_path.empty()
                         ? perf_store::env_store_path()
                         : config_.perf_store_path;
  descriptor_hash_ = perf_store::descriptor_hash(config_.devices);
  if (!perf_store_path_.empty()) {
    perf_store::LoadResult loaded = perf_store::load(perf_store_path_);
    if (loaded.status == perf_store::LoadStatus::kLoaded) {
      if (loaded.store.descriptor_hash == descriptor_hash_) {
        perf_store::preload(loaded.store, perf_model_);
        perf_store_entries_ = loaded.store.entries.size();
      } else {
        ++perf_store_rejected_;  // stale store from a different platform
      }
    } else if (loaded.status != perf_store::LoadStatus::kMissing) {
      ++perf_store_rejected_;
    }
  }

  if (hybrid()) {
    workers_.reserve(devices_.size());
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      workers_.emplace_back([this, i] { worker_loop(static_cast<DeviceId>(i)); });
    }
  }
}

void Engine::build_placement_classes() {
  class_of_.resize(devices_.size());
  // Full-spec key (not just the cost-model inputs): merging only devices
  // that also share the fault-tolerance knobs keeps retry budgets and
  // per-device overrides trivially uniform within a class.
  using Flavor =
      std::tuple<int, double, double, double, std::uint64_t, int, double>;
  std::map<Flavor, std::size_t> flavors;
  for (const auto& device : devices_) {
    std::size_t cls = classes_.size();
    // Accelerators own private memory nodes — their replica state (and so
    // their transfer estimate) differs per device — so they stay singleton
    // classes even when spec-identical. Host-node devices group by flavor.
    if (config_.placement_classes && device.node == kHostNode) {
      const Flavor key{static_cast<int>(device.spec.kind),
                       device.spec.sustained_gflops,
                       device.spec.link_bandwidth_gbs,
                       device.spec.link_latency_us,
                       static_cast<std::uint64_t>(device.spec.memory_bytes),
                       device.spec.max_retries,
                       device.spec.mtbf_hours};
      cls = flavors.emplace(key, cls).first->second;
    }
    if (cls == classes_.size()) {
      // Devices arrive in id order, so classes are created in order of
      // their lowest member — preserving exhaustive HEFT's lowest-index
      // tie-breaking when classes are evaluated front to back.
      detail::PlacementClass& fresh = classes_.emplace_back();
      fresh.kind = device.spec.kind;
      fresh.node = device.node;
      fresh.representative = device.id;
    }
    detail::PlacementClass& pc = classes_[cls];
    pc.members.push_back(device.id);
    pc.live_members.store(static_cast<int>(pc.members.size()),
                          std::memory_order_relaxed);
    class_of_[static_cast<std::size_t>(device.id)] = cls;
  }
  class_gflops_.reserve(classes_.size());
  for (const auto& pc : classes_) {
    class_gflops_.push_back(
        devices_[static_cast<std::size_t>(pc.representative)]
            .spec.sustained_gflops);
  }
}

const DeviceSpec* Engine::node_link_spec(MemoryNodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= node_spec_.size()) {
    return nullptr;
  }
  return node_spec_[static_cast<std::size_t>(node)];
}

Engine::~Engine() {
  (void)wait_all();  // task errors were the caller's to collect
  stopping_.store(true);
  if (dispatch_) dispatch_->notify_all();
  for (auto& w : workers_) w.join();
  // Workers are gone: the model is quiescent, snapshot and persist it.
  if (!perf_store_path_.empty()) {
    (void)perf_store::save(
        perf_store::from_model(perf_model_, descriptor_hash_),
        perf_store_path_);
  }
}

// --- Data ----------------------------------------------------------------------

DataHandle* Engine::register_matrix(double* ptr, std::size_t rows, std::size_t cols,
                                    std::size_t ld, std::string name) {
  if (ld == 0) ld = cols;
  std::lock_guard<std::mutex> lock(submit_mutex_);
  DataHandle& handle = handles_.emplace_back();
  handle.ptr_ = ptr;
  handle.rows_ = rows;
  handle.cols_ = cols;
  handle.ld_ = ld;
  handle.bytes_ = rows * cols * sizeof(double);
  // Fresh registrations are valid on the host only.
  handle.valid_ = DataHandle::node_bit(kHostNode);
  if (name.empty()) {
    // "m<index>" fits SSO; std::to_chars keeps the hot registration path
    // free of std::to_string's temporary.
    char buf[2 + std::numeric_limits<std::size_t>::digits10 + 1] = {'m'};
    const auto end = std::to_chars(buf + 1, buf + sizeof(buf),
                                   handles_.size() - 1);
    handle.name_.assign(buf, end.ptr);
  } else {
    handle.name_ = std::move(name);
  }
  return &handle;
}

DataHandle* Engine::register_vector(double* ptr, std::size_t n, std::string name) {
  return register_matrix(ptr, 1, n, n, std::move(name));
}

std::vector<DataHandle*> Engine::partition_rows(DataHandle* handle, int nblocks) {
  assert(handle != nullptr && nblocks >= 1);
  assert(!handle->partitioned() && "handle is already partitioned");
  std::vector<DataHandle*> blocks;
  const std::size_t rows = handle->rows();
  const std::size_t per_block = (rows + static_cast<std::size_t>(nblocks) - 1) /
                                static_cast<std::size_t>(nblocks);
  std::lock_guard<std::mutex> lock(submit_mutex_);
  std::lock_guard<std::mutex> mem(memory_mutex_);
  for (int b = 0; b < nblocks; ++b) {
    // Always produce exactly nblocks handles: when nblocks > rows the tail
    // blocks are empty (rows() == 0, bytes() == 0) so callers indexing
    // blocks[i] stay in bounds. Empty blocks point at one-past-the-end of
    // the parent (valid to form, never dereferenced — bytes() is 0).
    const std::size_t row_begin =
        std::min(static_cast<std::size_t>(b) * per_block, rows);
    const std::size_t row_count = std::min(per_block, rows - row_begin);
    DataHandle& block = handles_.emplace_back();
    block.ptr_ = static_cast<double*>(handle->ptr_) + row_begin * handle->ld_;
    block.rows_ = row_count;
    block.cols_ = handle->cols_;
    block.ld_ = handle->ld_;
    block.bytes_ = row_count * handle->cols_ * sizeof(double);
    block.name_ = handle->name_ + "[" + std::to_string(b) + "]";
    block.parent_ = handle;
    // Blocks inherit only the host replica: device-side accounting is per
    // handle, and partitioning is a host-side operation by contract.
    block.valid_ = handle->valid_ & DataHandle::node_bit(kHostNode);
    handle->children_.push_back(&block);
    blocks.push_back(&block);
  }
  return blocks;
}

std::vector<DataHandle*> Engine::partition_vector(DataHandle* handle, int nblocks) {
  assert(handle != nullptr && handle->rows() == 1);
  assert(!handle->partitioned() && "handle is already partitioned");
  std::vector<DataHandle*> blocks;
  const std::size_t n = handle->cols();
  const std::size_t per_block = (n + static_cast<std::size_t>(nblocks) - 1) /
                                static_cast<std::size_t>(nblocks);
  std::lock_guard<std::mutex> lock(submit_mutex_);
  std::lock_guard<std::mutex> mem(memory_mutex_);
  for (int b = 0; b < nblocks; ++b) {
    // Exactly nblocks handles; tail blocks are empty when nblocks > n.
    const std::size_t begin =
        std::min(static_cast<std::size_t>(b) * per_block, n);
    const std::size_t count = std::min(per_block, n - begin);
    DataHandle& block = handles_.emplace_back();
    block.ptr_ = static_cast<double*>(handle->ptr_) + begin;
    // A surplus block is fully empty (0 x 0), not a degenerate 1 x 0 row:
    // callers test rows() == 0 to detect padding.
    block.rows_ = count > 0 ? 1 : 0;
    block.cols_ = count;
    block.ld_ = count;
    block.bytes_ = count * sizeof(double);
    block.name_ = handle->name_ + "[" + std::to_string(b) + "]";
    block.parent_ = handle;
    // Blocks inherit only the host replica: device-side accounting is per
    // handle, and partitioning is a host-side operation by contract.
    block.valid_ = handle->valid_ & DataHandle::node_bit(kHostNode);
    handle->children_.push_back(&block);
    blocks.push_back(&block);
  }
  return blocks;
}

std::vector<DataHandle*> Engine::partition_tiles(DataHandle* handle, int row_blocks,
                                                 int col_blocks) {
  assert(handle != nullptr && row_blocks >= 1 && col_blocks >= 1);
  assert(!handle->partitioned() && "handle is already partitioned");
  std::vector<DataHandle*> tiles;
  const std::size_t rows = handle->rows();
  const std::size_t cols = handle->cols();
  const std::size_t tile_rows = (rows + static_cast<std::size_t>(row_blocks) - 1) /
                                static_cast<std::size_t>(row_blocks);
  const std::size_t tile_cols = (cols + static_cast<std::size_t>(col_blocks) - 1) /
                                static_cast<std::size_t>(col_blocks);
  std::lock_guard<std::mutex> lock(submit_mutex_);
  std::lock_guard<std::mutex> mem(memory_mutex_);
  for (int r = 0; r < row_blocks; ++r) {
    // Exactly row_blocks x col_blocks handles, row-major, so tile (r, c) is
    // always at index r * col_blocks + c; edge tiles are empty when the
    // grid is finer than the matrix.
    const std::size_t row_begin =
        std::min(static_cast<std::size_t>(r) * tile_rows, rows);
    const std::size_t row_count = std::min(tile_rows, rows - row_begin);
    for (int c = 0; c < col_blocks; ++c) {
      const std::size_t col_begin =
          std::min(static_cast<std::size_t>(c) * tile_cols, cols);
      const std::size_t col_count = std::min(tile_cols, cols - col_begin);
      DataHandle& tile = handles_.emplace_back();
      tile.ptr_ = static_cast<double*>(handle->ptr_) + row_begin * handle->ld_ +
                  col_begin;
      tile.rows_ = row_count;
      tile.cols_ = col_count;
      tile.ld_ = handle->ld_;  // tiles are strided views into the parent
      tile.bytes_ = row_count * col_count * sizeof(double);
      tile.name_ = handle->name_ + "(" + std::to_string(r) + "," +
                   std::to_string(c) + ")";
      tile.parent_ = handle;
      tile.valid_ = handle->valid_ & DataHandle::node_bit(kHostNode);
      handle->children_.push_back(&tile);
      tiles.push_back(&tile);
    }
  }
  return tiles;
}

void Engine::unpartition(DataHandle* handle) {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  std::lock_guard<std::mutex> mem(memory_mutex_);
  // Gather: the parent becomes host-resident (writes by simulated
  // accelerators updated host memory directly); every device replica —
  // of the parent and of the retired blocks — is dropped.
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (static_cast<MemoryNodeId>(n) != kHostNode) {
      drop_replica_locked(handle, static_cast<MemoryNodeId>(n));
      for (DataHandle* block : handle->children_) {
        drop_replica_locked(block, static_cast<MemoryNodeId>(n));
      }
    }
  }
  handle->valid_ = DataHandle::node_bit(kHostNode);
  for (DataHandle* block : handle->children_) {
    block->parent_ = nullptr;  // detach; block handles must not be reused
  }
  handle->children_.clear();
}

void Engine::host_write(DataHandle* handle) {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  std::lock_guard<std::mutex> mem(memory_mutex_);
  const auto mark = [this](DataHandle* h) {
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      if (static_cast<MemoryNodeId>(n) != kHostNode) {
        drop_replica_locked(h, static_cast<MemoryNodeId>(n));
      }
    }
    h->valid_ |= DataHandle::node_bit(kHostNode);
  };
  mark(handle);
  for (DataHandle* block : handle->children_) mark(block);
}

// --- Submission --------------------------------------------------------------

void Engine::validate_desc(const TaskDesc& desc) const {
  if (desc.codelet == nullptr || desc.codelet->impls.empty()) {
    throw std::invalid_argument("task without codelet implementation");
  }
  bool any_capable = false;
  for (const auto& pc : classes_) {
    if (desc.codelet->supports(pc.kind)) any_capable = true;
  }
  if (!any_capable) {
    throw std::invalid_argument("no device can execute codelet '" +
                                desc.codelet->name + "'");
  }
  for (const auto& view : desc.buffers) {
    if (view.handle == nullptr) {
      throw std::invalid_argument("task references a null data handle");
    }
    if (view.handle->partitioned()) {
      throw std::invalid_argument("task references partitioned handle '" +
                                  view.handle->name() + "'; target its blocks");
    }
  }
}

detail::TaskNode& Engine::wire_task_locked(TaskDesc&& desc, double flops) {
  // Counted here — the one place both submit() and submit_batch() funnel
  // through — so a batch of N adds exactly N, never 1.
  ++tasks_submitted_;
  if (obs::metrics_enabled()) tasks_submitted_counter().inc();
  detail::TaskNode& task = tasks_.emplace_back();
  task.id = next_task_id_++;
  task.codelet = desc.codelet;
  task.buffers = std::move(desc.buffers);
  task.label = desc.label.empty() ? desc.codelet->name : std::move(desc.label);
  task.priority = desc.priority;
  task.flops = flops;
  auto [row_it, inserted] = model_rows_.try_emplace(task.codelet);
  if (inserted) {
    ModelRows& rows = row_it->second;
    rows.main = &perf_model_.row(task.codelet->name);
    for (std::size_t k = 0; k < task.codelet->calibration_alias.size(); ++k) {
      const std::string& alias = task.codelet->calibration_alias[k];
      if (!alias.empty()) rows.alias[k] = &perf_model_.row(alias);
    }
    // Seed fresh cells from the declared rates: warm (store-preloaded) and
    // cold starts then share one estimate path, and the first observation
    // blends with the declared prior instead of slamming the estimate.
    // Seeding with the device's own rate keeps pre-history estimates
    // byte-identical to the analytic fallback. seed_in no-ops on cells
    // that already have history, so preloaded entries are untouched.
    const int seedable = static_cast<int>(
        std::min<std::size_t>(devices_.size(),
                              static_cast<std::size_t>(PerfModel::kMaxDevices)));
    for (int d = 0; d < seedable; ++d) {
      const double rate =
          devices_[static_cast<std::size_t>(d)].spec.sustained_gflops;
      if (PerfModel::seed_in(*rows.main, d, rate)) ++perf_model_seeds_;
      for (PerfModel::Row* alias : rows.alias) {
        if (alias != nullptr) (void)PerfModel::seed_in(*alias, d, rate);
      }
    }
  }
  task.model_row = row_it->second.main;
  task.alias_rows = row_it->second.alias;
  if (first_submit_wall_.load(std::memory_order_relaxed) < 0.0) {
    first_submit_wall_.store(now_seconds(), std::memory_order_relaxed);
  }
  // Count the task before any edge exists: a predecessor that fails while
  // we are still wiring may cascade-cancel this task (decrementing
  // pending_), so the increment must already be visible.
  pending_.fetch_add(1);

  // Sequential consistency per handle: R depends on the last writer; W/RW
  // depend on the last writer and on every reader since that write.
  bool poisoned = false;  // a dependency already failed or was cancelled
  const auto add_dep = [&](detail::TaskNode* dep) {
    if (dep == nullptr || dep == &task) return;
    std::lock_guard<std::mutex> edge(dep->edge_mutex);
    const detail::TaskState s = dep->state.load();
    if (s == detail::TaskState::kFailed) {
      poisoned = true;  // still wired as last writer below: poison spreads
      return;
    }
    if (dep->released) {
      // The dependency already finished; inherit its finish time (the
      // edge_mutex hand-off makes finish_vtime safe to read here).
      detail::vtime_raise(task.ready_vtime, dep->finish_vtime);
      return;
    }
    dep->successors.push_back(&task);
    task.deps_remaining.fetch_add(1, std::memory_order_relaxed);
  };

  for (const auto& view : task.buffers) {
    DataHandle* h = view.handle;
    if (reads(view.mode)) add_dep(h->last_writer_);
    if (writes(view.mode)) {
      add_dep(h->last_writer_);
      for (detail::TaskNode* reader : h->readers_since_write_) add_dep(reader);
      h->last_writer_ = &task;
      h->readers_since_write_.clear();
    } else {
      h->readers_since_write_.push_back(&task);
    }
  }

  // Explicit predecessors (tag dependencies). Ids are dense from 1.
  for (const TaskId dep_id : desc.depends_on) {
    if (dep_id == 0 || dep_id >= next_task_id_) continue;  // unknown: satisfied
    add_dep(&tasks_[static_cast<std::size_t>(dep_id - 1)]);
  }

  // Tasks that can never run are refused at submit time — without throwing,
  // so a long submission loop over a degraded platform drains cleanly and
  // wait_all() reports the aggregate.
  if (poisoned) {
    detail::TaskState expected = detail::TaskState::kWaiting;
    if (task.state.compare_exchange_strong(expected,
                                           detail::TaskState::kFailed)) {
      task.error = "cancelled: a dependency failed before submission";
      pending_.fetch_sub(1);
      {
        std::lock_guard<std::mutex> fault(fault_mutex_);
        ++cancelled_tasks_;
        record_fault_event_locked(FaultEvent::Kind::kCancelled,
                                  task.ready_vtime.load(), task.id, -1, 0,
                                  task.error);
      }
      notify_drain();
    }
    return task;
  }
  if (!has_live_capable_device(*task.codelet)) {
    std::lock_guard<std::mutex> fault(fault_mutex_);
    fail_task_locked(task, "no live device can execute codelet '" +
                               task.codelet->name + "'");
  }
  return task;
}

void Engine::publish_submission(detail::TaskNode* task) {
  // Drop the submission reference; dependencies released while we were
  // wiring have already decremented, so whoever takes it to zero dispatches.
  if (task->deps_remaining.fetch_sub(1) != 1) return;
  detail::TaskState expected = detail::TaskState::kWaiting;
  if (!task->state.compare_exchange_strong(expected,
                                           detail::TaskState::kReady)) {
    return;  // cancelled or failed during wiring
  }
  if (hybrid()) {
    dispatch_ready(task);
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    dispatch_ready(task);
  }
}

void Engine::dispatch_ready(detail::TaskNode* task) {
  if (hybrid()) {
    if (!dispatch_->push(task)) {
      // Every capable device was blacklisted after the readiness check.
      std::lock_guard<std::mutex> fault(fault_mutex_);
      fail_task_locked(*task, "no live device can execute codelet '" +
                                  task->codelet->name + "'");
      return;
    }
    if (obs::metrics_enabled()) {
      ready_queue_gauge().set(static_cast<std::int64_t>(dispatch_->size()));
    }
  } else {
    scheduler_->push(task);
    if (obs::metrics_enabled()) {
      ready_queue_gauge().set(static_cast<std::int64_t>(scheduler_->size()));
    }
  }
}

TaskId Engine::submit(TaskDesc desc) {
  validate_desc(desc);
  double flops = 0.0;
  if (desc.codelet->flops) flops = desc.codelet->flops(desc.buffers);

  detail::TaskNode* task = nullptr;
  {
    std::lock_guard<std::mutex> lock(submit_mutex_);
    task = &wire_task_locked(std::move(desc), flops);
  }
  publish_submission(task);
  return task->id;
}

std::vector<TaskId> Engine::submit_batch(std::vector<TaskDesc> descs) {
  if (descs.empty()) return {};
  if (obs::metrics_enabled()) submit_batch_histogram().record(descs.size());
  for (const TaskDesc& desc : descs) validate_desc(desc);
  std::vector<double> flops(descs.size(), 0.0);
  for (std::size_t i = 0; i < descs.size(); ++i) {
    if (descs[i].codelet->flops) {
      flops[i] = descs[i].codelet->flops(descs[i].buffers);
    }
  }

  std::vector<detail::TaskNode*> nodes;
  nodes.reserve(descs.size());
  {
    std::lock_guard<std::mutex> lock(submit_mutex_);
    tasks_.reserve_more(descs.size());
    for (std::size_t i = 0; i < descs.size(); ++i) {
      nodes.push_back(&wire_task_locked(std::move(descs[i]), flops[i]));
    }
  }

  std::vector<TaskId> ids;
  ids.reserve(nodes.size());
  for (const detail::TaskNode* task : nodes) ids.push_back(task->id);

  // Publish the whole batch, then hand every now-ready task to the
  // dispatcher in one call (each involved device queue is locked and its
  // workers woken once).
  std::vector<detail::TaskNode*> ready;
  for (detail::TaskNode* task : nodes) {
    if (task->deps_remaining.fetch_sub(1) != 1) continue;
    detail::TaskState expected = detail::TaskState::kWaiting;
    if (task->state.compare_exchange_strong(expected,
                                            detail::TaskState::kReady)) {
      ready.push_back(task);
    }
  }
  if (!ready.empty()) {
    if (hybrid()) {
      const std::vector<detail::TaskNode*> rejected =
          dispatch_->push_batch(ready);
      if (obs::metrics_enabled()) {
        ready_queue_gauge().set(static_cast<std::int64_t>(dispatch_->size()));
      }
      if (!rejected.empty()) {
        std::lock_guard<std::mutex> fault(fault_mutex_);
        for (detail::TaskNode* task : rejected) {
          fail_task_locked(*task, "no live device can execute codelet '" +
                                      task->codelet->name + "'");
        }
      }
    } else {
      std::lock_guard<std::mutex> lock(mutex_);
      for (detail::TaskNode* task : ready) scheduler_->push(task);
      if (obs::metrics_enabled()) {
        ready_queue_gauge().set(static_cast<std::int64_t>(scheduler_->size()));
      }
    }
  }
  return ids;
}

pdl::util::Status Engine::wait_all() {
  pdl::util::Status status;
  if (!hybrid()) {
    std::lock_guard<std::mutex> lock(mutex_);
    run_simulation_locked();
    drain_wall_.store(now_seconds());
    {
      std::lock_guard<std::mutex> fault(fault_mutex_);
      status = drain_status_locked();
    }
  } else {
    {
      std::unique_lock<std::mutex> lock(drain_mutex_);
      drain_cv_.wait(lock, [this] { return pending_.load() == 0; });
    }
    drain_wall_.store(now_seconds());
    {
      std::lock_guard<std::mutex> fault(fault_mutex_);
      status = drain_status_locked();
    }
  }
  // Post-mortem on an aggregated failure, after fault_mutex_ is released
  // (the dump reads task labels under submit_mutex_ and writes files).
  if (!status.ok()) maybe_auto_dump("wait_all_failure");
  return status;
}

bool Engine::wait(TaskId id) {
  detail::TaskNode* task = nullptr;
  {
    std::lock_guard<std::mutex> lock(submit_mutex_);
    // Task ids are dense and start at 1; tasks_ preserves submission order.
    if (id == 0 || id >= next_task_id_) return false;
    task = &tasks_[static_cast<std::size_t>(id - 1)];
  }
  if (!hybrid()) {
    std::lock_guard<std::mutex> lock(mutex_);
    run_simulation_locked();
    return task->state.load() == detail::TaskState::kDone;
  }
  // Register as a waiter first (sequentially consistent), so a finalizer
  // that misses us in waiters_ has necessarily published the state change
  // we are about to re-check under drain_mutex_.
  waiters_.fetch_add(1);
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [&] {
      const detail::TaskState s = task->state.load();
      return s == detail::TaskState::kDone ||
             s == detail::TaskState::kFailed || pending_.load() == 0;
    });
  }
  waiters_.fetch_sub(1);
  return task->state.load() == detail::TaskState::kDone;
}

pdl::util::Status Engine::drain_status_locked() const {
  if (failed_tasks_ == 0 && cancelled_tasks_ == 0) return {};
  std::string message = std::to_string(failed_tasks_) + " task(s) failed";
  if (cancelled_tasks_ > 0) {
    message += ", " + std::to_string(cancelled_tasks_) + " cancelled";
  }
  constexpr std::size_t kMaxQuoted = 3;
  for (std::size_t i = 0; i < task_errors_.size() && i < kMaxQuoted; ++i) {
    message += (i == 0 ? ": " : "; ") + task_errors_[i];
  }
  if (task_errors_.size() > kMaxQuoted) {
    message += "; ... (" + std::to_string(task_errors_.size() - kMaxQuoted) +
               " more, see EngineStats::errors)";
  }
  return pdl::util::Status::failure(std::move(message));
}

void Engine::notify_drain() {
  // Empty critical section: orders this notification against a waiter that
  // has passed its predicate re-check but not yet released drain_mutex_ in
  // cv.wait — without it the wakeup could be lost.
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
  }
  drain_cv_.notify_all();
}

void Engine::run_simulation_locked() {
  // Deterministic discrete-event loop: the device that becomes free
  // earliest (on the virtual clock) asks the scheduler next — the
  // virtual-time analogue of "the first idle worker pops". The scheduler
  // keeps an avail-ordered index incrementally (pop_earliest /
  // on_device_time_advanced), so one loop turn costs O(log devices)
  // instead of re-sorting every device each iteration.
  while (pending_.load() > 0) {
    DeviceId chosen = -1;
    detail::TaskNode* task = oracle_ != nullptr
                                 ? pop_via_oracle(&chosen)
                                 : scheduler_->pop_earliest(&chosen);
    if (task == nullptr) {
      // Submitted-but-waiting tasks only unblock through completions, which
      // this loop performs synchronously — reaching here means a dependency
      // cycle or a foreign bug; bail out rather than spin.
      break;
    }
    detail::DeviceState* device = &devices_[static_cast<std::size_t>(chosen)];

    task->state.store(detail::TaskState::kRunning);
    task->ran_on = device->id;
    ++task->attempts;
    if (obs::metrics_enabled()) {
      ready_queue_gauge().set(static_cast<std::int64_t>(scheduler_->size()));
    }
    // Before acquire_buffers: candidate costs must see decision-time
    // replica placement.
    record_decision(*task, *device);
    const double transfer = acquire_buffers(*task, device->node);
    task->start_vtime =
        std::max(device->avail_vtime.load(), task->ready_vtime.load()) +
        config_.task_overhead_us * 1e-6;
    task->transfer_seconds = transfer;
    if (flight_) {
      // mutex_ is held: the sim loop is the sole producer for every ring.
      obs::FlightRing& ring = flight_->ring(static_cast<std::size_t>(device->id));
      ring.record(obs::FlightKind::kQueueDepth, 0, 0, device->id,
                  task->start_vtime, 0.0,
                  static_cast<double>(scheduler_->size()));
      ring.record(obs::FlightKind::kTaskStart,
                  static_cast<std::uint32_t>(task->attempts), task->id,
                  device->id, task->start_vtime, 0.0, 0.0);
    }

    FaultPlan::Injection injected;
    if (fault_plan_) {
      injected = fault_plan_->decide(task->id, task->attempts, device->id,
                                     device->tasks_run);
    }
    const double exec = exec_estimate(*task, *device) + injected.delay_seconds;
    if (injected.fail) {
      // Forced transition: the plan is a pure function of (task, attempt,
      // device, history), so the firing carries no choice of its own — the
      // explorer varies it indirectly by varying the schedule around it.
      if (oracle_ != nullptr) {
        oracle_->note(ChoiceKind::kFault, task->id, device->id);
      }
      // Injection suppresses execution entirely (kernels run in place on
      // host memory; a doomed attempt would corrupt its own retry's input).
      handle_task_failure(*task, *device, transfer, exec, injected.reason,
                          /*is_timeout=*/false);
      scheduler_->on_device_time_advanced(device->id);
      continue;
    }
    if (config_.mode == ExecutionMode::kDeterministic) {
      // Kernels run for real, single-threaded under the engine mutex, in
      // virtual-clock order; the clock still charges the model, so the run
      // replays identically while the numerics are genuine.
      const Implementation* impl = task->codelet->find_impl(device->spec.kind);
      if (impl != nullptr && impl->fn) {
        ExecContext ctx;
        ctx.device = device->id;
        ctx.device_kind = device->spec.kind;
        ctx.buffers = &task->buffers;
        std::string fail_reason;
        if (!run_attempt(*impl, ctx, fail_reason)) {
          handle_task_failure(*task, *device, transfer, exec, fail_reason,
                              /*is_timeout=*/false);
          scheduler_->on_device_time_advanced(device->id);
          continue;
        }
      }
    }
    const double limit = watchdog_limit(*task, *device);
    if (limit > 0.0 && exec > limit) {
      handle_task_failure(*task, *device, transfer, exec,
                          "watchdog: modeled execution exceeded limit",
                          /*is_timeout=*/true);
      scheduler_->on_device_time_advanced(device->id);
      continue;
    }
    finalize_task(*task, *device, transfer, exec);
    // Only the executing device's clock moved this turn; re-key just it.
    scheduler_->on_device_time_advanced(device->id);
  }
}

detail::TaskNode* Engine::pop_via_oracle(DeviceId* chosen) {
  // Enumerate every (device, task) pair a pop could yield right now, in the
  // canonical (avail_vtime, id) order pop_earliest scans — alternative 0 is
  // exactly the fixed tie-break, so a CanonicalOracle replays the default
  // schedule bit-for-bit. O(devices log devices) per turn; the oracle path
  // only runs under a model checker on model-checking-sized platforms.
  std::vector<std::pair<double, DeviceId>> order;
  order.reserve(devices_.size());
  for (const auto& device : devices_) {
    order.emplace_back(device.avail_vtime.load(), device.id);
  }
  std::sort(order.begin(), order.end());
  ChoicePoint cp;
  cp.kind = ChoiceKind::kSchedule;
  for (const auto& [avail, d] : order) {
    if (detail::TaskNode* t = scheduler_->peek(d)) {
      cp.alts.push_back({t->id, d});
    }
  }
  if (cp.alts.empty()) return nullptr;
  std::size_t pick = 0;
  if (cp.alts.size() > 1) {
    pick = static_cast<std::size_t>(oracle_->choose(cp));
  } else {
    oracle_->note(ChoiceKind::kSchedule, cp.alts[0].task, cp.alts[0].device);
  }
  *chosen = cp.alts[pick].device;
  // Single-threaded under mutex_: nothing mutated a queue since the peek,
  // so pop returns the peeked task.
  return scheduler_->pop(*chosen);
}

void Engine::finalize_task(detail::TaskNode& task, detail::DeviceState& device,
                           double transfer, double exec) {
  task.exec_seconds = exec;
  task.finish_vtime = task.start_vtime + transfer + exec;
  detail::vtime_raise(device.avail_vtime, task.finish_vtime);
  device.busy_seconds += exec;
  device.transfer_seconds += transfer;
  ++device.tasks_run;
  device.consecutive_failures = 0;  // blacklisting counts *consecutive* only
  PerfModel::observe_in(*task.model_row, device.id, exec, task.flops);
  // Variant alias (Codelet::calibration_alias): record the same sample
  // under the selected variant's name so the persisted store learns
  // per-variant rates. Same single-writer-per-cell protocol — the cell's
  // writer is this device's worker regardless of which codelet aliases it.
  if (PerfModel::Row* alias =
          task.alias_rows[static_cast<std::size_t>(device.spec.kind)]) {
    PerfModel::observe_in(*alias, device.id, exec, task.flops);
  }
  if (task.attempts > 1) {
    // Close the attempt chain: this task failed at least once before
    // succeeding. Cold path only — first-attempt successes never take
    // fault_mutex_ here.
    std::lock_guard<std::mutex> fault(fault_mutex_);
    record_attempt_locked(task.id, task.attempts, device.id,
                          TaskAttempt::Outcome::kCompleted, task.finish_vtime,
                          {});
  }

  device.trace.push_back(TaskTrace{task.id, task.label, device.id,
                                   task.start_vtime, task.finish_vtime,
                                   transfer, exec, task.flops,
                                   task.ready_vtime.load()});
  if (flight_) {
    // Owning worker (hybrid) or the sim loop under mutex_: single producer.
    obs::FlightRing& ring = flight_->ring(static_cast<std::size_t>(device.id));
    ring.record(obs::FlightKind::kTaskEnd,
                static_cast<std::uint32_t>(task.attempts), task.id, device.id,
                task.start_vtime, task.finish_vtime, exec, transfer);
    if (transfer > 0.0) {
      ring.record(obs::FlightKind::kTransfer, 0, task.id, device.id,
                  task.start_vtime, task.start_vtime + transfer, transfer);
    }
  }
  if (obs::metrics_enabled()) {
    tasks_completed_counter().inc();
    task_exec_us_histogram().record(
        exec > 0.0 ? static_cast<std::uint64_t>(exec * 1e6) : 0);
  }

  // Release the dependency edges: late subscribers (add_dep) that take
  // edge_mutex after this see released == true and read finish_vtime.
  std::vector<detail::TaskNode*> successors;
  {
    std::lock_guard<std::mutex> edge(task.edge_mutex);
    task.released = true;
    successors.swap(task.successors);
  }
  task.state.store(detail::TaskState::kDone);
  std::vector<detail::TaskNode*> became_ready;
  for (detail::TaskNode* succ : successors) {
    // A successor cancelled by another (failed) dependency never runs; the
    // load is only an optimization — the CAS below is the real gate.
    if (succ->state.load() == detail::TaskState::kFailed) continue;
    detail::vtime_raise(succ->ready_vtime, task.finish_vtime);
    if (succ->deps_remaining.fetch_sub(1) == 1) {
      detail::TaskState expected = detail::TaskState::kWaiting;
      if (succ->state.compare_exchange_strong(expected,
                                              detail::TaskState::kReady)) {
        if (oracle_ != nullptr) {
          became_ready.push_back(succ);  // dispatch order is a choice point
        } else {
          dispatch_ready(succ);
        }
      }
    }
  }
  // Dependency-release order: when one finish unblocks several successors,
  // the order they enter the scheduler decides queue positions (and HEFT
  // backlog estimates). Canonical order (alternative 0 repeatedly) is the
  // wiring order the loop above produced.
  while (!became_ready.empty()) {
    std::size_t pick = 0;
    if (became_ready.size() > 1) {
      ChoicePoint cp;
      cp.kind = ChoiceKind::kRelease;
      for (const detail::TaskNode* succ : became_ready) {
        cp.alts.push_back({succ->id, -1});
      }
      pick = static_cast<std::size_t>(oracle_->choose(cp));
    } else {
      oracle_->note(ChoiceKind::kRelease, became_ready[0]->id, -1);
    }
    detail::TaskNode* succ = became_ready[pick];
    became_ready.erase(became_ready.begin() +
                       static_cast<std::ptrdiff_t>(pick));
    dispatch_ready(succ);
  }
  const std::size_t left = pending_.fetch_sub(1) - 1;
  if (hybrid() && (left == 0 || waiters_.load() > 0)) {
    // Only signal when someone can be listening: wait_all sleeps on
    // pending_ == 0, wait(TaskId) registers itself in waiters_.
    notify_drain();
  }
}

// --- Fault tolerance ----------------------------------------------------------

int Engine::retry_budget(const detail::DeviceState& device) const {
  return device.spec.max_retries >= 0 ? device.spec.max_retries
                                      : config_.fault_tolerance.max_retries;
}

double Engine::watchdog_limit(const detail::TaskNode& task,
                              const detail::DeviceState& device) const {
  const double slack = config_.fault_tolerance.watchdog_slack;
  if (slack <= 0.0) return 0.0;
  return std::max(config_.fault_tolerance.watchdog_min_seconds,
                  exec_estimate(task, device) * slack);
}

bool Engine::has_live_capable_device(const Codelet& codelet) const {
  // O(classes), not O(devices): live_members counts the non-blacklisted
  // members of each class.
  for (const auto& pc : classes_) {
    if (pc.live_members.load(std::memory_order_relaxed) > 0 &&
        codelet.supports(pc.kind)) {
      return true;
    }
  }
  return false;
}

void Engine::record_fault_event_locked(FaultEvent::Kind kind, double vtime,
                                       TaskId task, DeviceId device,
                                       int attempt, std::string detail) {
  if (obs::has_event_sink()) {
    obs::Event event("starvm.fault");
    event.str("kind", to_string(kind))
        .num("vtime", vtime)
        .num("task_id", static_cast<std::uint64_t>(task))
        .num("device", static_cast<double>(device))
        .num("attempt", static_cast<std::uint64_t>(attempt < 0 ? 0 : attempt))
        .str("detail", detail);
    obs::emit_event(event);
  }
  fault_events_.push_back(
      FaultEvent{kind, vtime, task, device, attempt, std::move(detail)});
  if (flight_) {
    // The dedicated fault ring: every caller holds fault_mutex_, so the
    // SPSC contract holds via mutex hand-off.
    flight_->ring(devices_.size())
        .record(flight_kind_of(kind),
                static_cast<std::uint32_t>(attempt < 0 ? 0 : attempt),
                static_cast<std::uint64_t>(task), device, vtime, 0.0, 0.0);
  }
}

void Engine::record_attempt_locked(TaskId task, int attempt, DeviceId device,
                                   TaskAttempt::Outcome outcome, double vtime,
                                   std::string cause) {
  attempts_.push_back(
      TaskAttempt{task, attempt, device, outcome, vtime, std::move(cause)});
}

std::string Engine::attempt_chain_locked(TaskId task) const {
  // Digest for aggregated error messages: without it, a task that both
  // retried and was re-routed off a blacklisted device reports only the
  // LAST failure reason, losing which devices the earlier attempts died on.
  std::string chain;
  for (const TaskAttempt& a : attempts_) {
    if (a.task != task) continue;
    chain += chain.empty() ? " [" : "; ";
    switch (a.outcome) {
      case TaskAttempt::Outcome::kRerouted:
        chain += "rerouted off device " + std::to_string(a.device);
        break;
      case TaskAttempt::Outcome::kCancelled:
        chain += "cancelled";
        break;
      default:
        chain += "attempt " + std::to_string(a.attempt) + " on device " +
                 std::to_string(a.device) + ": " + to_string(a.outcome);
        if (!a.cause.empty() && a.outcome != TaskAttempt::Outcome::kCompleted) {
          chain += " (" + a.cause + ")";
        }
        break;
    }
  }
  if (!chain.empty()) chain += "]";
  return chain;
}

void Engine::fail_task_locked(detail::TaskNode& task, const std::string& reason) {
  // CAS into kFailed: a concurrent cascade-cancel (kWaiting -> kFailed) may
  // have beaten us here, in which case all the bookkeeping already happened.
  detail::TaskState cur = task.state.load();
  do {
    if (cur == detail::TaskState::kFailed) return;
  } while (!task.state.compare_exchange_weak(cur, detail::TaskState::kFailed));

  task.error = reason;
  ++failed_tasks_;
  task_errors_.push_back("task " + std::to_string(task.id) + " '" + task.label +
                         "': " + reason + attempt_chain_locked(task.id));
  record_fault_event_locked(FaultEvent::Kind::kTaskFailed,
                            task.ready_vtime.load(), task.id, task.ran_on,
                            task.attempts, reason);
  pending_.fetch_sub(1);

  // Cascade: everything transitively waiting on this task can never become
  // ready (its deps_remaining never reaches zero), so cancel it now instead
  // of hanging wait_all() forever. The snapshot happens after the kFailed
  // store above, so late subscribers poison themselves instead of adding an
  // edge the cascade would miss.
  std::vector<detail::TaskNode*> stack;
  {
    std::lock_guard<std::mutex> edge(task.edge_mutex);
    stack = task.successors;
  }
  while (!stack.empty()) {
    detail::TaskNode* succ = stack.back();
    stack.pop_back();
    detail::TaskState expected = detail::TaskState::kWaiting;
    if (!succ->state.compare_exchange_strong(expected,
                                             detail::TaskState::kFailed)) {
      continue;  // already running, done, or cancelled by another cascade
    }
    succ->error = "cancelled: dependency task " + std::to_string(task.id) +
                  " failed";
    ++cancelled_tasks_;
    record_fault_event_locked(FaultEvent::Kind::kCancelled,
                              task.ready_vtime.load(), succ->id, -1, 0,
                              succ->error);
    record_attempt_locked(succ->id, 0, -1, TaskAttempt::Outcome::kCancelled,
                          task.ready_vtime.load(), succ->error);
    pending_.fetch_sub(1);
    {
      std::lock_guard<std::mutex> edge(succ->edge_mutex);
      stack.insert(stack.end(), succ->successors.begin(),
                   succ->successors.end());
    }
  }
  notify_drain();
}

void Engine::blacklist_device_locked(detail::DeviceState& device) {
  device.blacklisted.store(true);
  classes_[class_of_[static_cast<std::size_t>(device.id)]]
      .live_members.fetch_sub(1, std::memory_order_relaxed);
  ++blacklists_;
  if (obs::metrics_enabled()) device_blacklists_counter().inc();
  record_fault_event_locked(
      FaultEvent::Kind::kBlacklist, device.avail_vtime.load(), 0, device.id, 0,
      device.spec.name + " blacklisted after " +
          std::to_string(device.consecutive_failures) +
          " consecutive failures");

  // Graceful degradation: queued work re-enters the dispatcher against the
  // shrunken candidate set; work nothing can run fails right away. Note the
  // direct dispatch_->push (not dispatch_ready): fault_mutex_ is held here
  // and dispatch_ready would try to re-take it on a push failure.
  const std::vector<detail::TaskNode*> drained =
      hybrid() ? dispatch_->drain_device(device.id)
               : scheduler_->drain_device(device.id);
  for (detail::TaskNode* task : drained) {
    if (has_live_capable_device(*task->codelet)) {
      ++reroutes_;
      record_fault_event_locked(FaultEvent::Kind::kReroute,
                                device.avail_vtime.load(), task->id, device.id,
                                task->attempts,
                                "requeued off blacklisted " + device.spec.name);
      record_attempt_locked(task->id, task->attempts, device.id,
                            TaskAttempt::Outcome::kRerouted,
                            device.avail_vtime.load(),
                            "requeued off blacklisted " + device.spec.name);
      if (oracle_ != nullptr) {
        oracle_->note(ChoiceKind::kReroute, task->id, device.id);
      }
      const bool pushed =
          hybrid() ? dispatch_->push(task) : (scheduler_->push(task), true);
      if (!pushed) {
        fail_task_locked(*task, "no live device can execute codelet '" +
                                    task->codelet->name + "'");
      }
    } else {
      fail_task_locked(*task, "no live device can execute codelet '" +
                                  task->codelet->name + "'");
    }
  }
}

void Engine::handle_task_failure(detail::TaskNode& task,
                                 detail::DeviceState& device, double transfer,
                                 double exec, const std::string& reason,
                                 bool is_timeout) {
  // The attempt occupied the device on the virtual clock even though it
  // produced nothing; charging it keeps device timelines monotonic. It is
  // deliberately NOT added to busy_seconds or the trace — those describe
  // useful work — and not fed to the perf model (failures would poison the
  // estimates the watchdog itself relies on).
  const double attempt_finish = task.start_vtime + transfer + exec;
  detail::vtime_raise(device.avail_vtime, attempt_finish);
  device.transfer_seconds += transfer;
  ++device.failures;
  ++device.consecutive_failures;

  bool retry = false;
  {
    std::lock_guard<std::mutex> fault(fault_mutex_);
    ++task_failures_;
    if (is_timeout) ++timeouts_;
    if (obs::metrics_enabled()) {
      task_failures_counter().inc();
      if (is_timeout) task_timeouts_counter().inc();
    }
    record_fault_event_locked(
        is_timeout ? FaultEvent::Kind::kTimeout : FaultEvent::Kind::kFailure,
        attempt_finish, task.id, device.id, task.attempts, reason);
    record_attempt_locked(task.id, task.attempts, device.id,
                          is_timeout ? TaskAttempt::Outcome::kTimeout
                                     : TaskAttempt::Outcome::kFailed,
                          attempt_finish, reason);

    const int threshold = config_.fault_tolerance.blacklist_after;
    if (threshold > 0 && !device.blacklisted.load() &&
        device.consecutive_failures >= threshold) {
      blacklist_device_locked(device);
    }

    if (task.attempts <= retry_budget(device) &&
        has_live_capable_device(*task.codelet)) {
      ++retries_;
      if (obs::metrics_enabled()) task_retries_counter().inc();
      // Exponential backoff on the virtual clock: the retry may not start
      // before attempt_finish + base * multiplier^(attempt-1).
      const double backoff_seconds =
          config_.fault_tolerance.backoff_base_ms * 1e-3 *
          std::pow(config_.fault_tolerance.backoff_multiplier,
                   task.attempts - 1);
      detail::vtime_raise(task.ready_vtime, attempt_finish + backoff_seconds);
      task.ran_on = -1;
      record_fault_event_locked(FaultEvent::Kind::kRetry,
                                task.ready_vtime.load(), task.id, device.id,
                                task.attempts,
                                "retry " + std::to_string(task.attempts) + "/" +
                                    std::to_string(retry_budget(device)) +
                                    " after backoff");
      task.state.store(detail::TaskState::kReady);
      retry = true;
    } else {
      fail_task_locked(task, reason);
    }
  }
  // Re-dispatch outside fault_mutex_: the hybrid push-failure path inside
  // dispatch_ready takes it again. In the simulation modes the caller holds
  // mutex_, which is what scheduler_ pushes require.
  if (retry) dispatch_ready(&task);
  // A watchdog fire is the flight recorder's primary trigger: dump while
  // the evidence is still resident (also after fault_mutex_ is released).
  if (is_timeout) maybe_auto_dump("watchdog");
}

void Engine::record_decision(const detail::TaskNode& task,
                             const detail::DeviceState& chosen) {
  if (obs::metrics_enabled()) decision_counter_->inc();
  if (!config_.record_decisions && !obs::tracing_enabled() &&
      !obs::has_event_sink()) {
    return;  // hot path: no candidate vector, no lock
  }

  SchedulerDecision decision;
  decision.task = task.id;
  decision.label = task.label;
  decision.chosen = chosen.id;
  decision.decided_vtime =
      std::max(chosen.avail_vtime.load(), task.ready_vtime.load());
  // One candidate per placement class keeps the log exact without a
  // per-member walk: members share the cost estimate, and the entry for
  // the winner's class is computed on the winner itself, so the chosen
  // device always appears with its own numbers.
  const std::size_t chosen_class = class_of_[static_cast<std::size_t>(chosen.id)];
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const detail::PlacementClass& pc = classes_[c];
    if (!task.codelet->supports(pc.kind)) continue;
    const detail::DeviceState& device =
        c == chosen_class
            ? chosen
            : devices_[static_cast<std::size_t>(pc.representative)];
    DecisionCandidate candidate;
    candidate.device = device.id;
    candidate.device_name = device.spec.name;
    candidate.class_size = static_cast<int>(pc.members.size());
    candidate.est_finish_vtime =
        std::max(device.avail_vtime.load(), task.ready_vtime.load()) +
        estimated_cost(task, device);
    decision.candidates.push_back(std::move(candidate));
  }

  if (obs::has_event_sink()) {
    obs::Event event("starvm.decision");
    event.str("task", decision.label)
        .num("task_id", static_cast<std::uint64_t>(decision.task))
        .num("chosen", static_cast<double>(decision.chosen))
        .str("chosen_name", chosen.spec.name)
        .str("policy", to_string(config_.scheduler))
        .num("decided_vtime", decision.decided_vtime);
    std::string candidates = "[";
    for (std::size_t i = 0; i < decision.candidates.size(); ++i) {
      const DecisionCandidate& c = decision.candidates[i];
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.9g", c.est_finish_vtime);
      if (i > 0) candidates += ",";
      candidates += "{\"device\":" + std::to_string(c.device) + ",\"name\":\"" +
                    obs::json_escape(c.device_name) +
                    "\",\"devices\":" + std::to_string(c.class_size) +
                    ",\"est_finish_vtime\":" + buf + "}";
    }
    candidates += "]";
    event.raw("candidates", candidates);
    obs::emit_event(event);
  }

  std::lock_guard<std::mutex> lock(decisions_mutex_);
  decisions_.push_back(std::move(decision));
}

// --- Cost models ----------------------------------------------------------------

double Engine::link_transfer_seconds(std::size_t bytes, MemoryNodeId from,
                                     MemoryNodeId to) const {
  if (from == to) return 0.0;
  // Each accelerator node connects to the host with its own link; transfers
  // between two accelerators bounce through the host (PCIe peer-to-peer is
  // post-2011 and the paper's testbed routes via host RAM). Link parameters
  // come from the node→spec index built at construction — O(1) per leg.
  const auto link_of = [this](MemoryNodeId node) -> const DeviceSpec* {
    const DeviceSpec* spec = node_link_spec(node);
    if (spec == nullptr) {
      // Every non-host node is created from a device at construction, so a
      // miss means the caller passed a node this engine never made. Flag it
      // (EngineStats::link_spec_misses; tests assert it stays zero) rather
      // than silently modeling the default link.
      assert(false && "memory node without an owning device spec");
      link_spec_misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return spec;
  };
  double seconds = 0.0;
  if (from != kHostNode) {
    const DeviceSpec* spec = link_of(from);
    seconds += transfer_seconds(bytes, spec ? spec->link_bandwidth_gbs : 5.0,
                                spec ? spec->link_latency_us : 10.0);
  }
  if (to != kHostNode) {
    const DeviceSpec* spec = link_of(to);
    seconds += transfer_seconds(bytes, spec ? spec->link_bandwidth_gbs : 5.0,
                                spec ? spec->link_latency_us : 10.0);
  }
  return seconds;
}

void Engine::drop_replica_locked(DataHandle* handle, MemoryNodeId node) {
  const auto n = static_cast<std::size_t>(node);
  if (!handle->valid_on(node)) return;
  handle->valid_ &= ~DataHandle::node_bit(node);
  if (node != kHostNode && n < nodes_.size() && nodes_[n].capacity > 0) {
    NodeState& state = nodes_[n];
    state.used -= std::min(state.used, handle->bytes());
    state.lru.remove(handle);
  }
}

void Engine::add_replica_locked(DataHandle* handle, MemoryNodeId node,
                                double& cost,
                                const std::vector<BufferView>* pinned) {
  const auto n = static_cast<std::size_t>(node);
  NodeState* state =
      node != kHostNode && n < nodes_.size() && nodes_[n].capacity > 0
          ? &nodes_[n]
          : nullptr;
  if (handle->valid_on(node)) {
    // Refresh recency on bounded nodes.
    if (state != nullptr) {
      state->lru.remove(handle);
      state->lru.push_front(handle);
    }
    return;
  }

  if (state != nullptr) {
    const auto is_pinned = [&](const DataHandle* candidate) {
      if (pinned == nullptr) return false;
      for (const auto& view : *pinned) {
        if (view.handle == candidate) return true;
      }
      return false;
    };
    // Evict least-recently-used replicas until the new one fits. A handle
    // larger than the whole node is admitted anyway (it cannot be split;
    // the model degrades gracefully rather than deadlocking).
    while (state->used + handle->bytes() > state->capacity && !state->lru.empty()) {
      DataHandle* victim = nullptr;
      for (auto it = state->lru.rbegin(); it != state->lru.rend(); ++it) {
        if (!is_pinned(*it)) {
          victim = *it;
          break;
        }
      }
      if (victim == nullptr) break;  // everything pinned: over-commit
      // Sole-replica eviction must write the data back to the host first.
      const bool sole = (victim->valid_ & ~DataHandle::node_bit(node)) == 0;
      if (sole) {
        cost += link_transfer_seconds(victim->bytes(), node, kHostNode);
        writeback_bytes_ += victim->bytes();
        victim->valid_ |= DataHandle::node_bit(kHostNode);
      }
      drop_replica_locked(victim, node);
      ++evictions_;
      if (obs::metrics_enabled()) evictions_counter().inc();
    }
    state->used += handle->bytes();
    state->lru.push_front(handle);
  }
  handle->valid_ |= DataHandle::node_bit(node);
}

double Engine::acquire_buffers(detail::TaskNode& task, MemoryNodeId node) {
  // Single-node platforms (CPU-only) never transfer: every handle stays
  // valid on the host and MSI bookkeeping is a no-op. Skip the lock.
  if (single_node_) return 0.0;
  double total = 0.0;
  std::lock_guard<std::mutex> lock(memory_mutex_);
  for (const auto& view : task.buffers) {
    DataHandle* h = view.handle;
    if (reads(view.mode)) {
      if (!h->valid_on(node)) {
        // Prefer pulling from the host; otherwise any valid replica.
        const MemoryNodeId source = h->first_valid_node();
        if (source >= 0) {
          total += link_transfer_seconds(h->bytes(), source, node);
          ++transfers_;
          transfer_bytes_ += h->bytes();
          if (obs::metrics_enabled()) transfers_counter().inc();
        }
      }
      // add_replica also refreshes LRU recency for already-valid replicas.
      add_replica_locked(h, node, total, &task.buffers);
    }
    if (writes(view.mode)) {
      // MSI: writing invalidates every other replica. Simulated
      // accelerators actually write host memory, so the host copy is
      // physically current; keeping it marked invalid models the paper
      // testbed where the result sits in GPU memory until fetched.
      for (std::size_t n = 0; n < nodes_.size(); ++n) {
        if (static_cast<MemoryNodeId>(n) != node) {
          drop_replica_locked(h, static_cast<MemoryNodeId>(n));
        }
      }
      add_replica_locked(h, node, total, &task.buffers);
    }
  }
  return total;
}

double Engine::exec_estimate(const detail::TaskNode& task,
                             const detail::DeviceState& device) const {
  return PerfModel::estimate_in(*task.model_row, device.id, task.flops,
                                device.spec.sustained_gflops);
}

double Engine::estimated_cost(const detail::TaskNode& task,
                              const detail::DeviceState& device) const {
  double transfer = 0.0;
  if (!single_node_) {
    std::lock_guard<std::mutex> lock(memory_mutex_);
    for (const auto& view : task.buffers) {
      const DataHandle* h = view.handle;
      if (reads(view.mode) && !h->valid_on(device.node)) {
        const MemoryNodeId source = h->first_valid_node();
        if (source >= 0) {
          transfer += link_transfer_seconds(h->bytes(), source, device.node);
        }
      }
    }
  }
  return transfer + exec_estimate(task, device);
}

void Engine::estimated_cost_class_row(const detail::TaskNode& task,
                                      double* out) const {
  const std::size_t nc = classes_.size();
  for (std::size_t c = 0; c < nc; ++c) {
    // The representative's calibration history stands in for every member:
    // members are spec-identical, so their analytic estimates match and
    // their measured histories converge on the same kernels.
    out[c] = PerfModel::estimate_in(*task.model_row, classes_[c].representative,
                                    task.flops, class_gflops_[c]);
  }
  if (single_node_) return;  // no replicas to move, nothing to add
  std::lock_guard<std::mutex> lock(memory_mutex_);
  for (std::size_t c = 0; c < nc; ++c) {
    const MemoryNodeId node = classes_[c].node;
    for (const auto& view : task.buffers) {
      const DataHandle* h = view.handle;
      if (!reads(view.mode) || h->valid_on(node)) continue;
      const MemoryNodeId source = h->first_valid_node();
      if (source >= 0) {
        out[c] += link_transfer_seconds(h->bytes(), source, node);
      }
    }
  }
}

// --- Worker loop -------------------------------------------------------------------

void Engine::worker_loop(DeviceId device_id) {
  detail::DeviceState& device = devices_[static_cast<std::size_t>(device_id)];
  for (;;) {
    detail::TaskNode* task = dispatch_->wait_pop(device_id, stopping_);
    if (task == nullptr) return;  // stopping
    run_task_hybrid(*task, device);
  }
}

void Engine::run_task_hybrid(detail::TaskNode& task,
                             detail::DeviceState& device) {
  task.state.store(detail::TaskState::kRunning);
  task.ran_on = device.id;
  ++task.attempts;
  if (obs::metrics_enabled()) {
    ready_queue_gauge().set(static_cast<std::int64_t>(dispatch_->size()));
  }
  record_decision(task, device);
  const double transfer = acquire_buffers(task, device.node);
  task.start_vtime =
      std::max(device.avail_vtime.load(), task.ready_vtime.load()) +
      config_.task_overhead_us * 1e-6;
  task.transfer_seconds = transfer;
  if (flight_) {
    // This worker owns the device ring: single producer by construction.
    obs::FlightRing& ring = flight_->ring(static_cast<std::size_t>(device.id));
    ring.record(obs::FlightKind::kQueueDepth, 0, 0, device.id,
                task.start_vtime, 0.0,
                static_cast<double>(dispatch_->size()));
    ring.record(obs::FlightKind::kTaskStart,
                static_cast<std::uint32_t>(task.attempts), task.id, device.id,
                task.start_vtime, 0.0, 0.0);
  }
  FaultPlan::Injection injected;
  if (fault_plan_) {
    injected = fault_plan_->decide(task.id, task.attempts, device.id,
                                   device.tasks_run);
  }

  // --- execute, no engine lock held ---
  // An injected fault suppresses execution entirely: kernels run in place
  // on host memory, so letting a doomed attempt run would corrupt the
  // inputs of its own retry.
  bool failed = injected.fail;
  std::string fail_reason = injected.reason;
  const Implementation* impl = task.codelet->find_impl(device.spec.kind);
  assert(impl != nullptr);
  double measured = 0.0;  // a body-less codelet costs no measurable time
  if (impl->fn && !failed) {
    ExecContext ctx;
    ctx.device = device.id;
    ctx.device_kind = device.spec.kind;
    ctx.buffers = &task.buffers;
    pdl::util::Stopwatch sw;
    failed = !run_attempt(*impl, ctx, fail_reason);
    measured = sw.elapsed_seconds();
  }
  double exec = 0.0;
  if (device.spec.kind == DeviceKind::kAccelerator) {
    // Simulated accelerator: host execution produced the data; the
    // virtual clock charges what the modeled device would have taken.
    exec = task.flops > 0.0
               ? task.flops / (device.spec.sustained_gflops * 1e9)
               : measured;
  } else {
    exec = measured;
  }
  exec += injected.delay_seconds;

  if (failed) {
    handle_task_failure(task, device, transfer, exec, fail_reason,
                        /*is_timeout=*/false);
    return;
  }
  const double limit = watchdog_limit(task, device);
  if (limit > 0.0 && exec > limit) {
    handle_task_failure(task, device, transfer, exec,
                        "watchdog: execution exceeded limit",
                        /*is_timeout=*/true);
    return;
  }
  finalize_task(task, device, transfer, exec);
}

// --- Flight recorder ------------------------------------------------------------

std::vector<obs::FlightEvent> Engine::flight_snapshot() const {
  if (!flight_) return {};
  return flight_->snapshot();
}

bool Engine::dump_flight_recorder(const std::string& prefix,
                                  const std::string& reason) const {
  if (!flight_ || prefix.empty()) return false;
  const std::vector<obs::FlightEvent> events = flight_->snapshot();
  // Resolve task labels up front: ids are dense from 1, and the label of a
  // wired task is immutable, so one pass under submit_mutex_ suffices.
  std::vector<std::string> labels;
  {
    std::lock_guard<std::mutex> lock(submit_mutex_);
    labels.resize(static_cast<std::size_t>(next_task_id_));
    for (TaskId id = 1; id < next_task_id_; ++id) {
      labels[static_cast<std::size_t>(id)] =
          tasks_[static_cast<std::size_t>(id - 1)].label;
    }
  }
  const obs::FlightLabelFn label = [&labels](std::uint64_t task) {
    return task < labels.size() ? labels[static_cast<std::size_t>(task)]
                                : std::string();
  };
  bool ok = true;
  {
    std::ofstream out(prefix + ".jsonl", std::ios::binary);
    out << obs::flight_events_jsonl(events, reason, flight_->produced(),
                                    flight_->overwritten(), label);
    ok = static_cast<bool>(out) && ok;
  }
  {
    std::ofstream out(prefix + ".trace.json", std::ios::binary);
    out << flight_chrome_trace(events, label);
    ok = static_cast<bool>(out) && ok;
  }
  return ok;
}

void Engine::maybe_auto_dump(const char* reason) const {
  if (!flight_ || flight_dump_prefix_.empty()) return;
  bool expected = false;
  if (!flight_dumped_.compare_exchange_strong(expected, true)) return;
  dump_flight_recorder(flight_dump_prefix_, reason);
}

EngineStats Engine::stats() const {
  EngineStats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& device : devices_) {
      s.makespan_seconds = std::max(s.makespan_seconds, device.avail_vtime.load());
      DeviceStats ds;
      ds.name = device.spec.name;
      ds.kind = device.spec.kind;
      ds.tasks_run = device.tasks_run;
      ds.busy_seconds = device.busy_seconds;
      ds.transfer_seconds = device.transfer_seconds;
      ds.failures = device.failures;
      ds.blacklisted = device.blacklisted.load();
      ds.mtbf_hours = device.spec.mtbf_hours;
      ds.declared_gflops = device.spec.sustained_gflops;
      s.devices.push_back(std::move(ds));
      s.tasks_completed += device.tasks_run;
      s.trace.insert(s.trace.end(), device.trace.begin(), device.trace.end());
    }
  }
  // Per-device traces are each in completion order; merge into the global
  // virtual-clock order the callers expect.
  std::stable_sort(s.trace.begin(), s.trace.end(),
                   [](const TaskTrace& a, const TaskTrace& b) {
                     if (a.start_vtime != b.start_vtime) {
                       return a.start_vtime < b.start_vtime;
                     }
                     return a.id < b.id;
                   });
  if (dispatch_) s.steals = dispatch_->steals();
  {
    std::lock_guard<std::mutex> mem(memory_mutex_);
    s.transfers = transfers_;
    s.transfer_bytes = transfer_bytes_;
    s.evictions = evictions_;
    s.writeback_bytes = writeback_bytes_;
  }
  s.link_spec_misses = link_spec_misses_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> fault(fault_mutex_);
    s.task_failures = task_failures_;
    s.retries = retries_;
    s.timeouts = timeouts_;
    s.reroutes = reroutes_;
    s.devices_blacklisted = blacklists_;
    s.failed_tasks = failed_tasks_;
    s.cancelled_tasks = cancelled_tasks_;
    s.errors = task_errors_;
    s.fault_events = fault_events_;
    s.attempts = attempts_;
  }
  s.scheduler = config_.scheduler;
  s.task_overhead_us = config_.task_overhead_us;
  {
    std::lock_guard<std::mutex> lock(submit_mutex_);
    s.tasks_submitted = tasks_submitted_;
    s.perf_model_seeds = perf_model_seeds_;
  }
  // Immutable after construction; no lock needed.
  s.perf_store_entries = perf_store_entries_;
  s.perf_store_rejected = perf_store_rejected_;
  if (flight_) {
    s.flight_records = flight_->produced();
    s.flight_overwritten = flight_->overwritten();
  }
  const double first = first_submit_wall_.load();
  const double drained = drain_wall_.load();
  if (first >= 0.0 && drained > first) {
    s.wall_seconds = drained - first;
  }
  {
    std::lock_guard<std::mutex> lock(decisions_mutex_);
    s.decisions = decisions_;
  }
  return s;
}

}  // namespace starvm
