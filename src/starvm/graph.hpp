// Static task-graph extraction: a declarative recorder that captures the
// buffers, accesses, and dependencies of a starvm program WITHOUT executing
// it. Analysis tools (pdlcheck) build a TaskGraph from annotated programs
// (or by hand in tests) and query it for the facts static rules need:
//
//   * the dependency edges Engine::submit would infer (sequential
//     consistency per buffer: RAW, WAR, WAW) plus explicit deps,
//   * happens-before reachability over those edges,
//   * byte-range overlap between distinct buffers (partition aliasing,
//     double registration over the same allocation),
//   * declared-dependency cycles — which the engine silently *breaks*
//     (forward task ids are treated as already satisfied), making them a
//     static bug worth surfacing rather than a runtime deadlock.
//
// Buffers use abstract base addresses: add_buffer() allocates disjoint
// ranges, add_buffer_at() places a buffer at a caller-chosen base so
// aliasing can be modeled, and partition() splits a range into contiguous
// child blocks exactly like Engine::partition_*.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdl/diagnostics.hpp"
#include "starvm/types.hpp"

namespace starvm {

/// One buffer the recorded program registers (or a partition block of one).
struct GraphBuffer {
  std::string name;
  std::uint64_t base = 0;   ///< Abstract start address of the byte range.
  std::uint64_t bytes = 0;  ///< Range length; may be 0 (empty tail block).
  int parent = -1;          ///< Index of the parent buffer; -1 for roots.
  std::vector<int> children;
  pdl::SourceLoc loc;  ///< Source location of the registration, if known.

  // Accuracy contract (A7xx, docs/ANALYSIS.md): a declared tolerance is the
  // maximum acceptable per-element absolute error of the buffer's final
  // contents; a declared range is the maximum |value| the program feeds in
  // through this buffer (the magnitude the error bounds are evaluated at).
  double tolerance = 0.0;
  bool has_tolerance = false;
  pdl::SourceLoc tolerance_loc;  ///< Where the tolerance was declared.
  double range = 0.0;
  bool has_range = false;
};

/// One buffer access of a recorded task.
struct GraphAccess {
  int buffer = -1;
  Access mode = Access::kRead;
};

/// One recorded task in submission order.
struct GraphTask {
  std::string name;
  std::vector<GraphAccess> accesses;
  std::vector<int> declared_deps;  ///< Task indices as written by the program.
  /// Useful work of the task for analytic cost models; 0 = unknown (static
  /// analyses fall back to the perf model's default estimate).
  double flops = 0.0;
  /// Declared error model of the implementation this task runs (A7xx);
  /// kUnspecified tasks make every bound they write unknown (A702).
  ErrorModel error_model;
  /// Accumulation depth the error model is evaluated at; 0 falls back to
  /// the model's own default depth, then to 1.
  double depth = 0.0;
  pdl::SourceLoc loc;
};

class TaskGraph {
 public:
  // --- Recording ------------------------------------------------------------

  /// Register a root buffer on a fresh, disjoint abstract range.
  int add_buffer(std::string name, std::uint64_t bytes,
                 pdl::SourceLoc loc = {});

  /// Register a root buffer at an explicit base address. Overlapping an
  /// existing range is allowed — that is precisely how double registration
  /// over one allocation is modeled. Zero-byte buffers are legal and never
  /// overlap anything (empty tail blocks). A range whose `base + bytes`
  /// would wrap past 2^64 is rejected (returns -1): wrapped ranges would
  /// make every overlap and footprint query downstream (A403/A501)
  /// garbage-in.
  int add_buffer_at(std::string name, std::uint64_t base, std::uint64_t bytes,
                    pdl::SourceLoc loc = {});

  /// Split a buffer's range into `nblocks` contiguous child blocks (exactly
  /// `nblocks` entries; tail blocks may be empty), mirroring
  /// Engine::partition_vector.
  std::vector<int> partition(int buffer, int nblocks);

  /// Record a task touching `accesses`, optionally with explicitly declared
  /// dependencies (indices of other tasks, forward references permitted —
  /// the engine would silently satisfy those, see declared-cycle notes).
  int add_task(std::string name, std::vector<GraphAccess> accesses,
               std::vector<int> declared_deps = {}, pdl::SourceLoc loc = {});

  /// Attach an analytic cost to a recorded task (see GraphTask::flops).
  void set_task_flops(int task, double flops);

  /// Declare the maximum acceptable absolute error of a buffer's final
  /// contents (A701 checks propagated bounds against it). `loc` is the
  /// declaration site the finding should point at.
  void set_buffer_tolerance(int buffer, double tolerance,
                            pdl::SourceLoc loc = {});

  /// Declare the maximum |value| the program feeds in through a buffer —
  /// the magnitude error bounds are evaluated at. Without ranges on the
  /// inputs every rounding bound is vacuous (A704).
  void set_buffer_range(int buffer, double range);

  /// Attach the implementation's declared error model to a recorded task.
  void set_task_error_model(int task, ErrorModel model);

  /// Accumulation depth the task's error model is evaluated at (e.g. the k
  /// extent of a GEMM); see GraphTask::depth.
  void set_task_depth(int task, double depth);

  // --- Introspection --------------------------------------------------------

  const std::vector<GraphBuffer>& buffers() const { return buffers_; }
  const std::vector<GraphTask>& tasks() const { return tasks_; }

  struct Edge {
    enum Kind { kExplicit, kRaw, kWar, kWaw };
    int from = -1;  ///< Must complete first.
    int to = -1;    ///< Depends on `from`.
    Kind kind = kExplicit;
    int buffer = -1;  ///< Buffer inducing the edge; -1 for explicit deps.
  };

  /// The effective dependency edges of the recorded program, replaying
  /// Engine::submit's inference in submission order: reads depend on the
  /// buffer's last writer (RAW); writes depend on the last writer (WAW) and
  /// on every reader since (WAR), then become the last writer. Explicit
  /// declared deps are included only when they point backwards to an
  /// existing task — forward/unknown ids are dropped exactly like the
  /// engine drops them. Set `include_inferred` to false to get only the
  /// explicit edges (the ordering a relaxed-consistency runtime would keep).
  std::vector<Edge> edges(bool include_inferred = true) const;

  /// Happens-before closure over a set of edges.
  class Reachability {
   public:
    Reachability(int n, std::vector<bool> bits)
        : n_(n), bits_(std::move(bits)) {}
    /// True when task `a` is ordered before task `b`.
    bool before(int a, int b) const { return bits_[static_cast<std::size_t>(a) * n_ + b]; }
    /// True when the pair is ordered either way.
    bool ordered(int a, int b) const { return before(a, b) || before(b, a); }

   private:
    int n_;
    std::vector<bool> bits_;
  };

  Reachability reachability(const std::vector<Edge>& edges) const;

  /// True when the byte ranges of two distinct buffers intersect.
  bool ranges_overlap(int a, int b) const;

  /// True when one buffer is an ancestor of the other in the partition
  /// tree (parent/block overlap) as opposed to two independent
  /// registrations over one range — rules word their findings differently.
  bool same_lineage(int a, int b) const;

  /// Root ancestor of a buffer in the partition tree (itself for roots);
  /// -1 for out-of-range indices. Capacity analysis accounts whole
  /// allocations: a transfer of any partition block moves its root.
  int root_of(int buffer) const;

  /// Liveness of a root allocation in submission order: the first and last
  /// task touching the root or any of its partition blocks.
  struct LiveInterval {
    int first_task = -1;  ///< -1 when no task ever touches the root.
    int last_task = -1;
  };

  /// One LiveInterval per buffer; non-root buffers carry the interval of
  /// their root so footprint queries can index by any handle.
  std::vector<LiveInterval> root_live_intervals() const;

  /// Sum of all root-buffer bytes — the total working set assuming every
  /// allocation is live at once (the capacity analyzer's upper bound).
  std::uint64_t total_root_bytes() const;

  /// A declared-dependency cycle (task indices in cycle order), or empty.
  /// Cycles can only arise through forward declared deps; the engine
  /// silently treats those as satisfied, so a cycle means the program's
  /// stated ordering is unenforceable.
  std::vector<int> find_declared_cycle() const;

 private:
  std::vector<GraphBuffer> buffers_;
  std::vector<GraphTask> tasks_;
  std::uint64_t next_base_ = 0;
};

}  // namespace starvm
