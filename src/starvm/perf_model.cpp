#include "starvm/perf_model.hpp"

#include <cstddef>
#include <fstream>
#include <sstream>

namespace starvm {

namespace {
// Weight of the newest sample; high enough to track phase changes, low
// enough to smooth scheduler-induced jitter.
constexpr double kEmaAlpha = 0.25;
// Estimate when neither history nor a FLOPs model exists.
constexpr double kDefaultEstimateSeconds = 1e-3;

double analytic_estimate(double flops, double device_gflops) {
  if (flops > 0.0 && device_gflops > 0.0) {
    return flops / (device_gflops * 1e9);
  }
  return kDefaultEstimateSeconds;
}
}  // namespace

PerfModel::Row& PerfModel::row(std::string_view codelet) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = history_.find(codelet);
  if (it == history_.end()) {
    it = history_.emplace(std::string(codelet), std::make_unique<Row>()).first;
  }
  return *it->second;
}

PerfModel::Row* PerfModel::find_row(std::string_view codelet) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = history_.find(codelet);
  return it == history_.end() ? nullptr : it->second.get();
}

double PerfModel::estimate_in(const Row& row, int device, double flops,
                              double device_gflops) {
  if (device >= 0 && device < kMaxDevices) {
    const DeviceHistory& h = row[static_cast<std::size_t>(device)];
    if (h.count.load(std::memory_order_acquire) > 0) {
      return h.ema_seconds.load(std::memory_order_relaxed);
    }
    if (h.seeded.load(std::memory_order_acquire) != 0) {
      return analytic_estimate(flops, h.ema_gflops.load(std::memory_order_relaxed));
    }
  }
  return analytic_estimate(flops, device_gflops);
}

void PerfModel::observe_in(Row& row, int device, double seconds, double flops) {
  if (device < 0 || device >= kMaxDevices) return;
  DeviceHistory& h = row[static_cast<std::size_t>(device)];
  const std::uint64_t count = h.count.load(std::memory_order_relaxed);
  const double prev_rate = h.ema_gflops.load(std::memory_order_relaxed);
  const bool seeded =
      count == 0 && h.seeded.load(std::memory_order_relaxed) != 0;
  double ema;
  if (count > 0) {
    ema = kEmaAlpha * seconds +
          (1.0 - kEmaAlpha) * h.ema_seconds.load(std::memory_order_relaxed);
  } else if (seeded && flops > 0.0 && prev_rate > 0.0) {
    // First real sample: blend with the declared-rate prior (expressed in
    // seconds through this task's own FLOPs) rather than slamming the
    // estimate from one measurement.
    ema = kEmaAlpha * seconds + (1.0 - kEmaAlpha) * (flops / (prev_rate * 1e9));
  } else {
    ema = seconds;
  }
  if (flops > 0.0 && seconds > 0.0) {
    const double rate = flops / (seconds * 1e9);
    const bool have_prior = prev_rate > 0.0 && (count > 0 || seeded);
    const double rate_ema =
        have_prior ? kEmaAlpha * rate + (1.0 - kEmaAlpha) * prev_rate : rate;
    h.ema_gflops.store(rate_ema, std::memory_order_relaxed);
  }
  h.ema_seconds.store(ema, std::memory_order_relaxed);
  h.count.store(count + 1, std::memory_order_release);
}

bool PerfModel::seed_in(Row& row, int device, double gflops) {
  if (device < 0 || device >= kMaxDevices || gflops <= 0.0) return false;
  DeviceHistory& h = row[static_cast<std::size_t>(device)];
  if (h.count.load(std::memory_order_relaxed) > 0 ||
      h.seeded.load(std::memory_order_relaxed) != 0) {
    return false;
  }
  h.ema_gflops.store(gflops, std::memory_order_relaxed);
  h.seeded.store(1, std::memory_order_release);
  return true;
}

std::optional<double> PerfModel::measured_gflops_in(const Row& row, int device) {
  if (device < 0 || device >= kMaxDevices) return std::nullopt;
  const DeviceHistory& h = row[static_cast<std::size_t>(device)];
  if (h.count.load(std::memory_order_acquire) == 0) return std::nullopt;
  const double rate = h.ema_gflops.load(std::memory_order_relaxed);
  if (rate <= 0.0) return std::nullopt;
  return rate;
}

double PerfModel::estimate(std::string_view codelet, int device, double flops,
                           double device_gflops) const {
  if (const Row* row = find_row(codelet)) {
    return estimate_in(*row, device, flops, device_gflops);
  }
  return analytic_estimate(flops, device_gflops);
}

std::optional<double> PerfModel::history_estimate(std::string_view codelet,
                                                  int device) const {
  if (device < 0 || device >= kMaxDevices) return std::nullopt;
  const Row* row = find_row(codelet);
  if (row == nullptr) return std::nullopt;
  const DeviceHistory& h = (*row)[static_cast<std::size_t>(device)];
  if (h.count.load(std::memory_order_acquire) == 0) return std::nullopt;
  return h.ema_seconds.load(std::memory_order_relaxed);
}

double PerfModel::default_estimate_seconds() { return kDefaultEstimateSeconds; }

void PerfModel::observe(std::string_view codelet, int device, double seconds) {
  if (device < 0 || device >= kMaxDevices) return;
  observe_in(row(codelet), device, seconds);
}

std::uint64_t PerfModel::samples(std::string_view codelet, int device) const {
  if (device < 0 || device >= kMaxDevices) return 0;
  const Row* row = find_row(codelet);
  if (row == nullptr) return 0;
  return (*row)[static_cast<std::size_t>(device)].count.load(
      std::memory_order_acquire);
}

bool PerfModel::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# starvm perf-model calibration v1\n";
  out.precision(17);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [codelet, row] : history_) {
    for (int device = 0; device < kMaxDevices; ++device) {
      const DeviceHistory& h = (*row)[static_cast<std::size_t>(device)];
      const std::uint64_t count = h.count.load(std::memory_order_acquire);
      if (count == 0) continue;
      out << codelet << ' ' << device << ' '
          << h.ema_seconds.load(std::memory_order_relaxed) << ' ' << count
          << '\n';
    }
  }
  return static_cast<bool>(out);
}

bool PerfModel::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  std::lock_guard<std::mutex> lock(mutex_);
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string codelet;
    int device = 0;
    double ema = 0.0;
    std::uint64_t count = 0;
    if (!(fields >> codelet >> device >> ema >> count) || device < 0 ||
        device >= kMaxDevices) {
      return false;
    }
    auto it = history_.find(codelet);
    if (it == history_.end()) {
      it = history_.emplace(std::move(codelet), std::make_unique<Row>()).first;
    }
    DeviceHistory& h = (*it->second)[static_cast<std::size_t>(device)];
    h.ema_seconds.store(ema, std::memory_order_relaxed);
    h.count.store(count, std::memory_order_release);
  }
  return true;
}

std::vector<PerfModel::Sample> PerfModel::snapshot() const {
  std::vector<Sample> samples;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [codelet, row] : history_) {
    for (int device = 0; device < kMaxDevices; ++device) {
      const DeviceHistory& h = (*row)[static_cast<std::size_t>(device)];
      const std::uint64_t count = h.count.load(std::memory_order_acquire);
      if (count == 0) continue;
      samples.push_back(Sample{codelet, device,
                               h.ema_seconds.load(std::memory_order_relaxed),
                               count,
                               h.ema_gflops.load(std::memory_order_relaxed)});
    }
  }
  return samples;
}

void PerfModel::preload(std::string_view codelet, int device,
                        double ema_seconds, std::uint64_t count,
                        double ema_gflops) {
  if (device < 0 || device >= kMaxDevices || count == 0) return;
  DeviceHistory& h = row(codelet)[static_cast<std::size_t>(device)];
  h.ema_seconds.store(ema_seconds, std::memory_order_relaxed);
  h.ema_gflops.store(ema_gflops, std::memory_order_relaxed);
  h.count.store(count, std::memory_order_release);
}

double transfer_seconds(std::size_t bytes, double bandwidth_gbs, double latency_us) {
  if (bandwidth_gbs <= 0.0) return latency_us * 1e-6;
  return latency_us * 1e-6 + static_cast<double>(bytes) / (bandwidth_gbs * 1e9);
}

}  // namespace starvm
