#include "starvm/perf_model.hpp"

#include <cstddef>
#include <fstream>
#include <sstream>

namespace starvm {

namespace {
// Weight of the newest sample; high enough to track phase changes, low
// enough to smooth scheduler-induced jitter.
constexpr double kEmaAlpha = 0.25;
// Estimate when neither history nor a FLOPs model exists.
constexpr double kDefaultEstimateSeconds = 1e-3;
}  // namespace

double PerfModel::estimate(const std::string& codelet, int device, double flops,
                           double device_gflops) const {
  const auto it = history_.find({codelet, device});
  if (it != history_.end() && it->second.count > 0) {
    return it->second.ema_seconds;
  }
  if (flops > 0.0 && device_gflops > 0.0) {
    return flops / (device_gflops * 1e9);
  }
  return kDefaultEstimateSeconds;
}

void PerfModel::observe(const std::string& codelet, int device, double seconds) {
  History& h = history_[{codelet, device}];
  if (h.count == 0) {
    h.ema_seconds = seconds;
  } else {
    h.ema_seconds = kEmaAlpha * seconds + (1.0 - kEmaAlpha) * h.ema_seconds;
  }
  ++h.count;
}

std::uint64_t PerfModel::samples(const std::string& codelet, int device) const {
  const auto it = history_.find({codelet, device});
  return it == history_.end() ? 0 : it->second.count;
}

bool PerfModel::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# starvm perf-model calibration v1\n";
  out.precision(17);
  for (const auto& [key, history] : history_) {
    out << key.first << ' ' << key.second << ' ' << history.ema_seconds << ' '
        << history.count << '\n';
  }
  return static_cast<bool>(out);
}

bool PerfModel::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string codelet;
    int device = 0;
    History history;
    if (!(fields >> codelet >> device >> history.ema_seconds >> history.count)) {
      return false;
    }
    history_[{codelet, device}] = history;
  }
  return true;
}

double transfer_seconds(std::size_t bytes, double bandwidth_gbs, double latency_us) {
  if (bandwidth_gbs <= 0.0) return latency_us * 1e-6;
  return latency_us * 1e-6 + static_cast<double>(bytes) / (bandwidth_gbs * 1e9);
}

}  // namespace starvm
