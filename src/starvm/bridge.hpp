// PDL -> starvm bridge: construct an engine configuration directly from a
// platform description.
//
// This is the paper's central claim made executable: "by varying the target
// PDL descriptor our compiler can generate code for different target
// architectures without the need to modify the source program" (§I). The
// generated programs differ only in which Platform they load; this bridge
// turns that Platform into the device set the runtime schedules on.
//
// Mapping rules:
//   * Worker PUs with ARCHITECTURE=x86_core become CPU devices (one per
//     `quantity`), their sustained rate from SUSTAINED_GFLOPS (upward-
//     inherited, so it may live on the Master).
//   * Worker PUs with any other architecture (gpu, spe, ...) become
//     simulated accelerator devices; link parameters come from the
//     Interconnect declared between their controller and them.
//   * A platform with no Worker PUs (the paper's "single" configuration)
//     yields one CPU device representing the Master itself.
//   * Like StarPU on the paper's testbed, each accelerator dedicates one
//     CPU core as its driver: one CPU device is removed per accelerator
//     (never below zero). Disable via BridgeOptions.
#pragma once

#include "pdl/model.hpp"
#include "starvm/device.hpp"
#include "util/result.hpp"

namespace starvm {

struct BridgeOptions {
  SchedulerKind scheduler = SchedulerKind::kHeft;
  ExecutionMode mode = ExecutionMode::kHybrid;
  /// Remove one CPU device per accelerator (StarPU driver cores).
  bool dedicate_driver_cores = true;
  /// Sustained rate when a PU declares neither SUSTAINED_GFLOPS nor
  /// PEAK_GFLOPS.
  double default_cpu_gflops = 5.0;
  double default_accel_gflops = 50.0;
  /// Forwarded to EngineConfig::record_decisions (scheduler decision log).
  bool record_decisions = false;
};

/// Build an engine configuration from a platform description.
/// Fails when the platform has no Master.
pdl::util::Result<EngineConfig> engine_config_from_platform(
    const pdl::Platform& platform, const BridgeOptions& options = {});

}  // namespace starvm
