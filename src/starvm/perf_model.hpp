// Per-(codelet, device) execution-time estimation.
//
// StarPU's model-based schedulers rely on calibrated per-codelet history;
// we reproduce that with an exponential moving average of observed costs,
// falling back to the analytic FLOPs / sustained-GFLOPS estimate before
// history exists (paper §II: PDL properties feed performance prediction).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace starvm {

class PerfModel {
 public:
  /// Estimated seconds for a task of `flops` useful work on device `device`
  /// running at `device_gflops`. History, when present, wins.
  double estimate(const std::string& codelet, int device, double flops,
                  double device_gflops) const;

  /// Record an observed execution time (seconds).
  void observe(const std::string& codelet, int device, double seconds);

  /// Number of observations recorded for the pair.
  std::uint64_t samples(const std::string& codelet, int device) const;

  /// Persist the calibration history (StarPU keeps per-codelet calibration
  /// across runs; so do we). Plain text, one "codelet device ema count"
  /// record per line; codelet names must not contain whitespace.
  bool save(const std::string& path) const;

  /// Merge a previously saved history (existing pairs are overwritten).
  /// False when the file is missing or malformed.
  bool load(const std::string& path);

 private:
  struct History {
    double ema_seconds = 0.0;
    std::uint64_t count = 0;
  };
  std::map<std::pair<std::string, int>, History> history_;
};

/// Analytic transfer time: latency + bytes / bandwidth.
double transfer_seconds(std::size_t bytes, double bandwidth_gbs, double latency_us);

}  // namespace starvm
