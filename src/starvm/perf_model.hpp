// Per-(codelet, device) execution-time estimation.
//
// StarPU's model-based schedulers rely on calibrated per-codelet history;
// we reproduce that with an exponential moving average of observed costs,
// falling back to the analytic FLOPs / sustained-GFLOPS estimate before
// history exists (paper §II: PDL properties feed performance prediction).
//
// Thread-safe two ways:
//  - The name-keyed API (estimate/observe/samples/save/load) takes an
//    internal mutex and is safe from any thread.
//  - The hot path avoids that mutex entirely: row() hands out a stable
//    pointer to a codelet's calibration row once (at task wiring), and
//    estimate_in / observe_in operate on the row's atomic cells lock-free.
//    Each (codelet, device) cell has a single writer — the device's worker
//    thread — so a relaxed-store / release-count protocol suffices; readers
//    pair it with an acquire load of the count.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace starvm {

class PerfModel {
 public:
  /// Row width; engines enforce far fewer devices than this at construction.
  static constexpr int kMaxDevices = 64;

  /// One (codelet, device) calibration cell. `count` is released *after*
  /// `ema_seconds` so an estimator that observes count > 0 reads a real
  /// sample, never a half-initialized one. `ema_gflops` tracks the observed
  /// compute rate (size-independent, so cross-variant comparison works even
  /// when variants ran on different problem sizes); before any observation
  /// it may hold a declared-rate seed, flagged by `seeded` with the same
  /// store-payload-then-release-flag protocol.
  struct DeviceHistory {
    std::atomic<double> ema_seconds{0.0};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> ema_gflops{0.0};
    std::atomic<std::uint32_t> seeded{0};
  };
  /// A codelet's calibration row, indexed by device id. Address is stable
  /// for the model's lifetime — safe to cache on task nodes.
  using Row = std::array<DeviceHistory, kMaxDevices>;

  /// Stable pointer to `codelet`'s row, created empty on first use. Takes
  /// the mutex; call once per codelet and cache, not once per task.
  Row& row(std::string_view codelet);

  /// Lock-free estimate from a cached row: history wins, then a seeded
  /// declared rate, else the analytic FLOPs / sustained-GFLOPS model, else
  /// a fixed default. Seeding with the device's own sustained rate is
  /// byte-identical to the unseeded analytic fallback — warm and cold
  /// starts share this one code path.
  static double estimate_in(const Row& row, int device, double flops,
                            double device_gflops);

  /// Lock-free observation into a cached row (single writer per cell).
  /// When `flops` is known the cell's rate EMA is updated too; the first
  /// real sample blends with a declared-rate seed (when present) instead
  /// of slamming the estimate from a single measurement.
  static void observe_in(Row& row, int device, double seconds,
                         double flops = 0.0);

  /// Seed a cell's rate estimate from a declared SUSTAINED_GFLOPS value.
  /// No-op (returns false) once the cell has history, a preloaded store
  /// entry, or a prior seed. Called at task wiring (before the codelet's
  /// first dispatch), so it never races the cell's single observer.
  static bool seed_in(Row& row, int device, double gflops);

  /// Observed rate EMA for a cell, or nullopt before any observation
  /// (seeds don't count: they are priors, not measurements).
  static std::optional<double> measured_gflops_in(const Row& row, int device);

  /// Estimated seconds for a task of `flops` useful work on device `device`
  /// running at `device_gflops`. History, when present, wins.
  double estimate(std::string_view codelet, int device, double flops,
                  double device_gflops) const;

  /// Calibrated estimate only: the EMA when the pair has history, nullopt
  /// otherwise. Side-effect-free — never creates a row, so static analyses
  /// (schedule simulation) can probe an engine's model without mutating it.
  std::optional<double> history_estimate(std::string_view codelet,
                                         int device) const;

  /// The fixed fallback estimate used when neither history nor a FLOPs
  /// model exists; exposed so static analyses produce the same numbers.
  static double default_estimate_seconds();

  /// Record an observed execution time (seconds).
  void observe(std::string_view codelet, int device, double seconds);

  /// Number of observations recorded for the pair.
  std::uint64_t samples(std::string_view codelet, int device) const;

  /// Persist the calibration history (StarPU keeps per-codelet calibration
  /// across runs; so do we). Plain text, one "codelet device ema count"
  /// record per line; codelet names must not contain whitespace.
  bool save(const std::string& path) const;

  /// Merge a previously saved history (existing pairs are overwritten).
  /// False when the file is missing or malformed.
  bool load(const std::string& path);

  /// One calibrated (codelet, device) cell, as exported to / imported from
  /// the persisted perf store (perf_store.hpp).
  struct Sample {
    std::string codelet;
    int device = 0;
    double ema_seconds = 0.0;
    std::uint64_t count = 0;
    double ema_gflops = 0.0;  ///< observed rate EMA; 0 = rate never known
  };

  /// Every cell with real history (count > 0), in deterministic
  /// codelet-then-device order. Seed-only cells are omitted: priors are
  /// re-derived from the descriptor, not persisted.
  std::vector<Sample> snapshot() const;

  /// Install a persisted cell. Overwrites any existing history for the
  /// pair; intended for engine start, before workers observe anything.
  void preload(std::string_view codelet, int device, double ema_seconds,
               std::uint64_t count, double ema_gflops);

 private:
  Row* find_row(std::string_view codelet) const;

  /// Rows are heap-allocated so map rebalancing never moves them; the map
  /// itself (insertion only) is guarded by the mutex, the cells are not.
  using HistoryMap = std::map<std::string, std::unique_ptr<Row>, std::less<>>;
  HistoryMap history_;
  mutable std::mutex mutex_;
};

/// Analytic transfer time: latency + bytes / bandwidth.
double transfer_seconds(std::size_t bytes, double bandwidth_gbs, double latency_us);

}  // namespace starvm
