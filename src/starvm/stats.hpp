// Execution statistics and per-task traces reported by the engine.
//
// The modeled (virtual-clock) makespan is the quantity Figure-5 style
// benches report; wall_seconds is the real elapsed time, meaningful for
// CPU-only configurations in hybrid mode.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "starvm/types.hpp"

namespace starvm {

struct TaskTrace {
  TaskId id = 0;
  std::string label;
  DeviceId device = -1;
  double start_vtime = 0.0;
  double finish_vtime = 0.0;
  double transfer_seconds = 0.0;
  double exec_seconds = 0.0;
  double flops = 0.0;  ///< work estimate from the codelet's flops model
  /// Virtual time when every dependency had finished; start - ready is the
  /// task's queue wait (scheduling + device contention). Appended last so
  /// positional initializers predating it stay valid (defaults to 0).
  double ready_vtime = 0.0;
};

struct DeviceStats {
  std::string name;
  DeviceKind kind = DeviceKind::kCpu;
  std::uint64_t tasks_run = 0;
  double busy_seconds = 0.0;      ///< modeled execution time on this device
  double transfer_seconds = 0.0;  ///< modeled transfer time paid by its tasks
  std::uint64_t failures = 0;     ///< failed execution attempts
  bool blacklisted = false;       ///< removed from scheduling after failures
  double mtbf_hours = 0.0;        ///< declared rate (PDL MTBF_HOURS); 0 = n/a
  /// Declared sustained rate (DeviceSpec::sustained_gflops): the baseline
  /// the profiler's measured-rate drift is computed against.
  double declared_gflops = 0.0;
};

/// One fault-tolerance decision, in virtual-clock order. Rendered as
/// instant events in the Chrome trace and emitted on the obs event sink.
struct FaultEvent {
  enum class Kind {
    kFailure,     ///< an execution attempt failed (injected, fail(), throw)
    kTimeout,     ///< watchdog rejected an attempt as too slow
    kRetry,       ///< a failed task was re-queued with backoff
    kBlacklist,   ///< a device stopped receiving work
    kReroute,     ///< a queued task moved off a blacklisted device
    kTaskFailed,  ///< a task permanently failed (budget exhausted / no device)
    kCancelled,   ///< a task was cancelled because a dependency failed
  };
  Kind kind = Kind::kFailure;
  double vtime = 0.0;
  TaskId task = 0;      ///< 0 when the event concerns a device only
  DeviceId device = -1;
  int attempt = 0;
  std::string detail;
};

const char* to_string(FaultEvent::Kind kind);

/// One execution attempt in a task's fault-tolerance history. Every attempt
/// that ends (success, failure, timeout) and every forced move (reroute off
/// a blacklisted device, cancellation) appends an entry, so the full chain
/// — which device, which attempt number, why it ended — survives aggregation
/// into wait_all()'s one-line status. The explorer's A603/A604 oracles and
/// EngineStats::errors both read this.
struct TaskAttempt {
  enum class Outcome {
    kCompleted,  ///< the attempt finished successfully
    kFailed,     ///< the attempt failed (injected fault, fail(), throw)
    kTimeout,    ///< the watchdog rejected the attempt
    kRerouted,   ///< queued work moved off a blacklisted device (no attempt)
    kCancelled,  ///< cancelled before running (failed dependency)
  };
  TaskId task = 0;
  int attempt = 0;        ///< attempt number (1-based); 0 for pre-run moves
  DeviceId device = -1;   ///< device of the attempt (target device for moves)
  Outcome outcome = Outcome::kCompleted;
  double vtime = 0.0;     ///< virtual time the attempt ended / the move happened
  std::string cause;      ///< failure reason / reroute or cancel explanation
};

const char* to_string(TaskAttempt::Outcome outcome);

/// One candidate the scheduler could have placed a task on, with the
/// finish time the cost model predicted at decision time. A candidate
/// stands for a whole placement class: `class_size` interchangeable
/// devices share the recorded estimate, so the log stays exact (every
/// distinct cost appears, the winner always among them) without one entry
/// per device of a 1k-worker group.
struct DecisionCandidate {
  DeviceId device = -1;
  std::string device_name;
  int class_size = 1;  ///< devices this candidate stands for
  double est_finish_vtime = 0.0;  ///< max(avail, ready) + transfer + exec estimate
};

/// A placement decision: which device won a task and what the alternatives
/// looked like. Recorded when EngineConfig::record_decisions is set or an
/// obs trace/event sink is active.
struct SchedulerDecision {
  TaskId task = 0;
  std::string label;
  DeviceId chosen = -1;
  double decided_vtime = 0.0;  ///< virtual time when the task started
  std::vector<DecisionCandidate> candidates;
};

struct EngineStats {
  double makespan_seconds = 0.0;  ///< modeled: max task finish on the virtual clock
  double wall_seconds = 0.0;      ///< real elapsed time between first submit and drain
  /// Tasks accepted by submit()/submit_batch() — counted once per task, so
  /// a batch of N adds N (not 1).
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_completed = 0;
  /// Per-task virtual overhead charged at dispatch
  /// (EngineConfig::task_overhead_us), echoed for the profiler.
  double task_overhead_us = 0.0;
  /// Tasks an idle worker took from a peer's ready queue instead of its own
  /// (real-threads mode with a per-device policy; 0 in the simulation modes).
  std::uint64_t steals = 0;
  std::uint64_t transfers = 0;
  std::uint64_t transfer_bytes = 0;
  std::uint64_t evictions = 0;        ///< replicas dropped for capacity
  std::uint64_t writeback_bytes = 0;  ///< evicted sole replicas copied home
  /// Transfers modeled with the hard-coded default link because a memory
  /// node had no owning device spec. Always 0 for engine-built platforms
  /// (every non-host node is created from a device); non-zero means a bug.
  std::uint64_t link_spec_misses = 0;

  // --- persisted perf models (docs/RUNTIME.md) ---
  /// Calibration cells preloaded from the perf store at construction.
  std::uint64_t perf_store_entries = 0;
  /// Stores refused at construction (version mismatch, corrupt file, or
  /// descriptor-hash mismatch); the run fell back to declared rates.
  std::uint64_t perf_store_rejected = 0;
  /// (codelet, device) cells seeded from declared SUSTAINED_GFLOPS at task
  /// wiring — the shared warm/cold code path for pre-history estimates.
  std::uint64_t perf_model_seeds = 0;

  // --- fault tolerance ---
  std::uint64_t task_failures = 0;        ///< failed attempts (incl. timeouts)
  std::uint64_t retries = 0;              ///< attempts re-queued after failure
  std::uint64_t timeouts = 0;             ///< attempts rejected by the watchdog
  std::uint64_t reroutes = 0;             ///< tasks moved off blacklisted devices
  std::uint64_t devices_blacklisted = 0;  ///< devices removed from scheduling
  std::uint64_t failed_tasks = 0;         ///< tasks that permanently failed
  std::uint64_t cancelled_tasks = 0;      ///< tasks cancelled by failed deps
  std::vector<std::string> errors;        ///< one message per failed task
  std::vector<FaultEvent> fault_events;   ///< recovery log, virtual-clock order
  /// Full per-task attempt history (device, attempt #, cause) in the order
  /// attempts ended. Populated whenever the fault path is exercised; empty
  /// on a fault-free run.
  std::vector<TaskAttempt> attempts;

  // --- flight recorder ---
  std::uint64_t flight_records = 0;      ///< records produced across all rings
  std::uint64_t flight_overwritten = 0;  ///< records lost to ring wraparound

  SchedulerKind scheduler = SchedulerKind::kHeft;
  std::vector<DeviceStats> devices;
  std::vector<TaskTrace> trace;
  std::vector<SchedulerDecision> decisions;  ///< empty unless recording enabled
};

}  // namespace starvm
