// Execution statistics and per-task traces reported by the engine.
//
// The modeled (virtual-clock) makespan is the quantity Figure-5 style
// benches report; wall_seconds is the real elapsed time, meaningful for
// CPU-only configurations in hybrid mode.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "starvm/types.hpp"

namespace starvm {

struct TaskTrace {
  TaskId id = 0;
  std::string label;
  DeviceId device = -1;
  double start_vtime = 0.0;
  double finish_vtime = 0.0;
  double transfer_seconds = 0.0;
  double exec_seconds = 0.0;
  double flops = 0.0;  ///< work estimate from the codelet's flops model
};

struct DeviceStats {
  std::string name;
  DeviceKind kind = DeviceKind::kCpu;
  std::uint64_t tasks_run = 0;
  double busy_seconds = 0.0;      ///< modeled execution time on this device
  double transfer_seconds = 0.0;  ///< modeled transfer time paid by its tasks
};

/// One device the scheduler could have placed a task on, with the finish
/// time the cost model predicted at decision time.
struct DecisionCandidate {
  DeviceId device = -1;
  std::string device_name;
  double est_finish_vtime = 0.0;  ///< max(avail, ready) + transfer + exec estimate
};

/// A placement decision: which device won a task and what the alternatives
/// looked like. Recorded when EngineConfig::record_decisions is set or an
/// obs trace/event sink is active.
struct SchedulerDecision {
  TaskId task = 0;
  std::string label;
  DeviceId chosen = -1;
  double decided_vtime = 0.0;  ///< virtual time when the task started
  std::vector<DecisionCandidate> candidates;
};

struct EngineStats {
  double makespan_seconds = 0.0;  ///< modeled: max task finish on the virtual clock
  double wall_seconds = 0.0;      ///< real elapsed time between first submit and drain
  std::uint64_t tasks_completed = 0;
  std::uint64_t transfers = 0;
  std::uint64_t transfer_bytes = 0;
  std::uint64_t evictions = 0;        ///< replicas dropped for capacity
  std::uint64_t writeback_bytes = 0;  ///< evicted sole replicas copied home
  SchedulerKind scheduler = SchedulerKind::kHeft;
  std::vector<DeviceStats> devices;
  std::vector<TaskTrace> trace;
  std::vector<SchedulerDecision> decisions;  ///< empty unless recording enabled
};

}  // namespace starvm
