// Internal runtime state shared by engine.cpp and scheduler.cpp.
// Not part of the public API.
//
// Concurrency model (real-threads / kHybrid path — see docs/RUNTIME.md,
// "Scheduling & locking architecture"):
//   - Fields marked "immutable after wiring" are written while the task is
//     private to the submitting thread (under the engine's submit mutex)
//     and never change afterwards.
//   - `state`, `deps_remaining` and `ready_vtime` are atomics; task-state
//     transitions go through compare-exchange so exactly one thread wins a
//     kWaiting -> kReady (publish) or kWaiting -> kFailed (cancel) race.
//   - `successors`, `released` and the finish_vtime handoff to late
//     subscribers are guarded by the per-task `edge_mutex`.
//   - Each DeviceState embeds its own ReadyQueue (mutex + cv + deque); the
//     owning worker pops from the front, idle peers steal from the back.
// The virtual-clock simulation modes keep the single engine mutex and
// simply use the atomics with plain load/store semantics.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "starvm/codelet.hpp"
#include "starvm/device.hpp"
#include "starvm/perf_model.hpp"
#include "starvm/stats.hpp"
#include "starvm/types.hpp"

namespace starvm::detail {

enum class TaskState { kWaiting, kReady, kRunning, kDone, kFailed };

struct TaskNode {
  // --- immutable after wiring ---
  TaskId id = 0;
  const Codelet* codelet = nullptr;
  std::vector<BufferView> buffers;
  std::string label;
  double flops = 0.0;
  int priority = 0;
  /// Cached calibration row for `codelet` (set at wiring): lets workers and
  /// placement estimate/observe without the perf-model mutex or map lookup.
  PerfModel::Row* model_row = nullptr;
  /// Per-device-kind variant calibration rows (Codelet::calibration_alias,
  /// indexed by DeviceKind; null when no alias is set). Resolved at wiring
  /// like model_row; finalize additionally records observations here so the
  /// persisted perf store learns per-variant rates.
  std::array<PerfModel::Row*, 2> alias_rows{};

  // --- dependency tracking ---
  std::atomic<TaskState> state{TaskState::kWaiting};
  /// Unreleased predecessors + 1 "submission reference" that the submitter
  /// drops after wiring completes, so a task can never become ready while
  /// its edges are still being added.
  std::atomic<int> deps_remaining{1};
  /// Guards successors + released + the finish_vtime handoff.
  std::mutex edge_mutex;
  std::vector<TaskNode*> successors;
  /// True once finalize_task has swapped the successor list out; later
  /// subscribers read finish_vtime instead of adding an edge.
  bool released = false;

  /// Virtual time when all dependencies have finished (CAS-max updated).
  std::atomic<double> ready_vtime{0.0};
  /// Virtual interval this task occupied on its device (owner-written).
  double start_vtime = 0.0;
  double finish_vtime = 0.0;
  DeviceId ran_on = -1;
  double transfer_seconds = 0.0;  ///< modeled transfer cost paid by this task
  double exec_seconds = 0.0;      ///< measured or modeled execution cost

  // --- fault tolerance ---
  int attempts = 0;   ///< execution attempts started so far
  std::string error;  ///< why the task failed (kFailed only)
};

/// Raise an atomic virtual clock to at least `v` (concurrent max).
inline void vtime_raise(std::atomic<double>& clock, double v) {
  double cur = clock.load(std::memory_order_relaxed);
  while (cur < v && !clock.compare_exchange_weak(cur, v)) {
  }
}

/// Per-device ready queue for the real-threads path. The owning worker
/// pops from the front; idle peers steal from the back (oldest work first,
/// the classic Cilk/ABP orientation that minimizes owner interference).
struct ReadyQueue {
  std::mutex m;
  std::condition_variable cv;
  std::deque<TaskNode*> tasks;     ///< guarded by m
  std::uint64_t steals_out = 0;    ///< tasks stolen FROM this queue (by m)
  /// Workers currently blocked in cv.wait. Written under m (between the
  /// queue re-check and the wait, so a pusher holding m sees either the
  /// task consumed or the sleeper registered — no lost wakeup); atomic so
  /// heuristic reads (peer nudges) may skip the lock. Pushers skip the
  /// notify syscall entirely when this is zero: an awake worker re-polls
  /// the queue before it ever sleeps.
  std::atomic<int> sleepers{0};
};

struct DeviceState {
  DeviceSpec spec;
  DeviceId id = -1;
  MemoryNodeId node = kHostNode;

  /// Virtual time when the device next becomes free (raised by its worker;
  /// read by schedulers and decision recording).
  std::atomic<double> avail_vtime{0.0};
  /// HEFT bookkeeping: estimated completion of everything queued to it.
  /// Racy-by-design in hybrid mode (a stale read only degrades placement,
  /// never correctness); the simulation scheduler keeps its own copy.
  std::atomic<double> est_avail{0.0};

  ReadyQueue queue;  ///< hybrid path; unused by the simulation modes

  /// Completed-task trace, owner-written (worker thread or sim loop);
  /// merged and sorted by Engine::stats() after quiescence.
  std::vector<TaskTrace> trace;

  // --- statistics (owner-written) ---
  double busy_seconds = 0.0;
  double transfer_seconds = 0.0;
  std::uint64_t tasks_run = 0;

  // --- fault tolerance ---
  std::atomic<bool> blacklisted{false};  ///< no longer receives work
  int consecutive_failures = 0;  ///< reset on every successful attempt
  std::uint64_t failures = 0;    ///< failed attempts over the device's life
};

/// Devices that are interchangeable for placement, grouped once at engine
/// construction: same kind, same modeled rate, same link parameters and the
/// same memory node mean every member produces the same cost estimate for
/// any task, so HEFT evaluates one candidate per class instead of one per
/// device. All host-node CPUs with one spec collapse into a single class (a
/// 1k-worker quantity expansion becomes one candidate); accelerators own
/// private memory nodes — their replica state differs per device — and stay
/// singleton classes. Classes are created in device-id order, so the class
/// order matches exhaustive HEFT's lowest-index tie-breaking.
struct PlacementClass {
  DeviceKind kind = DeviceKind::kCpu;
  MemoryNodeId node = kHostNode;
  /// Lowest member id; its perf-model history row stands in for the class.
  DeviceId representative = -1;
  std::vector<DeviceId> members;  ///< ascending device ids
  /// Members not blacklisted; decremented by the engine's blacklist path.
  /// Atomic so the hybrid submit path can read it without the fault mutex.
  std::atomic<int> live_members{0};
};

/// std::deque, not vector: the embedded atomic makes the struct immovable.
using PlacementClassSet = std::deque<PlacementClass>;

/// Chunked TaskNode pool: node addresses are stable for the engine's
/// lifetime (successor edges are raw pointers) and allocation happens once
/// per kChunk submissions instead of once per task. Guarded by the
/// engine's submit mutex; ids are dense from 1, so node i lives at
/// index id - 1.
/// Chunked stable-address arena: elements never move once created (they
/// are referred to by raw pointer everywhere), and appending amortizes to
/// one allocation per kChunk elements instead of one per element (or per
/// deque page — std::deque<DataHandle> fits ~3 handles per 512-byte page).
template <typename T>
class Arena {
 public:
  static constexpr std::size_t kChunk = 64;

  T& emplace_back() {
    if (size_ == chunks_.size() * kChunk) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    return (*this)[size_++];
  }

  /// Pre-allocate room for `n` more elements (batched submission).
  void reserve_more(std::size_t n) {
    while (chunks_.size() * kChunk < size_ + n) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
  }

  T& operator[](std::size_t i) {
    return (*chunks_[i / kChunk])[i % kChunk];
  }
  const T& operator[](std::size_t i) const {
    return (*chunks_[i / kChunk])[i % kChunk];
  }

  std::size_t size() const { return size_; }

 private:
  using Chunk = std::array<T, kChunk>;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_ = 0;
};

using TaskArena = Arena<TaskNode>;

}  // namespace starvm::detail
