// Internal runtime state shared by engine.cpp and scheduler.cpp.
// Not part of the public API; everything here is guarded by the engine
// mutex unless stated otherwise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "starvm/codelet.hpp"
#include "starvm/device.hpp"
#include "starvm/types.hpp"

namespace starvm::detail {

enum class TaskState { kWaiting, kReady, kRunning, kDone, kFailed };

struct TaskNode {
  TaskId id = 0;
  const Codelet* codelet = nullptr;
  std::vector<BufferView> buffers;
  std::string label;
  double flops = 0.0;
  int priority = 0;

  TaskState state = TaskState::kWaiting;
  int deps_remaining = 0;
  std::vector<TaskNode*> successors;

  /// Virtual time when all dependencies have finished.
  double ready_vtime = 0.0;
  /// Virtual interval this task occupied on its device.
  double start_vtime = 0.0;
  double finish_vtime = 0.0;
  DeviceId ran_on = -1;
  double transfer_seconds = 0.0;  ///< modeled transfer cost paid by this task
  double exec_seconds = 0.0;      ///< measured or modeled execution cost

  // --- fault tolerance ---
  int attempts = 0;   ///< execution attempts started so far
  std::string error;  ///< why the task failed (kFailed only)
};

struct DeviceState {
  DeviceSpec spec;
  DeviceId id = -1;
  MemoryNodeId node = kHostNode;

  /// Virtual time when the device next becomes free.
  double avail_vtime = 0.0;
  /// HEFT bookkeeping: estimated completion of everything queued to it.
  double est_avail = 0.0;

  // --- statistics ---
  double busy_seconds = 0.0;
  double transfer_seconds = 0.0;
  std::uint64_t tasks_run = 0;

  // --- fault tolerance ---
  bool blacklisted = false;      ///< no longer receives work
  int consecutive_failures = 0;  ///< reset on every successful attempt
  std::uint64_t failures = 0;    ///< failed attempts over the device's life
};

}  // namespace starvm::detail
