#include "starvm/trace_export.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace starvm {

namespace {

/// Escape a string for inclusion in a JSON string literal.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_chrome_trace(const EngineStats& stats) {
  std::ostringstream os;
  os << "[";
  bool first = true;

  // Thread-name metadata so rows carry device names.
  for (std::size_t d = 0; d < stats.devices.size(); ++d) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << d
       << ",\"args\":{\"name\":\"" << json_escape(stats.devices[d].name) << " ("
       << to_string(stats.devices[d].kind) << ")\"}}";
  }

  for (const auto& t : stats.trace) {
    if (!first) os << ",";
    first = false;
    const double start_us = t.start_vtime * 1e6;
    const double dur_us = (t.finish_vtime - t.start_vtime) * 1e6;
    os << "{\"name\":\"" << json_escape(t.label) << "\",\"ph\":\"X\",\"pid\":1"
       << ",\"tid\":" << t.device << ",\"ts\":" << start_us << ",\"dur\":" << dur_us
       << ",\"args\":{\"transfer_us\":" << t.transfer_seconds * 1e6
       << ",\"exec_us\":" << t.exec_seconds * 1e6 << ",\"flops\":" << t.flops
       << "}}";
  }
  os << "]";
  return os.str();
}

std::string to_ascii_gantt(const EngineStats& stats, int width) {
  std::ostringstream os;
  const double makespan = stats.makespan_seconds;
  if (makespan <= 0.0 || stats.devices.empty()) {
    return "(empty trace)\n";
  }
  width = std::max(10, width);
  const double per_cell = makespan / width;

  for (std::size_t d = 0; d < stats.devices.size(); ++d) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const auto& t : stats.trace) {
      if (static_cast<std::size_t>(t.device) != d) continue;
      int begin = static_cast<int>(t.start_vtime / per_cell);
      int end = static_cast<int>(t.finish_vtime / per_cell);
      begin = std::clamp(begin, 0, width - 1);
      end = std::clamp(end, begin + 1, width);
      // Tasks paint '#'; the transfer fraction at the front paints '-'.
      const double span = t.finish_vtime - t.start_vtime;
      const int transfer_cells =
          span > 0.0 ? static_cast<int>((t.transfer_seconds / span) * (end - begin))
                     : 0;
      for (int cell = begin; cell < end; ++cell) {
        row[static_cast<std::size_t>(cell)] =
            cell - begin < transfer_cells ? '-' : '#';
      }
    }
    char label[40];
    std::snprintf(label, sizeof label, "%-14.14s|", stats.devices[d].name.c_str());
    os << label << row << "|\n";
  }
  char footer[96];
  std::snprintf(footer, sizeof footer,
                "%-14s 0%*s%.3fs   ('#' compute, '-' transfer)\n", "", width - 7,
                "", makespan);
  os << footer;
  return os.str();
}

}  // namespace starvm
