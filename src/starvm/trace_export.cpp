#include "starvm/trace_export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace starvm {

namespace {

using obs::json_escape;

/// Non-finite or negative values render as 0 (degenerate stats must still
/// produce a trace every viewer can load).
double sane(double v) { return std::isfinite(v) && v >= 0.0 ? v : 0.0; }

/// Append the engine's virtual-time schedule as Chrome events under `pid`:
/// thread_name metadata per device (plus an "unassigned" lane when needed),
/// one "X" event per task, one "i" event per recorded decision.
void append_engine_events(std::ostringstream& os, const EngineStats& stats,
                          int pid, bool& first) {
  const auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };

  for (std::size_t d = 0; d < stats.devices.size(); ++d) {
    comma();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << d << ",\"args\":{\"name\":\""
       << json_escape(stats.devices[d].name) << " ("
       << to_string(stats.devices[d].kind) << ")\"}}";
  }
  // Tasks that never reached a device share one extra lane.
  const auto unassigned_tid = static_cast<long>(stats.devices.size());
  bool any_unassigned = false;
  for (const auto& t : stats.trace) any_unassigned |= t.device < 0;
  for (const auto& e : stats.fault_events) any_unassigned |= e.device < 0;
  if (any_unassigned) {
    os << (first ? "" : ",")
       << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << unassigned_tid
       << ",\"args\":{\"name\":\"unassigned\"}}";
    first = false;
  }

  for (const auto& t : stats.trace) {
    comma();
    const double start_us = sane(t.start_vtime) * 1e6;
    const double raw_dur = t.finish_vtime - t.start_vtime;
    const double dur_us = sane(raw_dur) * 1e6;
    const long tid = t.device < 0 ? unassigned_tid : t.device;
    os << "{\"name\":\"" << json_escape(t.label) << "\",\"ph\":\"X\",\"pid\":"
       << pid << ",\"tid\":" << tid << ",\"ts\":" << start_us
       << ",\"dur\":" << dur_us
       << ",\"args\":{\"transfer_us\":" << sane(t.transfer_seconds) * 1e6
       << ",\"exec_us\":" << sane(t.exec_seconds) * 1e6;
    if (std::isfinite(t.flops)) os << ",\"flops\":" << t.flops;
    os << "}}";
  }

  for (const auto& e : stats.fault_events) {
    comma();
    const long tid = e.device < 0 ? unassigned_tid : e.device;
    os << "{\"name\":\"fault: " << to_string(e.kind)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"ts\":" << sane(e.vtime) * 1e6 << ",\"args\":{\"task\":" << e.task
       << ",\"attempt\":" << e.attempt << ",\"detail\":\""
       << json_escape(e.detail) << "\"}}";
  }

  for (const auto& d : stats.decisions) {
    comma();
    const long tid = d.chosen < 0 ? unassigned_tid : d.chosen;
    os << "{\"name\":\"decision: " << json_escape(d.label)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"ts\":" << sane(d.decided_vtime) * 1e6
       << ",\"args\":{\"policy\":\"" << to_string(stats.scheduler)
       << "\",\"chosen\":" << d.chosen << ",\"candidates\":[";
    for (std::size_t i = 0; i < d.candidates.size(); ++i) {
      const DecisionCandidate& c = d.candidates[i];
      if (i > 0) os << ",";
      os << "{\"device\":" << c.device << ",\"name\":\""
         << json_escape(c.device_name) << "\",\"devices\":" << c.class_size
         << ",\"est_finish_us\":" << sane(c.est_finish_vtime) * 1e6 << "}";
    }
    os << "]}}";
  }
}

}  // namespace

std::string to_chrome_trace(const EngineStats& stats) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  append_engine_events(os, stats, 1, first);
  os << "]";
  return os.str();
}

std::string merged_chrome_trace(const std::vector<obs::SpanRecord>& spans,
                                const EngineStats* stats) {
  std::string out = "[";
  bool first = true;
  // Wall time (toolchain) and virtual time (engine model) are unrelated
  // clocks; distinct process lanes keep the viewer honest about that.
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"toolchain wall time\"}}";
  first = false;
  if (stats != nullptr) {
    out +=
        ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
        "\"args\":{\"name\":\"engine virtual time\"}}";
  }
  obs::append_chrome_span_events(out, spans, 1, first);
  if (stats != nullptr) {
    std::ostringstream os;
    append_engine_events(os, *stats, 2, first);
    out += os.str();
  }
  out += "]";
  return out;
}

std::string flight_chrome_trace(const std::vector<obs::FlightEvent>& events,
                                const obs::FlightLabelFn& label) {
  constexpr int kPid = 3;  // pids 1/2 belong to merged_chrome_trace's lanes
  std::ostringstream os;
  os << "[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kPid
     << ",\"args\":{\"name\":\"flight recorder\"}}";

  // One tid per ring. Ring index == device for the per-device rings; the
  // highest ring index present is assumed to be the fault ring only when
  // it carries fault-kind records (it does, by construction).
  std::uint32_t max_ring = 0;
  for (const auto& e : events) max_ring = std::max(max_ring, e.ring);
  for (std::uint32_t r = 0; r <= max_ring; ++r) {
    bool fault_ring = false, seen = false;
    for (const auto& e : events) {
      if (e.ring != r) continue;
      seen = true;
      fault_ring |= e.kind >= obs::FlightKind::kRetry;
    }
    if (!seen && r == max_ring) break;
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kPid
       << ",\"tid\":" << r << ",\"args\":{\"name\":\""
       << (fault_ring ? "faults" : ("device " + std::to_string(r))) << "\"}}";
  }

  for (const auto& e : events) {
    std::string name = to_string(e.kind);
    if (e.task != 0) {
      const std::string task_label = label ? label(e.task) : std::string();
      name += ": " + (task_label.empty() ? "task " + std::to_string(e.task)
                                         : task_label);
    }
    os << ",{\"name\":\"" << json_escape(name) << "\",\"pid\":" << kPid
       << ",\"tid\":" << e.ring << ",\"ts\":" << sane(e.t0) * 1e6;
    if (e.has_end()) {
      os << ",\"ph\":\"X\",\"dur\":" << sane(e.t1 - e.t0) * 1e6;
    } else {
      // No end timestamp: either a point event or an attempt cut short by
      // the crash being dumped — render it as an instant, not a zero-width
      // sliver that viewers hide.
      os << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    os << ",\"args\":{\"seq\":" << e.seq << ",\"task\":" << e.task
       << ",\"device\":" << e.device << ",\"attempt\":" << e.aux
       << ",\"value\":" << e.value;
    if (e.value2 != 0.0) os << ",\"value2\":" << e.value2;
    os << "}}";
  }
  os << "]";
  return os.str();
}

std::string to_ascii_gantt(const EngineStats& stats, int width) {
  std::ostringstream os;
  const double makespan = stats.makespan_seconds;
  if (makespan <= 0.0 || stats.devices.empty()) {
    return "(empty trace)\n";
  }
  width = std::max(10, width);
  const double per_cell = makespan / width;

  for (std::size_t d = 0; d < stats.devices.size(); ++d) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const auto& t : stats.trace) {
      if (static_cast<std::size_t>(t.device) != d) continue;
      int begin = static_cast<int>(t.start_vtime / per_cell);
      int end = static_cast<int>(t.finish_vtime / per_cell);
      begin = std::clamp(begin, 0, width - 1);
      end = std::clamp(end, begin + 1, width);
      // Tasks paint '#'; the transfer fraction at the front paints '-'.
      const double span = t.finish_vtime - t.start_vtime;
      const int transfer_cells =
          span > 0.0 ? static_cast<int>((t.transfer_seconds / span) * (end - begin))
                     : 0;
      for (int cell = begin; cell < end; ++cell) {
        row[static_cast<std::size_t>(cell)] =
            cell - begin < transfer_cells ? '-' : '#';
      }
    }
    char label[40];
    std::snprintf(label, sizeof label, "%-14.14s|", stats.devices[d].name.c_str());
    os << label << row << "|\n";
  }
  char footer[96];
  std::snprintf(footer, sizeof footer,
                "%-14s 0%*s%.3fs   ('#' compute, '-' transfer)\n", "", width - 7,
                "", makespan);
  os << footer;
  return os.str();
}

}  // namespace starvm
