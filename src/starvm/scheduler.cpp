#include "starvm/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

namespace starvm::detail {

namespace {

bool device_capable(const DeviceState& device, const TaskNode& task) {
  return !device.blacklisted.load(std::memory_order_relaxed) &&
         task.codelet->supports(device.spec.kind);
}

bool any_live_capable(const std::deque<DeviceState>& devices,
                      const TaskNode& task) {
  for (const DeviceState& device : devices) {
    if (device_capable(device, task)) return true;
  }
  return false;
}

/// Stable priority order: insert after the last entry with priority >= ours,
/// so equal priorities keep submission (FIFO) order. Scanning from the BACK
/// makes the common all-default-priority case O(1) — a front scan walks the
/// entire queue per push and turns a burst of N submissions into O(N^2).
void priority_insert(std::deque<TaskNode*>& queue, TaskNode* task) {
  auto it = queue.end();
  while (it != queue.begin() && (*std::prev(it))->priority < task->priority) {
    --it;
  }
  queue.insert(it, task);
}

/// Single shared FIFO; the first idle device with a matching implementation
/// takes the oldest runnable task. Greedy, model-free.
class EagerScheduler final : public Scheduler {
 public:
  explicit EagerScheduler(const std::deque<DeviceState>* devices)
      : devices_(devices) {}

  void push(TaskNode* task) override { priority_insert(queue_, task); }

  TaskNode* pop(DeviceId device) override {
    const DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (device_capable(dev, **it)) {
        TaskNode* task = *it;
        queue_.erase(it);
        return task;
      }
    }
    return nullptr;
  }

  bool empty() const override { return queue_.empty(); }

  std::size_t size() const override { return queue_.size(); }

  std::vector<TaskNode*> drain_device(DeviceId) override {
    // Shared queue: survivors keep draining it. Only evict tasks that no
    // live device can run, so the engine can fail them instead of hanging.
    std::vector<TaskNode*> orphans;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (!any_live_capable(*devices_, **it)) {
        orphans.push_back(*it);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    return orphans;
  }

 private:
  const std::deque<DeviceState>* devices_;
  std::deque<TaskNode*> queue_;
};

/// Per-device deques with round-robin placement and back-stealing.
class WorkStealingScheduler final : public Scheduler {
 public:
  explicit WorkStealingScheduler(const std::deque<DeviceState>* devices)
      : devices_(devices), queues_(devices->size()) {}

  void push(TaskNode* task) override {
    // Round-robin over capable devices spreads independent tasks without a
    // model; stealing repairs imbalance afterwards.
    const std::size_t n = queues_.size();
    for (std::size_t probe = 0; probe < n; ++probe) {
      const std::size_t i = (next_ + probe) % n;
      if (device_capable((*devices_)[i], *task)) {
        queues_[i].push_back(task);
        next_ = i + 1;
        return;
      }
    }
    // No capable device: keep it in queue 0; pop() re-checks capability and
    // the engine has already validated codelets, so this is unreachable in
    // practice but keeps the invariant "pushed tasks are never dropped".
    queues_[0].push_back(task);
  }

  TaskNode* pop(DeviceId device) override {
    auto& own = queues_[static_cast<std::size_t>(device)];
    const DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
    for (auto it = own.begin(); it != own.end(); ++it) {
      if (device_capable(dev, **it)) {
        TaskNode* task = *it;
        own.erase(it);
        return task;
      }
    }
    // Steal from the back of the longest victim queue.
    std::size_t victim = queues_.size();
    std::size_t best = 0;
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      if (i == static_cast<std::size_t>(device)) continue;
      if (queues_[i].size() > best) {
        best = queues_[i].size();
        victim = i;
      }
    }
    if (victim == queues_.size()) return nullptr;
    auto& vq = queues_[victim];
    for (auto it = vq.rbegin(); it != vq.rend(); ++it) {
      if (device_capable(dev, **it)) {
        TaskNode* task = *it;
        vq.erase(std::next(it).base());
        return task;
      }
    }
    return nullptr;
  }

  bool empty() const override {
    for (const auto& q : queues_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  std::size_t size() const override {
    std::size_t total = 0;
    for (const auto& q : queues_) total += q.size();
    return total;
  }

  std::vector<TaskNode*> drain_device(DeviceId device) override {
    auto& q = queues_[static_cast<std::size_t>(device)];
    std::vector<TaskNode*> drained(q.begin(), q.end());
    q.clear();
    return drained;
  }

 private:
  const std::deque<DeviceState>* devices_;
  std::vector<std::deque<TaskNode*>> queues_;
  std::size_t next_ = 0;
};

/// Model-based earliest-finish-time placement (StarPU dmda-like): each task
/// goes, at push time, to the device minimizing
///   max(est_avail(device), task.ready) + transfer_est + exec_est.
class HeftScheduler final : public Scheduler {
 public:
  HeftScheduler(const std::deque<DeviceState>* devices, CostRowFn cost_fn)
      : devices_(devices), cost_fn_(std::move(cost_fn)), queues_(devices->size()) {}

  void push(TaskNode* task) override {
    costs_.resize(devices_->size());
    cost_fn_(*task, costs_.data());
    double best_finish = std::numeric_limits<double>::infinity();
    std::size_t best_device = queues_.size();
    for (std::size_t i = 0; i < devices_->size(); ++i) {
      const DeviceState& dev = (*devices_)[i];
      if (!device_capable(dev, *task)) continue;
      const double start =
          std::max(est_avail_.size() > i ? est_avail_[i] : 0.0,
                   task->ready_vtime.load(std::memory_order_relaxed));
      const double finish = start + costs_[i];
      if (finish < best_finish) {
        best_finish = finish;
        best_device = i;
      }
    }
    if (best_device == queues_.size()) best_device = 0;  // unreachable, see WS note
    if (est_avail_.size() != devices_->size()) est_avail_.assign(devices_->size(), 0.0);
    est_avail_[best_device] = best_finish;
    queues_[best_device].push_back(task);
  }

  TaskNode* pop(DeviceId device) override {
    auto& own = queues_[static_cast<std::size_t>(device)];
    if (own.empty()) return nullptr;
    TaskNode* task = own.front();
    own.pop_front();
    return task;
  }

  bool empty() const override {
    for (const auto& q : queues_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  std::size_t size() const override {
    std::size_t total = 0;
    for (const auto& q : queues_) total += q.size();
    return total;
  }

  std::vector<TaskNode*> drain_device(DeviceId device) override {
    auto& q = queues_[static_cast<std::size_t>(device)];
    std::vector<TaskNode*> drained(q.begin(), q.end());
    q.clear();
    // The dead device's backlog estimate is meaningless now; re-pushed
    // tasks will rebuild est_avail_ on the survivors.
    if (est_avail_.size() > static_cast<std::size_t>(device)) {
      est_avail_[static_cast<std::size_t>(device)] = 0.0;
    }
    return drained;
  }

 private:
  const std::deque<DeviceState>* devices_;
  CostRowFn cost_fn_;
  std::vector<std::deque<TaskNode*>> queues_;
  std::vector<double> est_avail_;
  std::vector<double> costs_;  ///< scratch row (engine mutex held)
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const std::deque<DeviceState>* devices,
                                          CostRowFn cost_fn) {
  switch (kind) {
    case SchedulerKind::kEager:
      return std::make_unique<EagerScheduler>(devices);
    case SchedulerKind::kWorkStealing:
      return std::make_unique<WorkStealingScheduler>(devices);
    case SchedulerKind::kHeft:
      return std::make_unique<HeftScheduler>(devices, std::move(cost_fn));
  }
  return std::make_unique<EagerScheduler>(devices);
}

// --- HybridDispatch ----------------------------------------------------------

HybridDispatch::HybridDispatch(SchedulerKind kind,
                               std::deque<DeviceState>* devices, CostRowFn cost_fn)
    : kind_(kind), devices_(devices), cost_fn_(std::move(cost_fn)) {}

DeviceId HybridDispatch::place(const TaskNode& task) {
  const std::size_t n = devices_->size();
  if (kind_ == SchedulerKind::kWorkStealing) {
    const std::size_t start = rr_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t probe = 0; probe < n; ++probe) {
      const std::size_t i = (start + probe) % n;
      if (device_capable((*devices_)[i], task)) {
        return static_cast<DeviceId>(i);
      }
    }
    return -1;
  }
  // kHeft: earliest estimated finish over the atomic per-device backlogs.
  // Concurrent placements may read slightly stale est_avail values — a
  // heuristic race that degrades placement, never correctness. The cost
  // row is fetched in one call (single model/memory lock round-trip);
  // thread_local scratch keeps concurrent submitters allocation-free.
  static thread_local std::vector<double> costs;
  costs.resize(n);
  cost_fn_(task, costs.data());
  double best_finish = std::numeric_limits<double>::infinity();
  DeviceId best_device = -1;
  const double ready = task.ready_vtime.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    DeviceState& dev = (*devices_)[i];
    if (!device_capable(dev, task)) continue;
    const double start =
        std::max(dev.est_avail.load(std::memory_order_relaxed), ready);
    const double finish = start + costs[i];
    if (finish < best_finish) {
      best_finish = finish;
      best_device = static_cast<DeviceId>(i);
    }
  }
  if (best_device >= 0) {
    vtime_raise((*devices_)[static_cast<std::size_t>(best_device)].est_avail,
                best_finish);
  }
  return best_device;
}

bool HybridDispatch::push_to(DeviceId device, TaskNode* task, bool notify) {
  DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
  bool wake = false;
  bool nudge_peer = false;
  {
    std::lock_guard<std::mutex> lock(dev.queue.m);
    // Re-check under the queue mutex: blacklisting sets the flag first and
    // drains the queue after, both against this mutex, so either we insert
    // before the drain (and the task is re-routed) or we see the flag.
    if (dev.blacklisted.load(std::memory_order_relaxed)) return false;
    const bool was_empty = dev.queue.tasks.empty();
    dev.queue.tasks.push_back(task);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Wake only on the empty -> non-empty transition, and only when someone
    // is actually asleep (sleepers is registered under this mutex before
    // the worker waits, so this read cannot miss a sleeper that already
    // passed its queue re-check). A non-empty queue means the owner is
    // either awake or has an undelivered wakeup: it drains to empty under
    // this mutex before it ever sleeps again. Skipping the futex syscall on
    // the other pushes is the difference between one wake per task and one
    // per burst.
    wake = notify && was_empty &&
           dev.queue.sleepers.load(std::memory_order_relaxed) > 0;
    nudge_peer = notify && kind_ == SchedulerKind::kWorkStealing &&
                 dev.queue.tasks.size() > 1 && devices_->size() > 1;
  }
  // Notify with the mutex released: a woken worker immediately re-acquires
  // the queue mutex, so signalling while holding it forces an extra block/
  // unblock cycle on every handoff.
  if (wake) dev.queue.cv.notify_one();
  if (nudge_peer) {
    // The owner may be busy for a while; nudge one sleeping peer so
    // back-stealing picks the backlog up without waiting for its rescan
    // timeout (heuristic — a stale sleepers read at worst delays a steal).
    const std::size_t peer =
        (static_cast<std::size_t>(device) + 1) % devices_->size();
    ReadyQueue& pq = (*devices_)[peer].queue;
    if (pq.sleepers.load(std::memory_order_relaxed) > 0) pq.cv.notify_one();
  }
  return true;
}

bool HybridDispatch::push(TaskNode* task) {
  if (kind_ == SchedulerKind::kEager) {
    if (!any_live_capable(*devices_, *task)) return false;
    bool wake;
    {
      std::lock_guard<std::mutex> lock(shared_.m);
      priority_insert(shared_.tasks, task);
      count_.fetch_add(1, std::memory_order_relaxed);
      wake = shared_.sleepers.load(std::memory_order_relaxed) > 0;
    }
    // notify_all, not notify_one: the shared queue is capability-filtered
    // at pop time, so waking a single worker could pick one whose device
    // cannot run this task while the capable worker keeps sleeping.
    if (wake) shared_.cv.notify_all();
    return true;
  }
  // A device can be blacklisted between place() and push_to(); re-place
  // until the insert lands or no candidate remains.
  for (;;) {
    const DeviceId device = place(*task);
    if (device < 0) return false;
    if (push_to(device, task, /*notify=*/true)) return true;
  }
}

std::vector<TaskNode*> HybridDispatch::push_batch(
    const std::vector<TaskNode*>& tasks) {
  std::vector<TaskNode*> rejected;
  if (kind_ == SchedulerKind::kEager) {
    bool wake;
    {
      std::lock_guard<std::mutex> lock(shared_.m);
      for (TaskNode* task : tasks) {
        if (!any_live_capable(*devices_, *task)) {
          rejected.push_back(task);
          continue;
        }
        priority_insert(shared_.tasks, task);
        count_.fetch_add(1, std::memory_order_relaxed);
      }
      wake = shared_.sleepers.load(std::memory_order_relaxed) > 0;
    }
    if (wake) shared_.cv.notify_all();
    return rejected;
  }

  // Bucket per device so each involved queue is locked and notified once.
  std::vector<std::vector<TaskNode*>> buckets(devices_->size());
  for (TaskNode* task : tasks) {
    const DeviceId device = place(*task);
    if (device < 0) {
      rejected.push_back(task);
      continue;
    }
    buckets[static_cast<std::size_t>(device)].push_back(task);
  }
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].empty()) continue;
    DeviceState& dev = (*devices_)[i];
    bool placed = false;
    bool was_empty = false;
    {
      std::lock_guard<std::mutex> lock(dev.queue.m);
      if (!dev.blacklisted.load(std::memory_order_relaxed)) {
        was_empty = dev.queue.tasks.empty();
        for (TaskNode* task : buckets[i]) dev.queue.tasks.push_back(task);
        count_.fetch_add(buckets[i].size(), std::memory_order_relaxed);
        placed = true;
      }
    }
    if (placed) {
      if (kind_ == SchedulerKind::kWorkStealing && buckets[i].size() > 1) {
        // A burst on one device is exactly what stealing exists for: wake
        // every worker, not just the owner.
        notify_all();
      } else if (was_empty &&
                 dev.queue.sleepers.load(std::memory_order_relaxed) > 0) {
        // Empty -> non-empty transition only (see push_to). Safe to read
        // sleepers after unlocking: a sleeper either registered before our
        // push (visible via the mutex) or re-checked the queue after it
        // and found the batch.
        dev.queue.cv.notify_one();
      }
    } else {
      // Blacklisted while batching: fall back to one-by-one re-placement.
      for (TaskNode* task : buckets[i]) {
        if (!push(task)) rejected.push_back(task);
      }
    }
  }
  return rejected;
}

TaskNode* HybridDispatch::pop_local(DeviceId device) {
  DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
  if (kind_ == SchedulerKind::kEager) {
    std::lock_guard<std::mutex> lock(shared_.m);
    for (auto it = shared_.tasks.begin(); it != shared_.tasks.end(); ++it) {
      if (device_capable(dev, **it)) {
        TaskNode* task = *it;
        shared_.tasks.erase(it);
        count_.fetch_sub(1, std::memory_order_relaxed);
        return task;
      }
    }
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(dev.queue.m);
  if (dev.queue.tasks.empty()) return nullptr;
  // Per-device queues only ever receive tasks the device can run.
  TaskNode* task = dev.queue.tasks.front();
  dev.queue.tasks.pop_front();
  count_.fetch_sub(1, std::memory_order_relaxed);
  return task;
}

TaskNode* HybridDispatch::steal_for(DeviceId thief) {
  // Only the work-stealing policy steals: kEager has nothing device-bound,
  // and kHeft's model-based placement is final — stealing would silently
  // override the cost model (and move work off the accelerators it chose).
  if (kind_ != SchedulerKind::kWorkStealing) return nullptr;
  const std::size_t n = devices_->size();
  const DeviceState& me = (*devices_)[static_cast<std::size_t>(thief)];
  for (std::size_t offset = 1; offset < n; ++offset) {
    const std::size_t v = (static_cast<std::size_t>(thief) + offset) % n;
    DeviceState& victim = (*devices_)[v];
    std::lock_guard<std::mutex> lock(victim.queue.m);
    // Steal the oldest work we can actually run, from the back — the
    // owner pops the front, so contention on a 2-element queue is nil.
    for (auto it = victim.queue.tasks.rbegin();
         it != victim.queue.tasks.rend(); ++it) {
      if ((*it)->codelet->supports(me.spec.kind)) {
        TaskNode* task = *it;
        victim.queue.tasks.erase(std::next(it).base());
        ++victim.queue.steals_out;
        count_.fetch_sub(1, std::memory_order_relaxed);
        return task;
      }
    }
  }
  return nullptr;
}

TaskNode* HybridDispatch::wait_pop(DeviceId device,
                                   const std::atomic<bool>& stopping) {
  DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
  ReadyQueue& q = kind_ == SchedulerKind::kEager ? shared_ : dev.queue;
  // Empty polls since the last task; governs the yield-before-sleep below.
  int idle_polls = 0;
  for (;;) {
    if (TaskNode* task = pop_local(device)) return task;
    if (!dev.blacklisted.load(std::memory_order_relaxed)) {
      if (TaskNode* task = steal_for(device)) return task;
    }
    // Yield a few times before sleeping: while a submitter is actively
    // producing, the worker stays runnable (sleepers == 0, so pushes skip
    // the futex syscall) and each yield hands the core to the submitter,
    // which typically queues a burst the next poll drains. Only a queue
    // that stays empty across several quanta puts the worker to sleep.
    if (idle_polls < 8 && !stopping.load(std::memory_order_relaxed)) {
      ++idle_polls;
      std::this_thread::yield();
      continue;
    }
    idle_polls = 0;
    std::unique_lock<std::mutex> lock(q.m);
    // Re-check under the queue mutex: a push after our pop_local above
    // would otherwise be a lost wakeup.
    if (kind_ == SchedulerKind::kEager) {
      for (auto it = shared_.tasks.begin(); it != shared_.tasks.end(); ++it) {
        if (device_capable(dev, **it)) {
          TaskNode* task = *it;
          shared_.tasks.erase(it);
          count_.fetch_sub(1, std::memory_order_relaxed);
          return task;
        }
      }
    } else if (!dev.queue.tasks.empty()) {
      TaskNode* task = dev.queue.tasks.front();
      dev.queue.tasks.pop_front();
      count_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
    if (stopping.load(std::memory_order_relaxed)) return nullptr;
    // Register as a sleeper BEFORE waiting, still under q.m: a pusher that
    // takes q.m after us must see sleepers > 0 and notify; one that ran
    // before us already enqueued the task our re-check above would have
    // found. Either way no wakeup is lost, and pushers may skip the futex
    // syscall entirely whenever sleepers == 0.
    q.sleepers.fetch_add(1, std::memory_order_relaxed);
    if (kind_ == SchedulerKind::kWorkStealing &&
        count_.load(std::memory_order_relaxed) > 0) {
      // Work is queued somewhere we could steal from; rescan soon even if
      // nobody nudges us. Non-stealing policies only receive work through
      // their own queue's notification, so they sleep without a timeout.
      q.cv.wait_for(lock, std::chrono::milliseconds(2));
    } else {
      q.cv.wait(lock);
    }
    q.sleepers.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::vector<TaskNode*> HybridDispatch::drain_device(DeviceId device) {
  DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
  if (kind_ == SchedulerKind::kEager) {
    // Shared queue: survivors keep draining it; evict only orphans.
    std::vector<TaskNode*> orphans;
    std::lock_guard<std::mutex> lock(shared_.m);
    for (auto it = shared_.tasks.begin(); it != shared_.tasks.end();) {
      if (!any_live_capable(*devices_, **it)) {
        orphans.push_back(*it);
        it = shared_.tasks.erase(it);
        count_.fetch_sub(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
    return orphans;
  }
  std::lock_guard<std::mutex> lock(dev.queue.m);
  std::vector<TaskNode*> drained(dev.queue.tasks.begin(),
                                 dev.queue.tasks.end());
  dev.queue.tasks.clear();
  count_.fetch_sub(drained.size(), std::memory_order_relaxed);
  return drained;
}

std::uint64_t HybridDispatch::steals() const {
  std::uint64_t total = 0;
  for (DeviceState& dev : *devices_) {
    std::lock_guard<std::mutex> lock(dev.queue.m);
    total += dev.queue.steals_out;
  }
  return total;
}

void HybridDispatch::notify_all() {
  // The empty critical sections order this notification against workers in
  // wait_pop: a worker holds the queue mutex from its stopping/queue
  // re-check until cv.wait releases it, so locking here guarantees the
  // worker either sees the new state or is already waiting when we notify.
  {
    std::lock_guard<std::mutex> lock(shared_.m);
  }
  shared_.cv.notify_all();
  for (DeviceState& dev : *devices_) {
    {
      std::lock_guard<std::mutex> lock(dev.queue.m);
    }
    dev.queue.cv.notify_all();
  }
}

}  // namespace starvm::detail
