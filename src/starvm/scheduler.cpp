#include "starvm/scheduler.hpp"

#include <deque>
#include <limits>

namespace starvm::detail {

namespace {

bool device_capable(const DeviceState& device, const TaskNode& task) {
  return !device.blacklisted && task.codelet->supports(device.spec.kind);
}

bool any_live_capable(const std::vector<DeviceState>& devices,
                      const TaskNode& task) {
  for (const DeviceState& device : devices) {
    if (device_capable(device, task)) return true;
  }
  return false;
}

/// Single shared FIFO; the first idle device with a matching implementation
/// takes the oldest runnable task. Greedy, model-free.
class EagerScheduler final : public Scheduler {
 public:
  explicit EagerScheduler(const std::vector<DeviceState>* devices)
      : devices_(devices) {}

  void push(TaskNode* task) override {
    // Stable priority order: insert before the first strictly-lower entry,
    // so equal priorities keep submission (FIFO) order.
    auto it = queue_.begin();
    while (it != queue_.end() && (*it)->priority >= task->priority) ++it;
    queue_.insert(it, task);
  }

  TaskNode* pop(DeviceId device) override {
    const DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (device_capable(dev, **it)) {
        TaskNode* task = *it;
        queue_.erase(it);
        return task;
      }
    }
    return nullptr;
  }

  bool empty() const override { return queue_.empty(); }

  std::size_t size() const override { return queue_.size(); }

  std::vector<TaskNode*> drain_device(DeviceId) override {
    // Shared queue: survivors keep draining it. Only evict tasks that no
    // live device can run, so the engine can fail them instead of hanging.
    std::vector<TaskNode*> orphans;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (!any_live_capable(*devices_, **it)) {
        orphans.push_back(*it);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    return orphans;
  }

 private:
  const std::vector<DeviceState>* devices_;
  std::deque<TaskNode*> queue_;
};

/// Per-device deques with round-robin placement and back-stealing.
class WorkStealingScheduler final : public Scheduler {
 public:
  explicit WorkStealingScheduler(const std::vector<DeviceState>* devices)
      : devices_(devices), queues_(devices->size()) {}

  void push(TaskNode* task) override {
    // Round-robin over capable devices spreads independent tasks without a
    // model; stealing repairs imbalance afterwards.
    const std::size_t n = queues_.size();
    for (std::size_t probe = 0; probe < n; ++probe) {
      const std::size_t i = (next_ + probe) % n;
      if (device_capable((*devices_)[i], *task)) {
        queues_[i].push_back(task);
        next_ = i + 1;
        return;
      }
    }
    // No capable device: keep it in queue 0; pop() re-checks capability and
    // the engine has already validated codelets, so this is unreachable in
    // practice but keeps the invariant "pushed tasks are never dropped".
    queues_[0].push_back(task);
  }

  TaskNode* pop(DeviceId device) override {
    auto& own = queues_[static_cast<std::size_t>(device)];
    const DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
    for (auto it = own.begin(); it != own.end(); ++it) {
      if (device_capable(dev, **it)) {
        TaskNode* task = *it;
        own.erase(it);
        return task;
      }
    }
    // Steal from the back of the longest victim queue.
    std::size_t victim = queues_.size();
    std::size_t best = 0;
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      if (i == static_cast<std::size_t>(device)) continue;
      if (queues_[i].size() > best) {
        best = queues_[i].size();
        victim = i;
      }
    }
    if (victim == queues_.size()) return nullptr;
    auto& vq = queues_[victim];
    for (auto it = vq.rbegin(); it != vq.rend(); ++it) {
      if (device_capable(dev, **it)) {
        TaskNode* task = *it;
        vq.erase(std::next(it).base());
        return task;
      }
    }
    return nullptr;
  }

  bool empty() const override {
    for (const auto& q : queues_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  std::size_t size() const override {
    std::size_t total = 0;
    for (const auto& q : queues_) total += q.size();
    return total;
  }

  std::vector<TaskNode*> drain_device(DeviceId device) override {
    auto& q = queues_[static_cast<std::size_t>(device)];
    std::vector<TaskNode*> drained(q.begin(), q.end());
    q.clear();
    return drained;
  }

 private:
  const std::vector<DeviceState>* devices_;
  std::vector<std::deque<TaskNode*>> queues_;
  std::size_t next_ = 0;
};

/// Model-based earliest-finish-time placement (StarPU dmda-like): each task
/// goes, at push time, to the device minimizing
///   max(est_avail(device), task.ready) + transfer_est + exec_est.
class HeftScheduler final : public Scheduler {
 public:
  HeftScheduler(const std::vector<DeviceState>* devices, CostFn cost_fn)
      : devices_(devices), cost_fn_(std::move(cost_fn)), queues_(devices->size()) {}

  void push(TaskNode* task) override {
    double best_finish = std::numeric_limits<double>::infinity();
    std::size_t best_device = queues_.size();
    for (std::size_t i = 0; i < devices_->size(); ++i) {
      const DeviceState& dev = (*devices_)[i];
      if (!device_capable(dev, *task)) continue;
      const double start = std::max(est_avail_.size() > i ? est_avail_[i] : 0.0,
                                    task->ready_vtime);
      const double finish = start + cost_fn_(*task, dev);
      if (finish < best_finish) {
        best_finish = finish;
        best_device = i;
      }
    }
    if (best_device == queues_.size()) best_device = 0;  // unreachable, see WS note
    if (est_avail_.size() != devices_->size()) est_avail_.assign(devices_->size(), 0.0);
    est_avail_[best_device] = best_finish;
    queues_[best_device].push_back(task);
  }

  TaskNode* pop(DeviceId device) override {
    auto& own = queues_[static_cast<std::size_t>(device)];
    if (own.empty()) return nullptr;
    TaskNode* task = own.front();
    own.pop_front();
    return task;
  }

  bool empty() const override {
    for (const auto& q : queues_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  std::size_t size() const override {
    std::size_t total = 0;
    for (const auto& q : queues_) total += q.size();
    return total;
  }

  std::vector<TaskNode*> drain_device(DeviceId device) override {
    auto& q = queues_[static_cast<std::size_t>(device)];
    std::vector<TaskNode*> drained(q.begin(), q.end());
    q.clear();
    // The dead device's backlog estimate is meaningless now; re-pushed
    // tasks will rebuild est_avail_ on the survivors.
    if (est_avail_.size() > static_cast<std::size_t>(device)) {
      est_avail_[static_cast<std::size_t>(device)] = 0.0;
    }
    return drained;
  }

 private:
  const std::vector<DeviceState>* devices_;
  CostFn cost_fn_;
  std::vector<std::deque<TaskNode*>> queues_;
  std::vector<double> est_avail_;
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const std::vector<DeviceState>* devices,
                                          CostFn cost_fn) {
  switch (kind) {
    case SchedulerKind::kEager:
      return std::make_unique<EagerScheduler>(devices);
    case SchedulerKind::kWorkStealing:
      return std::make_unique<WorkStealingScheduler>(devices);
    case SchedulerKind::kHeft:
      return std::make_unique<HeftScheduler>(devices, std::move(cost_fn));
  }
  return std::make_unique<EagerScheduler>(devices);
}

}  // namespace starvm::detail
