#include "starvm/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <set>
#include <thread>
#include <utility>

namespace starvm::detail {

namespace {

bool device_capable(const DeviceState& device, const TaskNode& task) {
  return !device.blacklisted.load(std::memory_order_relaxed) &&
         task.codelet->supports(device.spec.kind);
}

bool any_live_capable(const std::deque<DeviceState>& devices,
                      const TaskNode& task) {
  for (const DeviceState& device : devices) {
    if (device_capable(device, task)) return true;
  }
  return false;
}

/// Class-granular capability probe: O(classes) instead of O(devices), using
/// the live-member counts the engine maintains on its blacklist path.
bool any_live_capable_class(const PlacementClassSet& classes,
                            const TaskNode& task) {
  for (const PlacementClass& pc : classes) {
    if (pc.live_members.load(std::memory_order_relaxed) > 0 &&
        task.codelet->supports(pc.kind)) {
      return true;
    }
  }
  return false;
}

/// Stable priority order: insert after the last entry with priority >= ours,
/// so equal priorities keep submission (FIFO) order. Scanning from the BACK
/// makes the common all-default-priority case O(1) — a front scan walks the
/// entire queue per push and turns a burst of N submissions into O(N^2).
void priority_insert(std::deque<TaskNode*>& queue, TaskNode* task) {
  auto it = queue.end();
  while (it != queue.begin() && (*std::prev(it))->priority < task->priority) {
    --it;
  }
  queue.insert(it, task);
}

/// (avail_vtime, device) ordered index with cached keys, so one device can
/// be re-keyed in O(log n) when its clock advances. Backs pop_earliest():
/// iterating from begin() visits devices in the same (avail, id) order the
/// old per-iteration sort produced, without touching the other n-1 devices.
class AvailIndex {
 public:
  explicit AvailIndex(std::size_t devices) : key_(devices, kAbsent) {}

  void insert(DeviceId device, double key) {
    const auto d = static_cast<std::size_t>(device);
    if (key_[d] != kAbsent) order_.erase({key_[d], device});
    key_[d] = key;
    order_.insert({key, device});
  }

  void erase(DeviceId device) {
    const auto d = static_cast<std::size_t>(device);
    if (key_[d] == kAbsent) return;
    order_.erase({key_[d], device});
    key_[d] = kAbsent;
  }

  bool contains(DeviceId device) const {
    return key_[static_cast<std::size_t>(device)] != kAbsent;
  }

  /// Re-key if present; no-op for devices not in the index.
  void rekey(DeviceId device, double key) {
    if (contains(device)) insert(device, key);
  }

  auto begin() const { return order_.begin(); }
  auto end() const { return order_.end(); }

 private:
  // Virtual clocks are non-negative, so -1 can never collide with a real
  // key; it marks "not in order_".
  static constexpr double kAbsent = -1.0;
  std::set<std::pair<double, DeviceId>> order_;
  std::vector<double> key_;
};

double device_avail(const std::deque<DeviceState>& devices, DeviceId device) {
  return devices[static_cast<std::size_t>(device)].avail_vtime.load(
      std::memory_order_relaxed);
}

/// Single shared FIFO; the first idle device with a matching implementation
/// takes the oldest runnable task. Greedy, model-free.
class EagerScheduler final : public Scheduler {
 public:
  explicit EagerScheduler(const std::deque<DeviceState>* devices)
      : devices_(devices), avail_(devices->size()) {
    for (std::size_t i = 0; i < devices->size(); ++i) {
      avail_.insert(static_cast<DeviceId>(i),
                    device_avail(*devices, static_cast<DeviceId>(i)));
    }
  }

  void push(TaskNode* task) override { priority_insert(queue_, task); }

  TaskNode* pop(DeviceId device) override {
    const DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (device_capable(dev, **it)) {
        TaskNode* task = *it;
        queue_.erase(it);
        return task;
      }
    }
    return nullptr;
  }

  TaskNode* peek(DeviceId device) const override {
    const DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
    for (TaskNode* task : queue_) {
      if (device_capable(dev, *task)) return task;
    }
    return nullptr;
  }

  TaskNode* pop_earliest(DeviceId* device) override {
    if (queue_.empty()) return nullptr;
    // The shared queue is capability-filtered at pop time, so the earliest
    // device may come up empty-handed while a later one can run something;
    // keep scanning (bounded by the number of distinct device kinds in
    // practice — a capable device usually sits at the front).
    for (const auto& [key, d] : avail_) {
      if ((*devices_)[static_cast<std::size_t>(d)].blacklisted.load(
              std::memory_order_relaxed)) {
        continue;
      }
      if (TaskNode* task = pop(d)) {
        *device = d;
        return task;
      }
    }
    return nullptr;
  }

  void on_device_time_advanced(DeviceId device) override {
    avail_.rekey(device, device_avail(*devices_, device));
  }

  bool empty() const override { return queue_.empty(); }

  std::size_t size() const override { return queue_.size(); }

  std::vector<TaskNode*> drain_device(DeviceId device) override {
    // Shared queue: survivors keep draining it. Only evict tasks that no
    // live device can run, so the engine can fail them instead of hanging.
    avail_.erase(device);
    std::vector<TaskNode*> orphans;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (!any_live_capable(*devices_, **it)) {
        orphans.push_back(*it);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    return orphans;
  }

 private:
  const std::deque<DeviceState>* devices_;
  std::deque<TaskNode*> queue_;
  AvailIndex avail_;  ///< every live device, keyed by its virtual clock
};

/// Per-device deques with round-robin placement and back-stealing.
class WorkStealingScheduler final : public Scheduler {
 public:
  explicit WorkStealingScheduler(const std::deque<DeviceState>* devices)
      : devices_(devices), queues_(devices->size()), avail_(devices->size()) {
    for (std::size_t i = 0; i < devices->size(); ++i) {
      avail_.insert(static_cast<DeviceId>(i),
                    device_avail(*devices, static_cast<DeviceId>(i)));
    }
  }

  void push(TaskNode* task) override {
    ++total_;
    // Round-robin over capable devices spreads independent tasks without a
    // model; stealing repairs imbalance afterwards.
    const std::size_t n = queues_.size();
    for (std::size_t probe = 0; probe < n; ++probe) {
      const std::size_t i = (next_ + probe) % n;
      if (device_capable((*devices_)[i], *task)) {
        queues_[i].push_back(task);
        next_ = i + 1;
        return;
      }
    }
    // No capable device: keep it in queue 0; pop() re-checks capability and
    // the engine has already validated codelets, so this is unreachable in
    // practice but keeps the invariant "pushed tasks are never dropped".
    queues_[0].push_back(task);
  }

  TaskNode* pop(DeviceId device) override {
    auto& own = queues_[static_cast<std::size_t>(device)];
    const DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
    for (auto it = own.begin(); it != own.end(); ++it) {
      if (device_capable(dev, **it)) {
        TaskNode* task = *it;
        own.erase(it);
        --total_;
        return task;
      }
    }
    // Steal from the back of the longest victim queue.
    std::size_t victim = queues_.size();
    std::size_t best = 0;
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      if (i == static_cast<std::size_t>(device)) continue;
      if (queues_[i].size() > best) {
        best = queues_[i].size();
        victim = i;
      }
    }
    if (victim == queues_.size()) return nullptr;
    auto& vq = queues_[victim];
    for (auto it = vq.rbegin(); it != vq.rend(); ++it) {
      if (device_capable(dev, **it)) {
        TaskNode* task = *it;
        vq.erase(std::next(it).base());
        --total_;
        return task;
      }
    }
    return nullptr;
  }

  TaskNode* peek(DeviceId device) const override {
    // Mirror pop()'s scan exactly — own queue front-to-back, then the back
    // of the longest victim queue — without erasing anything.
    const auto& own = queues_[static_cast<std::size_t>(device)];
    const DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
    for (TaskNode* task : own) {
      if (device_capable(dev, *task)) return task;
    }
    std::size_t victim = queues_.size();
    std::size_t best = 0;
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      if (i == static_cast<std::size_t>(device)) continue;
      if (queues_[i].size() > best) {
        best = queues_[i].size();
        victim = i;
      }
    }
    if (victim == queues_.size()) return nullptr;
    const auto& vq = queues_[victim];
    for (auto it = vq.rbegin(); it != vq.rend(); ++it) {
      if (device_capable(dev, **it)) return *it;
    }
    return nullptr;
  }

  TaskNode* pop_earliest(DeviceId* device) override {
    if (total_ == 0) return nullptr;
    for (const auto& [key, d] : avail_) {
      if ((*devices_)[static_cast<std::size_t>(d)].blacklisted.load(
              std::memory_order_relaxed)) {
        continue;
      }
      // pop() steals when the device's own queue is empty, so the earliest
      // device finds work as long as any capable task is queued anywhere.
      if (TaskNode* task = pop(d)) {
        *device = d;
        return task;
      }
    }
    return nullptr;
  }

  void on_device_time_advanced(DeviceId device) override {
    avail_.rekey(device, device_avail(*devices_, device));
  }

  bool empty() const override { return total_ == 0; }

  std::size_t size() const override { return total_; }

  std::vector<TaskNode*> drain_device(DeviceId device) override {
    avail_.erase(device);
    auto& q = queues_[static_cast<std::size_t>(device)];
    std::vector<TaskNode*> drained(q.begin(), q.end());
    q.clear();
    total_ -= drained.size();
    return drained;
  }

 private:
  const std::deque<DeviceState>* devices_;
  std::vector<std::deque<TaskNode*>> queues_;
  std::size_t next_ = 0;
  std::size_t total_ = 0;
  AvailIndex avail_;  ///< every live device, keyed by its virtual clock
};

/// Model-based earliest-finish-time placement (StarPU dmda-like): each task
/// goes, at push time, to the placement class minimizing
///   max(est_avail(cheapest member), task.ready) + transfer_est + exec_est,
/// then to that cheapest member. With singleton classes this is exactly the
/// classic per-device HEFT scan; with grouped classes it evaluates one
/// candidate per device flavor and picks the member with the smallest
/// estimated backlog in O(log members).
class HeftScheduler final : public Scheduler {
 public:
  HeftScheduler(const std::deque<DeviceState>* devices,
                const PlacementClassSet* classes, CostClassFn cost_fn,
                DecisionOracle* oracle)
      : devices_(devices),
        classes_(classes),
        cost_fn_(std::move(cost_fn)),
        queues_(devices->size()),
        est_avail_(devices->size(), 0.0),
        class_of_(devices->size(), 0),
        members_(classes->size()),
        ready_(devices->size()),
        oracle_(oracle) {
    for (std::size_t c = 0; c < classes->size(); ++c) {
      for (const DeviceId m : (*classes)[c].members) {
        class_of_[static_cast<std::size_t>(m)] = c;
        members_[c].insert({0.0, m});
      }
    }
  }

  void push(TaskNode* task) override {
    costs_.resize(classes_->size());
    cost_fn_(*task, costs_.data());
    const double ready = task->ready_vtime.load(std::memory_order_relaxed);
    double best_finish = std::numeric_limits<double>::infinity();
    std::size_t best_class = classes_->size();
    DeviceId best_device = -1;
    for (std::size_t c = 0; c < classes_->size(); ++c) {
      const PlacementClass& pc = (*classes_)[c];
      if (!task->codelet->supports(pc.kind)) continue;
      const auto& members = members_[c];
      if (members.empty()) continue;  // every member blacklisted
      // The cheapest member is the class's candidate: all members share one
      // cost estimate, so the smallest backlog finishes first, ties to the
      // lowest device id (the exhaustive scan's tie-break).
      const auto& [est, dev] = *members.begin();
      const double finish = std::max(est, ready) + costs_[c];
      if (finish < best_finish) {
        best_finish = finish;
        best_class = c;
        best_device = dev;
      }
    }
    if (best_device < 0) {
      // Unreachable in practice (the engine validates codelets against the
      // platform), but keeps the invariant "pushed tasks are never dropped":
      // park on queue 0 without touching the class candidate sets.
      queues_[0].push_back(task);
      ++total_;
      if (queues_[0].size() == 1) ready_.insert(0, device_avail(*devices_, 0));
      return;
    }
    if (oracle_ != nullptr) {
      // Placement-class member resolution is a genuine choice point: every
      // member whose estimated backlog ties the minimum finishes the task at
      // the same modeled time. The canonical pick (alternative 0) is the
      // lowest device id — exactly what *members.begin() yields — so replay
      // with a CanonicalOracle is byte-identical to running with none.
      const auto& members = members_[best_class];
      const double min_est = members.begin()->first;
      ChoicePoint cp;
      cp.kind = ChoiceKind::kMember;
      for (const auto& [est, dev] : members) {
        if (est != min_est) break;  // (est, id) order: ties are a prefix
        cp.alts.push_back({task->id, dev});
      }
      if (cp.alts.size() > 1) {
        const int pick = oracle_->choose(cp);
        best_device = cp.alts[static_cast<std::size_t>(pick)].device;
      } else {
        oracle_->note(ChoiceKind::kMember, task->id, best_device);
      }
    }
    auto& members = members_[best_class];
    members.erase({est_avail_[static_cast<std::size_t>(best_device)], best_device});
    est_avail_[static_cast<std::size_t>(best_device)] = best_finish;
    members.insert({best_finish, best_device});
    auto& queue = queues_[static_cast<std::size_t>(best_device)];
    queue.push_back(task);
    ++total_;
    if (queue.size() == 1) {
      ready_.insert(best_device, device_avail(*devices_, best_device));
    }
  }

  TaskNode* pop(DeviceId device) override {
    auto& own = queues_[static_cast<std::size_t>(device)];
    if (own.empty()) return nullptr;
    TaskNode* task = own.front();
    own.pop_front();
    --total_;
    if (own.empty()) ready_.erase(device);
    return task;
  }

  TaskNode* peek(DeviceId device) const override {
    if ((*devices_)[static_cast<std::size_t>(device)].blacklisted.load(
            std::memory_order_relaxed)) {
      return nullptr;
    }
    const auto& own = queues_[static_cast<std::size_t>(device)];
    return own.empty() ? nullptr : own.front();
  }

  TaskNode* pop_earliest(DeviceId* device) override {
    // ready_ holds exactly the devices with queued work, keyed by their
    // virtual clock, so the front entry is the device the old sorted scan
    // would have reached first. Blacklisted devices were drained out.
    for (const auto& [key, d] : ready_) {
      if ((*devices_)[static_cast<std::size_t>(d)].blacklisted.load(
              std::memory_order_relaxed)) {
        continue;
      }
      *device = d;
      return pop(d);
    }
    return nullptr;
  }

  void on_device_time_advanced(DeviceId device) override {
    ready_.rekey(device, device_avail(*devices_, device));
  }

  bool empty() const override { return total_ == 0; }

  std::size_t size() const override { return total_; }

  std::vector<TaskNode*> drain_device(DeviceId device) override {
    const auto d = static_cast<std::size_t>(device);
    auto& q = queues_[d];
    std::vector<TaskNode*> drained(q.begin(), q.end());
    q.clear();
    total_ -= drained.size();
    ready_.erase(device);
    // The dead device stops being a class candidate, and its backlog
    // estimate is meaningless now; re-pushed tasks will rebuild est_avail_
    // on the survivors.
    members_[class_of_[d]].erase({est_avail_[d], device});
    est_avail_[d] = 0.0;
    return drained;
  }

 private:
  const std::deque<DeviceState>* devices_;
  const PlacementClassSet* classes_;
  CostClassFn cost_fn_;
  std::vector<std::deque<TaskNode*>> queues_;
  std::vector<double> est_avail_;
  std::vector<std::size_t> class_of_;
  /// Per-class live members ordered by (estimated backlog, id); begin() is
  /// the class candidate HEFT compares against the other classes.
  std::vector<std::set<std::pair<double, DeviceId>>> members_;
  AvailIndex ready_;  ///< devices with queued work, keyed by virtual clock
  std::size_t total_ = 0;
  std::vector<double> costs_;  ///< scratch row (engine mutex held)
  DecisionOracle* oracle_ = nullptr;  ///< member-tie resolution; nullable
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const std::deque<DeviceState>* devices,
                                          const PlacementClassSet* classes,
                                          CostClassFn cost_fn,
                                          DecisionOracle* oracle) {
  switch (kind) {
    case SchedulerKind::kEager:
      return std::make_unique<EagerScheduler>(devices);
    case SchedulerKind::kWorkStealing:
      return std::make_unique<WorkStealingScheduler>(devices);
    case SchedulerKind::kHeft:
      return std::make_unique<HeftScheduler>(devices, classes,
                                             std::move(cost_fn), oracle);
  }
  return std::make_unique<EagerScheduler>(devices);
}

// --- HybridDispatch ----------------------------------------------------------

HybridDispatch::HybridDispatch(SchedulerKind kind,
                               std::deque<DeviceState>* devices,
                               const PlacementClassSet* classes,
                               CostClassFn cost_fn)
    : kind_(kind),
      devices_(devices),
      classes_(classes),
      cost_fn_(std::move(cost_fn)),
      class_rr_(new std::atomic<std::size_t>[classes->size()]) {
  for (std::size_t c = 0; c < classes->size(); ++c) {
    class_rr_[c].store(0, std::memory_order_relaxed);
  }
}

DeviceId HybridDispatch::pick_member(std::size_t cls) {
  const PlacementClass& pc = (*classes_)[cls];
  const std::size_t m = pc.members.size();
  if (m == 1) {
    const DeviceId only = pc.members[0];
    return (*devices_)[static_cast<std::size_t>(only)].blacklisted.load(
               std::memory_order_relaxed)
               ? -1
               : only;
  }
  // Two-choice load balancing: probe a small rotating window and take the
  // member with the smallest estimated backlog. Near-optimal spread at O(1)
  // cost — a full member scan would reintroduce the O(devices) walk the
  // classes exist to avoid.
  constexpr std::size_t kProbes = 2;
  const std::size_t start = class_rr_[cls].fetch_add(1, std::memory_order_relaxed);
  DeviceId best = -1;
  double best_est = std::numeric_limits<double>::infinity();
  for (std::size_t probe = 0; probe < kProbes && probe < m; ++probe) {
    const DeviceId candidate = pc.members[(start + probe) % m];
    const DeviceState& dev = (*devices_)[static_cast<std::size_t>(candidate)];
    if (dev.blacklisted.load(std::memory_order_relaxed)) continue;
    const double est = dev.est_avail.load(std::memory_order_relaxed);
    if (est < best_est) {
      best_est = est;
      best = candidate;
    }
  }
  if (best >= 0) return best;
  // Every probed member was blacklisted (rare); fall back to a full scan
  // for any survivor.
  for (const DeviceId candidate : pc.members) {
    if (!(*devices_)[static_cast<std::size_t>(candidate)].blacklisted.load(
            std::memory_order_relaxed)) {
      return candidate;
    }
  }
  return -1;
}

DeviceId HybridDispatch::place(const TaskNode& task) {
  if (kind_ == SchedulerKind::kWorkStealing) {
    const std::size_t n = devices_->size();
    const std::size_t start = rr_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t probe = 0; probe < n; ++probe) {
      const std::size_t i = (start + probe) % n;
      if (device_capable((*devices_)[i], task)) {
        return static_cast<DeviceId>(i);
      }
    }
    return -1;
  }
  // kHeft: earliest estimated finish over the placement classes — one cost
  // estimate per device flavor, not per device — then the cheapest probed
  // member inside the winning class. Concurrent placements may read
  // slightly stale est_avail values — a heuristic race that degrades
  // placement, never correctness. The cost row is fetched in one call
  // (single model/memory lock round-trip); thread_local scratch keeps
  // concurrent submitters allocation-free.
  static thread_local std::vector<double> costs;
  const std::size_t nc = classes_->size();
  costs.resize(nc);
  cost_fn_(task, costs.data());
  double best_finish = std::numeric_limits<double>::infinity();
  DeviceId best_device = -1;
  const double ready = task.ready_vtime.load(std::memory_order_relaxed);
  for (std::size_t c = 0; c < nc; ++c) {
    const PlacementClass& pc = (*classes_)[c];
    if (!task.codelet->supports(pc.kind)) continue;
    if (pc.live_members.load(std::memory_order_relaxed) <= 0) continue;
    const DeviceId member = pick_member(c);
    if (member < 0) continue;
    const DeviceState& dev = (*devices_)[static_cast<std::size_t>(member)];
    const double start =
        std::max(dev.est_avail.load(std::memory_order_relaxed), ready);
    const double finish = start + costs[c];
    if (finish < best_finish) {
      best_finish = finish;
      best_device = member;
    }
  }
  if (best_device >= 0) {
    vtime_raise((*devices_)[static_cast<std::size_t>(best_device)].est_avail,
                best_finish);
  }
  return best_device;
}

bool HybridDispatch::push_to(DeviceId device, TaskNode* task, bool notify) {
  DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
  bool wake = false;
  bool nudge_peer = false;
  {
    std::lock_guard<std::mutex> lock(dev.queue.m);
    // Re-check under the queue mutex: blacklisting sets the flag first and
    // drains the queue after, both against this mutex, so either we insert
    // before the drain (and the task is re-routed) or we see the flag.
    if (dev.blacklisted.load(std::memory_order_relaxed)) return false;
    const bool was_empty = dev.queue.tasks.empty();
    dev.queue.tasks.push_back(task);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Wake only on the empty -> non-empty transition, and only when someone
    // is actually asleep (sleepers is registered under this mutex before
    // the worker waits, so this read cannot miss a sleeper that already
    // passed its queue re-check). A non-empty queue means the owner is
    // either awake or has an undelivered wakeup: it drains to empty under
    // this mutex before it ever sleeps again. Skipping the futex syscall on
    // the other pushes is the difference between one wake per task and one
    // per burst.
    wake = notify && was_empty &&
           dev.queue.sleepers.load(std::memory_order_relaxed) > 0;
    nudge_peer = notify && kind_ == SchedulerKind::kWorkStealing &&
                 dev.queue.tasks.size() > 1 && devices_->size() > 1;
  }
  // Notify with the mutex released: a woken worker immediately re-acquires
  // the queue mutex, so signalling while holding it forces an extra block/
  // unblock cycle on every handoff.
  if (wake) dev.queue.cv.notify_one();
  if (nudge_peer) {
    // The owner may be busy for a while; nudge one sleeping peer so
    // back-stealing picks the backlog up without waiting for its rescan
    // timeout (heuristic — a stale sleepers read at worst delays a steal).
    const std::size_t peer =
        (static_cast<std::size_t>(device) + 1) % devices_->size();
    ReadyQueue& pq = (*devices_)[peer].queue;
    if (pq.sleepers.load(std::memory_order_relaxed) > 0) pq.cv.notify_one();
  }
  return true;
}

bool HybridDispatch::push(TaskNode* task) {
  if (kind_ == SchedulerKind::kEager) {
    if (!any_live_capable_class(*classes_, *task)) return false;
    bool wake;
    {
      std::lock_guard<std::mutex> lock(shared_.m);
      priority_insert(shared_.tasks, task);
      count_.fetch_add(1, std::memory_order_relaxed);
      wake = shared_.sleepers.load(std::memory_order_relaxed) > 0;
    }
    // notify_all, not notify_one: the shared queue is capability-filtered
    // at pop time, so waking a single worker could pick one whose device
    // cannot run this task while the capable worker keeps sleeping.
    if (wake) shared_.cv.notify_all();
    return true;
  }
  // A device can be blacklisted between place() and push_to(); re-place
  // until the insert lands or no candidate remains.
  for (;;) {
    const DeviceId device = place(*task);
    if (device < 0) return false;
    if (push_to(device, task, /*notify=*/true)) return true;
  }
}

std::vector<TaskNode*> HybridDispatch::push_batch(
    const std::vector<TaskNode*>& tasks) {
  std::vector<TaskNode*> rejected;
  if (kind_ == SchedulerKind::kEager) {
    bool wake;
    {
      std::lock_guard<std::mutex> lock(shared_.m);
      for (TaskNode* task : tasks) {
        if (!any_live_capable_class(*classes_, *task)) {
          rejected.push_back(task);
          continue;
        }
        priority_insert(shared_.tasks, task);
        count_.fetch_add(1, std::memory_order_relaxed);
      }
      wake = shared_.sleepers.load(std::memory_order_relaxed) > 0;
    }
    if (wake) shared_.cv.notify_all();
    return rejected;
  }

  // Bucket per device so each involved queue is locked and notified once.
  std::vector<std::vector<TaskNode*>> buckets(devices_->size());
  for (TaskNode* task : tasks) {
    const DeviceId device = place(*task);
    if (device < 0) {
      rejected.push_back(task);
      continue;
    }
    buckets[static_cast<std::size_t>(device)].push_back(task);
  }
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].empty()) continue;
    DeviceState& dev = (*devices_)[i];
    bool placed = false;
    bool was_empty = false;
    {
      std::lock_guard<std::mutex> lock(dev.queue.m);
      if (!dev.blacklisted.load(std::memory_order_relaxed)) {
        was_empty = dev.queue.tasks.empty();
        for (TaskNode* task : buckets[i]) dev.queue.tasks.push_back(task);
        count_.fetch_add(buckets[i].size(), std::memory_order_relaxed);
        placed = true;
      }
    }
    if (placed) {
      if (kind_ == SchedulerKind::kWorkStealing && buckets[i].size() > 1) {
        // A burst on one device is exactly what stealing exists for: wake
        // every worker, not just the owner.
        notify_all();
      } else if (was_empty &&
                 dev.queue.sleepers.load(std::memory_order_relaxed) > 0) {
        // Empty -> non-empty transition only (see push_to). Safe to read
        // sleepers after unlocking: a sleeper either registered before our
        // push (visible via the mutex) or re-checked the queue after it
        // and found the batch.
        dev.queue.cv.notify_one();
      }
    } else {
      // Blacklisted while batching: fall back to one-by-one re-placement.
      for (TaskNode* task : buckets[i]) {
        if (!push(task)) rejected.push_back(task);
      }
    }
  }
  return rejected;
}

TaskNode* HybridDispatch::pop_local(DeviceId device) {
  DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
  if (kind_ == SchedulerKind::kEager) {
    std::lock_guard<std::mutex> lock(shared_.m);
    for (auto it = shared_.tasks.begin(); it != shared_.tasks.end(); ++it) {
      if (device_capable(dev, **it)) {
        TaskNode* task = *it;
        shared_.tasks.erase(it);
        count_.fetch_sub(1, std::memory_order_relaxed);
        return task;
      }
    }
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(dev.queue.m);
  if (dev.queue.tasks.empty()) return nullptr;
  // Per-device queues only ever receive tasks the device can run.
  TaskNode* task = dev.queue.tasks.front();
  dev.queue.tasks.pop_front();
  count_.fetch_sub(1, std::memory_order_relaxed);
  return task;
}

TaskNode* HybridDispatch::steal_for(DeviceId thief) {
  // Only the work-stealing policy steals: kEager has nothing device-bound,
  // and kHeft's model-based placement is final — stealing would silently
  // override the cost model (and move work off the accelerators it chose).
  if (kind_ != SchedulerKind::kWorkStealing) return nullptr;
  const std::size_t n = devices_->size();
  const DeviceState& me = (*devices_)[static_cast<std::size_t>(thief)];
  for (std::size_t offset = 1; offset < n; ++offset) {
    const std::size_t v = (static_cast<std::size_t>(thief) + offset) % n;
    DeviceState& victim = (*devices_)[v];
    std::lock_guard<std::mutex> lock(victim.queue.m);
    // Steal the oldest work we can actually run, from the back — the
    // owner pops the front, so contention on a 2-element queue is nil.
    for (auto it = victim.queue.tasks.rbegin();
         it != victim.queue.tasks.rend(); ++it) {
      if ((*it)->codelet->supports(me.spec.kind)) {
        TaskNode* task = *it;
        victim.queue.tasks.erase(std::next(it).base());
        ++victim.queue.steals_out;
        count_.fetch_sub(1, std::memory_order_relaxed);
        return task;
      }
    }
  }
  return nullptr;
}

TaskNode* HybridDispatch::wait_pop(DeviceId device,
                                   const std::atomic<bool>& stopping) {
  DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
  ReadyQueue& q = kind_ == SchedulerKind::kEager ? shared_ : dev.queue;
  // Empty polls since the last task; governs the yield-before-sleep below.
  int idle_polls = 0;
  for (;;) {
    if (TaskNode* task = pop_local(device)) return task;
    if (!dev.blacklisted.load(std::memory_order_relaxed)) {
      if (TaskNode* task = steal_for(device)) return task;
    }
    // Yield a few times before sleeping: while a submitter is actively
    // producing, the worker stays runnable (sleepers == 0, so pushes skip
    // the futex syscall) and each yield hands the core to the submitter,
    // which typically queues a burst the next poll drains. Only a queue
    // that stays empty across several quanta puts the worker to sleep.
    if (idle_polls < 8 && !stopping.load(std::memory_order_relaxed)) {
      ++idle_polls;
      std::this_thread::yield();
      continue;
    }
    idle_polls = 0;
    std::unique_lock<std::mutex> lock(q.m);
    // Re-check under the queue mutex: a push after our pop_local above
    // would otherwise be a lost wakeup.
    if (kind_ == SchedulerKind::kEager) {
      for (auto it = shared_.tasks.begin(); it != shared_.tasks.end(); ++it) {
        if (device_capable(dev, **it)) {
          TaskNode* task = *it;
          shared_.tasks.erase(it);
          count_.fetch_sub(1, std::memory_order_relaxed);
          return task;
        }
      }
    } else if (!dev.queue.tasks.empty()) {
      TaskNode* task = dev.queue.tasks.front();
      dev.queue.tasks.pop_front();
      count_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
    if (stopping.load(std::memory_order_relaxed)) return nullptr;
    // Register as a sleeper BEFORE waiting, still under q.m: a pusher that
    // takes q.m after us must see sleepers > 0 and notify; one that ran
    // before us already enqueued the task our re-check above would have
    // found. Either way no wakeup is lost, and pushers may skip the futex
    // syscall entirely whenever sleepers == 0.
    q.sleepers.fetch_add(1, std::memory_order_relaxed);
    if (kind_ == SchedulerKind::kWorkStealing &&
        count_.load(std::memory_order_relaxed) > 0) {
      // Work is queued somewhere we could steal from; rescan soon even if
      // nobody nudges us. Non-stealing policies only receive work through
      // their own queue's notification, so they sleep without a timeout.
      q.cv.wait_for(lock, std::chrono::milliseconds(2));
    } else {
      q.cv.wait(lock);
    }
    q.sleepers.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::vector<TaskNode*> HybridDispatch::drain_device(DeviceId device) {
  DeviceState& dev = (*devices_)[static_cast<std::size_t>(device)];
  if (kind_ == SchedulerKind::kEager) {
    // Shared queue: survivors keep draining it; evict only orphans.
    std::vector<TaskNode*> orphans;
    std::lock_guard<std::mutex> lock(shared_.m);
    for (auto it = shared_.tasks.begin(); it != shared_.tasks.end();) {
      if (!any_live_capable(*devices_, **it)) {
        orphans.push_back(*it);
        it = shared_.tasks.erase(it);
        count_.fetch_sub(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
    return orphans;
  }
  std::lock_guard<std::mutex> lock(dev.queue.m);
  std::vector<TaskNode*> drained(dev.queue.tasks.begin(),
                                 dev.queue.tasks.end());
  dev.queue.tasks.clear();
  count_.fetch_sub(drained.size(), std::memory_order_relaxed);
  return drained;
}

std::uint64_t HybridDispatch::steals() const {
  std::uint64_t total = 0;
  for (DeviceState& dev : *devices_) {
    std::lock_guard<std::mutex> lock(dev.queue.m);
    total += dev.queue.steals_out;
  }
  return total;
}

void HybridDispatch::notify_all() {
  // The empty critical sections order this notification against workers in
  // wait_pop: a worker holds the queue mutex from its stopping/queue
  // re-check until cv.wait releases it, so locking here guarantees the
  // worker either sees the new state or is already waiting when we notify.
  {
    std::lock_guard<std::mutex> lock(shared_.m);
  }
  shared_.cv.notify_all();
  for (DeviceState& dev : *devices_) {
    {
      std::lock_guard<std::mutex> lock(dev.queue.m);
    }
    dev.queue.cv.notify_all();
  }
}

}  // namespace starvm::detail
