// The starvm engine: a StarPU-like heterogeneous task runtime
// (substrate S7 — scheduling + data management for the paper's case study).
//
// Lifecycle:
//   Engine engine(config);
//   DataHandle* a = engine.register_matrix(ptr, rows, cols);
//   auto blocks = engine.partition_rows(a, 8);       // BLOCK distribution
//   engine.submit({&codelet, {{blocks[i], Access::kReadWrite}, ...}});
//   if (auto st = engine.wait_all(); !st.ok()) { /* tasks failed */ }
//   EngineStats s = engine.stats();
//
// Dependencies are inferred from access modes per data handle with
// sequential consistency (RAW, WAR, WAW), exactly the contract StarPU
// gives the paper's generated programs. Each device runs its own worker
// thread; simulated accelerators execute implementations on the host while
// their time is charged from the performance model (DESIGN.md).
//
// Thread-safety: submit/submit_batch/wait_all may be called concurrently
// from multiple application threads while workers drain; DataHandle
// registration and partitioning must happen outside active task execution
// on those handles.
//
// Locking (real-threads mode; see docs/RUNTIME.md "Scheduling & locking
// architecture"): submission wiring is serialized by submit_mutex_;
// dependency release goes through per-task edge mutexes; ready tasks flow
// through per-device queues (scheduler.hpp HybridDispatch); replica
// bookkeeping has its own memory_mutex_ (skipped entirely on single-node
// platforms); fault handling has fault_mutex_. The simulation modes keep
// the single coarse mutex_ for the discrete-event loop.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "starvm/codelet.hpp"
#include "starvm/data.hpp"
#include "starvm/device.hpp"
#include "starvm/perf_model.hpp"
#include "starvm/runtime_state.hpp"
#include "starvm/scheduler.hpp"
#include "starvm/stats.hpp"
#include "starvm/types.hpp"
#include "util/result.hpp"

namespace obs {
class Counter;
}

namespace starvm {

class Engine {
 public:
  explicit Engine(EngineConfig config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Data registration ----------------------------------------------------

  /// Register a row-major matrix of doubles (rows x cols, stride ld; 0 = cols).
  DataHandle* register_matrix(double* ptr, std::size_t rows, std::size_t cols,
                              std::size_t ld = 0, std::string name = {});

  /// Register a vector of doubles.
  DataHandle* register_vector(double* ptr, std::size_t n, std::string name = {});

  /// Split a matrix handle into `nblocks` row bands (the paper's BLOCK
  /// distribution). Tasks must target the blocks, not the parent, until
  /// unpartition() is called. Always returns exactly `nblocks` handles;
  /// when nblocks > rows the tail blocks are empty (rows() == 0).
  std::vector<DataHandle*> partition_rows(DataHandle* handle, int nblocks);

  /// Split a vector handle into `nblocks` contiguous spans (exactly
  /// `nblocks` handles; tail spans may be empty).
  std::vector<DataHandle*> partition_vector(DataHandle* handle, int nblocks);

  /// Split a matrix handle into a 2-D grid of row_blocks x col_blocks
  /// tiles (needed by tiled linear algebra: Cholesky, LU, ...). Tiles keep
  /// the parent's row stride, so implementations must honor ld(). Returned
  /// row-major: tile (r, c) at index r * col_blocks + c — always the full
  /// row_blocks x col_blocks grid; edge tiles may be empty.
  std::vector<DataHandle*> partition_tiles(DataHandle* handle, int row_blocks,
                                           int col_blocks);

  /// Re-enable use of the parent handle; blocks become invalid for new tasks.
  void unpartition(DataHandle* handle);

  /// Declare that the application modified the buffer directly on the host,
  /// outside any task (the StarPU acquire/release-in-RW equivalent): the
  /// host becomes the only valid replica of the handle and of its partition
  /// blocks. Call between wait_all() and the next submit touching it.
  void host_write(DataHandle* handle);

  // --- Task submission --------------------------------------------------------

  /// Submit a task; returns its id. Dependencies on previously submitted
  /// tasks are inferred from the buffers' access modes.
  TaskId submit(TaskDesc desc);

  /// Submit many tasks at once: validates every descriptor up front (throws
  /// before anything is enqueued), wires the whole batch's dependencies
  /// under one lock acquisition, pre-reserves the task nodes, and wakes the
  /// workers once per involved device instead of once per task. Returned
  /// ids are in descriptor order. Dependencies between batch members follow
  /// from descriptor order exactly as if each had been submit()ed in turn.
  std::vector<TaskId> submit_batch(std::vector<TaskDesc> descs);

  /// Block until every submitted task has completed, failed permanently, or
  /// been cancelled. Ok when everything succeeded; otherwise an error
  /// aggregating the per-task failures (EngineStats::errors has the full
  /// list). Failures are sticky: once a task has failed, subsequent calls
  /// keep reporting the error.
  pdl::util::Status wait_all();

  /// Block until a specific task has completed; false for unknown, failed,
  /// or cancelled ids. In pure simulation this drains everything (the event
  /// loop is not incremental), so prefer wait_all there.
  bool wait(TaskId id);

  // --- Introspection -----------------------------------------------------------

  const EngineConfig& config() const { return config_; }
  std::size_t device_count() const { return devices_.size(); }
  /// Number of placement classes (groups of interchangeable devices) the
  /// schedulers evaluate per task; a quantity-expanded 1k-worker group
  /// counts once. Equals device_count() when
  /// EngineConfig::placement_classes is false.
  std::size_t placement_class_count() const { return classes_.size(); }
  /// Spec of the device owning memory node `node` (the node→spec index
  /// behind the transfer model); nullptr for the host node or unknown ids.
  const DeviceSpec* node_link_spec(MemoryNodeId node) const;
  /// Snapshot of statistics; call after wait_all for a consistent view.
  EngineStats stats() const;
  PerfModel& perf_model() { return perf_model_; }

  // --- Flight recorder ---------------------------------------------------------

  /// The always-on flight recorder; nullptr when disabled
  /// (EngineConfig::flight_records_per_device == 0).
  const obs::FlightRecorder* flight_recorder() const { return flight_.get(); }

  /// Merged, time-ordered snapshot of every flight ring. Safe at any time,
  /// including while workers are running (torn records are dropped).
  std::vector<obs::FlightEvent> flight_snapshot() const;

  /// Explicit post-mortem dump: write <prefix>.jsonl (one record per line)
  /// and <prefix>.trace.json (Chrome trace; recorder events on their own
  /// process lane, end-less records as instant events). False when the
  /// recorder is disabled or a file cannot be written.
  bool dump_flight_recorder(const std::string& prefix,
                            const std::string& reason = "explicit") const;

 private:
  bool hybrid() const { return config_.mode == ExecutionMode::kHybrid; }

  void worker_loop(DeviceId device);

  /// One task execution on a hybrid worker: decision, buffer acquisition,
  /// kernel run, then finalize or the failure path. No global lock.
  void run_task_hybrid(detail::TaskNode& task, detail::DeviceState& device);

  /// Validate a descriptor (throws std::invalid_argument).
  void validate_desc(const TaskDesc& desc) const;

  /// Append a node to the arena and wire its dependencies (submit_mutex_
  /// held). The node still holds its submission reference: it cannot
  /// become ready until publish_submission drops it.
  detail::TaskNode& wire_task_locked(TaskDesc&& desc, double flops);

  /// Drop the submission reference; when that makes the task ready,
  /// dispatch it. Returns true when the task was dispatched.
  void publish_submission(detail::TaskNode* task);

  /// Route a ready task to the workers (hybrid) or the simulation scheduler
  /// (mutex_ must be held by the caller in the simulation modes).
  void dispatch_ready(detail::TaskNode* task);

  /// Discrete-event loop of the simulation modes (mutex_ held): repeatedly
  /// lets the device that is free earliest on the virtual clock pop the
  /// next task. In kDeterministic the popped task's kernel also executes.
  void run_simulation_locked();

  /// Oracle-steered pop (mutex_ held, oracle_ non-null): enumerate every
  /// (device, task) pair a pop could yield as a kSchedule ChoicePoint in
  /// canonical (avail_vtime, id) order and pop whichever alternative the
  /// oracle picks. nullptr when nothing is runnable anywhere.
  detail::TaskNode* pop_via_oracle(DeviceId* chosen);

  /// Book a completed task: virtual clock, stats, dependency release.
  /// Called by the owning worker (hybrid, lock-free on the global path) or
  /// under mutex_ (simulation).
  void finalize_task(detail::TaskNode& task, detail::DeviceState& device,
                     double transfer, double exec);

  // --- Fault tolerance (cold path; fault_mutex_) -----------------------------

  /// Book a failed attempt: advance the device's virtual clock past the
  /// attempt, count the failure, blacklist the device when it crossed the
  /// consecutive-failure threshold, then either re-queue the task with
  /// exponential backoff (budget left and a live device exists) or fail it
  /// permanently. Takes fault_mutex_ itself.
  void handle_task_failure(detail::TaskNode& task, detail::DeviceState& device,
                           double transfer, double exec,
                           const std::string& reason, bool is_timeout);

  /// Permanently fail `task` (kFailed) and cascade-cancel every transitive
  /// successor still waiting on it (fault_mutex_ held).
  void fail_task_locked(detail::TaskNode& task, const std::string& reason);

  /// Stop scheduling onto `device` and re-route its queued tasks onto the
  /// survivors (tasks with no surviving capable device fail permanently)
  /// (fault_mutex_ held).
  void blacklist_device_locked(detail::DeviceState& device);

  /// Retry budget for failures on `device` (per-device PDL override or the
  /// engine-wide FaultToleranceConfig::max_retries).
  int retry_budget(const detail::DeviceState& device) const;

  /// Watchdog limit in seconds for `task` on `device`; 0 = watchdog off.
  double watchdog_limit(const detail::TaskNode& task,
                        const detail::DeviceState& device) const;

  bool has_live_capable_device(const Codelet& codelet) const;

  void record_fault_event_locked(FaultEvent::Kind kind, double vtime,
                                 TaskId task, DeviceId device, int attempt,
                                 std::string detail);

  /// Status summarizing permanent failures so far; Ok when none
  /// (fault_mutex_ held).
  pdl::util::Status drain_status_locked() const;

  /// Wake everyone blocked in wait/wait_all after pending_/task state
  /// changed (never called with drain_mutex_ held).
  void notify_drain();

  /// Record a SchedulerDecision for `task` placed on `chosen` (called by
  /// the executing worker before acquire_buffers mutates replica state).
  /// Counts the decision always; allocates nothing unless recording is
  /// active (decisions_mutex_ taken only then).
  void record_decision(const detail::TaskNode& task,
                       const detail::DeviceState& chosen);

  /// Modeled cost of moving `view`'s missing replicas to `node`; updates
  /// the handle valid-sets and transfer counters (memory_mutex_ taken
  /// internally; returns 0 immediately on single-node platforms).
  double acquire_buffers(detail::TaskNode& task, MemoryNodeId node);

  /// Replica bookkeeping with capacity accounting (memory_mutex_ held).
  /// add_replica may evict LRU replicas on bounded nodes; eviction of a
  /// sole replica charges a write-back to the host into `cost`.
  /// `pinned` handles (the executing task's buffers) are never evicted.
  void add_replica_locked(DataHandle* handle, MemoryNodeId node, double& cost,
                          const std::vector<BufferView>* pinned);
  void drop_replica_locked(DataHandle* handle, MemoryNodeId node);

  /// Estimate for the HEFT policy: transfers (without mutating state) plus
  /// execution estimate. Takes memory_mutex_ only on multi-node platforms.
  double estimated_cost(const detail::TaskNode& task,
                        const detail::DeviceState& device) const;

  /// Class form for placement: fills out[c] for every placement class,
  /// taking the perf-model lock once and memory_mutex_ at most once for
  /// the whole row instead of once per candidate. Member devices of a
  /// class share kind, rate, link parameters and memory node, so one
  /// estimate is exact for all of them.
  void estimated_cost_class_row(const detail::TaskNode& task,
                                double* out) const;

  double exec_estimate(const detail::TaskNode& task,
                       const detail::DeviceState& device) const;

  /// Modeled bandwidth/latency between memory nodes (via host when needed).
  double link_transfer_seconds(std::size_t bytes, MemoryNodeId from,
                               MemoryNodeId to) const;

  EngineConfig config_;
  /// deque, not vector: DeviceState embeds mutexes/atomics (immovable) and
  /// deque growth never relocates elements.
  mutable std::deque<detail::DeviceState> devices_;
  /// Simulation-mode scheduler (null in hybrid mode).
  std::unique_ptr<detail::Scheduler> scheduler_;
  /// Hybrid-mode lock-split dispatch (null in the simulation modes).
  std::unique_ptr<detail::HybridDispatch> dispatch_;
  PerfModel perf_model_;
  /// Config plan, or $PDL_FAULT_PLAN at construction; nullptr = no faults.
  std::shared_ptr<const FaultPlan> fault_plan_;
  /// True when every device lives on the host memory node: replica
  /// bookkeeping is then a no-op and acquire_buffers skips memory_mutex_.
  bool single_node_ = false;

  /// Placement classes (see runtime_state.hpp) and supporting flat indexes,
  /// all immutable after construction except PlacementClass::live_members
  /// (decremented under fault_mutex_ when a member is blacklisted).
  detail::PlacementClassSet classes_;
  std::vector<std::size_t> class_of_;   ///< device id -> class index
  std::vector<double> class_gflops_;    ///< representative's sustained rate
  /// Memory node -> owning device's spec (host slot = nullptr): the O(1)
  /// replacement for the per-call device scan in link_transfer_seconds.
  std::vector<const DeviceSpec*> node_spec_;
  /// Transfers modeled with the hard-coded default link because a node had
  /// no spec in node_spec_ — unreachable for engine-built platforms;
  /// surfaced via EngineStats so tests can assert it stays zero.
  mutable std::atomic<std::uint64_t> link_spec_misses_{0};

  /// Group interchangeable devices into classes_ / class_of_ /
  /// class_gflops_ (constructor only; device list already built).
  void build_placement_classes();

  /// Simulation modes: guards the discrete-event loop and everything it
  /// touches. Hybrid mode: only scheduler_ remains under it (unused).
  mutable std::mutex mutex_;

  /// Serializes submission wiring: task-id assignment, arena growth,
  /// handle registration and dependency-tail updates. Guarantees a total
  /// submission order, which keeps the inferred DAG acyclic.
  mutable std::mutex submit_mutex_;
  /// Replica valid-sets, LRU accounting and transfer counters.
  mutable std::mutex memory_mutex_;
  /// Failure/retry/blacklist/cancel bookkeeping (cold path).
  mutable std::mutex fault_mutex_;
  /// SchedulerDecision log (taken only when recording is active).
  mutable std::mutex decisions_mutex_;
  /// Pairs with drain_cv_ for wait/wait_all sleeping.
  mutable std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  std::atomic<bool> stopping_{false};
  /// Tasks submitted but not yet done/failed/cancelled.
  std::atomic<std::size_t> pending_{0};
  /// Threads blocked in wait(TaskId); finalize only signals drain_cv_ when
  /// someone is actually watching or pending_ hit zero, instead of once
  /// per completed task.
  std::atomic<int> waiters_{0};

  detail::TaskArena tasks_;  ///< submit_mutex_
  /// A codelet's resolved calibration rows: its own row plus the per-kind
  /// variant alias rows (Codelet::calibration_alias), so the per-task
  /// wiring path never takes the perf-model mutex.
  struct ModelRows {
    PerfModel::Row* main = nullptr;
    std::array<PerfModel::Row*, 2> alias{};
  };
  std::unordered_map<const Codelet*, ModelRows> model_rows_;  ///< submit_mutex_
  detail::Arena<DataHandle> handles_;  ///< submit_mutex_
  TaskId next_task_id_ = 1;  ///< submit_mutex_

  /// Memory accounting per node (index = MemoryNodeId; host unbounded).
  struct NodeState {
    std::size_t capacity = 0;  ///< 0 = unlimited
    std::size_t used = 0;
    std::list<DataHandle*> lru;  ///< front = most recently used
  };
  std::vector<NodeState> nodes_;  ///< memory_mutex_

  // Statistics.
  std::uint64_t transfers_ = 0;        ///< memory_mutex_
  std::uint64_t transfer_bytes_ = 0;   ///< memory_mutex_
  std::uint64_t evictions_ = 0;        ///< memory_mutex_
  std::uint64_t writeback_bytes_ = 0;  ///< memory_mutex_
  std::atomic<double> first_submit_wall_{-1.0};
  std::atomic<double> drain_wall_{0.0};
  std::vector<SchedulerDecision> decisions_;  ///< decisions_mutex_

  // Fault-tolerance statistics (guarded by fault_mutex_).
  std::uint64_t task_failures_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t reroutes_ = 0;
  std::uint64_t blacklists_ = 0;
  std::uint64_t failed_tasks_ = 0;
  std::uint64_t cancelled_tasks_ = 0;
  std::vector<std::string> task_errors_;   ///< one entry per failed task
  std::vector<FaultEvent> fault_events_;
  /// Full per-task attempt chains (device, attempt #, cause): failures,
  /// timeouts, reroutes, cancellations always; completions whenever the
  /// task needed more than one attempt. Surfaced as EngineStats::attempts.
  std::vector<TaskAttempt> attempts_;

  /// Append to attempts_ (fault_mutex_ held).
  void record_attempt_locked(TaskId task, int attempt, DeviceId device,
                             TaskAttempt::Outcome outcome, double vtime,
                             std::string cause);

  /// One-line digest of `task`'s attempt chain for error messages
  /// (fault_mutex_ held); empty when the chain is empty.
  std::string attempt_chain_locked(TaskId task) const;

  // Flight recorder (tentpole, docs/OBSERVABILITY.md). Ring i belongs to
  // device i (its worker / the sim loop is the sole producer); the extra
  // ring at index devices_.size() takes the fault-path events, whose
  // producers are serialized by fault_mutex_. Null when disabled.
  std::unique_ptr<obs::FlightRecorder> flight_;
  /// Ensures the automatic post-mortem dump fires at most once per engine.
  mutable std::atomic<bool> flight_dumped_{false};
  /// Auto-dump prefix (config or $PDL_FLIGHT_DUMP); empty = no auto dump.
  std::string flight_dump_prefix_;
  std::uint64_t tasks_submitted_ = 0;  ///< submit_mutex_

  /// Persisted perf store (docs/RUNTIME.md "Persisted performance models"):
  /// resolved path (config or $PDL_PERF_STORE; empty = persistence off)
  /// and the descriptor hash the store is keyed by. Loaded at construction,
  /// written back (tmp + rename) at destruction after the workers joined.
  std::string perf_store_path_;
  std::uint64_t descriptor_hash_ = 0;
  std::uint64_t perf_store_entries_ = 0;   ///< construction only
  std::uint64_t perf_store_rejected_ = 0;  ///< construction only
  std::uint64_t perf_model_seeds_ = 0;     ///< submit_mutex_

  /// Write the post-mortem dump if an auto-dump prefix is configured and no
  /// dump has happened yet. Must be called WITHOUT fault_mutex_ held (the
  /// snapshot reads task labels under submit_mutex_ and writes files).
  void maybe_auto_dump(const char* reason) const;

  /// Per-policy decision counter ("starvm.decisions.<policy>"), resolved
  /// once at construction so the hot path skips the registry lookup.
  obs::Counter* decision_counter_ = nullptr;

  /// Decision oracle steering the simulation loop (EngineConfig::oracle;
  /// always null in hybrid mode). Non-owning.
  DecisionOracle* oracle_ = nullptr;

  std::vector<std::thread> workers_;
};

}  // namespace starvm
