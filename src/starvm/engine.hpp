// The starvm engine: a StarPU-like heterogeneous task runtime
// (substrate S7 — scheduling + data management for the paper's case study).
//
// Lifecycle:
//   Engine engine(config);
//   DataHandle* a = engine.register_matrix(ptr, rows, cols);
//   auto blocks = engine.partition_rows(a, 8);       // BLOCK distribution
//   engine.submit({&codelet, {{blocks[i], Access::kReadWrite}, ...}});
//   if (auto st = engine.wait_all(); !st.ok()) { /* tasks failed */ }
//   EngineStats s = engine.stats();
//
// Dependencies are inferred from access modes per data handle with
// sequential consistency (RAW, WAR, WAW), exactly the contract StarPU
// gives the paper's generated programs. Each device runs its own worker
// thread; simulated accelerators execute implementations on the host while
// their time is charged from the performance model (DESIGN.md).
//
// Thread-safety: submit/wait_all may be called from the application thread
// while workers drain; DataHandle registration and partitioning must happen
// outside active task execution on those handles.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "starvm/codelet.hpp"
#include "starvm/data.hpp"
#include "starvm/device.hpp"
#include "starvm/perf_model.hpp"
#include "starvm/runtime_state.hpp"
#include "starvm/scheduler.hpp"
#include "starvm/stats.hpp"
#include "starvm/types.hpp"
#include "util/result.hpp"

namespace obs {
class Counter;
}

namespace starvm {

class Engine {
 public:
  explicit Engine(EngineConfig config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Data registration ----------------------------------------------------

  /// Register a row-major matrix of doubles (rows x cols, stride ld; 0 = cols).
  DataHandle* register_matrix(double* ptr, std::size_t rows, std::size_t cols,
                              std::size_t ld = 0, std::string name = {});

  /// Register a vector of doubles.
  DataHandle* register_vector(double* ptr, std::size_t n, std::string name = {});

  /// Split a matrix handle into `nblocks` row bands (the paper's BLOCK
  /// distribution). Tasks must target the blocks, not the parent, until
  /// unpartition() is called. Always returns exactly `nblocks` handles;
  /// when nblocks > rows the tail blocks are empty (rows() == 0).
  std::vector<DataHandle*> partition_rows(DataHandle* handle, int nblocks);

  /// Split a vector handle into `nblocks` contiguous spans (exactly
  /// `nblocks` handles; tail spans may be empty).
  std::vector<DataHandle*> partition_vector(DataHandle* handle, int nblocks);

  /// Split a matrix handle into a 2-D grid of row_blocks x col_blocks
  /// tiles (needed by tiled linear algebra: Cholesky, LU, ...). Tiles keep
  /// the parent's row stride, so implementations must honor ld(). Returned
  /// row-major: tile (r, c) at index r * col_blocks + c — always the full
  /// row_blocks x col_blocks grid; edge tiles may be empty.
  std::vector<DataHandle*> partition_tiles(DataHandle* handle, int row_blocks,
                                           int col_blocks);

  /// Re-enable use of the parent handle; blocks become invalid for new tasks.
  void unpartition(DataHandle* handle);

  /// Declare that the application modified the buffer directly on the host,
  /// outside any task (the StarPU acquire/release-in-RW equivalent): the
  /// host becomes the only valid replica of the handle and of its partition
  /// blocks. Call between wait_all() and the next submit touching it.
  void host_write(DataHandle* handle);

  // --- Task submission --------------------------------------------------------

  /// Submit a task; returns its id. Dependencies on previously submitted
  /// tasks are inferred from the buffers' access modes.
  TaskId submit(TaskDesc desc);

  /// Block until every submitted task has completed, failed permanently, or
  /// been cancelled. Ok when everything succeeded; otherwise an error
  /// aggregating the per-task failures (EngineStats::errors has the full
  /// list). Failures are sticky: once a task has failed, subsequent calls
  /// keep reporting the error.
  pdl::util::Status wait_all();

  /// Block until a specific task has completed; false for unknown, failed,
  /// or cancelled ids. In pure simulation this drains everything (the event
  /// loop is not incremental), so prefer wait_all there.
  bool wait(TaskId id);

  // --- Introspection -----------------------------------------------------------

  const EngineConfig& config() const { return config_; }
  std::size_t device_count() const { return devices_.size(); }
  /// Snapshot of statistics; call after wait_all for a consistent view.
  EngineStats stats() const;
  PerfModel& perf_model() { return perf_model_; }

 private:
  void worker_loop(DeviceId device);

  /// Discrete-event loop of the simulation modes (mutex held): repeatedly
  /// lets the device that is free earliest on the virtual clock pop the
  /// next task. In kDeterministic the popped task's kernel also executes.
  void run_simulation_locked();

  /// Book a completed task: virtual clock, stats, dependency release
  /// (mutex held).
  void finalize_task(detail::TaskNode& task, detail::DeviceState& device,
                     double transfer, double exec);

  // --- Fault tolerance (all mutex held) -------------------------------------

  /// Book a failed attempt: advance the device's virtual clock past the
  /// attempt, count the failure, blacklist the device when it crossed the
  /// consecutive-failure threshold, then either re-queue the task with
  /// exponential backoff (budget left and a live device exists) or fail it
  /// permanently.
  void handle_task_failure_locked(detail::TaskNode& task,
                                  detail::DeviceState& device, double transfer,
                                  double exec, const std::string& reason,
                                  bool is_timeout);

  /// Permanently fail `task` (kFailed) and cascade-cancel every transitive
  /// successor still waiting on it.
  void fail_task_locked(detail::TaskNode& task, const std::string& reason);

  /// Stop scheduling onto `device` and re-route its queued tasks onto the
  /// survivors (tasks with no surviving capable device fail permanently).
  void blacklist_device_locked(detail::DeviceState& device);

  /// Retry budget for failures on `device` (per-device PDL override or the
  /// engine-wide FaultToleranceConfig::max_retries).
  int retry_budget(const detail::DeviceState& device) const;

  /// Watchdog limit in seconds for `task` on `device`; 0 = watchdog off.
  double watchdog_limit(const detail::TaskNode& task,
                        const detail::DeviceState& device) const;

  bool has_live_capable_device(const Codelet& codelet) const;

  void record_fault_event_locked(FaultEvent::Kind kind, double vtime,
                                 TaskId task, DeviceId device, int attempt,
                                 std::string detail);

  /// Status summarizing permanent failures so far; Ok when none.
  pdl::util::Status drain_status_locked() const;

  /// Record a SchedulerDecision for `task` placed on `chosen` (mutex held,
  /// before acquire_buffers mutates replica state). Counts the decision
  /// always; captures candidates only when recording is active.
  void record_decision(const detail::TaskNode& task,
                       const detail::DeviceState& chosen);

  /// Modeled cost of moving `view`'s missing replicas to `node`; updates
  /// the handle valid-sets and transfer counters (engine mutex held).
  double acquire_buffers(detail::TaskNode& task, MemoryNodeId node);

  /// Replica bookkeeping with capacity accounting (engine mutex held).
  /// add_replica may evict LRU replicas on bounded nodes; eviction of a
  /// sole replica charges a write-back to the host into `cost`.
  /// `pinned` handles (the executing task's buffers) are never evicted.
  void add_replica(DataHandle* handle, MemoryNodeId node, double& cost,
                   const std::vector<BufferView>* pinned);
  void drop_replica(DataHandle* handle, MemoryNodeId node);

  /// Estimate for the HEFT policy: transfers (without mutating state) plus
  /// execution estimate (engine mutex held).
  double estimated_cost(const detail::TaskNode& task,
                        const detail::DeviceState& device) const;

  double exec_estimate(const detail::TaskNode& task,
                       const detail::DeviceState& device) const;

  /// Modeled bandwidth/latency between memory nodes (via host when needed).
  double link_transfer_seconds(std::size_t bytes, MemoryNodeId from,
                               MemoryNodeId to) const;

  EngineConfig config_;
  std::vector<detail::DeviceState> devices_;
  std::unique_ptr<detail::Scheduler> scheduler_;
  PerfModel perf_model_;
  /// Config plan, or $PDL_FAULT_PLAN at construction; nullptr = no faults.
  std::shared_ptr<const FaultPlan> fault_plan_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait here for tasks
  std::condition_variable drain_cv_;  ///< wait_all waits here
  bool stopping_ = false;

  std::vector<std::unique_ptr<detail::TaskNode>> tasks_;
  std::vector<std::unique_ptr<DataHandle>> handles_;
  std::size_t pending_ = 0;
  TaskId next_task_id_ = 1;

  /// Memory accounting per node (index = MemoryNodeId; host unbounded).
  struct NodeState {
    std::size_t capacity = 0;  ///< 0 = unlimited
    std::size_t used = 0;
    std::list<DataHandle*> lru;  ///< front = most recently used
  };
  std::vector<NodeState> nodes_;

  // Statistics (guarded by mutex_).
  std::uint64_t transfers_ = 0;
  std::uint64_t transfer_bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t writeback_bytes_ = 0;
  double first_submit_wall_ = -1.0;
  double drain_wall_ = 0.0;
  std::vector<TaskTrace> trace_;
  std::vector<SchedulerDecision> decisions_;

  // Fault-tolerance statistics (guarded by mutex_).
  std::uint64_t task_failures_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t reroutes_ = 0;
  std::uint64_t blacklists_ = 0;
  std::uint64_t failed_tasks_ = 0;
  std::uint64_t cancelled_tasks_ = 0;
  std::vector<std::string> task_errors_;   ///< one entry per failed task
  std::vector<FaultEvent> fault_events_;

  /// Per-policy decision counter ("starvm.decisions.<policy>"), resolved
  /// once at construction so the hot path skips the registry lookup.
  obs::Counter* decision_counter_ = nullptr;

  std::vector<std::thread> workers_;
};

}  // namespace starvm
