// Persisted per-(codelet, device) performance models.
//
// The engine's EMA calibration cells (perf_model.hpp) evaporate at process
// exit, so every run re-learns what the last one already measured and the
// static layers (cascabel pre-selection, the A5xx capacity analyzer) keep
// reasoning from datasheet GFLOPS. The perf store closes that loop: a
// versioned plain-text snapshot of every calibrated cell, keyed by a hash
// of the PDL-derived device descriptors so a store learned on one platform
// is never applied to another, written atomically (tmp + rename, like the
// Prometheus sink) on engine shutdown and preloaded at engine start.
//
// The store changes *estimates*, never ordering invariants: deterministic
// replay and starmc exploration stay byte-stable for a fixed store, and a
// missing store is simply a cold start, not an error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "starvm/device.hpp"
#include "starvm/perf_model.hpp"

namespace starvm::perf_store {

/// Bumped whenever the on-disk grammar changes; a mismatch rejects the
/// whole file (fall back to declared rates) rather than guessing.
constexpr int kFormatVersion = 1;

/// One calibrated (codelet, device) cell, exactly as persisted.
struct Entry {
  std::string codelet;
  int device = 0;
  double ema_seconds = 0.0;   ///< smoothed per-task execution time
  std::uint64_t count = 0;    ///< observations behind the EMA
  double ema_gflops = 0.0;    ///< smoothed achieved rate; 0 = never known
};

struct Store {
  /// FNV-1a hash of the canonical device-spec rendering (descriptor_hash).
  /// Rates measured against one set of descriptors are meaningless against
  /// another; loads refuse a store whose hash differs from the engine's.
  std::uint64_t descriptor_hash = 0;
  /// Sorted by (codelet, device) — save() output is byte-stable.
  std::vector<Entry> entries;
};

/// Canonical hash over every property of every device spec that feeds the
/// cost model (name, kind, rates, link, memory, reliability). Same
/// platform -> same hash, any edit to a descriptor -> a cold start.
std::uint64_t descriptor_hash(const std::vector<DeviceSpec>& devices);

enum class LoadStatus {
  kLoaded,      ///< parsed cleanly (hash matching is the caller's decision)
  kMissing,     ///< no file — a clean cold start, not a rejection
  kBadVersion,  ///< recognizably a perf store, but a different format version
  kCorrupt,     ///< truncated / malformed / not a perf store at all
};

struct LoadResult {
  LoadStatus status = LoadStatus::kMissing;
  Store store;         ///< valid only when status == kLoaded
  std::string detail;  ///< human-readable reason for a rejection
};

/// Parse a store file. Never throws; every failure mode is a status.
LoadResult load(const std::string& path);

/// Render the on-disk text form (also what save() writes).
std::string render_text(const Store& store);

/// Atomically write the store: render to `path + ".tmp"`, then rename, so
/// a reader never sees a torn file. False on I/O failure (tmp removed).
bool save(const Store& store, const std::string& path);

/// Snapshot a model's calibrated cells into a store stamped with `hash`.
Store from_model(const PerfModel& model, std::uint64_t hash);

/// Install every entry into the model (overwrites matching cells).
void preload(const Store& store, PerfModel& model);

/// The PDL_PERF_STORE environment variable, or "" when unset / "0"
/// (disabled). EngineConfig::perf_store_path, when set, wins over this.
std::string env_store_path();

}  // namespace starvm::perf_store
