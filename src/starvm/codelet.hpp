// Codelets: multi-implementation compute kernels, StarPU-style.
//
// A codelet bundles one logical operation (the paper's "task interface")
// with one implementation per device kind (the paper's "task implementation
// variants"). Cascabel's code generator emits codelet definitions from the
// task repository; applications can also build them directly.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "starvm/data.hpp"
#include "starvm/types.hpp"

namespace starvm {

/// One buffer argument of a task: which handle, accessed how.
struct BufferView {
  DataHandle* handle = nullptr;
  Access mode = Access::kRead;
};

/// Passed to implementations at execution time.
struct ExecContext {
  DeviceId device = -1;
  DeviceKind device_kind = DeviceKind::kCpu;
  const std::vector<BufferView>* buffers = nullptr;

  /// Host pointer of buffer `i` as doubles (all our kernels are double).
  double* buffer(std::size_t i) const {
    return static_cast<double*>((*buffers)[i].handle->ptr());
  }
  const DataHandle& handle(std::size_t i) const { return *(*buffers)[i].handle; }
  std::size_t buffer_count() const { return buffers->size(); }

  /// Failure-report channel: an implementation that cannot complete calls
  /// fail() (or throws — the worker captures exceptions the same way) and
  /// returns; the engine then retries, reroutes, or fails the task per its
  /// fault-tolerance policy. Results of a failed attempt are discarded.
  void fail(std::string message) const {
    failed_ = true;
    error_ = std::move(message);
  }
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

 private:
  mutable bool failed_ = false;
  mutable std::string error_;
};

/// One device-kind-specific implementation of a codelet.
struct Implementation {
  DeviceKind kind = DeviceKind::kCpu;
  std::function<void(const ExecContext&)> fn;
};

/// A named operation with implementation variants and an optional work
/// estimate (FLOPs as a function of the actual buffers) used by the
/// performance models before any execution history exists.
struct Codelet {
  std::string name;
  std::vector<Implementation> impls;
  std::function<double(const std::vector<BufferView>&)> flops;

  /// Declared numerical-accuracy claim of this operation (the loosest model
  /// among the bound implementations): what the A7xx static analysis
  /// propagates and the autotuner's AccuracyGuard judges. kUnspecified
  /// means no claim — analyses treat the output as unbounded (A702).
  ErrorModel error_model;

  /// Calibration alias per device kind (indexed by DeviceKind): when
  /// non-empty, observed execution times are *additionally* recorded into
  /// the perf model under this name. Cascabel sets it to the selected
  /// variant's name, so the persisted perf store accumulates per-variant
  /// rates even though the engine-facing codelet is named per interface —
  /// the key that lets static pre-selection compare variants by measured
  /// rate on the next run. HEFT itself keeps using the codelet's own row.
  std::array<std::string, 2> calibration_alias;

  bool supports(DeviceKind kind) const {
    for (const auto& impl : impls) {
      if (impl.kind == kind) return true;
    }
    return false;
  }

  const Implementation* find_impl(DeviceKind kind) const {
    for (const auto& impl : impls) {
      if (impl.kind == kind) return &impl;
    }
    return nullptr;
  }
};

/// A task submission: codelet + buffer arguments.
struct TaskDesc {
  const Codelet* codelet = nullptr;
  std::vector<BufferView> buffers;
  std::string label;  ///< Optional trace label; defaults to codelet name.
  /// Higher runs earlier among ready tasks (eager scheduler; model-based
  /// policies order by estimated finish time instead).
  int priority = 0;
  /// Explicit predecessors (StarPU tag-dependency equivalent) in addition
  /// to the dependencies inferred from buffer access modes. Unknown or
  /// already-completed ids are satisfied immediately.
  std::vector<TaskId> depends_on;
};

}  // namespace starvm
