// Fault-tolerance vocabulary of the starvm engine: the retry/backoff/
// blacklist/watchdog knobs and the deterministic fault-injection plan.
//
// Real heterogeneous platforms lose accelerators, stall on a slow link, or
// misreport capabilities; a runtime that targets them needs explicit
// failure semantics (docs/RUNTIME.md "Failure semantics"). The FaultPlan
// exists so those paths are testable without real hardware faults: it is a
// pure function of (task id, attempt, device, device progress), so a plan
// replays identically across runs regardless of thread interleaving.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "starvm/types.hpp"
#include "util/result.hpp"

namespace starvm {

/// Knobs of the engine's recovery policy. Defaults keep recovery on but the
/// watchdog off (a watchdog needs a trustworthy cost estimate).
struct FaultToleranceConfig {
  /// Re-execution attempts granted to a task beyond its first try.
  int max_retries = 2;

  /// Exponential backoff charged to the *virtual* clock before retry k:
  /// backoff_base_ms * backoff_multiplier^(k-1). Never a real sleep — the
  /// model pays the price, wall time does not.
  double backoff_base_ms = 1.0;
  double backoff_multiplier = 2.0;

  /// Consecutive failures on one device before it is blacklisted: it stops
  /// receiving work and its queued tasks re-enter the scheduler restricted
  /// to the surviving devices. 0 disables blacklisting.
  int blacklist_after = 3;

  /// Watchdog: an attempt whose execution cost (measured on CPUs, modeled
  /// on accelerators, either way including injected delays) exceeds
  /// max(watchdog_min_seconds, perf-model estimate * watchdog_slack) is
  /// treated as a failed attempt (timeout). 0 disables the watchdog.
  double watchdog_slack = 0.0;
  double watchdog_min_seconds = 0.01;
};

/// A deterministic fault-injection plan, parsed from a spec string
/// (engine config `fault_plan`, `cascabelc --fault-plan`, or the
/// PDL_FAULT_PLAN environment variable).
///
/// Grammar: semicolon-separated directives, comma-separated key=value
/// fields after a `kind:` prefix.
///
///   fail:task=<id>[,attempts=<n>][,device=<d>]   fail attempts 1..n (n=1)
///   kill:device=<d>[,after=<n>]   every attempt on the device fails once
///                                 it has completed n tasks (n=0)
///   delay:ms=<x>[,task=<id>][,device=<d>][,attempts=<n>]
///                                 add x ms to the attempt's execution cost
///   random:rate=<p>,seed=<s>[,device=<d>]
///                                 fail with probability p, hashed from
///                                 (seed, task, attempt) — scheduling-
///                                 independent determinism
class FaultPlan {
 public:
  /// What the plan injects into one execution attempt.
  struct Injection {
    bool fail = false;
    double delay_seconds = 0.0;
    std::string reason;  ///< failure message when `fail`
  };

  static pdl::util::Result<FaultPlan> parse(std::string_view spec);

  /// Plan from $PDL_FAULT_PLAN; nullptr when unset or malformed (logged).
  static std::shared_ptr<const FaultPlan> from_env();

  /// Decide what happens to attempt `attempt` (1-based) of task `task` on
  /// `device`, which has successfully completed `device_tasks_completed`
  /// tasks so far. Pure: no internal state mutates.
  Injection decide(TaskId task, int attempt, DeviceId device,
                   std::uint64_t device_tasks_completed) const;

  bool empty() const { return rules_.empty(); }
  std::size_t rule_count() const { return rules_.size(); }

 private:
  enum class RuleKind { kFailTask, kKillDevice, kDelay, kRandom };
  struct Rule {
    RuleKind kind = RuleKind::kFailTask;
    TaskId task = 0;          ///< 0 = any task
    DeviceId device = -1;     ///< -1 = any device
    int attempts = 1;         ///< fail/delay: applies to attempts 1..attempts
    std::uint64_t after = 0;  ///< kill: completions before the device dies
    double delay_ms = 0.0;
    double rate = 0.0;
    std::uint64_t seed = 0;
  };
  std::vector<Rule> rules_;
};

}  // namespace starvm
