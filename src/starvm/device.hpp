// Device descriptions for engine construction.
//
// CPU devices execute kernels for real on host memory (node 0). Simulated
// accelerators — the GPU substitution, DESIGN.md — execute kernels on the
// host too (results stay correct) but their *time* is charged from the
// sustained-GFLOPS model onto a private memory node connected to the host
// by a modeled link.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "starvm/fault.hpp"
#include "starvm/types.hpp"

namespace starvm {

class DecisionOracle;

namespace detail {
class Scheduler;
}  // namespace detail

struct DeviceSpec {
  std::string name = "cpu";
  DeviceKind kind = DeviceKind::kCpu;

  /// Sustained compute rate used by the analytic cost model
  /// (for accelerators, and for CPUs in pure-sim mode).
  double sustained_gflops = 5.0;

  /// Host link of an accelerator's memory node (ignored for CPUs).
  double link_bandwidth_gbs = 5.5;
  double link_latency_us = 10.0;

  /// Capacity of an accelerator's memory node in bytes; 0 = unlimited.
  /// When replicas exceed it, least-recently-used ones are evicted (with a
  /// modeled write-back when the evicted copy is the only valid one).
  std::size_t memory_bytes = 0;

  // --- Reliability (optional PDL `reliability` properties) -----------------

  /// Per-device override of FaultToleranceConfig::max_retries for tasks
  /// that fail *on this device* (PDL MAX_RETRIES); -1 = use the engine-wide
  /// budget.
  int max_retries = -1;

  /// Declared mean time between failures in hours (PDL MTBF_HOURS);
  /// 0 = unspecified. Informational: surfaced through DeviceStats so
  /// operators can correlate observed failures with the declared rate.
  double mtbf_hours = 0.0;
};

struct EngineConfig {
  std::vector<DeviceSpec> devices;
  SchedulerKind scheduler = SchedulerKind::kHeft;
  ExecutionMode mode = ExecutionMode::kHybrid;
  /// Fixed per-task runtime overhead charged to the virtual clock
  /// (submission + scheduling cost; StarPU's is in this range).
  double task_overhead_us = 10.0;

  /// Record a SchedulerDecision (candidate devices + modeled finish times)
  /// for every task placement. Also implied by an active obs tracer or
  /// event sink; off by default to keep the hot path free of the cost.
  bool record_decisions = false;

  /// Group interchangeable host-node devices into placement classes so
  /// HEFT evaluates one candidate per device flavor instead of one per
  /// device (sublinear placement on quantity-expanded platforms). False
  /// forces singleton classes — the exhaustive per-device scan — which
  /// only exists for equivalence testing and A/B measurement.
  bool placement_classes = true;

  /// Flight recorder (docs/OBSERVABILITY.md "Flight recorder & profiling"):
  /// ring capacity in records per device (rounded up to a power of two;
  /// 64 bytes per record), plus one ring for the fault path. Always on by
  /// default — recording is a handful of relaxed atomic stores per task —
  /// with bounded memory (oldest records are overwritten). 0 disables it.
  std::size_t flight_records_per_device = 1024;

  /// Path prefix for automatic post-mortem flight dumps: on a watchdog
  /// fire or a failed wait_all() the engine writes <prefix>.jsonl and
  /// <prefix>.trace.json once. Empty = no automatic dump (explicit
  /// Engine::dump_flight_recorder still works); the PDL_FLIGHT_DUMP
  /// environment variable supplies a default at engine construction.
  std::string flight_dump_prefix;

  /// Persisted perf-model store (docs/RUNTIME.md "Persisted performance
  /// models"): path of a perf_store file preloaded into the EMA cells at
  /// engine construction — so HEFT estimates are warm from the first task
  /// — and atomically rewritten with the merged history at engine
  /// destruction. The store is keyed by a hash of the device descriptors;
  /// a mismatched, corrupt, or wrong-version store is rejected (counted in
  /// EngineStats::perf_store_rejected) and the run proceeds from declared
  /// rates. Empty = consult the PDL_PERF_STORE environment variable at
  /// engine construction ("0" or unset disables persistence).
  std::string perf_store_path;

  /// Retry/backoff/blacklist/watchdog policy (docs/RUNTIME.md).
  FaultToleranceConfig fault_tolerance;

  /// Deterministic fault-injection plan; when unset the engine consults
  /// the PDL_FAULT_PLAN environment variable at construction.
  std::shared_ptr<const FaultPlan> fault_plan;

  /// Decision oracle for the simulation modes (docs/MODEL_CHECKING.md):
  /// every nondeterministic choice point — schedule pick, release order,
  /// placement-class member — is offered to the oracle with the canonical
  /// tie-break as alternative 0. Null keeps the fixed tie-break; non-owning
  /// and must outlive the engine. Ignored in kHybrid (real threads cannot
  /// be steered by a single-threaded oracle).
  DecisionOracle* oracle = nullptr;

  /// Test-only: wrap (or replace) the simulation scheduler after
  /// construction. The model-checking harness uses this to install
  /// deliberately broken decorators (e.g. a lost-wakeup seeder) and prove
  /// the explorer catches them. Null for production use.
  std::function<std::unique_ptr<detail::Scheduler>(
      std::unique_ptr<detail::Scheduler>)>
      wrap_scheduler;

  /// Convenience: n CPU cores at the given sustained rate.
  static EngineConfig cpus(int n, double sustained_gflops = 5.0);
};

}  // namespace starvm
