#include "starvm/perf_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace starvm::perf_store {

namespace {

constexpr char kHeaderPrefix[] = "# starvm perf-store v";

/// %.17g round-trips every double exactly; the canonical spelling keeps
/// both the descriptor hash and save() output byte-stable across runs.
std::string fmt_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::uint64_t fnv1a(std::uint64_t hash, const std::string& text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

std::uint64_t descriptor_hash(const std::vector<DeviceSpec>& devices) {
  std::uint64_t hash = 14695981039346656037ULL;  // FNV-1a offset basis
  for (const DeviceSpec& spec : devices) {
    std::string canon = spec.name;
    canon += '|';
    canon += std::to_string(static_cast<int>(spec.kind));
    canon += '|';
    canon += fmt_double(spec.sustained_gflops);
    canon += '|';
    canon += fmt_double(spec.link_bandwidth_gbs);
    canon += '|';
    canon += fmt_double(spec.link_latency_us);
    canon += '|';
    canon += std::to_string(spec.memory_bytes);
    canon += '|';
    canon += std::to_string(spec.max_retries);
    canon += '|';
    canon += fmt_double(spec.mtbf_hours);
    canon += '\n';
    hash = fnv1a(hash, canon);
  }
  return hash;
}

LoadResult load(const std::string& path) {
  LoadResult result;
  std::ifstream in(path);
  if (!in) {
    result.status = LoadStatus::kMissing;
    result.detail = "no store at '" + path + "'";
    return result;
  }
  std::string line;
  if (!std::getline(in, line)) {
    result.status = LoadStatus::kCorrupt;
    result.detail = "empty file";
    return result;
  }
  if (line.rfind(kHeaderPrefix, 0) != 0) {
    result.status = LoadStatus::kCorrupt;
    result.detail = "not a perf store (bad header)";
    return result;
  }
  if (line != std::string(kHeaderPrefix) + std::to_string(kFormatVersion)) {
    result.status = LoadStatus::kBadVersion;
    result.detail = "unsupported store version ('" + line + "')";
    return result;
  }
  bool saw_platform = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "platform") {
      std::string hex;
      if (!(fields >> hex) || hex.empty()) {
        result.status = LoadStatus::kCorrupt;
        result.detail = "malformed platform line";
        return result;
      }
      char* end = nullptr;
      result.store.descriptor_hash = std::strtoull(hex.c_str(), &end, 16);
      if (end == nullptr || *end != '\0') {
        result.status = LoadStatus::kCorrupt;
        result.detail = "malformed platform hash '" + hex + "'";
        return result;
      }
      saw_platform = true;
    } else if (kind == "rate") {
      Entry entry;
      if (!(fields >> entry.codelet >> entry.device >> entry.ema_seconds >>
            entry.count >> entry.ema_gflops) ||
          entry.device < 0 || entry.device >= PerfModel::kMaxDevices ||
          entry.count == 0 || !(entry.ema_seconds > 0.0)) {
        result.status = LoadStatus::kCorrupt;
        result.detail = "malformed rate line '" + line + "'";
        return result;
      }
      result.store.entries.push_back(std::move(entry));
    } else {
      result.status = LoadStatus::kCorrupt;
      result.detail = "unknown record '" + kind + "'";
      return result;
    }
  }
  if (!saw_platform) {
    result.status = LoadStatus::kCorrupt;
    result.detail = "missing platform line (truncated store?)";
    return result;
  }
  result.status = LoadStatus::kLoaded;
  result.detail.clear();
  return result;
}

std::string render_text(const Store& store) {
  std::string text = std::string(kHeaderPrefix) +
                     std::to_string(kFormatVersion) + "\n";
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(store.descriptor_hash));
  text += "platform ";
  text += hex;
  text += '\n';
  std::vector<const Entry*> ordered;
  ordered.reserve(store.entries.size());
  for (const Entry& entry : store.entries) ordered.push_back(&entry);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Entry* a, const Entry* b) {
                     if (a->codelet != b->codelet) return a->codelet < b->codelet;
                     return a->device < b->device;
                   });
  for (const Entry* entry : ordered) {
    text += "rate ";
    text += entry->codelet;
    text += ' ';
    text += std::to_string(entry->device);
    text += ' ';
    text += fmt_double(entry->ema_seconds);
    text += ' ';
    text += std::to_string(entry->count);
    text += ' ';
    text += fmt_double(entry->ema_gflops);
    text += '\n';
  }
  return text;
}

bool save(const Store& store, const std::string& path) {
  // tmp + rename: a concurrent load() must never see a torn store.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << render_text(store);
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

Store from_model(const PerfModel& model, std::uint64_t hash) {
  Store store;
  store.descriptor_hash = hash;
  for (const PerfModel::Sample& sample : model.snapshot()) {
    store.entries.push_back(Entry{sample.codelet, sample.device,
                                  sample.ema_seconds, sample.count,
                                  sample.ema_gflops});
  }
  return store;
}

void preload(const Store& store, PerfModel& model) {
  for (const Entry& entry : store.entries) {
    model.preload(entry.codelet, entry.device, entry.ema_seconds, entry.count,
                  entry.ema_gflops);
  }
}

std::string env_store_path() {
  const char* env = std::getenv("PDL_PERF_STORE");
  if (env == nullptr || env[0] == '\0' ||
      (env[0] == '0' && env[1] == '\0')) {
    return "";
  }
  return env;
}

}  // namespace starvm::perf_store
