// Task schedulers (paper §IV-B: the PDL supports "static and dynamic
// task-mapping"; §VI flags dynamic run-time schedulers as the open issue —
// these three policies are the ablation axis of bench/bm_scheduler_ablation).
//
// All methods are called with the engine mutex held.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "starvm/runtime_state.hpp"
#include "starvm/types.hpp"

namespace starvm::detail {

/// Estimated cost (seconds) of running `task` on `device` — execution plus
/// pending data transfers. Provided by the engine to model-based policies.
using CostFn = std::function<double(const TaskNode&, const DeviceState&)>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Offer a ready task.
  virtual void push(TaskNode* task) = 0;

  /// Next task for an idle device; nullptr when none is runnable there.
  virtual TaskNode* pop(DeviceId device) = 0;

  /// True when no task is queued anywhere.
  virtual bool empty() const = 0;

  /// Number of tasks queued across every device (the ready-queue length
  /// reported to the obs metrics registry).
  virtual std::size_t size() const = 0;

  /// Remove and return every queued task that only `device` could have run
  /// now that it is blacklisted. Per-device policies hand back the device's
  /// whole queue (the engine re-pushes each task against the surviving
  /// devices); the shared-queue policy only evicts tasks no live device can
  /// execute, because survivors still drain the shared queue naturally.
  virtual std::vector<TaskNode*> drain_device(DeviceId device) = 0;
};

/// Factory. `devices` outlives the scheduler; `cost_fn` is used by kHeft.
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const std::vector<DeviceState>* devices,
                                          CostFn cost_fn);

}  // namespace starvm::detail
