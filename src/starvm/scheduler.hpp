// Task schedulers (paper §IV-B: the PDL supports "static and dynamic
// task-mapping"; §VI flags dynamic run-time schedulers as the open issue —
// these three policies are the ablation axis of bench/bm_scheduler_ablation).
//
// Two implementations of the same three policies live here:
//   - Scheduler: the single-queue-discipline used by the virtual-clock
//     simulation modes. All methods are called with the engine mutex held.
//   - HybridDispatch: the lock-split dispatch used by the real-threads
//     (kHybrid) path — per-device ready queues + condition variables with
//     work stealing; it takes only the ReadyQueue mutexes of the devices
//     involved, never a global lock.
//
// Both HEFT implementations are hierarchical: candidates are the engine's
// placement classes (groups of interchangeable devices, see
// runtime_state.hpp), so the per-task cost evaluation is O(classes) — one
// estimate per distinct device flavor — instead of O(devices). The concrete
// member inside the winning class is picked in O(log members) (simulation:
// the member with the smallest estimated backlog) or O(1) (hybrid:
// cheapest of a bounded probe window). A 1k-worker platform has one CPU
// class, so placement cost no longer scales with the quantity expansion.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "starvm/oracle.hpp"
#include "starvm/runtime_state.hpp"
#include "starvm/types.hpp"

namespace starvm::detail {

/// Batched cost estimate: fills `out[c]` with the estimated cost (seconds)
/// of running `task` on a device of placement class c — execution plus
/// pending data transfers. Class-at-a-time so the engine can take its
/// memory lock and the perf-model history lock once per task and every
/// member of a quantity-expanded worker group shares one evaluation.
using CostClassFn = std::function<void(const TaskNode&, double* out)>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Offer a ready task.
  virtual void push(TaskNode* task) = 0;

  /// Next task for an idle device; nullptr when none is runnable there.
  virtual TaskNode* pop(DeviceId device) = 0;

  /// The task pop(device) would return right now, without mutating any
  /// queue; nullptr when pop(device) would come up empty (including a
  /// blacklisted device). The model-checking oracle path uses this to
  /// enumerate every (device, task) schedule alternative before committing
  /// to one with pop().
  virtual TaskNode* peek(DeviceId device) const = 0;

  /// Pop for the earliest-available live device: equivalent to trying
  /// pop() over every live device in ascending (avail_vtime, id) order and
  /// returning the first hit. Implementations keep avail-ordered indexes
  /// so the simulation loop costs O(log devices) per task instead of
  /// sorting every device each iteration. Returns nullptr when nothing is
  /// runnable anywhere; on success `*device` is the chosen device.
  virtual TaskNode* pop_earliest(DeviceId* device) = 0;

  /// The simulation loop advanced `device`'s avail_vtime (a task finished
  /// or failed there); avail-ordered indexes re-key that device.
  virtual void on_device_time_advanced(DeviceId device) = 0;

  /// True when no task is queued anywhere.
  virtual bool empty() const = 0;

  /// Number of tasks queued across every device (the ready-queue length
  /// reported to the obs metrics registry).
  virtual std::size_t size() const = 0;

  /// Remove and return every queued task that only `device` could have run
  /// now that it is blacklisted. Per-device policies hand back the device's
  /// whole queue (the engine re-pushes each task against the surviving
  /// devices); the shared-queue policy only evicts tasks no live device can
  /// execute, because survivors still drain the shared queue naturally.
  virtual std::vector<TaskNode*> drain_device(DeviceId device) = 0;
};

/// Factory. `devices` and `classes` outlive the scheduler; `cost_fn` is
/// used by kHeft and produces one estimate per placement class. `oracle`
/// (nullable, non-owning) resolves placement-class member ties in kHeft —
/// alternative 0 is the canonical lowest-id member, so a null oracle and a
/// CanonicalOracle behave identically.
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const std::deque<DeviceState>* devices,
                                          const PlacementClassSet* classes,
                                          CostClassFn cost_fn,
                                          DecisionOracle* oracle = nullptr);

/// Lock-split ready-task dispatch for the real-threads path.
///
/// Placement happens at push time per policy (kEager: one shared
/// priority-ordered queue; kWorkStealing: round-robin over capable live
/// devices; kHeft: earliest-estimated-finish over the placement classes,
/// then the cheapest of a bounded member probe window inside the winning
/// class). Workers pop their own queue front; under kWorkStealing an
/// idle worker additionally steals from peers' backs before sleeping
/// (kHeft placement is final — the model chose the device — and kEager's
/// shared queue makes stealing moot). Pushes re-check the target's
/// blacklist flag under its queue mutex, so a task can never be stranded
/// on a device blacklisted concurrently with placement.
class HybridDispatch {
 public:
  HybridDispatch(SchedulerKind kind, std::deque<DeviceState>* devices,
                 const PlacementClassSet* classes, CostClassFn cost_fn);

  /// Place one ready task and wake one worker. False when no live capable
  /// device exists (the engine then fails the task).
  bool push(TaskNode* task);

  /// Place a batch, taking each involved queue's mutex once and waking its
  /// workers once. Tasks with no live capable device are returned for the
  /// engine to fail.
  std::vector<TaskNode*> push_batch(const std::vector<TaskNode*>& tasks);

  /// Blocking pop for `device`'s worker: own queue front, then steal from
  /// peers' backs; sleeps on the device's cv (with a short timeout so
  /// stealable work left on peers is eventually noticed). Returns nullptr
  /// once `stopping` is set and nothing is locally runnable.
  TaskNode* wait_pop(DeviceId device, const std::atomic<bool>& stopping);

  /// Blacklist support: remove and return everything queued on `device`
  /// (shared-queue policy: only tasks no live device can run).
  std::vector<TaskNode*> drain_device(DeviceId device);

  /// Tasks currently queued (approximate under concurrency; exact at rest).
  std::size_t size() const { return count_.load(std::memory_order_relaxed); }

  /// Total tasks obtained by stealing (sums ReadyQueue::steals_out).
  std::uint64_t steals() const;

  /// Wake every worker (shutdown).
  void notify_all();

 private:
  bool push_to(DeviceId device, TaskNode* task, bool notify);
  TaskNode* pop_local(DeviceId device);
  TaskNode* steal_for(DeviceId thief);
  /// Policy choice among capable live devices; -1 = none.
  DeviceId place(const TaskNode& task);
  /// Live member of class `cls` with the cheapest estimated backlog among a
  /// bounded probe window (two-choice load balancing); -1 when every member
  /// is blacklisted.
  DeviceId pick_member(std::size_t cls);

  SchedulerKind kind_;
  std::deque<DeviceState>* devices_;
  const PlacementClassSet* classes_;
  CostClassFn cost_fn_;
  ReadyQueue shared_;  ///< kEager: one priority-ordered queue for everyone
  std::atomic<std::size_t> count_{0};
  std::atomic<std::size_t> rr_{0};  ///< kWorkStealing round-robin cursor
  /// Per-class probe cursors for kHeft member selection (heap-allocated
  /// array: atomics are immovable and the count is fixed at construction).
  std::unique_ptr<std::atomic<std::size_t>[]> class_rr_;
};

}  // namespace starvm::detail
