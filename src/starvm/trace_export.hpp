// Trace export: render an EngineStats task trace for humans and tools.
//
//   * Chrome trace-event JSON — load in chrome://tracing / Perfetto to see
//     the per-device virtual-time schedule;
//   * an ASCII Gantt chart for terminals and logs.
#pragma once

#include <string>

#include "starvm/stats.hpp"

namespace starvm {

/// Chrome trace-event format (JSON array of complete events, "X" phase).
/// One row per device; timestamps are the virtual clock in microseconds.
std::string to_chrome_trace(const EngineStats& stats);

/// Fixed-width ASCII Gantt chart of the virtual-time schedule.
/// `width` = number of character cells spanning the makespan.
std::string to_ascii_gantt(const EngineStats& stats, int width = 72);

}  // namespace starvm
