// Trace export: render an EngineStats task trace for humans and tools.
//
//   * Chrome trace-event JSON — load in chrome://tracing / Perfetto to see
//     the per-device virtual-time schedule;
//   * a merged timeline that also carries the toolchain's wall-time spans
//     (obs::Tracer) in a separate process lane;
//   * an ASCII Gantt chart for terminals and logs.
#pragma once

#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "starvm/stats.hpp"

namespace starvm {

/// Chrome trace-event format (JSON array of complete events, "X" phase).
/// One row per device; timestamps are the virtual clock in microseconds.
/// Degenerate traces are sanitized: non-finite or negative durations clamp
/// to zero, a non-finite flops estimate is omitted from the args, and
/// tasks that never ran (device == -1) land on an "unassigned" lane.
/// Scheduler decisions, when recorded, appear as instant events ("i")
/// carrying the candidate devices and their modeled finish times.
std::string to_chrome_trace(const EngineStats& stats);

/// One Chrome trace combining toolchain wall-time spans (pid 1, from
/// obs::Tracer) with the engine's virtual-clock schedule (pid 2, when
/// `stats` is non-null). The two clocks are unrelated; separate pid lanes
/// keep the viewer from implying simultaneity.
std::string merged_chrome_trace(const std::vector<obs::SpanRecord>& spans,
                                const EngineStats* stats);

/// Fixed-width ASCII Gantt chart of the virtual-time schedule.
/// `width` = number of character cells spanning the makespan.
std::string to_ascii_gantt(const EngineStats& stats, int width = 72);

/// Chrome trace of a flight-recorder snapshot, on its own process lane
/// (pid 3, "flight recorder") so post-mortem evidence never mixes with the
/// schedule lanes. Records with an end timestamp become "X" complete
/// events; records without one (a task that started but never finished —
/// exactly what a post-mortem wants to show — and point events like
/// retries) become "i" instant events. One tid per ring; the fault-path
/// ring renders as tid = device count, named "faults".
std::string flight_chrome_trace(const std::vector<obs::FlightEvent>& events,
                                const obs::FlightLabelFn& label = {});

}  // namespace starvm
