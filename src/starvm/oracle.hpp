// Decision oracle: the explicit choice-point hook that makes deterministic
// mode model-checkable (docs/MODEL_CHECKING.md).
//
// The discrete-event simulation modes (kPureSim / kDeterministic) resolve
// every nondeterministic choice — which device pops next, the order newly
// released successors are dispatched, which member of a placement class
// hosts a task — with a fixed canonical tie-break. A DecisionOracle makes
// that tie-break pluggable: whenever more than one alternative exists the
// engine builds a ChoicePoint whose alternatives are listed in canonical
// order (alternative 0 IS the fixed tie-break) and asks the oracle to pick.
// The default oracle always answers 0, so plugging one in changes nothing
// until an explorer starts answering differently; replaying a recorded
// decision vector reproduces a schedule bit-for-bit.
//
// Forced transitions that carry no choice (a fault firing, a blacklist
// re-route, a single-alternative pop) are reported through note() so a
// trace consumer sees the full transition sequence, but they are not
// indexed into the decision vector.
//
// All oracle calls happen with the engine mutex held, on the single thread
// driving the simulation loop. Oracles must not call back into the engine.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "starvm/types.hpp"

namespace starvm {

/// What kind of nondeterminism a ChoicePoint resolves.
enum class ChoiceKind {
  kSchedule,  ///< which (device, queued task) pair runs next
  kRelease,   ///< dispatch order of successors released by one finish
  kMember,    ///< which placement-class member hosts a pushed task
  kFault,     ///< a fault injection fired (forced; note() only)
  kReroute,   ///< a task re-routed off a blacklisted device (forced)
};

inline std::string_view to_string(ChoiceKind kind) {
  switch (kind) {
    case ChoiceKind::kSchedule:
      return "schedule";
    case ChoiceKind::kRelease:
      return "release";
    case ChoiceKind::kMember:
      return "member";
    case ChoiceKind::kFault:
      return "fault";
    case ChoiceKind::kReroute:
      return "reroute";
  }
  return "unknown";
}

/// One alternative at a choice point. For kSchedule: the task that would
/// run and the device it would run on. For kRelease: the successor task
/// (device -1). For kMember: the candidate device (task = the pushed task).
struct ChoiceAlt {
  TaskId task = 0;
  DeviceId device = -1;
};

/// A resolved or pending choice. `alts` is in canonical order: index 0 is
/// exactly what the engine's fixed tie-break would do, so an oracle that
/// always returns 0 is behavior-preserving by construction.
struct ChoicePoint {
  ChoiceKind kind = ChoiceKind::kSchedule;
  std::vector<ChoiceAlt> alts;
};

class DecisionOracle {
 public:
  virtual ~DecisionOracle() = default;

  /// Pick an alternative; must return an index in [0, cp.alts.size()).
  /// Called only when cp.alts.size() > 1 — singletons are forced.
  virtual int choose(const ChoicePoint& cp) = 0;

  /// A forced transition (fault firing, reroute, singleton choice) the
  /// engine took without consulting choose().
  virtual void note(ChoiceKind /*kind*/, TaskId /*task*/,
                    DeviceId /*device*/) {}
};

/// The engine's built-in tie-break, reified: always alternative 0.
class CanonicalOracle final : public DecisionOracle {
 public:
  int choose(const ChoicePoint&) override { return 0; }
};

}  // namespace starvm
