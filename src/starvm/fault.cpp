#include "starvm/fault.hpp"

#include <cstdlib>

#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace starvm {

namespace {

/// splitmix64: mixes (seed, task, attempt) into a uniform 64-bit value so
/// random-rule outcomes depend only on plan inputs, never on scheduling.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double hashed_unit(std::uint64_t seed, TaskId task, int attempt) {
  const std::uint64_t h =
      mix64(mix64(seed) ^ mix64(task) ^ mix64(static_cast<std::uint64_t>(attempt)));
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
}

}  // namespace

pdl::util::Result<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  for (const std::string& directive : pdl::util::split_trimmed(spec, ';')) {
    const std::size_t colon = directive.find(':');
    const std::string kind =
        pdl::util::to_lower(pdl::util::trim(directive.substr(0, colon)));
    Rule rule;
    if (kind == "fail") {
      rule.kind = RuleKind::kFailTask;
    } else if (kind == "kill") {
      rule.kind = RuleKind::kKillDevice;
      rule.attempts = 0;  // unused; kill applies to every attempt
    } else if (kind == "delay") {
      rule.kind = RuleKind::kDelay;
    } else if (kind == "random") {
      rule.kind = RuleKind::kRandom;
    } else {
      return pdl::util::Error{"unknown fault directive '" + kind +
                              "' (want fail|kill|delay|random)"};
    }

    const std::string fields =
        colon == std::string::npos ? std::string() : directive.substr(colon + 1);
    bool has_task = false, has_device = false, has_rate = false, has_ms = false;
    for (const std::string& field : pdl::util::split_trimmed(fields, ',')) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) {
        return pdl::util::Error{"malformed fault field '" + field +
                                "' (want key=value)"};
      }
      const std::string key = pdl::util::to_lower(
          pdl::util::trim(std::string_view(field).substr(0, eq)));
      const std::string_view value =
          pdl::util::trim(std::string_view(field).substr(eq + 1));
      const auto as_int = pdl::util::parse_int(value);
      const auto as_double = pdl::util::parse_double(value);
      if (key == "task" && as_int && *as_int > 0) {
        rule.task = static_cast<TaskId>(*as_int);
        has_task = true;
      } else if (key == "device" && as_int && *as_int >= 0) {
        rule.device = static_cast<DeviceId>(*as_int);
        has_device = true;
      } else if (key == "attempts" && as_int && *as_int >= 1) {
        rule.attempts = static_cast<int>(*as_int);
      } else if (key == "after" && as_int && *as_int >= 0) {
        rule.after = static_cast<std::uint64_t>(*as_int);
      } else if (key == "ms" && as_double && *as_double >= 0.0) {
        rule.delay_ms = *as_double;
        has_ms = true;
      } else if (key == "rate" && as_double && *as_double >= 0.0 &&
                 *as_double <= 1.0) {
        rule.rate = *as_double;
        has_rate = true;
      } else if (key == "seed" && as_int && *as_int >= 0) {
        rule.seed = static_cast<std::uint64_t>(*as_int);
      } else {
        return pdl::util::Error{"bad fault field '" + field + "' in '" +
                                directive + "'"};
      }
    }

    switch (rule.kind) {
      case RuleKind::kFailTask:
        if (!has_task) return pdl::util::Error{"fail directive needs task=<id>"};
        break;
      case RuleKind::kKillDevice:
        if (!has_device) return pdl::util::Error{"kill directive needs device=<d>"};
        break;
      case RuleKind::kDelay:
        if (!has_ms) return pdl::util::Error{"delay directive needs ms=<x>"};
        break;
      case RuleKind::kRandom:
        if (!has_rate) return pdl::util::Error{"random directive needs rate=<p>"};
        break;
    }
    plan.rules_.push_back(rule);
  }
  return plan;
}

std::shared_ptr<const FaultPlan> FaultPlan::from_env() {
  const char* spec = std::getenv("PDL_FAULT_PLAN");
  if (spec == nullptr || *spec == '\0') return nullptr;
  auto plan = parse(spec);
  if (!plan.ok()) {
    PDL_LOG_WARN << "ignoring PDL_FAULT_PLAN: " << plan.error().str();
    return nullptr;
  }
  if (plan.value().empty()) return nullptr;
  return std::make_shared<const FaultPlan>(std::move(plan).value());
}

FaultPlan::Injection FaultPlan::decide(TaskId task, int attempt, DeviceId device,
                                       std::uint64_t device_tasks_completed) const {
  Injection out;
  for (const Rule& rule : rules_) {
    const bool task_matches = rule.task == 0 || rule.task == task;
    const bool device_matches = rule.device < 0 || rule.device == device;
    if (!task_matches || !device_matches) continue;
    switch (rule.kind) {
      case RuleKind::kFailTask:
        if (attempt <= rule.attempts && !out.fail) {
          out.fail = true;
          out.reason = "injected failure (task " + std::to_string(task) +
                       ", attempt " + std::to_string(attempt) + ")";
        }
        break;
      case RuleKind::kKillDevice:
        if (device_tasks_completed >= rule.after && !out.fail) {
          out.fail = true;
          out.reason = "device " + std::to_string(device) + " killed after " +
                       std::to_string(rule.after) + " task(s)";
        }
        break;
      case RuleKind::kDelay:
        if (attempt <= rule.attempts) out.delay_seconds += rule.delay_ms * 1e-3;
        break;
      case RuleKind::kRandom:
        if (hashed_unit(rule.seed, task, attempt) < rule.rate && !out.fail) {
          out.fail = true;
          out.reason = "random injected failure (task " + std::to_string(task) +
                       ", attempt " + std::to_string(attempt) + ")";
        }
        break;
    }
  }
  return out;
}

}  // namespace starvm
