#include "mc/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>

#include "mc/explorer.hpp"

namespace mc {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t* h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void mix_u64(std::uint64_t* h, std::uint64_t v) { mix(h, &v, sizeof(v)); }

/// Quantize a virtual time so hashing is robust to the last float ulp
/// while still distinguishing genuinely different schedules.
std::uint64_t quantize(double vtime) {
  return static_cast<std::uint64_t>(std::llround(vtime * 1e9));
}

}  // namespace

std::uint64_t state_hash(const starvm::EngineStats& stats,
                         std::uint64_t output_hash) {
  std::uint64_t h = kFnvOffset;
  mix_u64(&h, stats.tasks_submitted);
  mix_u64(&h, stats.tasks_completed);
  mix_u64(&h, stats.failed_tasks);
  mix_u64(&h, stats.cancelled_tasks);
  mix_u64(&h, stats.retries);
  mix_u64(&h, stats.reroutes);
  for (const starvm::TaskTrace& t : stats.trace) {
    mix_u64(&h, t.id);
    mix_u64(&h, static_cast<std::uint64_t>(t.device + 1));
    mix_u64(&h, quantize(t.start_vtime));
    mix_u64(&h, quantize(t.finish_vtime));
  }
  for (const std::string& e : stats.errors) mix(&h, e.data(), e.size());
  mix_u64(&h, output_hash);
  return h;
}

std::vector<Violation> check_invariants(const RunOutcome& run,
                                        const InvariantContext& ctx) {
  std::vector<Violation> out;
  const starvm::EngineStats& stats = run.stats;

  // Terminal accounting: who completed, who permanently failed, who was
  // cancelled. Trace rows are completions; fault events carry the rest.
  std::map<starvm::TaskId, int> completed;
  for (const starvm::TaskTrace& t : stats.trace) ++completed[t.id];
  std::set<starvm::TaskId> failed;
  std::set<starvm::TaskId> cancelled;
  for (const starvm::FaultEvent& ev : stats.fault_events) {
    if (ev.kind == starvm::FaultEvent::Kind::kTaskFailed) failed.insert(ev.task);
    if (ev.kind == starvm::FaultEvent::Kind::kCancelled) cancelled.insert(ev.task);
  }

  // A601: every submitted task must reach *some* terminal state. An
  // unaccounted task means the scheduler went dry while work was pending —
  // in the deterministic engine that is the lost-wakeup / stuck-queue
  // shape, and in a cyclic graph it is a true dependency deadlock.
  if (ctx.expected_tasks > 0) {
    std::vector<starvm::TaskId> stuck;
    for (std::size_t i = 1; i <= ctx.expected_tasks; ++i) {
      const auto id = static_cast<starvm::TaskId>(i);
      if (completed.count(id) == 0 && failed.count(id) == 0 &&
          cancelled.count(id) == 0) {
        stuck.push_back(id);
      }
    }
    if (!stuck.empty()) {
      std::string msg = std::to_string(stuck.size()) +
                        " task(s) never completed, failed, or cancelled:";
      for (std::size_t i = 0; i < stuck.size() && i < 5; ++i) {
        msg += " #" + std::to_string(stuck[i]);
      }
      if (stuck.size() > 5) msg += " ...";
      msg += " (scheduler went dry with work pending)";
      out.push_back({"A601-deadlock", msg});
    }
  }

  // A603: exactly-once execution. A duplicate trace row means a task ran
  // to completion twice (e.g. re-routed off a blacklist but also executed
  // on the original device); completed-and-failed means its terminal state
  // is self-contradictory.
  for (const auto& [id, count] : completed) {
    if (count > 1) {
      out.push_back({"A603-lost-task",
                     "task #" + std::to_string(id) + " completed " +
                         std::to_string(count) +
                         " times (double execution after re-routing)"});
    }
    if (failed.count(id) != 0) {
      out.push_back({"A603-lost-task",
                     "task #" + std::to_string(id) +
                         " both completed and permanently failed"});
    }
    if (cancelled.count(id) != 0) {
      out.push_back({"A603-lost-task",
                     "task #" + std::to_string(id) +
                         " both completed and was cancelled"});
    }
  }

  // A602a: numeric equivalence with the canonical interleaving. Only
  // meaningful when the run terminated the same way (a fault plan that
  // fires schedule-dependently legitimately changes the outcome — callers
  // disable check_serial for those plans).
  if (ctx.check_serial && ctx.has_canonical &&
      run.output_hash != ctx.canonical_hash) {
    out.push_back(
        {"A602-divergent-replay",
         "terminal output hash " + std::to_string(run.output_hash) +
             " diverges from canonical run " +
             std::to_string(ctx.canonical_hash) +
             " (results depend on the interleaving)"});
  }

  // A602b: per-device monotone virtual-clock progress. Two completions on
  // one device must not overlap, and no task may finish before it starts.
  {
    std::map<starvm::DeviceId, double> last_finish;
    // Trace rows are appended in finalize order; sort by start time per
    // check so interleaved devices do not alias.
    std::vector<const starvm::TaskTrace*> rows;
    rows.reserve(stats.trace.size());
    for (const starvm::TaskTrace& t : stats.trace) rows.push_back(&t);
    std::sort(rows.begin(), rows.end(),
              [](const starvm::TaskTrace* a, const starvm::TaskTrace* b) {
                return a->start_vtime < b->start_vtime;
              });
    constexpr double kSlack = 1e-9;
    for (const starvm::TaskTrace* t : rows) {
      if (t->finish_vtime + kSlack < t->start_vtime) {
        out.push_back({"A602-divergent-replay",
                       "task #" + std::to_string(t->id) +
                           " finishes before it starts on device " +
                           std::to_string(t->device)});
        continue;
      }
      auto [it, inserted] = last_finish.try_emplace(t->device, t->finish_vtime);
      if (!inserted) {
        if (t->start_vtime + kSlack < it->second) {
          out.push_back({"A602-divergent-replay",
                         "device " + std::to_string(t->device) +
                             " virtual clock ran backwards: task #" +
                             std::to_string(t->id) + " starts at " +
                             std::to_string(t->start_vtime) +
                             " before previous finish " +
                             std::to_string(it->second)});
        }
        it->second = std::max(it->second, t->finish_vtime);
      }
    }
  }

  // A604: bounded retries. The attempt chain records every attempt that
  // ended; more entries for one task than the ceiling allows means the
  // retry/blacklist interplay re-queued it in a cycle.
  if (ctx.attempt_ceiling > 0) {
    std::map<starvm::TaskId, int> max_attempt;
    for (const starvm::TaskAttempt& a : stats.attempts) {
      auto& slot = max_attempt[a.task];
      slot = std::max(slot, a.attempt);
    }
    for (const auto& [id, attempts] : max_attempt) {
      if (attempts > ctx.attempt_ceiling) {
        out.push_back(
            {"A604-unbounded-retry-cycle",
             "task #" + std::to_string(id) + " consumed " +
                 std::to_string(attempts) + " attempts (budget allows " +
                 std::to_string(ctx.attempt_ceiling) +
                 "): retry/re-route cycle exceeds the configured budget"});
      }
    }
  }

  return out;
}

}  // namespace mc
