#include "mc/explorer.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>

#include "mc/invariants.hpp"

namespace mc {

namespace {

/// The oracle the explorer installs into each fresh engine: forces the
/// decision prefix, takes the canonical alternative (0) beyond it, and
/// records every branch point and forced step it sees. All calls happen
/// on the single simulation thread with the engine mutex held.
class ReplayOracle final : public starvm::DecisionOracle {
 public:
  explicit ReplayOracle(const std::vector<int>* prefix) : prefix_(prefix) {}

  int choose(const starvm::ChoicePoint& cp) override {
    int pick = 0;
    if (index_ < prefix_->size()) {
      pick = (*prefix_)[index_];
      // A stale prefix (shrunk alternative set on replay) falls back to
      // canonical rather than indexing out of range; the state-hash
      // comparison then reports the divergence.
      if (pick < 0 || static_cast<std::size_t>(pick) >= cp.alts.size()) {
        pick = 0;
      }
    }
    ++index_;
    recorded_.push_back({cp, pick});
    return pick;
  }

  void note(starvm::ChoiceKind kind, starvm::TaskId task,
            starvm::DeviceId device) override {
    forced_.push_back({kind, task, device, recorded_.size()});
  }

  std::vector<RecordedChoice> take_choices() { return std::move(recorded_); }
  std::vector<ForcedStep> take_forced() { return std::move(forced_); }

 private:
  const std::vector<int>* prefix_;
  std::size_t index_ = 0;
  std::vector<RecordedChoice> recorded_;
  std::vector<ForcedStep> forced_;
};

void append_json_escaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

Explorer::Explorer(Program program, Options options)
    : program_(std::move(program)), options_(options) {
  assert(program_.make_config && program_.body);
  // Attempt ceiling for A604: the engine-wide retry budget, raised by any
  // per-device override, plus the initial attempt.
  const starvm::EngineConfig config = program_.make_config();
  int retries = config.fault_tolerance.max_retries;
  for (const starvm::DeviceSpec& spec : config.devices) {
    retries = std::max(retries, spec.max_retries);
  }
  attempt_ceiling_ = retries + 1;
}

RunOutcome Explorer::execute(const std::vector<int>& prefix,
                             const std::string& flight_dump_prefix) const {
  ReplayOracle oracle(&prefix);
  starvm::EngineConfig config = program_.make_config();
  // The explorer only steers the single-threaded simulation; a hybrid
  // config would race real threads against the replay prefix.
  if (config.mode == starvm::ExecutionMode::kHybrid) {
    config.mode = starvm::ExecutionMode::kDeterministic;
  }
  config.oracle = &oracle;

  RunOutcome run;
  {
    starvm::Engine engine(config);
    program_.body(engine);
    const pdl::util::Status status = engine.wait_all();
    run.wait_ok = status.ok();
    if (!status.ok()) run.wait_message = status.error().str();
    run.stats = engine.stats();
    if (!flight_dump_prefix.empty()) {
      engine.dump_flight_recorder(flight_dump_prefix, "starmc counterexample");
    }
  }
  run.choices = oracle.take_choices();
  run.forced = oracle.take_forced();
  run.output_hash = program_.output_hash ? program_.output_hash() : 0;
  run.state_hash = state_hash(run.stats, run.output_hash);
  return run;
}

RunOutcome Explorer::replay(const std::vector<int>& decisions,
                            const std::string& flight_dump_prefix) const {
  return execute(decisions, flight_dump_prefix);
}

bool Explorer::independent(const Key& a, const Key& b) const {
  // Without conflict information everything is dependent — no pruning,
  // but sound.
  if (!program_.conflicts) return false;
  // Schedule picks commute when they run different, non-conflicting tasks
  // on different devices: neither pop changes what the other returns, and
  // the executions touch disjoint data.
  if (a.kind == starvm::ChoiceKind::kSchedule &&
      b.kind == starvm::ChoiceKind::kSchedule) {
    return a.task != b.task && a.device != b.device &&
           !program_.conflicts(a.task, b.task);
  }
  // Releases of two non-conflicting successors commute: a push never
  // advances a device's virtual clock, and HEFT's placement estimate reads
  // device avail times (not queue contents), so either push order yields
  // the same placements. Everything else — member ties, fault steps, and
  // any cross-kind pair (a schedule pop advances a clock, which can move a
  // later placement estimate) — stays dependent.
  if (a.kind == starvm::ChoiceKind::kRelease &&
      b.kind == starvm::ChoiceKind::kRelease) {
    return a.task != b.task && !program_.conflicts(a.task, b.task);
  }
  return false;
}

void Explorer::add_finding(Result* result, const std::string& rule,
                           const std::string& message,
                           const std::vector<int>& trace) const {
  for (Finding& f : result->findings) {
    if (f.rule == rule) {
      ++f.occurrences;
      return;  // keep the first counterexample per rule
    }
  }
  Finding f;
  f.rule = rule;
  f.message = message;
  f.trace = trace;
  result->findings.push_back(std::move(f));
}

void Explorer::check_terminal(const RunOutcome& run,
                              const std::vector<int>& prefix,
                              Result* result) const {
  ++result->terminals;
  InvariantContext ctx;
  ctx.expected_tasks = program_.expected_tasks;
  ctx.attempt_ceiling = attempt_ceiling_;
  ctx.check_serial = options_.check_serial && program_.output_hash != nullptr;
  ctx.has_canonical = canonical_known_;
  ctx.canonical_hash = canonical_hash_;
  for (const Violation& v : check_invariants(run, ctx)) {
    add_finding(result, v.rule, v.message, prefix);
  }
}

void Explorer::explore_node(std::vector<int>& prefix, std::vector<Key> sleep,
                            const RunOutcome* reuse, Result* result) const {
  if (result->truncated) return;
  RunOutcome local;
  const RunOutcome* run = reuse;
  if (run == nullptr) {
    if (result->runs >= options_.max_runs) {
      result->truncated = true;
      return;
    }
    local = execute(prefix);
    ++result->runs;
    run = &local;
  }

  const std::size_t depth = prefix.size();

  // Classical sleep-set semantics walks *every* transition on the edge
  // into this node, not just the branch point that ended it: a forced
  // (single-alternative) step whose key is asleep proves this whole path
  // is Mazurkiewicz-equivalent to one already explored — prune the
  // subtree. Forced steps with after_choice == depth ran after branch
  // point depth-1 was resolved and before branch point depth.
  if (options_.dpor) {
    for (const ForcedStep& fs : run->forced) {
      if (fs.after_choice != depth) continue;
      const Key key{fs.kind, fs.task, fs.device};
      if (std::find(sleep.begin(), sleep.end(), key) != sleep.end()) {
        ++result->sleep_pruned;
        return;
      }
      std::vector<Key> filtered;
      for (const Key& s : sleep) {
        if (independent(s, key)) filtered.push_back(s);
      }
      sleep = std::move(filtered);
    }
  }

  if (depth >= run->choices.size()) {
    check_terminal(*run, prefix, result);
    return;
  }
  if (depth >= options_.max_depth) {
    // Branch points remain beyond the cap; the run itself (canonical from
    // here on) is still a real terminal state worth checking.
    result->truncated = true;
    check_terminal(*run, prefix, result);
    return;
  }

  ++result->branch_points;
  // Copy the branch point: `run` may point at a child's storage once we
  // recurse and must not be read after that for j > 0.
  const starvm::ChoicePoint cp = run->choices[depth].point;

  // Device-symmetry reduction: when the very first transition of the
  // execution is a placement-class member tie, the candidate devices have
  // identical specs (that is what a placement class is) and empty
  // histories, so the alternatives differ only by device relabeling and
  // one representative suffices.
  const bool symmetric_root =
      options_.dpor && depth == 0 &&
      cp.kind == starvm::ChoiceKind::kMember &&
      std::none_of(run->forced.begin(), run->forced.end(),
                   [](const ForcedStep& fs) { return fs.after_choice == 0; });

  std::vector<Key> done;
  for (std::size_t j = 0; j < cp.alts.size(); ++j) {
    if (symmetric_root && j > 0) {
      result->symmetry_pruned += cp.alts.size() - j;
      break;
    }
    const Key key{cp.kind, cp.alts[j].task, cp.alts[j].device};
    if (options_.dpor &&
        std::find(sleep.begin(), sleep.end(), key) != sleep.end()) {
      ++result->sleep_pruned;
      done.push_back(key);
      continue;
    }
    std::vector<Key> child_sleep;
    if (options_.dpor) {
      for (const Key& s : sleep) {
        if (independent(s, key)) child_sleep.push_back(s);
      }
      for (const Key& s : done) {
        if (independent(s, key)) child_sleep.push_back(s);
      }
    }
    prefix.push_back(static_cast<int>(j));
    // The current run already embodies alternative 0 beyond the prefix —
    // reuse it for the leftmost child instead of re-executing.
    explore_node(prefix, std::move(child_sleep), j == 0 ? run : nullptr,
                 result);
    prefix.pop_back();
    if (result->truncated) return;
    done.push_back(key);
  }
}

Result Explorer::explore() {
  Result result;
  canonical_known_ = false;
  canonical_hash_ = 0;

  std::vector<int> prefix;
  RunOutcome root = execute(prefix);
  ++result.runs;
  canonical_hash_ = root.output_hash;
  canonical_known_ = program_.output_hash != nullptr;

  if (options_.replay_check) {
    // Byte-stable replay: a second fresh engine driven by the same (empty)
    // prefix must make identical decisions and reach an identical state.
    RunOutcome again = execute(prefix);
    ++result.runs;
    bool same = again.choices.size() == root.choices.size() &&
                again.state_hash == root.state_hash;
    for (std::size_t i = 0; same && i < root.choices.size(); ++i) {
      same = again.choices[i].chosen == root.choices[i].chosen &&
             again.choices[i].point.alts.size() ==
                 root.choices[i].point.alts.size();
    }
    if (!same) {
      add_finding(&result, "A602-divergent-replay",
                  "two fresh engines replaying the same decision vector "
                  "diverged (decision count " +
                      std::to_string(root.choices.size()) + " vs " +
                      std::to_string(again.choices.size()) +
                      ", state hash " + std::to_string(root.state_hash) +
                      " vs " + std::to_string(again.state_hash) + ")",
                  prefix);
    }
  }

  explore_node(prefix, {}, &root, &result);
  return result;
}

std::string trace_to_json(const RunOutcome& run) {
  std::string out = "{\n  \"schema\": \"starmc-trace-v1\",\n  \"decisions\": [";
  for (std::size_t i = 0; i < run.choices.size(); ++i) {
    const RecordedChoice& rc = run.choices[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"index\": " + std::to_string(i) + ", \"kind\": \"" +
           std::string(starvm::to_string(rc.point.kind)) +
           "\", \"chosen\": " + std::to_string(rc.chosen) + ", \"alts\": [";
    for (std::size_t a = 0; a < rc.point.alts.size(); ++a) {
      if (a > 0) out += ", ";
      out += "{\"task\": " + std::to_string(rc.point.alts[a].task) +
             ", \"device\": " + std::to_string(rc.point.alts[a].device) + "}";
    }
    out += "]}";
  }
  out += "\n  ],\n  \"forced\": [";
  for (std::size_t i = 0; i < run.forced.size(); ++i) {
    const ForcedStep& fs = run.forced[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"kind\": \"" + std::string(starvm::to_string(fs.kind)) +
           "\", \"task\": " + std::to_string(fs.task) +
           ", \"device\": " + std::to_string(fs.device) +
           ", \"after_choice\": " + std::to_string(fs.after_choice) + "}";
  }
  out += "\n  ],\n  \"terminal\": {";
  out += "\"tasks_completed\": " + std::to_string(run.stats.tasks_completed);
  out += ", \"failed_tasks\": " + std::to_string(run.stats.failed_tasks);
  out += ", \"cancelled_tasks\": " + std::to_string(run.stats.cancelled_tasks);
  out += ", \"makespan_seconds\": " + std::to_string(run.stats.makespan_seconds);
  out += ", \"output_hash\": " + std::to_string(run.output_hash);
  out += ", \"state_hash\": " + std::to_string(run.state_hash);
  out += "},\n  \"wait_status\": \"";
  if (run.wait_ok) {
    out += "ok";
  } else {
    append_json_escaped(&out, run.wait_message);
  }
  out += "\"\n}\n";
  return out;
}

}  // namespace mc
