// Bridge from explorer results to the pdl diagnostics pipeline: A6xx
// findings flow through the same normalize/render/severity-override
// machinery as every other pdlcheck rule, so text, JSON, and SARIF output
// come for free.
#pragma once

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "mc/explorer.hpp"
#include "pdl/diagnostics.hpp"

namespace mc {

/// Compact decision-vector rendering: "[]" or "[1,0,2]".
std::string format_trace(const std::vector<int>& trace);

/// Append `result`'s findings to `diags` as A6xx diagnostics anchored at
/// `label` (the graph fixture path), honoring rule disable/severity
/// overrides from `options`.
void report_findings(const Result& result, const std::string& label,
                     const analysis::AnalysisOptions& options,
                     pdl::Diagnostics& diags);

}  // namespace mc
