#include "mc/graph_program.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "starvm/codelet.hpp"
#include "starvm/engine.hpp"

namespace mc {

namespace {

/// Everything the program closures share. Lives as long as any closure
/// copied out of make_graph_program does.
struct GraphProgramState {
  starvm::TaskGraph graph;
  GraphProgramOptions options;
  std::shared_ptr<const starvm::FaultPlan> plan;

  /// One double arena backing every root buffer at its declared base
  /// offset; aliased registrations therefore share bytes, exactly as the
  /// recorded program's allocations did.
  std::vector<double> storage;
  /// (element offset, element count) per buffer, indexing into storage.
  std::vector<std::pair<std::size_t, std::size_t>> spans;

  /// One codelet per task: the mixing kernel needs the task identity and
  /// ExecContext does not carry one.
  std::vector<starvm::Codelet> codelets;

  /// Dense n*n conflict matrix over task indices (true = may not commute).
  std::size_t n = 0;
  std::vector<char> conflict;

  bool conflicts(starvm::TaskId a, starvm::TaskId b) const {
    if (a == 0 || b == 0 || a > n || b > n) return true;  // unknown: be sound
    return conflict[static_cast<std::size_t>(a - 1) * n +
                    static_cast<std::size_t>(b - 1)] != 0;
  }

  void reset_storage() {
    for (std::size_t i = 0; i < storage.size(); ++i) {
      storage[i] = static_cast<double>(i % 7 + 1);
    }
  }

  std::uint64_t output_hash() const {
    std::uint64_t h = 1469598103934665603ull;
    for (double v : storage) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      for (int b = 0; b < 8; ++b) {
        h ^= (bits >> (8 * b)) & 0xffu;
        h *= 1099511628211ull;
      }
    }
    return h;
  }
};

/// The per-task kernel: sum the reads, fold in the task identity, add the
/// (integer-valued) result into every written element. Exact commutative
/// integer arithmetic in doubles — see the header comment.
void run_mixing_kernel(const GraphProgramState& state, std::size_t task_index,
                       const starvm::ExecContext& ctx) {
  const starvm::GraphTask& gt = state.graph.tasks()[task_index];
  double acc = static_cast<double>(task_index + 1);
  for (std::size_t i = 0; i < gt.accesses.size(); ++i) {
    if (!starvm::reads(gt.accesses[i].mode)) continue;
    const double* p = ctx.buffer(i);
    const std::size_t count = state.spans[static_cast<std::size_t>(
                                              gt.accesses[i].buffer)]
                                  .second;
    double sum = 0.0;
    for (std::size_t j = 0; j < count; ++j) sum += p[j];
    acc += std::fmod(sum, 9973.0);
  }
  acc = std::fmod(acc, 9973.0) + 1.0;
  for (std::size_t i = 0; i < gt.accesses.size(); ++i) {
    if (!starvm::writes(gt.accesses[i].mode)) continue;
    double* p = ctx.buffer(i);
    const std::size_t count = state.spans[static_cast<std::size_t>(
                                              gt.accesses[i].buffer)]
                                  .second;
    for (std::size_t j = 0; j < count; ++j) p[j] += acc;
  }
}

}  // namespace

bool fault_plan_is_schedule_sensitive(const std::string& spec) {
  return spec.find("device=") != std::string::npos ||
         spec.find("kill:") != std::string::npos ||
         spec.find("random:") != std::string::npos;
}

pdl::util::Result<Program> make_graph_program(const starvm::TaskGraph& graph,
                                              GraphProgramOptions options) {
  auto state = std::make_shared<GraphProgramState>();
  state->graph = graph;
  state->options = options;

  if (!options.fault_plan.empty()) {
    auto parsed = starvm::FaultPlan::parse(options.fault_plan);
    if (!parsed.ok()) return parsed.error();
    state->plan = std::make_shared<const starvm::FaultPlan>(
        std::move(parsed).value());
  }

  // Storage: one arena covering the furthest declared byte; root buffers
  // map to element spans at their base offsets (8-byte elements).
  const auto& buffers = state->graph.buffers();
  std::uint64_t extent = 0;
  for (const starvm::GraphBuffer& b : buffers) {
    if (b.parent >= 0) continue;
    extent = std::max(extent, b.base + b.bytes);
  }
  state->storage.assign(static_cast<std::size_t>((extent + 7) / 8), 0.0);
  state->spans.reserve(buffers.size());
  for (const starvm::GraphBuffer& b : buffers) {
    state->spans.emplace_back(static_cast<std::size_t>(b.base / 8),
                              static_cast<std::size_t>(b.bytes / 8));
  }

  // Conflict matrix: tasks conflict when the graph already orders them or
  // when they touch overlapping bytes with at least one write. Reads over
  // shared data commute; that is the independence DPOR exploits.
  const auto& tasks = state->graph.tasks();
  state->n = tasks.size();
  state->conflict.assign(state->n * state->n, 0);
  const auto reach = state->graph.reachability(state->graph.edges(true));
  for (std::size_t i = 0; i < state->n; ++i) {
    for (std::size_t j = 0; j < state->n; ++j) {
      if (i == j) continue;
      bool dep = reach.ordered(static_cast<int>(i), static_cast<int>(j));
      for (std::size_t ai = 0; !dep && ai < tasks[i].accesses.size(); ++ai) {
        for (std::size_t aj = 0; !dep && aj < tasks[j].accesses.size();
             ++aj) {
          const starvm::GraphAccess& a = tasks[i].accesses[ai];
          const starvm::GraphAccess& b = tasks[j].accesses[aj];
          if (!starvm::writes(a.mode) && !starvm::writes(b.mode)) continue;
          dep = state->graph.ranges_overlap(a.buffer, b.buffer);
        }
      }
      if (dep) state->conflict[i * state->n + j] = 1;
    }
  }

  // Codelets: one per task, capturing the task index.
  state->codelets.resize(state->n);
  for (std::size_t t = 0; t < state->n; ++t) {
    starvm::Codelet& cl = state->codelets[t];
    cl.name = tasks[t].name.empty() ? "task" + std::to_string(t + 1)
                                    : tasks[t].name;
    const double flops = tasks[t].flops;
    cl.flops = [flops](const std::vector<starvm::BufferView>&) {
      return flops > 0.0 ? flops : 1e6;
    };
    GraphProgramState* raw = state.get();
    cl.impls.push_back(
        {starvm::DeviceKind::kCpu, [raw, t](const starvm::ExecContext& ctx) {
           run_mixing_kernel(*raw, t, ctx);
         }});
  }

  Program program;
  program.expected_tasks = state->n;
  program.make_config = [state]() {
    starvm::EngineConfig config = starvm::EngineConfig::cpus(
        state->options.devices, state->options.gflops);
    config.mode = starvm::ExecutionMode::kDeterministic;
    config.scheduler = state->options.scheduler;
    config.fault_tolerance = state->options.fault_tolerance;
    config.fault_plan = state->plan;
    config.flight_records_per_device = 256;
    return config;
  };
  program.body = [state](starvm::Engine& engine) {
    state->reset_storage();
    const auto& bufs = state->graph.buffers();
    std::vector<starvm::DataHandle*> handles(bufs.size(), nullptr);
    for (std::size_t b = 0; b < bufs.size(); ++b) {
      if (bufs[b].parent >= 0) continue;  // blocks come from partition()
      auto [offset, count] = state->spans[b];
      handles[b] = engine.register_vector(state->storage.data() + offset,
                                          std::max<std::size_t>(count, 1),
                                          bufs[b].name);
    }
    const auto& graph_tasks = state->graph.tasks();
    for (std::size_t t = 0; t < graph_tasks.size(); ++t) {
      starvm::TaskDesc desc;
      desc.codelet = &state->codelets[t];
      desc.label = state->codelets[t].name;
      for (const starvm::GraphAccess& access : graph_tasks[t].accesses) {
        desc.buffers.push_back(
            {handles[static_cast<std::size_t>(access.buffer)], access.mode});
      }
      for (int dep : graph_tasks[t].declared_deps) {
        desc.depends_on.push_back(static_cast<starvm::TaskId>(dep + 1));
      }
      engine.submit(std::move(desc));
    }
  };
  program.output_hash = [state]() { return state->output_hash(); };
  program.conflicts = [state](starvm::TaskId a, starvm::TaskId b) {
    return state->conflicts(a, b);
  };
  return program;
}

}  // namespace mc
