// starmc: a stateless model checker for the starvm engine's deterministic
// simulation mode (docs/MODEL_CHECKING.md).
//
// The engine's kDeterministic mode runs the whole simulation single-threaded
// under one mutex, with every scheduling tie broken canonically. That makes
// each *individual* execution reproducible — but the production (hybrid)
// engine resolves the same ties by OS-thread timing, so a bug that needs an
// unusual release order or queue-pop order never shows up in one canonical
// run. The explorer closes that gap: it drives the deterministic engine
// through *every* reduced interleaving of its choice points (dependency
// release order, per-device ready-queue pops, placement-class member ties,
// fault firing, blacklist re-routing) and checks safety invariants at every
// terminal state.
//
// Exploration is stateless in the model-checking sense (Godefroot's VeriSoft
// lineage): no engine state is saved or restored. Each node of the decision
// tree is visited by running a *fresh* engine from scratch with a replay
// oracle that forces the decision prefix and takes the canonical alternative
// beyond it. Sleep-set partial-order reduction prunes interleavings that
// only reorder independent schedule picks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "starvm/device.hpp"
#include "starvm/engine.hpp"
#include "starvm/oracle.hpp"
#include "starvm/stats.hpp"

namespace mc {

/// A model-checkable program: how to build the engine, what to submit, and
/// (optionally) how to judge the result.
///
/// `make_config` must produce a simulation-mode config (kDeterministic or
/// kPureSim); the explorer installs its own oracle into the copy it uses.
/// `body` submits work; the explorer calls wait_all() itself afterwards, so
/// the body may also wait mid-stream (interleaving-sensitive tests do).
struct Program {
  std::function<starvm::EngineConfig()> make_config;
  std::function<void(starvm::Engine&)> body;

  /// Hash of program outputs (buffer contents) after a run; 0-arg because
  /// the program owns its storage. Null disables the divergent-replay
  /// (A602) output comparison.
  std::function<std::uint64_t()> output_hash;

  /// May tasks a and b conflict (same data, ordered, or otherwise
  /// non-commuting)? Used by the sleep-set independence relation; null
  /// means "assume everything conflicts", which disables pruning but stays
  /// sound.
  std::function<bool(starvm::TaskId, starvm::TaskId)> conflicts;

  /// Tasks the body submits (engine ids are dense 1..expected_tasks).
  /// 0 disables the lost-task (A601) accounting.
  std::size_t expected_tasks = 0;
};

struct Options {
  /// Branch points per execution considered for branching; deeper choice
  /// points follow the canonical alternative. Hitting the cap sets
  /// Result::truncated.
  std::size_t max_depth = 256;

  /// Engine executions budget; hitting it sets Result::truncated.
  std::size_t max_runs = 200000;

  /// Sleep-set partial-order reduction. Off = naive DFS over the full
  /// decision tree (the baseline the DPOR ratio is measured against).
  bool dpor = true;

  /// Compare every terminal state's output hash against the canonical
  /// (all-zero decision) run and report divergence as A602.
  bool check_serial = true;

  /// Execute the canonical run twice and require identical decision
  /// vectors and state hashes (byte-stable replay regression, A602).
  bool replay_check = true;
};

/// One recorded branch point: the choice the engine offered and the
/// alternative the oracle picked.
struct RecordedChoice {
  starvm::ChoicePoint point;
  int chosen = 0;
};

/// One forced (single-alternative) transition, kept so counterexample
/// traces show the full schedule, not just the branch points.
struct ForcedStep {
  starvm::ChoiceKind kind = starvm::ChoiceKind::kSchedule;
  starvm::TaskId task = 0;
  starvm::DeviceId device = -1;
  /// Branch points recorded before this step; orders forced steps
  /// relative to RecordedChoice entries.
  std::size_t after_choice = 0;
};

/// One terminal execution of the program under a decision prefix.
struct RunOutcome {
  std::vector<RecordedChoice> choices;
  std::vector<ForcedStep> forced;
  starvm::EngineStats stats;
  bool wait_ok = true;
  std::string wait_message;
  std::uint64_t output_hash = 0;
  /// Hash over the observable terminal state (trace, errors, outputs);
  /// identical decision vectors must produce identical state hashes.
  std::uint64_t state_hash = 0;
};

/// A violated invariant with a replayable counterexample.
struct Finding {
  std::string rule;     ///< "A601-deadlock" ... "A604-unbounded-retry-cycle"
  std::string message;  ///< what went wrong in this terminal state
  std::vector<int> trace;       ///< decision vector reproducing it
  std::size_t occurrences = 1;  ///< terminal states violating this rule
};

struct Result {
  std::size_t runs = 0;           ///< engine executions performed
  std::size_t terminals = 0;      ///< distinct terminal states checked
  std::size_t branch_points = 0;  ///< interior nodes of the decision tree
  std::size_t sleep_pruned = 0;   ///< subtrees skipped by the sleep set
  /// Root alternatives skipped by device-symmetry reduction (an initial
  /// placement-class tie among history-free identical devices).
  std::size_t symmetry_pruned = 0;
  bool truncated = false;         ///< a budget/depth cap was hit
  std::vector<Finding> findings;  ///< one entry per rule, first counterexample
};

/// Depth-first stateless explorer with sleep-set partial-order reduction.
class Explorer {
 public:
  Explorer(Program program, Options options);

  /// Explore the reduced decision tree; checks invariants at every
  /// terminal state. Safe to call repeatedly (each call starts fresh).
  Result explore();

  /// Re-execute one decision vector (counterexample replay). Runs a fresh
  /// engine; does not touch exploration state. A non-empty
  /// `flight_dump_prefix` writes the replay's flight recorder to
  /// <prefix>.jsonl / <prefix>.trace.json before the engine is destroyed.
  RunOutcome replay(const std::vector<int>& decisions,
                    const std::string& flight_dump_prefix = {}) const;

 private:
  /// (kind, task, device) identity of one alternative, the unit the sleep
  /// set reasons about.
  struct Key {
    starvm::ChoiceKind kind = starvm::ChoiceKind::kSchedule;
    starvm::TaskId task = 0;
    starvm::DeviceId device = -1;
    bool operator==(const Key& other) const {
      return kind == other.kind && task == other.task &&
             device == other.device;
    }
  };

  RunOutcome execute(const std::vector<int>& prefix,
                     const std::string& flight_dump_prefix = {}) const;
  void explore_node(std::vector<int>& prefix, std::vector<Key> sleep,
                    const RunOutcome* reuse, Result* result) const;
  void check_terminal(const RunOutcome& run, const std::vector<int>& prefix,
                      Result* result) const;
  bool independent(const Key& a, const Key& b) const;
  void add_finding(Result* result, const std::string& rule,
                   const std::string& message,
                   const std::vector<int>& trace) const;

  Program program_;
  Options options_;
  mutable bool canonical_known_ = false;
  mutable std::uint64_t canonical_hash_ = 0;
  /// Retry ceiling derived from the program's config (engine budget and
  /// per-device overrides); attempts beyond it are A604.
  mutable int attempt_ceiling_ = 0;
};

/// Serialize a terminal execution as a replayable decision-trace JSON
/// document (schema: docs/MODEL_CHECKING.md "Counterexample format").
std::string trace_to_json(const RunOutcome& run);

}  // namespace mc
