#include "mc/report.hpp"

#include "analysis/rules.hpp"

namespace mc {

std::string format_trace(const std::vector<int>& trace) {
  std::string out = "[";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(trace[i]);
  }
  out += "]";
  return out;
}

void report_findings(const Result& result, const std::string& label,
                     const analysis::AnalysisOptions& options,
                     pdl::Diagnostics& diags) {
  for (const Finding& finding : result.findings) {
    if (!analysis::rule_enabled(options, finding.rule)) continue;
    pdl::Severity severity = pdl::Severity::kError;
    if (const analysis::RuleInfo* info = analysis::find_rule(finding.rule)) {
      severity = info->default_severity;
    }
    severity = analysis::effective_severity(options, finding.rule, severity);
    std::string message = finding.message + "; replay trace " +
                          format_trace(finding.trace) + " (" +
                          std::to_string(finding.occurrences) +
                          " of the explored terminal states)";
    pdl::add_finding(diags, severity, finding.rule, std::move(message),
                     pdl::SourceLoc{label, 1, 1});
  }
}

}  // namespace mc
