// Turn a recorded TaskGraph (graph_io fixture text or a programmatically
// built graph) into a model-checkable mc::Program.
//
// The generated program owns real storage for every root buffer — honoring
// declared base addresses, so aliased registrations share bytes — and runs
// a deterministic integer-valued mixing kernel per task: reads are summed,
// writes accumulate a value derived from the task and its inputs. All
// arithmetic stays exact in doubles (integers well below 2^53), so the
// output hash is bit-stable and additive writes commute exactly: two
// unordered writers over an aliased range produce the same bytes in either
// order, which is what lets the explorer demand numeric equivalence across
// interleavings (A602) even on aliased-WAW graphs.
#pragma once

#include <string>

#include "mc/explorer.hpp"
#include "starvm/fault.hpp"
#include "starvm/graph.hpp"
#include "starvm/types.hpp"
#include "util/result.hpp"

namespace mc {

struct GraphProgramOptions {
  int devices = 2;
  double gflops = 5.0;
  starvm::SchedulerKind scheduler = starvm::SchedulerKind::kHeft;
  starvm::FaultToleranceConfig fault_tolerance;
  /// FaultPlan spec string (fault.hpp grammar); empty = no plan. Plans that
  /// fire device- or history-dependently make outcomes legitimately
  /// schedule-dependent — pair them with Options::check_serial = false.
  std::string fault_plan;
};

/// Build a Program from a task graph. Fails only on an unparsable fault
/// plan. The returned Program owns its state (graph copy, storage,
/// codelets) via shared handles inside its closures; it is safely copyable
/// and reusable across explorations.
pdl::util::Result<Program> make_graph_program(const starvm::TaskGraph& graph,
                                              GraphProgramOptions options);

/// True when `spec` can fire differently depending on which device runs a
/// task (device-qualified fail/delay, kill, random): outcomes are then
/// schedule-dependent by design and the serial-equivalence check must be
/// disabled.
bool fault_plan_is_schedule_sensitive(const std::string& spec);

}  // namespace mc
