// Safety invariants the explorer checks at every terminal state
// (docs/MODEL_CHECKING.md "Invariants"). Each maps to one A6xx rule:
//
//   A601-deadlock              a submitted task is unaccounted for at
//                              termination (never completed, failed, or
//                              cancelled): the scheduler went dry with work
//                              pending — the lost-wakeup observable.
//   A602-divergent-replay      the terminal output diverges from the
//                              canonical run (numeric schedule-dependence),
//                              an identical decision vector produced a
//                              different state hash, or a device's virtual
//                              clock ran backwards.
//   A603-lost-task             exactly-once violated: a task appears twice
//                              in the completion trace (double execution
//                              after re-routing) or both completed and
//                              permanently failed/cancelled.
//   A604-unbounded-retry-cycle a task consumed more attempts than the
//                              configured retry budget allows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "starvm/stats.hpp"

namespace mc {

struct RunOutcome;

/// What the invariant pass needs to know beyond the run itself.
struct InvariantContext {
  /// Tasks the program submits (ids dense 1..expected_tasks); 0 disables
  /// the A601 accounting.
  std::size_t expected_tasks = 0;
  /// Maximum attempts any task may legally consume (engine retry budget
  /// plus per-device overrides, plus the initial attempt).
  int attempt_ceiling = 0;
  /// Compare output_hash against canonical_hash (A602)?
  bool check_serial = true;
  bool has_canonical = false;
  std::uint64_t canonical_hash = 0;
};

struct Violation {
  std::string rule;
  std::string message;
};

/// Check one terminal execution against the A601–A604 invariants.
std::vector<Violation> check_invariants(const RunOutcome& run,
                                        const InvariantContext& ctx);

/// Hash of the observable terminal state: completion trace (task, device,
/// quantized virtual times), failure accounting, error messages, and the
/// program output hash. Two runs replaying the same decision vector must
/// produce equal state hashes (byte-stable replay).
std::uint64_t state_hash(const starvm::EngineStats& stats,
                         std::uint64_t output_hash);

}  // namespace mc
