// pdlcheck — the cross-layer static analyzer for the PDL toolchain.
//
//   pdlcheck [options] <platform.xml>...
//
//   --program <file>   also analyze an annotated Cascabel program against
//                      every given platform (variant matching, execute-site
//                      checks, static task-graph hazard analysis)
//   --format=text|json|sarif
//                      output format (default text); sarif emits a SARIF
//                      2.1.0 document for CI code-scanning upload
//   --rule <id>=<sev>  per-rule severity override: error|warning|info|off
//                      (id is "A301-dead-variant" or bare "A301"; repeatable)
//   --werror           exit nonzero on warnings too
//   --relaxed          analyze task hazards under relaxed consistency
//                      (only declared dependencies order tasks)
//   --graph <file>     analyze a task-graph fixture (graph_io.hpp text
//                      format) instead of / in addition to --program
//   --plan             schedule-aware capacity & interference analysis
//                      (A5xx): simulate a HEFT schedule of the graph(s) on
//                      each platform; text format also prints the plan
//   --perf-store <file>
//                      feed measured rates from a persisted perf store into
//                      the --plan simulation; the store must carry the
//                      platform's descriptor hash, otherwise declared rates
//                      are used (with a warning)
//   --explore          model-check the graph(s) with the starmc explorer
//                      (A6xx): exhaustively run every reduced interleaving
//                      of the deterministic engine and report invariant
//                      violations with replayable decision traces; a
//                      platform file is optional in this mode
//   --explore-budget <n>
//                      engine-execution budget for --explore (default 20000)
//   --list-rules       print the rule catalog and exit
//
// Exit codes: 0 clean, 1 findings at error severity (or warnings with
// --werror), 2 usage error. Structural validation (V1-V12), subschema
// checks and every analysis rule (A1xx/A3xx/A4xx/A5xx) land in one
// normalized, deterministic report.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/accuracy.hpp"
#include "analysis/analyzer.hpp"
#include "analysis/capacity.hpp"
#include "analysis/graph_io.hpp"
#include "analysis/report.hpp"
#include "analysis/rules.hpp"
#include "analysis/sarif.hpp"
#include "analysis/schedule_sim.hpp"
#include "mc/explorer.hpp"
#include "mc/graph_program.hpp"
#include "mc/report.hpp"
#include "annot/annotated_program.hpp"
#include "cascabel/repository.hpp"
#include "obs/env.hpp"
#include "pdl/extension.hpp"
#include "starvm/bridge.hpp"
#include "starvm/perf_model.hpp"
#include "starvm/perf_store.hpp"
#include "pdl/parser.hpp"
#include "pdl/validate.hpp"
#include "util/string_util.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <platform.xml>...\n"
               "  --program <file>    analyze an annotated program against the "
               "platform(s)\n"
               "  --format=text|json|sarif  output format (default: text)\n"
               "  --rule <id>=<sev>   override a rule: error|warning|info|off\n"
               "  --werror            treat warnings as errors for the exit code\n"
               "  --relaxed           hazard analysis under relaxed consistency\n"
               "  --graph <file>      analyze a task-graph fixture file\n"
               "  --plan              schedule-aware A5xx analysis (and plan "
               "summary)\n"
               "  --perf-store <file> feed a persisted perf store's measured "
               "rates into --plan\n"
               "  --explore           model-check the graph(s) with the starmc "
               "explorer (A6xx)\n"
               "  --explore-budget <n>  engine-execution budget for --explore\n"
               "  --list-rules        print the rule catalog and exit\n",
               argv0);
}

int list_rules() {
  for (const analysis::RuleInfo& rule : analysis::rule_catalog()) {
    std::printf("%-36s %-8s %s\n", rule.id, pdl::to_string(rule.default_severity),
                rule.summary);
  }
  return 0;
}

/// "--rule A301=off" / "A103-property-sanity=error" -> options entry.
bool apply_rule_option(const std::string& spec, analysis::AnalysisOptions& options) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos) return false;
  const std::string id = spec.substr(0, eq);
  const std::string value = spec.substr(eq + 1);
  const analysis::RuleInfo* rule = analysis::find_rule(id);
  if (rule == nullptr) {
    const std::string suggestion = analysis::suggest_rule(id);
    if (suggestion.empty()) {
      std::fprintf(stderr, "pdlcheck: unknown rule '%s'\n", id.c_str());
    } else {
      std::fprintf(stderr, "pdlcheck: unknown rule '%s'; did you mean '%s'?\n",
                   id.c_str(), suggestion.c_str());
    }
    return false;
  }
  if (value == "off") {
    options.disabled.insert(rule->id);
    return true;
  }
  pdl::Severity severity;
  if (value == "error") {
    severity = pdl::Severity::kError;
  } else if (value == "warning") {
    severity = pdl::Severity::kWarning;
  } else if (value == "info") {
    severity = pdl::Severity::kInfo;
  } else {
    std::fprintf(stderr, "pdlcheck: invalid severity '%s' (use error|warning|info|off)\n",
                 value.c_str());
    return false;
  }
  options.severity_overrides[rule->id] = severity;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  obs::init_from_env();
  analysis::AnalysisOptions options;
  std::string format = "text";
  std::string program_path;
  std::string graph_path;
  std::string perf_store_path;
  bool plan = false;
  bool explore = false;
  std::size_t explore_budget = 20000;
  bool werror = false;
  std::vector<std::string> platform_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return list_rules();
    if (arg == "--werror") {
      werror = true;
    } else if (arg == "--relaxed") {
      options.relaxed = true;
    } else if (arg == "--program" && i + 1 < argc) {
      program_path = argv[++i];
    } else if (arg.rfind("--program=", 0) == 0) {
      program_path = arg.substr(std::strlen("--program="));
    } else if (arg == "--plan") {
      plan = true;
    } else if (arg == "--explore") {
      explore = true;
    } else if (arg == "--explore-budget" && i + 1 < argc) {
      explore_budget = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg.rfind("--explore-budget=", 0) == 0) {
      explore_budget = static_cast<std::size_t>(
          std::atoll(arg.substr(std::strlen("--explore-budget=")).c_str()));
    } else if (arg == "--graph" && i + 1 < argc) {
      graph_path = argv[++i];
    } else if (arg.rfind("--graph=", 0) == 0) {
      graph_path = arg.substr(std::strlen("--graph="));
    } else if (arg == "--perf-store" && i + 1 < argc) {
      perf_store_path = argv[++i];
    } else if (arg.rfind("--perf-store=", 0) == 0) {
      perf_store_path = arg.substr(std::strlen("--perf-store="));
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(std::strlen("--format="));
      if (format != "text" && format != "json" && format != "sarif") {
        std::fprintf(stderr, "pdlcheck: unknown format '%s'\n", format.c_str());
        return 2;
      }
    } else if (arg == "--rule" && i + 1 < argc) {
      if (!apply_rule_option(argv[++i], options)) return 2;
    } else if (arg.rfind("--rule=", 0) == 0) {
      if (!apply_rule_option(arg.substr(std::strlen("--rule=")), options)) return 2;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pdlcheck: unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      platform_paths.push_back(arg);
    }
  }
  // --explore model-checks the engine itself; a graph fixture alone is a
  // complete input for it. Every other mode needs a platform.
  if (platform_paths.empty() && !(explore && !graph_path.empty())) {
    usage(argv[0]);
    return 2;
  }

  pdl::Diagnostics diags;
  std::vector<pdl::Platform> platforms;
  std::vector<std::string> parsed_paths;  // parallel to `platforms`
  for (const std::string& path : platform_paths) {
    auto platform = pdl::parse_platform_file(path, diags);
    if (!platform) {
      pdl::add_finding(diags, pdl::Severity::kError, {}, platform.error().str(),
                       pdl::SourceLoc{path, 1, 1});
      continue;
    }
    // The full platform gate: structure (V1-V12), extension subschemas,
    // then the analyzer's A1xx rules.
    pdl::validate(platform.value(), diags);
    pdl::builtin_registry().validate_properties(platform.value(), diags);
    analysis::analyze_platform(platform.value(), options, diags);
    platforms.push_back(std::move(platform).value());
    parsed_paths.push_back(path);
  }

  // --perf-store: measured rates for the A5xx schedule simulation. The
  // store is bound to one platform by its descriptor hash; platforms whose
  // hash differs fall back to declared rates (with a warning) rather than
  // simulating with another machine's measurements.
  std::vector<std::unique_ptr<starvm::PerfModel>> platform_models(platforms.size());
  if (!perf_store_path.empty()) {
    const starvm::perf_store::LoadResult loaded =
        starvm::perf_store::load(perf_store_path);
    switch (loaded.status) {
      case starvm::perf_store::LoadStatus::kLoaded:
        for (std::size_t p = 0; p < platforms.size(); ++p) {
          auto config = starvm::engine_config_from_platform(platforms[p]);
          if (!config.ok()) continue;
          const std::uint64_t hash =
              starvm::perf_store::descriptor_hash(config.value().devices);
          if (hash != loaded.store.descriptor_hash) {
            pdl::add_finding(diags, pdl::Severity::kWarning, {},
                             "perf store '" + perf_store_path +
                                 "' was learned on a different platform than '" +
                                 parsed_paths[p] +
                                 "' (descriptor hash mismatch); using declared "
                                 "rates",
                             pdl::SourceLoc{perf_store_path, 1, 1});
            continue;
          }
          platform_models[p] = std::make_unique<starvm::PerfModel>();
          starvm::perf_store::preload(loaded.store, *platform_models[p]);
        }
        break;
      case starvm::perf_store::LoadStatus::kMissing:
        pdl::add_finding(diags, pdl::Severity::kWarning, {},
                         "perf store '" + perf_store_path + "' not found",
                         pdl::SourceLoc{perf_store_path, 1, 1});
        break;
      case starvm::perf_store::LoadStatus::kBadVersion:
      case starvm::perf_store::LoadStatus::kCorrupt:
        pdl::add_finding(diags, pdl::Severity::kWarning, {},
                         "perf store '" + perf_store_path +
                             "' rejected (unsupported version or corrupt); "
                             "using declared rates",
                         pdl::SourceLoc{perf_store_path, 1, 1});
        break;
    }
  }

  // Graphs to run the A4xx (and, with --plan, A5xx) analyses over, paired
  // with a label for the plan summary.
  std::vector<std::pair<std::string, starvm::TaskGraph>> graphs;
  if (!program_path.empty()) {
    const auto source = pdl::util::read_file(program_path);
    if (!source) {
      pdl::add_finding(diags, pdl::Severity::kError, {},
                       "cannot open program '" + program_path + "'",
                       pdl::SourceLoc{program_path, 1, 1});
    } else {
      auto program = cascabel::parse_annotated_source(*source, program_path, diags);
      if (program.ok()) {
        cascabel::TaskRepository repository = cascabel::TaskRepository::with_defaults();
        repository.register_program(program.value());
        for (const pdl::Platform& platform : platforms) {
          analysis::analyze_program(program.value(), repository, platform, options,
                                    diags);
        }
        graphs.emplace_back(program_path, analysis::graph_from_program(
                                              program.value(), repository));
      }
    }
  }
  if (!graph_path.empty()) {
    auto graph = analysis::load_graph_file(graph_path);
    if (!graph.ok()) {
      pdl::add_finding(diags, pdl::Severity::kError, {}, graph.error().str(),
                       pdl::SourceLoc{graph_path, 1, 1});
    } else {
      graphs.emplace_back(graph_path, std::move(graph).value());
    }
  }
  // A7xx bounds are judged at the loosest arithmetic any analyzed platform
  // declares (ACCURACY property): a dynamic scheduler may place any task on
  // any capable PU, so the worst PU's roundoff is the honest floor. With no
  // platforms (pure --graph runs) the kernels' own declared epsilons stand.
  double epsilon_floor = 0.0;
  for (const pdl::Platform& platform : platforms) {
    epsilon_floor =
        std::max(epsilon_floor, analysis::accuracy_epsilon_floor(platform));
  }
  std::string plan_text;
  for (const auto& [label, graph] : graphs) {
    analysis::analyze_task_graph(graph, options, diags);
    analysis::analyze_accuracy(graph, options, diags, epsilon_floor);
    if (explore) {
      mc::GraphProgramOptions program_options;
      auto program = mc::make_graph_program(graph, program_options);
      if (!program.ok()) {
        pdl::add_finding(diags, pdl::Severity::kError, {},
                         program.error().str(), pdl::SourceLoc{label, 1, 1});
      } else {
        mc::Options explore_options;
        explore_options.max_runs = explore_budget;
        mc::Explorer explorer(std::move(program).value(), explore_options);
        mc::report_findings(explorer.explore(), label, options, diags);
      }
    }
    if (!plan) continue;
    for (std::size_t p = 0; p < platforms.size(); ++p) {
      const analysis::SchedulePlan schedule = analysis::analyze_schedule(
          graph, platforms[p], options, diags, platform_models[p].get());
      plan_text += "== " + label + " on " + parsed_paths[p] + " ==\n";
      plan_text += analysis::render_plan_text(schedule, graph);
    }
  }

  pdl::normalize(diags);
  if (format == "json") {
    std::printf("%s\n", analysis::render_json(diags).c_str());
  } else if (format == "sarif") {
    std::printf("%s\n", analysis::render_sarif(diags).c_str());
  } else {
    std::printf("%s", plan_text.c_str());
    std::printf("%s", analysis::render_text(diags).c_str());
  }
  return analysis::exit_code(diags, werror);
}
