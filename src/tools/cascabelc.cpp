// cascabelc — the Cascabel source-to-source compiler driver (paper §IV-C,
// Figure 4).
//
//   cascabelc --pdl <platform.xml> --input <annotated.cpp>
//             [--variants <variants.cpp>]...
//             [--output <generated.cpp>] [--makefile <Makefile>]
//             [--exe <name>] [--no-sync] [--print-selection] [--verbose]
//
// Reads an annotated serial task-based C/C++ program and a target PDL
// descriptor, runs task registration, static pre-selection, output
// generation and compile-plan derivation, and writes the generated source
// plus the Makefile realizing the compilation plan. Retargeting = rerun
// with a different --pdl; the input is never modified.
#include <cstdio>
#include <cstring>
#include <string>

#include "cascabel/translator.hpp"
#include "pdl/parser.hpp"
#include "pdl/validate.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --pdl <platform.xml> --input <annotated.cpp>\n"
               "          [--variants <variants.cpp>]...\n"
               "          [--output <generated.cpp>] [--makefile <Makefile>]\n"
               "          [--exe <name>] [--no-sync] [--print-selection]"
               " [--verbose]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string pdl_path, input_path, output_path, makefile_path;
  std::vector<std::string> variant_paths;
  std::string exe_name = "a.out";
  bool sync_each_call = true;
  bool print_selection = false;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--pdl") {
      pdl_path = need_value();
    } else if (flag == "--input") {
      input_path = need_value();
    } else if (flag == "--variants") {
      variant_paths.emplace_back(need_value());
    } else if (flag == "--output") {
      output_path = need_value();
    } else if (flag == "--makefile") {
      makefile_path = need_value();
    } else if (flag == "--exe") {
      exe_name = need_value();
    } else if (flag == "--no-sync") {
      sync_each_call = false;
    } else if (flag == "--print-selection") {
      print_selection = true;
    } else if (flag == "--verbose") {
      verbose = true;
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (pdl_path.empty() || input_path.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (output_path.empty()) output_path = input_path + ".cascabel.cpp";
  if (verbose) pdl::util::set_log_level(pdl::util::LogLevel::kInfo);

  // Target platform.
  pdl::Diagnostics diags;
  auto platform = pdl::parse_platform_file(pdl_path, diags);
  if (!platform) {
    std::fprintf(stderr, "cascabelc: cannot parse PDL: %s\n",
                 platform.error().str().c_str());
    return 1;
  }
  if (!pdl::validate(platform.value(), diags)) {
    std::fprintf(stderr, "cascabelc: invalid platform description:\n");
    for (const auto& d : diags) std::fprintf(stderr, "  %s\n", d.str().c_str());
    return 1;
  }

  // Input program.
  auto source = pdl::util::read_file(input_path);
  if (!source) {
    std::fprintf(stderr, "cascabelc: cannot read '%s'\n", input_path.c_str());
    return 1;
  }

  // Translate (paper §IV-C steps 1–4).
  cascabel::TranslationOptions options;
  options.codegen.program_name = input_path;
  options.codegen.sync_each_call = sync_each_call;
  options.executable_name = exe_name;
  for (const auto& path : variant_paths) {
    auto text = pdl::util::read_file(path);
    if (!text) {
      std::fprintf(stderr, "cascabelc: cannot read variants file '%s'\n",
                   path.c_str());
      return 1;
    }
    options.variant_sources.emplace_back(path, std::move(*text));
  }
  auto result = cascabel::translate(*source, input_path, platform.value(), options);

  const auto print_diags = [&](const pdl::Diagnostics& list) {
    for (const auto& d : list) {
      if (d.severity != pdl::Severity::kInfo || verbose) {
        std::fprintf(stderr, "  %s\n", d.str().c_str());
      }
    }
  };
  if (!result) {
    std::fprintf(stderr, "cascabelc: translation failed: %s\n",
                 result.error().str().c_str());
    return 1;
  }
  print_diags(result.value().diagnostics);

  if (print_selection) {
    // The §IV-C step-2 report: which variants survived for this target.
    std::printf("selection for target '%s':\n",
                platform.value().name().empty() ? pdl_path.c_str()
                                                : platform.value().name().c_str());
    for (const auto& [interface_name, candidates] :
         result.value().selection.by_interface) {
      std::printf("  %s:\n", interface_name.c_str());
      for (const auto& c : candidates) {
        std::printf("    %-24s via %-32s %s, %zu PU(s), specificity %d\n",
                    c.variant->pragma.variant_name.c_str(),
                    c.matched_platform.c_str(),
                    c.is_fallback ? "fallback" : "specific", c.mapped_pus.size(),
                    c.specificity);
      }
    }
  }

  if (!pdl::util::write_file(output_path, result.value().output_source)) {
    std::fprintf(stderr, "cascabelc: cannot write '%s'\n", output_path.c_str());
    return 1;
  }
  std::printf("cascabelc: %s -> %s (%zu variant(s), %zu call site(s))\n",
              input_path.c_str(), output_path.c_str(),
              result.value().program.variants.size(),
              result.value().program.calls.size());

  if (!makefile_path.empty()) {
    if (!pdl::util::write_file(makefile_path,
                               result.value().compile_plan.to_makefile())) {
      std::fprintf(stderr, "cascabelc: cannot write '%s'\n", makefile_path.c_str());
      return 1;
    }
    std::printf("cascabelc: compile plan -> %s\n", makefile_path.c_str());
  }
  return 0;
}
