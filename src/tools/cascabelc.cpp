// cascabelc — the Cascabel source-to-source compiler driver (paper §IV-C,
// Figure 4).
//
//   cascabelc --pdl <platform.xml> --input <annotated.cpp>
//             [--variants <variants.cpp>]...
//             [--output <generated.cpp>] [--makefile <Makefile>]
//             [--exe <name>] [--no-sync] [--print-selection] [--verbose]
//             [--trace-out <trace.json>] [--metrics-out <metrics.json>]
//             [--fault-plan <spec>] [--analyze] [--profile]
//
// --profile runs the schedule preview and prints the model-vs-measured
// report (docs/OBSERVABILITY.md "Flight recorder & profiling"): the
// measured critical path with queue-wait/transfer/compute attribution, the
// per-(task, device) rate drift against the declared GFLOPS, and the diff
// against the A5xx modeled schedule of the extracted task graph.
//
// --analyze runs the cross-layer static analyzer (src/analysis) instead of
// writing outputs: platform lint, variant/execute-site matching and task-
// graph hazard analysis, printed as a normalized report. Exit 1 on
// error-severity findings — the same gate `pdlcheck --program` applies.
//
// Reads an annotated serial task-based C/C++ program and a target PDL
// descriptor, runs task registration, static pre-selection, output
// generation and compile-plan derivation, and writes the generated source
// plus the Makefile realizing the compilation plan. Retargeting = rerun
// with a different --pdl; the input is never modified.
//
// --trace-out writes a Chrome trace-event file merging the toolchain's
// wall-time spans with a virtual-clock *schedule preview*: the translated
// program's call sites executed on synthetic data in a pure-simulation
// engine, including the scheduler's placement decisions. --metrics-out
// writes the metrics registry snapshot. PDL_TRACE / PDL_METRICS are the
// environment equivalents (docs/OBSERVABILITY.md).
//
// --fault-plan injects deterministic faults into the schedule preview
// (docs/RUNTIME.md "Failure semantics"), so recovery decisions — retries,
// reroutes, blacklists — appear in the exported trace. PDL_FAULT_PLAN is
// the environment equivalent.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "analysis/analyzer.hpp"
#include "analysis/accuracy.hpp"
#include "analysis/capacity.hpp"
#include "analysis/profile.hpp"
#include "analysis/report.hpp"
#include "analysis/schedule_sim.hpp"
#include "cascabel/rt.hpp"
#include "cascabel/translator.hpp"
#include "obs/env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pdl/parser.hpp"
#include "pdl/validate.hpp"
#include "starvm/trace_export.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --pdl <platform.xml> --input <annotated.cpp>\n"
               "          [--variants <variants.cpp>]...\n"
               "          [--output <generated.cpp>] [--makefile <Makefile>]\n"
               "          [--exe <name>] [--no-sync] [--print-selection]"
               " [--verbose]\n"
               "          [--trace-out <trace.json>]"
               " [--metrics-out <metrics.json>] [--fault-plan <spec>]\n"
               "          [--analyze] [--profile]\n",
               argv0);
}

/// Run the translated program's call sites on synthetic data in a pure-
/// simulation engine: source-only variants get no-op stand-in
/// implementations, so the preview exercises the real pre-selection,
/// decomposition and placement paths and yields a virtual-clock schedule
/// with the scheduler's decision log.
starvm::EngineStats schedule_preview(
    const cascabel::TranslationResult& result, const pdl::Platform& platform,
    std::shared_ptr<const starvm::FaultPlan> fault_plan) {
  obs::Span span("cascabelc.schedule_preview");

  cascabel::TaskRepository repo = result.repository;
  for (const auto& variant : repo.variants()) {
    if (repo.bound(variant.pragma.variant_name) != nullptr) continue;
    cascabel::BoundImpl impl;
    impl.variant_name = variant.pragma.variant_name;
    impl.device_kind =
        variant.pragma.target_platforms.empty()
            ? starvm::DeviceKind::kCpu
            : cascabel::device_kind_for_target(variant.pragma.target_platforms[0]);
    impl.fn = [](const starvm::ExecContext&) {};
    impl.flops = [](const std::vector<starvm::BufferView>& buffers) {
      double elements = 0.0;
      for (const auto& view : buffers) {
        elements += static_cast<double>(view.handle->rows() *
                                        view.handle->cols());
      }
      return 2.0 * elements;
    };
    repo.bind(std::move(impl));
  }

  cascabel::rt::Options options;
  options.scheduler = starvm::SchedulerKind::kHeft;
  options.mode = starvm::ExecutionMode::kPureSim;
  options.bridge.record_decisions = true;
  // Driver-core dedication is a hybrid-execution concern; in a simulated
  // preview it could leave small hosts with zero CPU devices.
  options.bridge.dedicate_driver_cores = false;
  options.fault_plan = std::move(fault_plan);
  cascabel::rt::Context ctx(platform, std::move(repo), options);

  // Synthetic buffers, filled through the shared thread pool (which also
  // exercises its queue/wait instrumentation).
  constexpr std::size_t kExtent = 256;
  pdl::util::ThreadPool pool(2);
  std::vector<std::unique_ptr<std::vector<double>>> storage;

  for (const auto& call : result.program.calls) {
    const auto* candidates = result.selection.candidates(call.pragma.task_interface);
    if (candidates == nullptr || candidates->empty()) continue;
    const auto& params = candidates->front().variant->pragma.params;

    std::vector<cascabel::rt::Arg> args;
    for (std::size_t i = 0; i < params.size(); ++i) {
      cascabel::DistributionKind dist = cascabel::DistributionKind::kNone;
      std::size_t rows = 1;
      // Distributions name call-site arguments; fall back to the formal
      // parameter name for pragma/argument mismatches.
      const std::string& arg_name =
          i < call.args.size() ? call.args[i] : params[i].name;
      for (const auto& d : call.pragma.distributions) {
        if (d.param == arg_name || d.param == params[i].name) {
          dist = d.kind;
          if (d.sizes.size() == 2) rows = kExtent;
          break;
        }
      }
      storage.push_back(std::make_unique<std::vector<double>>(rows * kExtent));
      std::vector<double>& buffer = *storage.back();
      pool.parallel_for(0, buffer.size(), [&buffer](std::size_t j) {
        buffer[j] = 0.5 * static_cast<double>(j % 7);
      });
      args.push_back(
          cascabel::rt::Arg{buffer.data(), rows, kExtent, params[i].mode, dist});
    }
    auto status = ctx.execute(call.pragma.task_interface,
                              call.pragma.execution_group, args);
    if (!status.ok() && !call.pragma.execution_group.empty()) {
      // The execution group may exclude every device of this platform;
      // preview the placement over all PUs instead of dropping the site.
      status = ctx.execute(call.pragma.task_interface, "", args);
    }
    if (!status.ok()) {
      PDL_LOG_WARN << "schedule preview skipped call site '"
                   << call.pragma.task_interface
                   << "': " << status.error().str();
    }
  }
  if (auto status = ctx.wait(); !status.ok()) {
    // Expected under an injected fault plan: the preview's value is the
    // recovery decisions in the trace, not the failed tasks themselves.
    PDL_LOG_WARN << "schedule preview: " << status.error().str();
  }
  return ctx.stats();
}

}  // namespace

int main(int argc, char** argv) {
  std::string pdl_path, input_path, output_path, makefile_path;
  std::vector<std::string> variant_paths;
  std::string exe_name = "a.out";
  bool sync_each_call = true;
  bool print_selection = false;
  bool verbose = false;
  bool analyze_only = false;
  bool profile = false;
  // PDL_TRACE / PDL_METRICS provide defaults; flags override below.
  obs::init_from_env();
  std::string trace_path = obs::env_trace_path();
  std::string metrics_path = obs::env_metrics_path();
  std::string fault_plan_spec;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string inline_value;
    bool has_inline_value = false;
    // Long flags accept both "--flag value" and "--flag=value".
    if (const std::size_t eq = flag.find('='); eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      has_inline_value = true;
    }
    const auto need_value = [&]() -> std::string {
      if (has_inline_value) return inline_value;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--pdl") {
      pdl_path = need_value();
    } else if (flag == "--input") {
      input_path = need_value();
    } else if (flag == "--variants") {
      variant_paths.emplace_back(need_value());
    } else if (flag == "--output") {
      output_path = need_value();
    } else if (flag == "--makefile") {
      makefile_path = need_value();
    } else if (flag == "--exe") {
      exe_name = need_value();
    } else if (flag == "--trace-out") {
      trace_path = need_value();
    } else if (flag == "--metrics-out") {
      metrics_path = need_value();
    } else if (flag == "--fault-plan") {
      fault_plan_spec = need_value();
    } else if (flag == "--no-sync") {
      sync_each_call = false;
    } else if (flag == "--print-selection") {
      print_selection = true;
    } else if (flag == "--analyze") {
      analyze_only = true;
    } else if (flag == "--profile") {
      profile = true;
    } else if (flag == "--verbose") {
      verbose = true;
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (pdl_path.empty() || input_path.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (output_path.empty()) output_path = input_path + ".cascabel.cpp";
  if (verbose) pdl::util::set_log_level(pdl::util::LogLevel::kInfo);
  std::shared_ptr<const starvm::FaultPlan> fault_plan;
  if (!fault_plan_spec.empty()) {
    auto parsed = starvm::FaultPlan::parse(fault_plan_spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "cascabelc: bad --fault-plan: %s\n",
                   parsed.error().str().c_str());
      return 2;
    }
    fault_plan =
        std::make_shared<const starvm::FaultPlan>(std::move(parsed).value());
    std::printf("cascabelc: fault plan with %zu rule(s) active in preview\n",
                fault_plan->rule_count());
  }
  if (!trace_path.empty()) obs::Tracer::instance().set_enabled(true);
  if (!trace_path.empty() || !metrics_path.empty()) obs::set_metrics_enabled(true);

  // Target platform.
  pdl::Diagnostics diags;
  auto platform = pdl::parse_platform_file(pdl_path, diags);
  if (!platform) {
    std::fprintf(stderr, "cascabelc: cannot parse PDL: %s\n",
                 platform.error().str().c_str());
    return 1;
  }
  if (!pdl::validate(platform.value(), diags)) {
    std::fprintf(stderr, "cascabelc: invalid platform description:\n");
    for (const auto& d : diags) std::fprintf(stderr, "  %s\n", d.str().c_str());
    return 1;
  }

  // Input program.
  auto source = pdl::util::read_file(input_path);
  if (!source) {
    std::fprintf(stderr, "cascabelc: cannot read '%s'\n", input_path.c_str());
    return 1;
  }

  // Translate (paper §IV-C steps 1–4).
  cascabel::TranslationOptions options;
  options.codegen.program_name = input_path;
  options.codegen.sync_each_call = sync_each_call;
  options.executable_name = exe_name;
  for (const auto& path : variant_paths) {
    auto text = pdl::util::read_file(path);
    if (!text) {
      std::fprintf(stderr, "cascabelc: cannot read variants file '%s'\n",
                   path.c_str());
      return 1;
    }
    options.variant_sources.emplace_back(path, std::move(*text));
  }
  auto result = cascabel::translate(*source, input_path, platform.value(), options);

  const auto print_diags = [&](const pdl::Diagnostics& list) {
    for (const auto& d : list) {
      if (d.severity != pdl::Severity::kInfo || verbose) {
        std::fprintf(stderr, "  %s\n", d.str().c_str());
      }
    }
  };
  if (!result) {
    std::fprintf(stderr, "cascabelc: translation failed: %s\n",
                 result.error().str().c_str());
    return 1;
  }
  print_diags(result.value().diagnostics);

  if (analyze_only) {
    pdl::Diagnostics findings;
    const analysis::AnalysisOptions analysis_options;
    analysis::analyze_platform(platform.value(), analysis_options, findings);
    analysis::analyze_program(result.value().program, result.value().repository,
                              platform.value(), analysis_options, findings);
    const starvm::TaskGraph graph = analysis::graph_from_program(
        result.value().program, result.value().repository);
    analysis::analyze_task_graph(graph, analysis_options, findings);
    // A7xx accuracy bounds at the platform's declared arithmetic floor.
    analysis::analyze_accuracy(graph, analysis_options, findings,
                               analysis::accuracy_epsilon_floor(platform.value()));
    // Schedule-aware capacity & interference rules (A5xx) over a modeled
    // HEFT placement of the extracted graph on the target platform.
    analysis::analyze_schedule(graph, platform.value(), analysis_options,
                               findings);
    pdl::normalize(findings);
    std::printf("%s", analysis::render_text(findings).c_str());
    return analysis::exit_code(findings, /*werror=*/false);
  }

  if (print_selection) {
    // The §IV-C step-2 report: which variants survived for this target.
    std::printf("selection for target '%s':\n",
                platform.value().name().empty() ? pdl_path.c_str()
                                                : platform.value().name().c_str());
    for (const auto& [interface_name, candidates] :
         result.value().selection.by_interface) {
      std::printf("  %s:\n", interface_name.c_str());
      for (const auto& c : candidates) {
        std::printf("    %-24s via %-32s %s, %zu PU(s), specificity %d\n",
                    c.variant->pragma.variant_name.c_str(),
                    c.matched_platform.c_str(),
                    c.is_fallback ? "fallback" : "specific", c.mapped_pus.size(),
                    c.specificity);
      }
    }
  }

  if (!pdl::util::write_file(output_path, result.value().output_source)) {
    std::fprintf(stderr, "cascabelc: cannot write '%s'\n", output_path.c_str());
    return 1;
  }
  std::printf("cascabelc: %s -> %s (%zu variant(s), %zu call site(s))\n",
              input_path.c_str(), output_path.c_str(),
              result.value().program.variants.size(),
              result.value().program.calls.size());

  if (!makefile_path.empty()) {
    if (!pdl::util::write_file(makefile_path,
                               result.value().compile_plan.to_makefile())) {
      std::fprintf(stderr, "cascabelc: cannot write '%s'\n", makefile_path.c_str());
      return 1;
    }
    std::printf("cascabelc: compile plan -> %s\n", makefile_path.c_str());
  }

  if (!trace_path.empty() || !metrics_path.empty() || profile) {
    const starvm::EngineStats preview =
        schedule_preview(result.value(), platform.value(), fault_plan);
    if (profile) {
      // Measured side: the preview run. Modeled side: the A5xx HEFT
      // simulation of the statically extracted graph — same platform, same
      // task names, so the comparison aligns by name.
      const analysis::RunProfile run_profile = analysis::profile_run(preview);
      std::printf("%s", analysis::render_profile_text(run_profile).c_str());
      const starvm::TaskGraph graph = analysis::graph_from_program(
          result.value().program, result.value().repository);
      const analysis::SchedulePlan plan =
          analysis::simulate_schedule(graph, platform.value());
      std::printf("%s", analysis::render_comparison_text(
                            analysis::diff_against_plan(run_profile, plan, graph))
                            .c_str());
    }
    if (preview.task_failures > 0) {
      std::printf(
          "cascabelc: preview faults: %llu failure(s), %llu retried, "
          "%llu rerouted, %llu device(s) blacklisted, %llu task(s) lost\n",
          static_cast<unsigned long long>(preview.task_failures),
          static_cast<unsigned long long>(preview.retries),
          static_cast<unsigned long long>(preview.reroutes),
          static_cast<unsigned long long>(preview.devices_blacklisted),
          static_cast<unsigned long long>(preview.failed_tasks +
                                          preview.cancelled_tasks));
    }
    if (!trace_path.empty()) {
      const std::string trace = starvm::merged_chrome_trace(
          obs::Tracer::instance().snapshot(), &preview);
      if (!obs::write_text_file(trace_path, trace)) {
        std::fprintf(stderr, "cascabelc: cannot write '%s'\n", trace_path.c_str());
        return 1;
      }
      std::printf("cascabelc: trace -> %s\n", trace_path.c_str());
    }
    if (!metrics_path.empty()) {
      if (!obs::write_metrics_file(metrics_path)) {
        std::fprintf(stderr, "cascabelc: cannot write '%s'\n",
                     metrics_path.c_str());
        return 1;
      }
      std::printf("cascabelc: metrics -> %s\n", metrics_path.c_str());
    }
  }
  return 0;
}
