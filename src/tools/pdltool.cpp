// pdltool — command-line utility over the PDL library.
//
//   pdltool validate <platform.xml>          structural + subschema checks
//   pdltool lint <platform.xml>              validate + A1xx analysis rules
//   pdltool plan <platform.xml> <graph>      schedule-aware capacity &
//                                            interference analysis (A5xx)
//                                            of a task-graph fixture
//   pdltool profile <platform.xml> <graph>   run the graph on a pure-sim
//                                            engine built from the platform,
//                                            print the measured critical
//                                            path + rate drift, and diff it
//                                            against the modeled schedule
//   pdltool perf dump <store>                print a persisted perf store
//   pdltool perf check <store> <platform.xml>
//                                            verify the store belongs to the
//                                            platform (descriptor hash)
//   pdltool perf clear <store>               delete a persisted perf store
//   pdltool query <platform.xml> <what>      what: summary | groups |
//                                            workers | interconnects
//   pdltool match <platform.xml> <pattern>   compact-syntax pattern match
//   pdltool discover [--gpus]                emit PDL for this host
//   pdltool presets                          emit the built-in platforms
//
// The "namespace for reference to architectural properties" usage scenario
// of paper §II, as a tool.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/accuracy.hpp"
#include "analysis/capacity.hpp"
#include "starvm/bridge.hpp"
#include "starvm/perf_model.hpp"
#include "starvm/perf_store.hpp"
#include "analysis/graph_io.hpp"
#include "analysis/profile.hpp"
#include "analysis/report.hpp"
#include "analysis/schedule_sim.hpp"
#include "discovery/discovery.hpp"
#include "obs/env.hpp"
#include "obs/metrics.hpp"
#include "discovery/presets.hpp"
#include "pdl/diff.hpp"
#include "pdl/extension.hpp"
#include "pdl/schema_export.hpp"
#include "pdl/parser.hpp"
#include "pdl/pattern.hpp"
#include "pdl/query.hpp"
#include "pdl/serializer.hpp"
#include "pdl/validate.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s validate <platform.xml>\n"
               "  %s lint <platform.xml>\n"
               "  %s plan <platform.xml> <graph-file>\n"
               "  %s profile <platform.xml> <graph-file>\n"
               "  %s perf dump|check|clear <store> [platform.xml]\n"
               "  %s query <platform.xml> summary|groups|workers|interconnects\n"
               "  %s match <platform.xml> <compact-pattern>\n"
               "  %s discover [--gpus]\n"
               "  %s presets\n"
               "  %s xsd\n"
               "  %s diff <old.xml> <new.xml>\n"
               "  %s path <platform.xml> <fromPu> <toPu> [bytes]\n"
               "options: --metrics-out <file>   write an obs metrics snapshot"
               " (also: PDL_METRICS)\n"
               "         --perf-store <file>    feed measured rates into plan/"
               "profile (also: PDL_PERF_STORE)\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
               argv0, argv0, argv0);
}

int load(const char* path, pdl::Platform& out) {
  pdl::Diagnostics diags;
  auto platform = pdl::parse_platform_file(path, diags);
  if (!platform) {
    std::fprintf(stderr, "pdltool: %s\n", platform.error().str().c_str());
    return 1;
  }
  for (const auto& d : diags) std::fprintf(stderr, "  %s\n", d.str().c_str());
  if (pdl::has_errors(diags)) return 1;
  out = std::move(platform).value();
  return 0;
}

int cmd_validate(const char* path) {
  pdl::Platform platform;
  if (load(path, platform) != 0) return 1;
  pdl::Diagnostics diags;
  const bool structure = pdl::validate(platform, diags);
  const bool schema = pdl::builtin_registry().validate_properties(platform, diags);
  for (const auto& d : diags) std::printf("%s\n", d.str().c_str());
  std::printf("%s: structure %s, subschemas %s (%zu diagnostic(s))\n", path,
              structure ? "OK" : "INVALID", schema ? "OK" : "INVALID", diags.size());
  return structure && schema ? 0 : 1;
}

/// The analyzer gate as a subcommand: structure + subschemas + A1xx rules
/// with pdlcheck's normalized text report (the full cross-layer analysis,
/// including program checks, lives in the pdlcheck binary).
int cmd_lint(const char* path) {
  pdl::Diagnostics diags;
  auto platform = pdl::parse_platform_file(path, diags);
  if (!platform) {
    std::fprintf(stderr, "pdltool: %s\n", platform.error().str().c_str());
    return 1;
  }
  pdl::validate(platform.value(), diags);
  pdl::builtin_registry().validate_properties(platform.value(), diags);
  analysis::analyze_platform(platform.value(), analysis::AnalysisOptions{}, diags);
  pdl::normalize(diags);
  std::printf("%s", analysis::render_text(diags).c_str());
  return analysis::exit_code(diags, /*werror=*/false);
}

/// Load a perf store for a platform: returns true and fills `store` only
/// when the file loads cleanly AND its descriptor hash matches the
/// platform's bridge-derived device list. Every rejection is explained on
/// stderr; the caller falls back to declared rates.
bool load_store_for_platform(const std::string& store_path,
                             const pdl::Platform& platform,
                             starvm::perf_store::Store& store) {
  if (store_path.empty()) return false;
  const starvm::perf_store::LoadResult loaded = starvm::perf_store::load(store_path);
  if (loaded.status == starvm::perf_store::LoadStatus::kMissing) {
    std::fprintf(stderr, "pdltool: perf store '%s' not found\n", store_path.c_str());
    return false;
  }
  if (loaded.status != starvm::perf_store::LoadStatus::kLoaded) {
    std::fprintf(stderr,
                 "pdltool: perf store '%s' rejected (unsupported version or "
                 "corrupt); using declared rates\n",
                 store_path.c_str());
    return false;
  }
  auto config = starvm::engine_config_from_platform(platform);
  if (!config.ok()) return false;
  if (starvm::perf_store::descriptor_hash(config.value().devices) !=
      loaded.store.descriptor_hash) {
    std::fprintf(stderr,
                 "pdltool: perf store '%s' was learned on a different platform "
                 "(descriptor hash mismatch); using declared rates\n",
                 store_path.c_str());
    return false;
  }
  store = loaded.store;
  return true;
}

/// Schedule-aware analysis of a task-graph fixture against a platform:
/// prints the modeled plan (makespan, loads, peaks) and the A5xx findings,
/// with pdlcheck's exit-code contract. A matching perf store swaps the
/// simulator's analytic estimates for learned rates.
int cmd_plan(const char* platform_path, const char* graph_path,
             const std::string& store_path) {
  pdl::Platform platform;
  if (load(platform_path, platform) != 0) return 1;
  auto graph = analysis::load_graph_file(graph_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "pdltool: %s\n", graph.error().str().c_str());
    return 1;
  }
  starvm::perf_store::Store store;
  starvm::PerfModel model;
  const starvm::PerfModel* model_ptr = nullptr;
  if (load_store_for_platform(store_path, platform, store)) {
    starvm::perf_store::preload(store, model);
    model_ptr = &model;
  }
  const analysis::AnalysisOptions options;
  pdl::Diagnostics diags;
  analysis::analyze_task_graph(graph.value(), options, diags);
  analysis::analyze_accuracy(graph.value(), options, diags,
                             analysis::accuracy_epsilon_floor(platform));
  const analysis::SchedulePlan plan = analysis::analyze_schedule(
      graph.value(), platform, options, diags, model_ptr);
  pdl::normalize(diags);
  std::printf("%s", analysis::render_plan_text(plan, graph.value()).c_str());
  std::printf("%s", analysis::render_text(diags).c_str());
  return analysis::exit_code(diags, /*werror=*/false);
}

/// Model-vs-measured profiling of a task-graph fixture: execute the graph
/// on a pure-sim engine built from the platform (flight recorder on), then
/// print the measured critical path, the per-(task, device) rate drift and
/// the diff against the A5xx modeled schedule.
int cmd_profile(const char* platform_path, const char* graph_path,
                const std::string& store_path) {
  pdl::Platform platform;
  if (load(platform_path, platform) != 0) return 1;
  auto graph = analysis::load_graph_file(graph_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "pdltool: %s\n", graph.error().str().c_str());
    return 1;
  }
  auto stats = analysis::run_graph_on_platform(graph.value(), platform);
  if (!stats.ok()) {
    std::fprintf(stderr, "pdltool: %s\n", stats.error().str().c_str());
    return 1;
  }
  analysis::RunProfile profile = analysis::profile_run(stats.value());
  starvm::perf_store::Store store;
  if (load_store_for_platform(store_path, platform, store)) {
    // Third drift column: measured vs the store's learned rate, flagging
    // decayed entries.
    analysis::apply_store_rates(profile, store);
  }
  const analysis::SchedulePlan plan =
      analysis::simulate_schedule(graph.value(), platform);
  std::printf("%s", analysis::render_profile_text(profile).c_str());
  std::printf("%s",
              analysis::render_comparison_text(
                  analysis::diff_against_plan(profile, plan, graph.value()))
                  .c_str());
  for (const auto& error : stats.value().errors) {
    std::fprintf(stderr, "pdltool: %s\n", error.c_str());
  }
  return stats.value().failed_tasks == 0 ? 0 : 1;
}

/// Inspect / verify / delete a persisted perf store.
int cmd_perf(const std::string& action, const char* store_path,
             const char* platform_path) {
  if (action == "clear") {
    const starvm::perf_store::LoadResult probe = starvm::perf_store::load(store_path);
    if (probe.status == starvm::perf_store::LoadStatus::kMissing) {
      std::printf("perf store '%s' already absent\n", store_path);
      return 0;
    }
    if (std::remove(store_path) != 0) {
      std::fprintf(stderr, "pdltool: cannot remove '%s'\n", store_path);
      return 1;
    }
    std::printf("perf store '%s' cleared\n", store_path);
    return 0;
  }

  const starvm::perf_store::LoadResult loaded = starvm::perf_store::load(store_path);
  switch (loaded.status) {
    case starvm::perf_store::LoadStatus::kMissing:
      std::fprintf(stderr, "pdltool: perf store '%s' not found\n", store_path);
      return 1;
    case starvm::perf_store::LoadStatus::kBadVersion:
      std::fprintf(stderr, "pdltool: perf store '%s' has an unsupported version\n",
                   store_path);
      return 1;
    case starvm::perf_store::LoadStatus::kCorrupt:
      std::fprintf(stderr, "pdltool: perf store '%s' is corrupt\n", store_path);
      return 1;
    case starvm::perf_store::LoadStatus::kLoaded:
      break;
  }

  if (action == "dump") {
    std::printf("perf store '%s': platform %016llx, %zu entr%s\n", store_path,
                static_cast<unsigned long long>(loaded.store.descriptor_hash),
                loaded.store.entries.size(),
                loaded.store.entries.size() == 1 ? "y" : "ies");
    for (const starvm::perf_store::Entry& e : loaded.store.entries) {
      std::printf("  %s @ device %d: ema %.3g s over %llu sample(s)",
                  e.codelet.c_str(), e.device,
                  e.ema_seconds, static_cast<unsigned long long>(e.count));
      if (e.ema_gflops > 0.0) std::printf(", %.2f GFLOPS", e.ema_gflops);
      std::printf("\n");
    }
    return 0;
  }

  if (action == "check") {
    if (platform_path == nullptr) {
      std::fprintf(stderr, "pdltool: perf check needs a platform.xml\n");
      return 2;
    }
    pdl::Platform platform;
    if (load(platform_path, platform) != 0) return 1;
    auto config = starvm::engine_config_from_platform(platform);
    if (!config.ok()) {
      std::fprintf(stderr, "pdltool: %s\n", config.error().str().c_str());
      return 1;
    }
    const std::uint64_t hash =
        starvm::perf_store::descriptor_hash(config.value().devices);
    if (hash == loaded.store.descriptor_hash) {
      std::printf("MATCH: store '%s' belongs to platform '%s' (%016llx)\n",
                  store_path, platform.name().c_str(),
                  static_cast<unsigned long long>(hash));
      return 0;
    }
    std::printf("MISMATCH: store hash %016llx, platform hash %016llx\n",
                static_cast<unsigned long long>(loaded.store.descriptor_hash),
                static_cast<unsigned long long>(hash));
    return 1;
  }

  std::fprintf(stderr, "pdltool: unknown perf action '%s' (dump|check|clear)\n",
               action.c_str());
  return 2;
}

int cmd_query(const char* path, const std::string& what) {
  pdl::Platform platform;
  if (load(path, platform) != 0) return 1;
  if (what == "summary") {
    std::printf("name: %s\n", platform.name().c_str());
    std::printf("masters: %zu\n", platform.masters().size());
    std::printf("total PUs (quantities): %d\n", pdl::total_pu_count(platform));
    std::printf("workers: %d\n", pdl::worker_count(platform));
    std::printf("hierarchy depth: %d\n", pdl::hierarchy_depth(platform));
    for (const auto& master : platform.masters()) {
      std::printf("structure: %s\n", pdl::pattern_to_string(*master).c_str());
    }
  } else if (what == "groups") {
    for (const auto& group : pdl::logic_groups(platform)) {
      std::printf("%s:", group.c_str());
      for (const auto* pu : pdl::group_members(platform, group)) {
        std::printf(" %s", pu->id().c_str());
      }
      std::printf("\n");
    }
  } else if (what == "workers") {
    for (const auto* pu : pdl::pus_of_kind(platform, pdl::PuKind::kWorker)) {
      std::printf("%s x%d arch=%s path=%s\n", pu->id().c_str(), pu->quantity(),
                  pdl::resolved_value(*pu, "ARCHITECTURE").c_str(),
                  pu->path().c_str());
    }
  } else if (what == "interconnects") {
    for (const auto* ic : pdl::all_interconnects(platform)) {
      std::printf("%s -> %s type=%s scheme=%s\n", ic->from.c_str(), ic->to.c_str(),
                  ic->type.c_str(), ic->scheme.c_str());
    }
  } else {
    std::fprintf(stderr, "pdltool: unknown query '%s'\n", what.c_str());
    return 2;
  }
  return 0;
}

int cmd_match(const char* path, const char* pattern) {
  pdl::Platform platform;
  if (load(path, platform) != 0) return 1;
  const pdl::MatchResult result = pdl::match(pattern, platform);
  if (result) {
    std::printf("MATCH (%zu binding(s))\n", result.bindings.size());
    return 0;
  }
  std::printf("NO MATCH: %s\n", result.reason.c_str());
  return 1;
}

int cmd_discover(bool with_gpus) {
  pdl::Platform platform =
      with_gpus
          ? pdl::discovery::make_gpgpu_platform(
                pdl::discovery::read_host_cpu(),
                pdl::discovery::read_host_cpu().physical_cores,
                {"GeForce GTX 480", "GeForce GTX 285"})
          : pdl::discovery::discover_host();
  std::printf("%s", pdl::serialize(platform).c_str());
  return 0;
}

int cmd_presets() {
  for (const auto& preset : {pdl::discovery::paper_platform_single(),
                             pdl::discovery::paper_platform_starpu_cpu(),
                             pdl::discovery::paper_platform_starpu_2gpu(),
                             pdl::discovery::cell_be_platform(),
                             pdl::discovery::hierarchical_hybrid_platform()}) {
    std::printf("<!-- preset: %s -->\n%s\n", preset.name().c_str(),
                pdl::serialize(preset).c_str());
  }
  return 0;
}

}  // namespace

int main(int raw_argc, char** raw_argv) {
  // PDL_METRICS provides the default; --metrics-out (anywhere on the
  // command line, "--metrics-out f" or "--metrics-out=f") overrides it.
  obs::init_from_env();
  std::string metrics_path = obs::env_metrics_path();
  // PDL_PERF_STORE provides the default; --perf-store overrides it (used by
  // the plan and profile subcommands).
  std::string perf_store_path = starvm::perf_store::env_store_path();
  std::vector<char*> args;
  for (int i = 0; i < raw_argc; ++i) {
    std::string flag = raw_argv[i];
    if (flag == "--metrics-out" && i + 1 < raw_argc) {
      metrics_path = raw_argv[++i];
      continue;
    }
    if (flag.rfind("--metrics-out=", 0) == 0) {
      metrics_path = flag.substr(std::strlen("--metrics-out="));
      continue;
    }
    if (flag == "--perf-store" && i + 1 < raw_argc) {
      perf_store_path = raw_argv[++i];
      continue;
    }
    if (flag.rfind("--perf-store=", 0) == 0) {
      perf_store_path = flag.substr(std::strlen("--perf-store="));
      continue;
    }
    args.push_back(raw_argv[i]);
  }
  const int argc = static_cast<int>(args.size());
  char** argv = args.data();
  if (!metrics_path.empty()) obs::set_metrics_enabled(true);
  // Write the snapshot on every exit path once the command has run.
  struct MetricsFlusher {
    std::string path;
    ~MetricsFlusher() {
      if (!path.empty() && !obs::write_metrics_file(path)) {
        std::fprintf(stderr, "pdltool: cannot write '%s'\n", path.c_str());
      }
    }
  } flusher{metrics_path};

  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "validate" && argc == 3) return cmd_validate(argv[2]);
  if (cmd == "lint" && argc == 3) return cmd_lint(argv[2]);
  if (cmd == "plan" && argc == 4) return cmd_plan(argv[2], argv[3], perf_store_path);
  if (cmd == "profile" && argc == 4) {
    return cmd_profile(argv[2], argv[3], perf_store_path);
  }
  if (cmd == "perf" && (argc == 4 || argc == 5)) {
    return cmd_perf(argv[2], argv[3], argc == 5 ? argv[4] : nullptr);
  }
  if (cmd == "query" && argc == 4) return cmd_query(argv[2], argv[3]);
  if (cmd == "match" && argc == 4) return cmd_match(argv[2], argv[3]);
  if (cmd == "discover") {
    return cmd_discover(argc >= 3 && std::strcmp(argv[2], "--gpus") == 0);
  }
  if (cmd == "presets") return cmd_presets();
  if (cmd == "path" && (argc == 5 || argc == 6)) {
    pdl::Platform platform;
    if (load(argv[2], platform) != 0) return 1;
    const std::size_t bytes =
        argc == 6 ? static_cast<std::size_t>(std::strtoull(argv[5], nullptr, 10))
                  : 1 << 20;
    const auto path = pdl::data_path(platform, argv[3], argv[4]);
    if (path.empty()) {
      std::printf("no path from '%s' to '%s'\n", argv[3], argv[4]);
      return 1;
    }
    for (const auto& hop : path) {
      std::printf("%s -> %s via %s\n", hop.from->id().c_str(), hop.to->id().c_str(),
                  hop.interconnect != nullptr ? hop.interconnect->type.c_str()
                                              : "control link");
    }
    if (auto seconds = pdl::data_path_seconds(platform, argv[3], argv[4], bytes)) {
      std::printf("modeled transfer of %zu bytes: %.3f us\n", bytes,
                  *seconds * 1e6);
    }
    return 0;
  }
  if (cmd == "diff" && argc == 4) {
    pdl::Platform old_platform, new_platform;
    if (load(argv[2], old_platform) != 0 || load(argv[3], new_platform) != 0) {
      return 1;
    }
    const auto entries = pdl::diff(old_platform, new_platform);
    std::printf("%s", pdl::to_string(entries).c_str());
    return entries.empty() ? 0 : 1;
  }
  if (cmd == "xsd") {
    // The derived XML Schema Definition (paper §III-B).
    std::printf("%s", pdl::export_xsd(pdl::builtin_registry()).c_str());
    return 0;
  }
  usage(argv[0]);
  return 2;
}
