// starmc — the DPOR interleaving explorer for the starvm engine
// (docs/MODEL_CHECKING.md).
//
//   starmc --graph <file> [options]
//
//   --graph <file>      task-graph fixture (graph_io.hpp text format)
//   --devices <n>       CPU devices of the simulated platform (default 2)
//   --scheduler <s>     heft|eager|ws (default heft)
//   --fault-plan <spec> deterministic fault plan (fault.hpp grammar);
//                       device-/history-dependent plans disable the
//                       serial-equivalence check automatically
//   --max-depth <n>     branch points considered per execution (default 256)
//   --budget <n>        engine-execution budget (default 20000)
//   --dpor=on|off       sleep-set partial-order reduction (default on)
//   --compare-naive     also run without reduction and report the ratio
//   --serial-check=on|off
//                       compare every terminal output against the
//                       canonical run (default on)
//   --trace-out <prefix>
//                       on a finding, replay the first counterexample and
//                       write <prefix>.decisions.json (replayable decision
//                       trace), <prefix>.jsonl and <prefix>.trace.json
//                       (flight recorder)
//
// Exit codes: 0 clean, 1 findings, 2 usage/load error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/graph_io.hpp"
#include "mc/explorer.hpp"
#include "mc/graph_program.hpp"
#include "mc/report.hpp"
#include "obs/env.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --graph <file> [--devices N] [--scheduler heft|eager|ws]\n"
      "          [--fault-plan SPEC] [--max-depth N] [--budget N]\n"
      "          [--dpor=on|off] [--serial-check=on|off] [--compare-naive]\n"
      "          [--trace-out PREFIX]\n",
      argv0);
}

bool parse_on_off(const std::string& value, bool* out) {
  if (value == "on") {
    *out = true;
    return true;
  }
  if (value == "off") {
    *out = false;
    return true;
  }
  return false;
}

void print_summary(const char* tag, const mc::Result& result) {
  std::printf(
      "%s: %zu engine runs, %zu terminal states, %zu branch points, "
      "%zu sleep-set pruned, %zu symmetry pruned%s\n",
      tag, result.runs, result.terminals, result.branch_points,
      result.sleep_pruned, result.symmetry_pruned,
      result.truncated ? " (budget truncated)" : "");
}

}  // namespace

int main(int argc, char** argv) {
  obs::init_from_env();
  std::string graph_path;
  std::string trace_out;
  mc::GraphProgramOptions program_options;
  mc::Options options;
  options.max_runs = 20000;
  bool compare_naive = false;
  bool serial_check_explicit = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "starmc: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--graph") {
      const char* v = value("--graph");
      if (v == nullptr) return 2;
      graph_path = v;
    } else if (arg.rfind("--graph=", 0) == 0) {
      graph_path = arg.substr(std::strlen("--graph="));
    } else if (arg == "--devices") {
      const char* v = value("--devices");
      if (v == nullptr) return 2;
      program_options.devices = std::atoi(v);
    } else if (arg == "--scheduler") {
      const char* v = value("--scheduler");
      if (v == nullptr) return 2;
      const std::string s = v;
      if (s == "heft") {
        program_options.scheduler = starvm::SchedulerKind::kHeft;
      } else if (s == "eager") {
        program_options.scheduler = starvm::SchedulerKind::kEager;
      } else if (s == "ws") {
        program_options.scheduler = starvm::SchedulerKind::kWorkStealing;
      } else {
        std::fprintf(stderr, "starmc: unknown scheduler '%s'\n", v);
        return 2;
      }
    } else if (arg == "--fault-plan") {
      const char* v = value("--fault-plan");
      if (v == nullptr) return 2;
      program_options.fault_plan = v;
    } else if (arg.rfind("--fault-plan=", 0) == 0) {
      program_options.fault_plan = arg.substr(std::strlen("--fault-plan="));
    } else if (arg == "--max-depth") {
      const char* v = value("--max-depth");
      if (v == nullptr) return 2;
      options.max_depth = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--budget") {
      const char* v = value("--budget");
      if (v == nullptr) return 2;
      options.max_runs = static_cast<std::size_t>(std::atoll(v));
    } else if (arg.rfind("--dpor=", 0) == 0) {
      if (!parse_on_off(arg.substr(std::strlen("--dpor=")), &options.dpor)) {
        std::fprintf(stderr, "starmc: --dpor takes on|off\n");
        return 2;
      }
    } else if (arg.rfind("--serial-check=", 0) == 0) {
      bool on = true;
      if (!parse_on_off(arg.substr(std::strlen("--serial-check=")), &on)) {
        std::fprintf(stderr, "starmc: --serial-check takes on|off\n");
        return 2;
      }
      options.check_serial = on;
      serial_check_explicit = true;
    } else if (arg == "--compare-naive") {
      compare_naive = true;
    } else if (arg == "--trace-out") {
      const char* v = value("--trace-out");
      if (v == nullptr) return 2;
      trace_out = v;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    } else {
      std::fprintf(stderr, "starmc: unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (graph_path.empty() || program_options.devices < 1) {
    usage(argv[0]);
    return 2;
  }

  auto graph = analysis::load_graph_file(graph_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "starmc: %s\n", graph.error().str().c_str());
    return 2;
  }

  if (!program_options.fault_plan.empty() && !serial_check_explicit &&
      mc::fault_plan_is_schedule_sensitive(program_options.fault_plan)) {
    std::printf(
        "note: fault plan '%s' can fire schedule-dependently; disabling the "
        "serial-equivalence check\n",
        program_options.fault_plan.c_str());
    options.check_serial = false;
  }

  auto program = mc::make_graph_program(graph.value(), program_options);
  if (!program.ok()) {
    std::fprintf(stderr, "starmc: %s\n", program.error().str().c_str());
    return 2;
  }

  mc::Explorer explorer(program.value(), options);
  const mc::Result result = explorer.explore();
  print_summary(options.dpor ? "dpor" : "naive", result);

  if (compare_naive) {
    mc::Options naive_options = options;
    naive_options.dpor = !options.dpor;
    naive_options.replay_check = false;
    mc::Explorer other(program.value(), naive_options);
    const mc::Result naive = other.explore();
    print_summary(naive_options.dpor ? "dpor" : "naive", naive);
    const mc::Result& reduced = options.dpor ? result : naive;
    const mc::Result& full = options.dpor ? naive : result;
    if (reduced.runs > 0) {
      std::printf("reduction: %.1fx fewer engine runs (%zu -> %zu)\n",
                  static_cast<double>(full.runs) /
                      static_cast<double>(reduced.runs),
                  full.runs, reduced.runs);
    }
  }

  if (result.findings.empty()) {
    std::printf("no A6xx findings: %zu terminal state(s) satisfy all "
                "invariants\n",
                result.terminals);
    return 0;
  }

  for (const mc::Finding& finding : result.findings) {
    std::printf("%s: %s\n  replay trace %s (%zu of the explored terminal "
                "states)\n",
                finding.rule.c_str(), finding.message.c_str(),
                mc::format_trace(finding.trace).c_str(), finding.occurrences);
  }
  if (!trace_out.empty()) {
    const mc::RunOutcome replayed =
        explorer.replay(result.findings.front().trace, trace_out);
    const std::string path = trace_out + ".decisions.json";
    std::ofstream out(path);
    if (out) {
      out << mc::trace_to_json(replayed);
      std::printf("counterexample written: %s, %s.jsonl, %s.trace.json\n",
                  path.c_str(), trace_out.c_str(), trace_out.c_str());
    } else {
      std::fprintf(stderr, "starmc: cannot write '%s'\n", path.c_str());
    }
  }
  return 1;
}
