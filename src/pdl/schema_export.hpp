// XSD generation (paper §III-B: "Starting from the hierarchical machine
// model, we derive an XML Schema Definition (XSD) capable of being
// extended with entity descriptors ...").
//
// Emits an XML Schema document describing the base PDL element structure
// (Platform/Master/Hybrid/Worker, PUDescriptor/MRDescriptor/ICDescriptor,
// Property with fixed + xsi:type) plus, for every registered subschema,
// a derived property type with its documented vocabulary and version —
// the machine-readable contract other tools can validate against.
#pragma once

#include <string>

#include "pdl/extension.hpp"

namespace pdl {

/// Render the XSD for the base schema and all subschemas in `registry`.
std::string export_xsd(const SchemaRegistry& registry);

}  // namespace pdl
