// Canonical property names used across the toolchain.
//
// The PDL itself is an open key/value space (paper §III-B); these constants
// are the vocabulary our tools (discovery, Cascabel, starvm bridge) agree
// on, mirroring the names used in the paper's listings.
#pragma once

#include <cstdint>
#include <optional>

namespace pdl {
struct Interconnect;
struct MemoryRegion;
class ProcessingUnit;
}  // namespace pdl

namespace pdl::props {

// --- Base PU properties (paper Listing 1) ---------------------------------
inline constexpr const char* kArchitecture = "ARCHITECTURE";  // "x86", "gpu", "spe", ...
inline constexpr const char* kVendor = "VENDOR";
inline constexpr const char* kModel = "MODEL";
inline constexpr const char* kCores = "CORES";                    // physical cores in this PU
inline constexpr const char* kFrequencyMhz = "FREQUENCY_MHZ";
inline constexpr const char* kPeakGflops = "PEAK_GFLOPS";         // double-precision peak
inline constexpr const char* kSustainedGflops = "SUSTAINED_GFLOPS";  // measured/modeled DGEMM rate
inline constexpr const char* kMeasuredGflops = "MEASURED_GFLOPS";    // runtime feedback (unfixed)
inline constexpr const char* kCompiler = "COMPILER";              // toolchain for this PU
inline constexpr const char* kRuntimeLibrary = "RUNTIME_LIBRARY"; // e.g. "starvm", "starpu"

// --- Accuracy properties (optional, any PU; inherited downward) -----------
// Unit roundoff of the PU's native arithmetic (2^-53 for IEEE double,
// 2^-24 for single). The A7xx analysis floors every rounding model's
// epsilon to the platform's largest declared ACCURACY — a program bound
// for an fp32-native accelerator is bounded by fp32 arithmetic no matter
// what its kernels claim.
inline constexpr const char* kAccuracy = "ACCURACY";

// --- Reliability properties (optional, any PU; inherited downward) --------
inline constexpr const char* kMaxRetries = "MAX_RETRIES";  // retry budget for tasks failing on this PU
inline constexpr const char* kMtbfHours = "MTBF_HOURS";    // declared mean time between failures

// --- MemoryRegion properties ----------------------------------------------
inline constexpr const char* kSize = "SIZE";            // value + unit attribute
inline constexpr const char* kBandwidthGBs = "BANDWIDTH_GB_S";
inline constexpr const char* kLatencyNs = "LATENCY_NS";
inline constexpr const char* kShared = "SHARED";        // "true"/"false"

// --- Interconnect properties ----------------------------------------------
inline constexpr const char* kIcBandwidthGBs = "BANDWIDTH_GB_S";
inline constexpr const char* kIcLatencyUs = "LATENCY_US";

// --- OpenCL extension subschema (paper Listing 2, namespace "ocl") --------
inline constexpr const char* kOclNamespace = "ocl";
inline constexpr const char* kOclPropertyType = "ocl:oclDevicePropertyType";
inline constexpr const char* kOclDeviceName = "DEVICE_NAME";
inline constexpr const char* kOclMaxComputeUnits = "MAX_COMPUTE_UNITS";
inline constexpr const char* kOclMaxWorkItemDimensions = "MAX_WORK_ITEM_DIMENSIONS";
inline constexpr const char* kOclGlobalMemSize = "GLOBAL_MEM_SIZE";
inline constexpr const char* kOclLocalMemSize = "LOCAL_MEM_SIZE";
inline constexpr const char* kOclMaxClockFrequency = "MAX_CLOCK_FREQUENCY";

// --- CUDA extension subschema (namespace "cuda") ---------------------------
inline constexpr const char* kCudaNamespace = "cuda";
inline constexpr const char* kCudaPropertyType = "cuda:cudaDevicePropertyType";
inline constexpr const char* kCudaComputeCapability = "COMPUTE_CAPABILITY";
inline constexpr const char* kCudaMultiprocessors = "MULTIPROCESSOR_COUNT";

// --- Cell B.E. extension subschema (namespace "cell") ----------------------
inline constexpr const char* kCellNamespace = "cell";
inline constexpr const char* kCellPropertyType = "cell:cellPUPropertyType";
inline constexpr const char* kCellLocalStoreSize = "LOCAL_STORE_SIZE";

// --- Architecture values ----------------------------------------------------
inline constexpr const char* kArchX86 = "x86";
inline constexpr const char* kArchGpu = "gpu";
inline constexpr const char* kArchSpe = "spe";   // Cell synergistic PU
inline constexpr const char* kArchPpe = "ppe";   // Cell power PU

// --- Typed accessors ---------------------------------------------------------
// One implementation of the lookup conventions every consumer (starvm bridge,
// capacity analyzer, Cascabel) previously re-derived by hand.

/// Declared capacity of a MemoryRegion: its SIZE property normalized to
/// bytes. nullopt when absent, non-numeric, or the unit is unknown.
std::optional<std::uint64_t> memory_capacity_bytes(const MemoryRegion& mr);

/// Capacity of a PU's directly attached memory: the first MemoryRegion with
/// a usable SIZE, in declaration order. nullopt when no region declares one.
std::optional<std::uint64_t> memory_capacity_bytes(const ProcessingUnit& pu);

/// Effective compute rate of a PU in GFLOP/s with the toolchain-wide
/// precedence: MEASURED_GFLOPS (runtime feedback) beats SUSTAINED_GFLOPS
/// beats PEAK_GFLOPS * `peak_fraction` beats `fallback`. Properties are
/// resolved with upward inheritance (pdl::resolve_property) so rates can
/// be declared once on a controller.
double sustained_gflops(const ProcessingUnit& pu, double peak_fraction,
                        double fallback);

/// BANDWIDTH_GB_S of an Interconnect; nullopt when absent or non-numeric.
std::optional<double> link_bandwidth_gbs(const Interconnect& ic);

/// LATENCY_US of an Interconnect; nullopt when absent or non-numeric.
std::optional<double> link_latency_us(const Interconnect& ic);

}  // namespace pdl::props
