#include "pdl/model.hpp"

#include "util/string_util.hpp"

namespace pdl {

std::string_view to_string(PuKind kind) {
  switch (kind) {
    case PuKind::kMaster: return "Master";
    case PuKind::kHybrid: return "Hybrid";
    case PuKind::kWorker: return "Worker";
  }
  return "?";
}

std::optional<PuKind> pu_kind_from_string(std::string_view name) {
  if (name == "Master") return PuKind::kMaster;
  if (name == "Hybrid") return PuKind::kHybrid;
  if (name == "Worker") return PuKind::kWorker;
  return std::nullopt;
}

std::optional<std::int64_t> Property::as_int() const { return util::parse_int(value); }

std::optional<double> Property::as_double() const { return util::parse_double(value); }

std::optional<std::int64_t> Property::as_bytes() const {
  auto n = util::parse_int(value);
  if (!n) return std::nullopt;
  if (unit.empty() || util::iequals(unit, "B")) return *n;
  if (util::iequals(unit, "kB") || util::iequals(unit, "KiB")) return *n * 1024;
  if (util::iequals(unit, "MB") || util::iequals(unit, "MiB")) return *n * 1024 * 1024;
  if (util::iequals(unit, "GB") || util::iequals(unit, "GiB")) {
    return *n * 1024 * 1024 * 1024;
  }
  return std::nullopt;
}

const Property* Descriptor::find(std::string_view name) const {
  for (const auto& p : properties_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

Property* Descriptor::find(std::string_view name) {
  return const_cast<Property*>(static_cast<const Descriptor*>(this)->find(name));
}

std::string Descriptor::get(std::string_view name) const { return get_or(name, {}); }

std::string Descriptor::get_or(std::string_view name, std::string fallback) const {
  const Property* p = find(name);
  return p != nullptr ? p->value : std::move(fallback);
}

std::optional<std::int64_t> Descriptor::get_int(std::string_view name) const {
  const Property* p = find(name);
  return p != nullptr ? p->as_int() : std::nullopt;
}

std::optional<double> Descriptor::get_double(std::string_view name) const {
  const Property* p = find(name);
  return p != nullptr ? p->as_double() : std::nullopt;
}

Property& Descriptor::add(std::string name, std::string value) {
  properties_.push_back(Property{std::move(name), std::move(value), {}, true, {}});
  return properties_.back();
}

Property& Descriptor::add(Property property) {
  properties_.push_back(std::move(property));
  return properties_.back();
}

Property& Descriptor::set(std::string_view name, std::string_view value) {
  if (Property* p = find(name)) {
    p->value = std::string(value);
    return *p;
  }
  return add(std::string(name), std::string(value));
}

std::size_t Descriptor::remove(std::string_view name) {
  std::size_t removed = 0;
  for (auto it = properties_.begin(); it != properties_.end();) {
    if (it->name == name) {
      it = properties_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

const MemoryRegion* ProcessingUnit::find_memory_region(std::string_view mr_id) const {
  for (const auto& mr : memory_regions_) {
    if (mr.id == mr_id) return &mr;
  }
  return nullptr;
}

bool ProcessingUnit::in_group(std::string_view group) const {
  for (const auto& g : logic_groups_) {
    if (g == group) return true;
  }
  return false;
}

ProcessingUnit* ProcessingUnit::add_child(std::unique_ptr<ProcessingUnit> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

ProcessingUnit* ProcessingUnit::add_child(PuKind kind, std::string child_id, int quantity) {
  return add_child(std::make_unique<ProcessingUnit>(kind, std::move(child_id), quantity));
}

int ProcessingUnit::depth() const {
  int d = 0;
  for (const ProcessingUnit* p = parent_; p != nullptr; p = p->parent_) ++d;
  return d;
}

std::string ProcessingUnit::path() const {
  if (parent_ == nullptr) return id_;
  return parent_->path() + "/" + id_;
}

ProcessingUnit* Platform::add_master(std::unique_ptr<ProcessingUnit> master) {
  masters_.push_back(std::move(master));
  return masters_.back().get();
}

ProcessingUnit* Platform::add_master(std::string id, int quantity) {
  return add_master(
      std::make_unique<ProcessingUnit>(PuKind::kMaster, std::move(id), quantity));
}

void Platform::declare_namespace(std::string prefix, std::string uri) {
  for (auto& [p, u] : namespaces_) {
    if (p == prefix) {
      u = std::move(uri);
      return;
    }
  }
  namespaces_.emplace_back(std::move(prefix), std::move(uri));
}

std::unique_ptr<ProcessingUnit> clone_pu(const ProcessingUnit& pu) {
  auto copy = std::make_unique<ProcessingUnit>(pu.kind(), pu.id(), pu.quantity());
  copy->descriptor() = pu.descriptor();
  copy->memory_regions() = pu.memory_regions();
  copy->interconnects() = pu.interconnects();
  copy->logic_groups() = pu.logic_groups();
  copy->set_loc(pu.loc());
  for (const auto& child : pu.children()) {
    copy->add_child(clone_pu(*child));
  }
  return copy;
}

Platform Platform::clone() const {
  Platform copy(name_);
  copy.schema_version_ = schema_version_;
  copy.source_name_ = source_name_;
  copy.namespaces_ = namespaces_;
  for (const auto& m : masters_) {
    copy.add_master(clone_pu(*m));
  }
  return copy;
}

}  // namespace pdl
