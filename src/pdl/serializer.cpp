#include "pdl/serializer.hpp"

#include "xml/writer.hpp"

namespace pdl {

namespace {

void write_property(xml::Element& parent, const Property& prop) {
  xml::Element* e = parent.append_element("Property");
  e->set_attribute("fixed", prop.fixed ? "true" : "false");

  // Extension-typed properties carry their subschema prefix on the
  // name/value children, matching paper Listing 2.
  std::string prefix;
  if (!prop.xsi_type.empty()) {
    e->set_attribute("xsi:type", prop.xsi_type);
    const auto colon = prop.xsi_type.find(':');
    if (colon != std::string::npos) prefix = prop.xsi_type.substr(0, colon) + ":";
  }
  e->append_element(prefix + "name")->append_text(prop.name);
  xml::Element* value_el = e->append_element(prefix + "value");
  if (!prop.unit.empty()) value_el->set_attribute("unit", prop.unit);
  value_el->append_text(prop.value);
}

void write_descriptor(xml::Element& parent, const Descriptor& descriptor,
                      const std::string& element_name) {
  if (descriptor.empty()) return;
  xml::Element* e = parent.append_element(element_name);
  for (const auto& prop : descriptor.properties()) {
    write_property(*e, prop);
  }
}

/// Write a PU's attributes and content into an existing element (which may
/// be the document root for the bare-Master form).
void fill_pu(xml::Element& e, const ProcessingUnit& pu) {
  e.set_attribute("id", pu.id());
  e.set_attribute("quantity", std::to_string(pu.quantity()));
  write_descriptor(e, pu.descriptor(), "PUDescriptor");
  for (const auto& group : pu.logic_groups()) {
    e.append_element("LogicGroupAttribute")->set_attribute("group", group);
  }
  for (const auto& mr : pu.memory_regions()) {
    xml::Element* m = e.append_element("MemoryRegion");
    m->set_attribute("id", mr.id);
    write_descriptor(*m, mr.descriptor, "MRDescriptor");
  }
  for (const auto& child : pu.children()) {
    xml::Element* c = e.append_element(std::string(to_string(child->kind())));
    fill_pu(*c, *child);
  }
  // Interconnects last, matching the paper's listing order.
  for (const auto& ic : pu.interconnects()) {
    xml::Element* i = e.append_element("Interconnect");
    i->set_attribute("type", ic.type);
    i->set_attribute("from", ic.from);
    i->set_attribute("to", ic.to);
    i->set_attribute("scheme", ic.scheme);
    write_descriptor(*i, ic.descriptor, "ICDescriptor");
  }
}

void write_namespaces(xml::Element& root, const Platform& platform) {
  bool has_xsi = false;
  for (const auto& [prefix, uri] : platform.namespaces()) {
    root.set_attribute(prefix.empty() ? "xmlns" : "xmlns:" + prefix, uri);
    if (prefix == "xsi") has_xsi = true;
  }
  // Extension-typed properties need xsi; declare it unconditionally so
  // generated documents are always self-consistent.
  if (!has_xsi) {
    root.set_attribute("xmlns:xsi", "http://www.w3.org/2001/XMLSchema-instance");
  }
}

}  // namespace

xml::Document to_xml(const Platform& platform, const SerializeOptions& options) {
  xml::Document doc;
  const bool bare = options.bare_master_root && platform.masters().size() == 1 &&
                    platform.name().empty();
  if (bare) {
    xml::Element* root = doc.create_root("Master");
    write_namespaces(*root, platform);
    fill_pu(*root, *platform.masters().front());
    return doc;
  }

  xml::Element* root = doc.create_root("Platform");
  if (!platform.name().empty()) root->set_attribute("name", platform.name());
  root->set_attribute("version", platform.schema_version());
  write_namespaces(*root, platform);
  for (const auto& master : platform.masters()) {
    xml::Element* m = root->append_element("Master");
    fill_pu(*m, *master);
  }
  return doc;
}

std::string serialize(const Platform& platform, const SerializeOptions& options) {
  xml::WriteOptions wo;
  wo.pretty = options.pretty;
  return xml::write(to_xml(platform, options), wo);
}

}  // namespace pdl
