// Diagnostics shared by the PDL structural validator, the extension-schema
// checker, the Cascabel front-end and the cross-layer static analyzer
// (src/analysis): tools report problems with severity, a stable rule id and
// a real source location instead of aborting (PDL files and annotated
// programs are user input).
#pragma once

#include <algorithm>
#include <string>
#include <vector>

namespace pdl {

enum class Severity { kInfo, kWarning, kError };

inline const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "?";
}

/// A position in an input document ("file:line:col", 1-based). Default
/// (line 0) means "no location known" — e.g. models built in memory.
struct SourceLoc {
  std::string file;
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }

  /// "file:line:col" (omitting the column when unknown); "" when invalid.
  std::string str() const {
    if (!valid()) return {};
    std::string out = file.empty() ? "<input>" : file;
    out += ":" + std::to_string(line);
    if (column > 0) out += ":" + std::to_string(column);
    return out;
  }

  friend bool operator==(const SourceLoc& a, const SourceLoc& b) {
    return a.line == b.line && a.column == b.column && a.file == b.file;
  }
};

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string message;
  std::string where;  ///< PU id path or similar logical locator.
  /// Stable machine-readable rule id ("V6", "A301-dead-variant", ...).
  /// Empty for ad-hoc diagnostics (e.g. parser notes).
  std::string rule;
  /// Real source position, when the producer could thread one through.
  SourceLoc loc;

  std::string str() const {
    std::string out;
    if (loc.valid()) out += loc.str() + ": ";
    out += std::string(to_string(severity)) + ": " + message;
    if (!rule.empty()) out += " [" + rule + "]";
    if (!where.empty()) out += " [" + where + "]";
    return out;
  }
};

using Diagnostics = std::vector<Diagnostic>;

inline bool has_errors(const Diagnostics& diags) {
  for (const auto& d : diags) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

inline std::size_t count_severity(const Diagnostics& diags, Severity severity) {
  std::size_t n = 0;
  for (const auto& d : diags) {
    if (d.severity == severity) ++n;
  }
  return n;
}

inline void add_error(Diagnostics& diags, std::string message, std::string where = {}) {
  diags.push_back({Severity::kError, std::move(message), std::move(where), {}, {}});
}

inline void add_warning(Diagnostics& diags, std::string message, std::string where = {}) {
  diags.push_back({Severity::kWarning, std::move(message), std::move(where), {}, {}});
}

inline void add_info(Diagnostics& diags, std::string message, std::string where = {}) {
  diags.push_back({Severity::kInfo, std::move(message), std::move(where), {}, {}});
}

/// The general form rule-based checkers use: severity + rule id + location.
inline Diagnostic& add_finding(Diagnostics& diags, Severity severity, std::string rule,
                               std::string message, SourceLoc loc = {},
                               std::string where = {}) {
  diags.push_back(
      {severity, std::move(message), std::move(where), std::move(rule), std::move(loc)});
  return diags.back();
}

/// Total order used for stable tool output: by location (file, line, col),
/// then severity (errors first), rule, message, logical locator.
inline bool diagnostic_less(const Diagnostic& a, const Diagnostic& b) {
  if (a.loc.file != b.loc.file) return a.loc.file < b.loc.file;
  if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
  if (a.loc.column != b.loc.column) return a.loc.column < b.loc.column;
  if (a.severity != b.severity) {
    return static_cast<int>(a.severity) > static_cast<int>(b.severity);
  }
  if (a.rule != b.rule) return a.rule < b.rule;
  if (a.message != b.message) return a.message < b.message;
  return a.where < b.where;
}

/// Sort and drop exact duplicates so tool output and CI golden files are
/// byte-stable across runs regardless of check order. Every CLI tool calls
/// this before printing.
inline void normalize(Diagnostics& diags) {
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return diagnostic_less(a, b);
                   });
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return a.severity == b.severity && a.rule == b.rule &&
                                   a.message == b.message && a.where == b.where &&
                                   a.loc == b.loc;
                          }),
              diags.end());
}

}  // namespace pdl
