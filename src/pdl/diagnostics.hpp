// Diagnostics shared by the PDL structural validator, the extension-schema
// checker, and the Cascabel front-end: tools report problems with severity
// and location instead of aborting (PDL files are user input).
#pragma once

#include <string>
#include <vector>

namespace pdl {

enum class Severity { kInfo, kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string message;
  std::string where;  ///< "file:line:col", PU id path, or similar locator.

  std::string str() const {
    const char* tag = severity == Severity::kError     ? "error"
                      : severity == Severity::kWarning ? "warning"
                                                       : "info";
    std::string out = std::string(tag) + ": " + message;
    if (!where.empty()) out += " [" + where + "]";
    return out;
  }
};

using Diagnostics = std::vector<Diagnostic>;

inline bool has_errors(const Diagnostics& diags) {
  for (const auto& d : diags) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

inline std::size_t count_severity(const Diagnostics& diags, Severity severity) {
  std::size_t n = 0;
  for (const auto& d : diags) {
    if (d.severity == severity) ++n;
  }
  return n;
}

inline void add_error(Diagnostics& diags, std::string message, std::string where = {}) {
  diags.push_back({Severity::kError, std::move(message), std::move(where)});
}

inline void add_warning(Diagnostics& diags, std::string message, std::string where = {}) {
  diags.push_back({Severity::kWarning, std::move(message), std::move(where)});
}

inline void add_info(Diagnostics& diags, std::string message, std::string where = {}) {
  diags.push_back({Severity::kInfo, std::move(message), std::move(where)});
}

}  // namespace pdl
