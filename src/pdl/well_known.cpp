#include "pdl/well_known.hpp"

#include "pdl/model.hpp"
#include "pdl/query.hpp"

namespace pdl::props {

std::optional<std::uint64_t> memory_capacity_bytes(const MemoryRegion& mr) {
  if (const Property* size = mr.descriptor.find(kSize)) {
    if (auto bytes = size->as_bytes(); bytes && *bytes >= 0) {
      return static_cast<std::uint64_t>(*bytes);
    }
  }
  return std::nullopt;
}

std::optional<std::uint64_t> memory_capacity_bytes(const ProcessingUnit& pu) {
  for (const MemoryRegion& mr : pu.memory_regions()) {
    if (auto bytes = memory_capacity_bytes(mr)) return bytes;
  }
  return std::nullopt;
}

double sustained_gflops(const ProcessingUnit& pu, double peak_fraction,
                        double fallback) {
  if (const Property* p = resolve_property(pu, kMeasuredGflops)) {
    if (auto v = p->as_double()) return *v;
  }
  if (const Property* p = resolve_property(pu, kSustainedGflops)) {
    if (auto v = p->as_double()) return *v;
  }
  if (const Property* p = resolve_property(pu, kPeakGflops)) {
    if (auto v = p->as_double()) return *v * peak_fraction;
  }
  return fallback;
}

std::optional<double> link_bandwidth_gbs(const Interconnect& ic) {
  return ic.descriptor.get_double(kIcBandwidthGBs);
}

std::optional<double> link_latency_us(const Interconnect& ic) {
  return ic.descriptor.get_double(kIcLatencyUs);
}

}  // namespace pdl::props
