#include "pdl/validate.hpp"

#include <functional>
#include <set>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pdl {

namespace {

struct Checker {
  const Platform& platform;
  Diagnostics& diags;
  std::set<std::string> pu_ids;
  std::set<std::string> mr_ids;

  void report(Severity severity, const char* rule, std::string message,
              SourceLoc loc, std::string where) {
    add_finding(diags, severity, rule, std::move(message), std::move(loc),
                std::move(where));
  }

  /// A descriptor's location falls back to its owner's when the property
  /// itself was built in memory.
  static SourceLoc prop_loc(const Property& p, const SourceLoc& owner) {
    return p.loc.valid() ? p.loc : owner;
  }

  void check_descriptor(const Descriptor& d, const SourceLoc& loc,
                        const std::string& where) {
    std::set<std::string> seen;
    for (const auto& p : d.properties()) {
      if (p.name.empty()) {
        report(Severity::kWarning, "V11", "property with empty name",
               prop_loc(p, loc), where);
        continue;
      }
      if (!seen.insert(p.name).second) {
        report(Severity::kWarning, "V11", "duplicate property '" + p.name + "'",
               prop_loc(p, loc), where);
      }
      if (p.fixed && p.value.empty()) {
        report(Severity::kWarning, "V12",
               "fixed property '" + p.name + "' has no value", prop_loc(p, loc),
               where);
      }
    }
  }

  void check_pu(const ProcessingUnit& pu) {
    const std::string where = pu.path();
    const SourceLoc& loc = pu.loc();

    // V6: unique ids.
    if (!pu.id().empty() && !pu_ids.insert(pu.id()).second) {
      report(Severity::kError, "V6", "duplicate PU id '" + pu.id() + "'", loc, where);
    }
    if (pu.id().empty()) {
      report(Severity::kError, "V6", "PU without id", loc, where);
    }

    // V7: quantity.
    if (pu.quantity() < 1) {
      report(Severity::kError, "V7", "PU quantity must be >= 1", loc, where);
    }

    // V2/V3/V5: position rules per kind.
    const bool top_level = pu.parent() == nullptr;
    switch (pu.kind()) {
      case PuKind::kMaster:
        if (!top_level) {
          report(Severity::kError, "V2", "Master '" + pu.id() + "' below the top level",
                 loc, where);
        }
        break;
      case PuKind::kWorker:
        if (top_level) {
          report(Severity::kError, "V4",
                 "Worker '" + pu.id() + "' is uncontrolled at top level", loc, where);
        }
        if (!pu.is_leaf()) {
          report(Severity::kError, "V3", "Worker '" + pu.id() + "' controls other PUs",
                 loc, where);
        }
        break;
      case PuKind::kHybrid:
        if (top_level) {
          report(Severity::kError, "V5",
                 "Hybrid '" + pu.id() + "' is uncontrolled at top level", loc, where);
        }
        if (pu.is_leaf()) {
          report(Severity::kWarning, "V5",
                 "Hybrid '" + pu.id() + "' controls nothing; use Worker instead", loc,
                 where);
        }
        break;
    }

    check_descriptor(pu.descriptor(), loc, where);

    // V10: memory region id uniqueness.
    for (const auto& mr : pu.memory_regions()) {
      const SourceLoc mr_loc = mr.loc.valid() ? mr.loc : loc;
      if (!mr.id.empty() && !mr_ids.insert(mr.id).second) {
        report(Severity::kWarning, "V10", "duplicate MemoryRegion id '" + mr.id + "'",
               mr_loc, where);
      }
      check_descriptor(mr.descriptor, mr_loc, where + "/MR:" + mr.id);
    }

    for (const auto& child : pu.children()) {
      check_pu(*child);
    }
  }

  /// Interconnects are checked after the id set is complete (V8/V9).
  void check_interconnects(const ProcessingUnit& pu) {
    const std::string where = pu.path();
    for (const auto& ic : pu.interconnects()) {
      const SourceLoc ic_loc = ic.loc.valid() ? ic.loc : pu.loc();
      for (const std::string* endpoint : {&ic.from, &ic.to}) {
        if (endpoint->empty() || pu_ids.count(*endpoint) == 0) {
          report(Severity::kError, "V8",
                 "interconnect endpoint '" + *endpoint + "' is not a known PU id",
                 ic_loc, where);
        }
      }
      // V9: the declaring PU should be involved, directly or via a descendant.
      const auto in_scope = [&](const std::string& id) {
        std::function<bool(const ProcessingUnit&)> walk =
            [&](const ProcessingUnit& node) {
              if (node.id() == id) return true;
              for (const auto& c : node.children()) {
                if (walk(*c)) return true;
              }
              return false;
            };
        return walk(pu);
      };
      if (!ic.from.empty() && !ic.to.empty() && !in_scope(ic.from) && !in_scope(ic.to)) {
        report(Severity::kWarning, "V9",
               "interconnect " + ic.from + "->" + ic.to +
                   " does not involve the declaring PU's scope",
               ic_loc, where);
      }
      check_descriptor(ic.descriptor, ic_loc, where + "/IC:" + ic.from + "->" + ic.to);
    }
    for (const auto& child : pu.children()) {
      check_interconnects(*child);
    }
  }
};

}  // namespace

bool validate(const Platform& platform, Diagnostics& diags) {
  obs::Span span("pdl.validate", platform.name());
  static obs::Counter& validations = obs::counter("pdl.validations");
  static obs::Counter& diag_errors = obs::counter("pdl.diags_error");
  static obs::Counter& diag_warnings = obs::counter("pdl.diags_warning");
  const std::size_t errors_before = count_severity(diags, Severity::kError);
  const std::size_t warnings_before = count_severity(diags, Severity::kWarning);
  Checker checker{platform, diags, {}, {}};

  // V1.
  if (platform.masters().empty()) {
    add_finding(diags, Severity::kError, "V1",
                "platform has no Master processing unit",
                SourceLoc{platform.source_name(), 1, 1});
  }
  for (const auto& master : platform.masters()) {
    checker.check_pu(*master);
  }
  for (const auto& master : platform.masters()) {
    checker.check_interconnects(*master);
  }
  validations.inc();
  diag_errors.inc(count_severity(diags, Severity::kError) - errors_before);
  diag_warnings.inc(count_severity(diags, Severity::kWarning) - warnings_before);
  return count_severity(diags, Severity::kError) == errors_before;
}

bool is_valid(const Platform& platform) {
  Diagnostics diags;
  return validate(platform, diags);
}

}  // namespace pdl
