#include "pdl/validate.hpp"

#include <functional>
#include <set>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pdl {

namespace {

struct Checker {
  const Platform& platform;
  Diagnostics& diags;
  std::set<std::string> pu_ids;
  std::set<std::string> mr_ids;

  void check_descriptor(const Descriptor& d, const std::string& where) {
    std::set<std::string> seen;
    for (const auto& p : d.properties()) {
      if (p.name.empty()) {
        add_warning(diags, "property with empty name (V11)", where);
        continue;
      }
      if (!seen.insert(p.name).second) {
        add_warning(diags, "duplicate property '" + p.name + "' (V11)", where);
      }
      if (p.fixed && p.value.empty()) {
        add_warning(diags, "fixed property '" + p.name + "' has no value (V12)", where);
      }
    }
  }

  void check_pu(const ProcessingUnit& pu) {
    const std::string where = pu.path();

    // V6: unique ids.
    if (!pu.id().empty() && !pu_ids.insert(pu.id()).second) {
      add_error(diags, "duplicate PU id '" + pu.id() + "' (V6)", where);
    }
    if (pu.id().empty()) {
      add_error(diags, "PU without id (V6)", where);
    }

    // V7: quantity.
    if (pu.quantity() < 1) {
      add_error(diags, "PU quantity must be >= 1 (V7)", where);
    }

    // V2/V3/V5: position rules per kind.
    const bool top_level = pu.parent() == nullptr;
    switch (pu.kind()) {
      case PuKind::kMaster:
        if (!top_level) {
          add_error(diags, "Master '" + pu.id() + "' below the top level (V2)", where);
        }
        break;
      case PuKind::kWorker:
        if (top_level) {
          add_error(diags, "Worker '" + pu.id() + "' is uncontrolled at top level (V4)",
                    where);
        }
        if (!pu.is_leaf()) {
          add_error(diags, "Worker '" + pu.id() + "' controls other PUs (V3)", where);
        }
        break;
      case PuKind::kHybrid:
        if (top_level) {
          add_error(diags, "Hybrid '" + pu.id() + "' is uncontrolled at top level (V5)",
                    where);
        }
        if (pu.is_leaf()) {
          add_warning(diags,
                      "Hybrid '" + pu.id() + "' controls nothing; use Worker instead (V5)",
                      where);
        }
        break;
    }

    check_descriptor(pu.descriptor(), where);

    // V10: memory region id uniqueness.
    for (const auto& mr : pu.memory_regions()) {
      if (!mr.id.empty() && !mr_ids.insert(mr.id).second) {
        add_warning(diags, "duplicate MemoryRegion id '" + mr.id + "' (V10)", where);
      }
      check_descriptor(mr.descriptor, where + "/MR:" + mr.id);
    }

    for (const auto& child : pu.children()) {
      check_pu(*child);
    }
  }

  /// Interconnects are checked after the id set is complete (V8/V9).
  void check_interconnects(const ProcessingUnit& pu) {
    const std::string where = pu.path();
    for (const auto& ic : pu.interconnects()) {
      for (const std::string* endpoint : {&ic.from, &ic.to}) {
        if (endpoint->empty() || pu_ids.count(*endpoint) == 0) {
          add_error(diags,
                    "interconnect endpoint '" + *endpoint + "' is not a known PU id (V8)",
                    where);
        }
      }
      // V9: the declaring PU should be involved, directly or via a descendant.
      const auto in_scope = [&](const std::string& id) {
        std::function<bool(const ProcessingUnit&)> walk =
            [&](const ProcessingUnit& node) {
              if (node.id() == id) return true;
              for (const auto& c : node.children()) {
                if (walk(*c)) return true;
              }
              return false;
            };
        return walk(pu);
      };
      if (!ic.from.empty() && !ic.to.empty() && !in_scope(ic.from) && !in_scope(ic.to)) {
        add_warning(diags,
                    "interconnect " + ic.from + "->" + ic.to +
                        " does not involve the declaring PU's scope (V9)",
                    where);
      }
      check_descriptor(ic.descriptor, where + "/IC:" + ic.from + "->" + ic.to);
    }
    for (const auto& child : pu.children()) {
      check_interconnects(*child);
    }
  }
};

}  // namespace

bool validate(const Platform& platform, Diagnostics& diags) {
  obs::Span span("pdl.validate", platform.name());
  static obs::Counter& validations = obs::counter("pdl.validations");
  static obs::Counter& diag_errors = obs::counter("pdl.diags_error");
  static obs::Counter& diag_warnings = obs::counter("pdl.diags_warning");
  const std::size_t errors_before = count_severity(diags, Severity::kError);
  const std::size_t warnings_before = count_severity(diags, Severity::kWarning);
  Checker checker{platform, diags, {}, {}};

  // V1.
  if (platform.masters().empty()) {
    add_error(diags, "platform has no Master processing unit (V1)");
  }
  for (const auto& master : platform.masters()) {
    checker.check_pu(*master);
  }
  for (const auto& master : platform.masters()) {
    checker.check_interconnects(*master);
  }
  validations.inc();
  diag_errors.inc(count_severity(diags, Severity::kError) - errors_before);
  diag_warnings.inc(count_severity(diags, Severity::kWarning) - warnings_before);
  return count_severity(diags, Severity::kError) == errors_before;
}

bool is_valid(const Platform& platform) {
  Diagnostics diags;
  return validate(platform, diags);
}

}  // namespace pdl
