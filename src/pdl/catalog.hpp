// Platform catalog: a set of PDL descriptors "for various platforms"
// (paper Figure 1). Toolchains keep one descriptor per deployment target
// and select by name or by architectural pattern; Cascabel-style
// retargeting is then "translate once per catalog entry".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pdl/model.hpp"
#include "util/result.hpp"

namespace pdl {

class Catalog {
 public:
  /// Add a platform (keyed by its name; unnamed platforms get "platform-N").
  /// Replaces an existing entry with the same name.
  void add(Platform platform);

  /// Parse a PDL file and add it.
  util::Status add_file(const std::string& path);

  /// Add every "*.xml" file in a directory (non-recursive). Returns the
  /// number of platforms added; files that fail to parse are skipped and
  /// reported in `errors` when provided.
  std::size_t add_directory(const std::string& dir,
                            std::vector<std::string>* errors = nullptr);

  std::size_t size() const { return platforms_.size(); }
  bool empty() const { return platforms_.empty(); }

  /// All catalog entry names, in insertion order.
  std::vector<std::string> names() const;

  /// Entry by name; nullptr when absent.
  const Platform* find(std::string_view name) const;

  /// Every platform satisfying a compact-syntax pattern (pattern.hpp).
  std::vector<const Platform*> matching(std::string_view pattern) const;

  /// The *tightest* platform satisfying the pattern: fewest total PUs among
  /// the matches (ties broken by insertion order). nullptr when none match.
  /// Rationale: code constrained to "a master with >=2 GPUs" should get the
  /// smallest machine that provides it, leaving larger ones for bigger asks.
  const Platform* best_match(std::string_view pattern) const;

 private:
  std::vector<Platform> platforms_;
};

}  // namespace pdl
