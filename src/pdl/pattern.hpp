// Platform patterns and pattern->concrete matching (paper §II, §III-B and
// Figure 2: "Concrete platforms are mapped to generic processing-unit
// hierarchies to support portability").
//
// A pattern is itself a Platform whose PUs constrain rather than describe:
//   * kind must match exactly (Master/Hybrid/Worker);
//   * every *fixed* pattern property must be present with an equal value
//     (case-insensitive) on the concrete PU — resolved with upward
//     inheritance, so "ARCHITECTURE=x86 somewhere above" satisfies it;
//   * *unfixed* pattern properties only require the property to exist on
//     the concrete side (the paper's editable-later semantics);
//   * a pattern PU with quantity q requires concrete children matching it
//     with total quantity >= q;
//   * pattern children must be satisfied by disjoint concrete children;
//     concrete children not mentioned by the pattern are allowed (patterns
//     are minimum requirements, not exact shapes).
//
// Patterns can be written in PDL XML like any platform, or in a compact
// one-line syntax convenient for annotations and tests:
//
//   pattern  := pu
//   pu       := kind [ '(' key '=' value { ',' key '=' value } ')' ]
//                    [ 'x' INT ] [ '[' pu { ',' pu } ']' ]
//   kind     := 'M' | 'H' | 'W'
//
// Examples:
//   "M(ARCHITECTURE=x86)"                       an x86 master, nothing else
//   "M[W(ARCHITECTURE=gpu)x2]"                  a master controlling >=2 GPUs
//   "M(ARCHITECTURE=x86)[H[Wx8],W(ARCHITECTURE=gpu)]"   nested hierarchy
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pdl/model.hpp"
#include "util/result.hpp"

namespace pdl {

/// Parse the compact pattern syntax into a single-master pattern Platform.
util::Result<Platform> parse_pattern(std::string_view text);

/// Render a pattern Platform back to the compact syntax (inverse of
/// parse_pattern for patterns; also usable on concrete platforms to get a
/// structural summary).
std::string pattern_to_string(const Platform& pattern);
std::string pattern_to_string(const ProcessingUnit& pu);

/// One pattern-PU -> concrete-PU assignment recorded during matching.
struct MatchBinding {
  const ProcessingUnit* pattern_pu = nullptr;
  const ProcessingUnit* concrete_pu = nullptr;
};

/// Result of a match attempt: success plus the bindings, or the reason the
/// match failed (for tool diagnostics, e.g. "variant rejected because ...").
struct MatchResult {
  bool matched = false;
  std::vector<MatchBinding> bindings;
  std::string reason;  ///< Filled when !matched.

  explicit operator bool() const { return matched; }
};

/// True when `concrete` satisfies `pattern_pu`'s kind and property
/// constraints, ignoring children. Used for static mapping: after a
/// structural match succeeds, tools enumerate *every* PU a variant may run
/// on (the minimal bindings of match() only witness the requirement).
bool pu_satisfies(const ProcessingUnit& pattern_pu, const ProcessingUnit& concrete);

/// Match a single pattern PU subtree against a concrete PU subtree.
MatchResult match(const ProcessingUnit& pattern, const ProcessingUnit& concrete);

/// Match a pattern platform against a concrete platform: every pattern
/// master must be satisfied by a distinct concrete master.
MatchResult match(const Platform& pattern, const Platform& concrete);

/// Convenience: match a compact-syntax pattern against a platform.
/// Returns false (with reason) on pattern syntax errors too.
MatchResult match(std::string_view compact_pattern, const Platform& concrete);

}  // namespace pdl
