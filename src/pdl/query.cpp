#include "pdl/query.hpp"

#include <algorithm>
#include <set>

#include "util/string_util.hpp"

namespace pdl {

namespace {

void collect(const ProcessingUnit& pu, std::vector<const ProcessingUnit*>& out) {
  out.push_back(&pu);
  for (const auto& child : pu.children()) {
    collect(*child, out);
  }
}

bool visit_pu(const ProcessingUnit& pu,
              const std::function<bool(const ProcessingUnit&)>& visitor) {
  if (!visitor(pu)) return false;
  for (const auto& child : pu.children()) {
    if (!visit_pu(*child, visitor)) return false;
  }
  return true;
}

}  // namespace

std::vector<const ProcessingUnit*> all_pus(const Platform& platform) {
  std::vector<const ProcessingUnit*> out;
  for (const auto& master : platform.masters()) {
    collect(*master, out);
  }
  return out;
}

std::vector<const ProcessingUnit*> subtree(const ProcessingUnit& pu) {
  std::vector<const ProcessingUnit*> out;
  collect(pu, out);
  return out;
}

void visit(const Platform& platform,
           const std::function<bool(const ProcessingUnit&)>& visitor) {
  for (const auto& master : platform.masters()) {
    if (!visit_pu(*master, visitor)) return;
  }
}

const ProcessingUnit* find_pu(const Platform& platform, std::string_view id) {
  const ProcessingUnit* found = nullptr;
  visit(platform, [&](const ProcessingUnit& pu) {
    if (pu.id() == id) {
      found = &pu;
      return false;
    }
    return true;
  });
  return found;
}

std::vector<const ProcessingUnit*> pus_of_kind(const Platform& platform, PuKind kind) {
  std::vector<const ProcessingUnit*> out;
  visit(platform, [&](const ProcessingUnit& pu) {
    if (pu.kind() == kind) out.push_back(&pu);
    return true;
  });
  return out;
}

std::vector<const ProcessingUnit*> pus_with_property(const Platform& platform,
                                                     std::string_view name,
                                                     std::string_view value) {
  std::vector<const ProcessingUnit*> out;
  visit(platform, [&](const ProcessingUnit& pu) {
    if (const Property* p = pu.descriptor().find(name);
        p != nullptr && util::iequals(p->value, value)) {
      out.push_back(&pu);
    }
    return true;
  });
  return out;
}

std::vector<const ProcessingUnit*> group_members(const Platform& platform,
                                                 std::string_view group) {
  std::vector<const ProcessingUnit*> out;
  visit(platform, [&](const ProcessingUnit& pu) {
    if (pu.in_group(group)) out.push_back(&pu);
    return true;
  });
  return out;
}

std::vector<std::string> logic_groups(const Platform& platform) {
  std::set<std::string> seen;
  std::vector<std::string> out;
  visit(platform, [&](const ProcessingUnit& pu) {
    for (const auto& g : pu.logic_groups()) {
      if (seen.insert(g).second) out.push_back(g);
    }
    return true;
  });
  return out;
}

int worker_count(const ProcessingUnit& pu) {
  int count = pu.kind() == PuKind::kWorker ? pu.quantity() : 0;
  for (const auto& child : pu.children()) {
    count += worker_count(*child);
  }
  return count;
}

int worker_count(const Platform& platform) {
  int count = 0;
  for (const auto& master : platform.masters()) {
    count += worker_count(*master);
  }
  return count;
}

int total_pu_count(const Platform& platform) {
  int count = 0;
  visit(platform, [&](const ProcessingUnit& pu) {
    count += pu.quantity();
    return true;
  });
  return count;
}

int hierarchy_depth(const Platform& platform) {
  int max_depth = -1;
  visit(platform, [&](const ProcessingUnit& pu) {
    max_depth = std::max(max_depth, pu.depth());
    return true;
  });
  return max_depth;
}

const Property* resolve_property(const ProcessingUnit& pu, std::string_view name) {
  for (const ProcessingUnit* node = &pu; node != nullptr; node = node->parent()) {
    if (const Property* p = node->descriptor().find(name)) return p;
  }
  return nullptr;
}

std::string resolved_value(const ProcessingUnit& pu, std::string_view name) {
  const Property* p = resolve_property(pu, name);
  return p != nullptr ? p->value : std::string();
}

const Interconnect* find_interconnect(const Platform& platform, std::string_view from_id,
                                      std::string_view to_id) {
  const Interconnect* found = nullptr;
  visit(platform, [&](const ProcessingUnit& pu) {
    for (const auto& ic : pu.interconnects()) {
      if ((ic.from == from_id && ic.to == to_id) ||
          (ic.from == to_id && ic.to == from_id)) {
        found = &ic;
        return false;
      }
    }
    return true;
  });
  return found;
}

std::vector<const Interconnect*> all_interconnects(const Platform& platform) {
  std::vector<const Interconnect*> out;
  visit(platform, [&](const ProcessingUnit& pu) {
    for (const auto& ic : pu.interconnects()) out.push_back(&ic);
    return true;
  });
  return out;
}

std::optional<double> data_path_seconds(const Platform& platform,
                                        std::string_view from_id,
                                        std::string_view to_id, std::size_t bytes,
                                        double default_bandwidth_gbs,
                                        double default_latency_us) {
  if (from_id == to_id) return 0.0;
  const auto path = data_path(platform, from_id, to_id);
  if (path.empty()) return std::nullopt;
  double seconds = 0.0;
  for (const auto& hop : path) {
    double bandwidth = default_bandwidth_gbs;
    double latency = default_latency_us;
    if (hop.interconnect != nullptr) {
      if (auto bw = hop.interconnect->descriptor.get_double("BANDWIDTH_GB_S")) {
        bandwidth = *bw;
      }
      if (auto lat = hop.interconnect->descriptor.get_double("LATENCY_US")) {
        latency = *lat;
      }
    }
    seconds += latency * 1e-6;
    if (bandwidth > 0.0) {
      seconds += static_cast<double>(bytes) / (bandwidth * 1e9);
    }
  }
  return seconds;
}

std::vector<DataPathHop> data_path(const Platform& platform, std::string_view from_id,
                                   std::string_view to_id) {
  const ProcessingUnit* from = find_pu(platform, from_id);
  const ProcessingUnit* to = find_pu(platform, to_id);
  if (from == nullptr || to == nullptr) return {};
  if (from == to) return {};

  // A directly declared interconnect is the authoritative single-hop path.
  if (const Interconnect* ic = find_interconnect(platform, from_id, to_id)) {
    return {DataPathHop{from, to, ic}};
  }

  // Otherwise route along the control hierarchy through the lowest common
  // ancestor, using declared interconnects for individual hops when present.
  std::vector<const ProcessingUnit*> from_chain;
  for (const ProcessingUnit* n = from; n != nullptr; n = n->parent()) {
    from_chain.push_back(n);
  }
  const ProcessingUnit* lca = nullptr;
  std::vector<const ProcessingUnit*> to_chain;
  for (const ProcessingUnit* n = to; n != nullptr; n = n->parent()) {
    auto it = std::find(from_chain.begin(), from_chain.end(), n);
    if (it != from_chain.end()) {
      lca = n;
      break;
    }
    to_chain.push_back(n);
  }
  if (lca == nullptr) return {};  // different masters, no declared connection

  std::vector<DataPathHop> path;
  const auto hop = [&](const ProcessingUnit* a, const ProcessingUnit* b) {
    path.push_back(DataPathHop{a, b, find_interconnect(platform, a->id(), b->id())});
  };
  for (const ProcessingUnit* n = from; n != lca; n = n->parent()) {
    hop(n, n->parent());
  }
  for (auto it = to_chain.rbegin(); it != to_chain.rend(); ++it) {
    const ProcessingUnit* parent = (*it)->parent();
    hop(parent, *it);
  }
  return path;
}

}  // namespace pdl
