#include "pdl/catalog.hpp"

#include <algorithm>
#include <filesystem>
#include <limits>

#include "pdl/parser.hpp"
#include "pdl/pattern.hpp"
#include "pdl/query.hpp"

namespace pdl {

void Catalog::add(Platform platform) {
  if (platform.name().empty()) {
    platform.set_name("platform-" + std::to_string(platforms_.size()));
  }
  for (auto& existing : platforms_) {
    if (existing.name() == platform.name()) {
      existing = std::move(platform);
      return;
    }
  }
  platforms_.push_back(std::move(platform));
}

util::Status Catalog::add_file(const std::string& path) {
  Diagnostics diags;
  auto platform = parse_platform_file(path, diags);
  if (!platform) return platform.error();
  if (has_errors(diags)) {
    return util::Error{"PDL document has errors", path};
  }
  add(std::move(platform).value());
  return {};
}

std::size_t Catalog::add_directory(const std::string& dir,
                                   std::vector<std::string>* errors) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    if (errors != nullptr) errors->push_back(dir + ": " + ec.message());
    return 0;
  }
  // Deterministic order regardless of directory enumeration order.
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == ".xml") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::size_t added = 0;
  for (const auto& path : paths) {
    auto status = add_file(path);
    if (status.ok()) {
      ++added;
    } else if (errors != nullptr) {
      errors->push_back(status.error().str());
    }
  }
  return added;
}

std::vector<std::string> Catalog::names() const {
  std::vector<std::string> out;
  out.reserve(platforms_.size());
  for (const auto& p : platforms_) out.push_back(p.name());
  return out;
}

const Platform* Catalog::find(std::string_view name) const {
  for (const auto& p : platforms_) {
    if (p.name() == name) return &p;
  }
  return nullptr;
}

std::vector<const Platform*> Catalog::matching(std::string_view pattern) const {
  std::vector<const Platform*> out;
  for (const auto& p : platforms_) {
    if (match(pattern, p)) out.push_back(&p);
  }
  return out;
}

const Platform* Catalog::best_match(std::string_view pattern) const {
  const Platform* best = nullptr;
  int best_size = std::numeric_limits<int>::max();
  for (const Platform* p : matching(pattern)) {
    const int size = total_pu_count(*p);
    if (size < best_size) {
      best_size = size;
      best = p;
    }
  }
  return best;
}

}  // namespace pdl
