#include "pdl/schema_export.hpp"

#include <sstream>

namespace pdl {

std::string export_xsd(const SchemaRegistry& registry) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\"\n"
        "           targetNamespace=\"urn:pdl:base\"\n"
        "           xmlns:pdl=\"urn:pdl:base\"\n"
        "           elementFormDefault=\"qualified\">\n\n";

  // --- Base property type (open key/value, extensible via xsi:type) ------
  os << "  <xs:complexType name=\"PropertyType\">\n"
        "    <xs:annotation><xs:documentation>Extensible key/value platform\n"
        "      property; subschema types derive from this (paper SectIII-B).\n"
        "    </xs:documentation></xs:annotation>\n"
        "    <xs:sequence>\n"
        "      <xs:element name=\"name\" type=\"xs:string\"/>\n"
        "      <xs:element name=\"value\">\n"
        "        <xs:complexType>\n"
        "          <xs:simpleContent>\n"
        "            <xs:extension base=\"xs:string\">\n"
        "              <xs:attribute name=\"unit\" type=\"xs:string\"/>\n"
        "            </xs:extension>\n"
        "          </xs:simpleContent>\n"
        "        </xs:complexType>\n"
        "      </xs:element>\n"
        "    </xs:sequence>\n"
        "    <xs:attribute name=\"fixed\" type=\"xs:boolean\" default=\"true\"/>\n"
        "  </xs:complexType>\n\n";

  // --- Descriptor containers -------------------------------------------------
  for (const char* name : {"PUDescriptor", "MRDescriptor", "ICDescriptor"}) {
    os << "  <xs:complexType name=\"" << name << "Type\">\n"
       << "    <xs:sequence>\n"
          "      <xs:element name=\"Property\" type=\"pdl:PropertyType\""
          " minOccurs=\"0\" maxOccurs=\"unbounded\"/>\n"
          "    </xs:sequence>\n"
          "  </xs:complexType>\n\n";
  }

  // --- Communication entities -------------------------------------------------
  os << "  <xs:complexType name=\"MemoryRegionType\">\n"
        "    <xs:sequence>\n"
        "      <xs:element name=\"MRDescriptor\" type=\"pdl:MRDescriptorType\""
        " minOccurs=\"0\"/>\n"
        "    </xs:sequence>\n"
        "    <xs:attribute name=\"id\" type=\"xs:ID\" use=\"required\"/>\n"
        "  </xs:complexType>\n\n";
  os << "  <xs:complexType name=\"InterconnectType\">\n"
        "    <xs:sequence>\n"
        "      <xs:element name=\"ICDescriptor\" type=\"pdl:ICDescriptorType\""
        " minOccurs=\"0\"/>\n"
        "    </xs:sequence>\n"
        "    <xs:attribute name=\"type\" type=\"xs:string\"/>\n"
        "    <xs:attribute name=\"from\" type=\"xs:IDREF\" use=\"required\"/>\n"
        "    <xs:attribute name=\"to\" type=\"xs:IDREF\" use=\"required\"/>\n"
        "    <xs:attribute name=\"scheme\" type=\"xs:string\"/>\n"
        "  </xs:complexType>\n\n";

  // --- PU hierarchy (Master at the top, Hybrid inner, Worker leaf) --------
  os << "  <xs:complexType name=\"PUCommonType\" abstract=\"true\">\n"
        "    <xs:sequence>\n"
        "      <xs:element name=\"PUDescriptor\" type=\"pdl:PUDescriptorType\""
        " minOccurs=\"0\"/>\n"
        "      <xs:element name=\"LogicGroupAttribute\" minOccurs=\"0\""
        " maxOccurs=\"unbounded\">\n"
        "        <xs:complexType>\n"
        "          <xs:attribute name=\"group\" type=\"xs:string\"/>\n"
        "        </xs:complexType>\n"
        "      </xs:element>\n"
        "      <xs:element name=\"MemoryRegion\" type=\"pdl:MemoryRegionType\""
        " minOccurs=\"0\" maxOccurs=\"unbounded\"/>\n"
        "    </xs:sequence>\n"
        "    <xs:attribute name=\"id\" type=\"xs:ID\" use=\"required\"/>\n"
        "    <xs:attribute name=\"quantity\" type=\"xs:positiveInteger\""
        " default=\"1\"/>\n"
        "  </xs:complexType>\n\n";

  os << "  <xs:complexType name=\"WorkerType\">\n"
        "    <xs:complexContent><xs:extension base=\"pdl:PUCommonType\"/>"
        "</xs:complexContent>\n"
        "  </xs:complexType>\n\n";
  os << "  <xs:complexType name=\"HybridType\">\n"
        "    <xs:complexContent>\n"
        "      <xs:extension base=\"pdl:PUCommonType\">\n"
        "        <xs:sequence>\n"
        "          <xs:choice minOccurs=\"1\" maxOccurs=\"unbounded\">\n"
        "            <xs:element name=\"Hybrid\" type=\"pdl:HybridType\"/>\n"
        "            <xs:element name=\"Worker\" type=\"pdl:WorkerType\"/>\n"
        "          </xs:choice>\n"
        "          <xs:element name=\"Interconnect\""
        " type=\"pdl:InterconnectType\" minOccurs=\"0\""
        " maxOccurs=\"unbounded\"/>\n"
        "        </xs:sequence>\n"
        "      </xs:extension>\n"
        "    </xs:complexContent>\n"
        "  </xs:complexType>\n\n";
  os << "  <xs:complexType name=\"MasterType\">\n"
        "    <xs:complexContent>\n"
        "      <xs:extension base=\"pdl:PUCommonType\">\n"
        "        <xs:sequence>\n"
        "          <xs:choice minOccurs=\"0\" maxOccurs=\"unbounded\">\n"
        "            <xs:element name=\"Hybrid\" type=\"pdl:HybridType\"/>\n"
        "            <xs:element name=\"Worker\" type=\"pdl:WorkerType\"/>\n"
        "          </xs:choice>\n"
        "          <xs:element name=\"Interconnect\""
        " type=\"pdl:InterconnectType\" minOccurs=\"0\""
        " maxOccurs=\"unbounded\"/>\n"
        "        </xs:sequence>\n"
        "      </xs:extension>\n"
        "    </xs:complexContent>\n"
        "  </xs:complexType>\n\n";

  os << "  <xs:element name=\"Master\" type=\"pdl:MasterType\"/>\n";
  os << "  <xs:element name=\"Platform\">\n"
        "    <xs:complexType>\n"
        "      <xs:sequence>\n"
        "        <xs:element name=\"Master\" type=\"pdl:MasterType\""
        " maxOccurs=\"unbounded\"/>\n"
        "      </xs:sequence>\n"
        "      <xs:attribute name=\"name\" type=\"xs:string\"/>\n"
        "      <xs:attribute name=\"version\" type=\"xs:string\"/>\n"
        "    </xs:complexType>\n"
        "  </xs:element>\n\n";

  // --- Subschemas: derived property types with their vocabulary -----------
  for (const Subschema& schema : registry.subschemas()) {
    if (schema.type_name.empty()) continue;  // base vocabulary, handled above
    const auto colon = schema.type_name.find(':');
    const std::string local = colon == std::string::npos
                                  ? schema.type_name
                                  : schema.type_name.substr(colon + 1);
    os << "  <!-- subschema '" << schema.prefix << "' (" << schema.uri << ") v"
       << schema.version_string() << " -->\n";
    os << "  <xs:complexType name=\"" << local << "\">\n"
       << "    <xs:annotation><xs:documentation>\n";
    for (const auto& def : schema.properties) {
      os << "      " << def.name << " : " << to_string(def.kind)
         << (def.unit_required ? " (unit required)" : "") << " — " << def.doc
         << "\n";
    }
    os << "    </xs:documentation></xs:annotation>\n"
       << "    <xs:complexContent>\n"
          "      <xs:extension base=\"pdl:PropertyType\"/>\n"
          "    </xs:complexContent>\n"
          "  </xs:complexType>\n\n";
  }

  os << "</xs:schema>\n";
  return os.str();
}

}  // namespace pdl
