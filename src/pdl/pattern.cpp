#include "pdl/pattern.hpp"

#include <algorithm>
#include <sstream>

#include "pdl/query.hpp"
#include "util/string_util.hpp"

namespace pdl {

namespace {

// --- Compact-syntax parser ----------------------------------------------------

class PatternParser {
 public:
  explicit PatternParser(std::string_view text) : text_(text) {}

  util::Result<Platform> run() {
    skip_ws();
    auto pu = parse_pu();
    if (!pu) return error_;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after pattern");
    }
    if (pu.value()->kind() != PuKind::kMaster) {
      return fail("pattern root must be a Master ('M')");
    }
    Platform platform;
    platform.add_master(std::move(pu).value());
    return platform;
  }

 private:
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void advance() { ++pos_; }
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) ++pos_;
  }

  util::Error fail(std::string message) {
    if (error_.message.empty()) {
      error_ = util::Error{std::move(message), "pattern offset " + std::to_string(pos_)};
    }
    return error_;
  }

  util::Result<std::unique_ptr<ProcessingUnit>> parse_pu() {
    skip_ws();
    PuKind kind;
    switch (peek()) {
      case 'M': kind = PuKind::kMaster; break;
      case 'H': kind = PuKind::kHybrid; break;
      case 'W': kind = PuKind::kWorker; break;
      default: return fail("expected PU kind letter M, H or W");
    }
    advance();
    // Pattern PUs get synthesized ids; matching never uses them.
    auto pu = std::make_unique<ProcessingUnit>(kind, "p" + std::to_string(next_id_++));

    skip_ws();
    if (peek() == '(') {
      advance();
      while (true) {
        skip_ws();
        std::string key;
        while (peek() != '\0' && peek() != '=' && peek() != ',' && peek() != ')') {
          key += peek();
          advance();
        }
        key = std::string(util::trim(key));
        if (key.empty()) return fail("empty property name in pattern");
        std::string value;
        bool fixed = false;
        if (peek() == '=') {
          advance();
          while (peek() != '\0' && peek() != ',' && peek() != ')') {
            value += peek();
            advance();
          }
          value = std::string(util::trim(value));
          fixed = true;
        }
        Property prop;
        prop.name = key;
        prop.value = value;
        prop.fixed = fixed;  // bare "NAME" (no '=') is an existence constraint
        pu->descriptor().add(std::move(prop));
        if (peek() == ',') {
          advance();
          continue;
        }
        if (peek() == ')') {
          advance();
          break;
        }
        return fail("expected ',' or ')' in property list");
      }
    }

    skip_ws();
    if (peek() == 'x') {
      advance();
      std::string digits;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        digits += peek();
        advance();
      }
      auto q = util::parse_int(digits);
      if (!q || *q < 1) return fail("expected positive integer after 'x'");
      pu->set_quantity(static_cast<int>(*q));
    }

    skip_ws();
    if (peek() == '[') {
      advance();
      while (true) {
        auto child = parse_pu();
        if (!child) return error_;
        pu->add_child(std::move(child).value());
        skip_ws();
        if (peek() == ',') {
          advance();
          continue;
        }
        if (peek() == ']') {
          advance();
          break;
        }
        return fail("expected ',' or ']' in child list");
      }
    }
    return pu;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int next_id_ = 0;
  util::Error error_;
};

// --- Matching -------------------------------------------------------------------

/// Check the pattern PU's property constraints against a concrete PU.
bool properties_satisfied(const ProcessingUnit& pattern, const ProcessingUnit& concrete,
                          std::string& reason) {
  for (const auto& p : pattern.descriptor().properties()) {
    const Property* c = resolve_property(concrete, p.name);
    if (c == nullptr) {
      reason = "concrete PU '" + concrete.id() + "' lacks property '" + p.name + "'";
      return false;
    }
    if (p.fixed && !util::iequals(c->value, p.value)) {
      reason = "property '" + p.name + "' is '" + c->value + "', pattern requires '" +
               p.value + "' on PU '" + concrete.id() + "'";
      return false;
    }
  }
  return true;
}

bool match_pu(const ProcessingUnit& pattern, const ProcessingUnit& concrete,
              std::vector<MatchBinding>& bindings, std::string& reason);

/// Satisfy each pattern child against disjoint concrete children.
///
/// Greedy with quantity accumulation: for a pattern child requiring
/// quantity q, scan unused concrete children; each one that matches
/// structurally contributes its quantity. Greedy assignment is sound here
/// because pattern children with identical constraints are interchangeable
/// and more-specific pattern children are processed in declaration order —
/// the documented contract is "declare more-specific children first".
bool match_children(const ProcessingUnit& pattern, const ProcessingUnit& concrete,
                    std::vector<MatchBinding>& bindings, std::string& reason) {
  std::vector<bool> used(concrete.children().size(), false);
  for (const auto& pchild : pattern.children()) {
    int satisfied = 0;
    const int required = pchild->quantity();
    for (std::size_t i = 0; i < concrete.children().size() && satisfied < required; ++i) {
      if (used[i]) continue;
      const ProcessingUnit& cchild = *concrete.children()[i];
      std::vector<MatchBinding> sub_bindings;
      std::string sub_reason;
      if (match_pu(*pchild, cchild, sub_bindings, sub_reason)) {
        used[i] = true;
        satisfied += cchild.quantity();
        bindings.insert(bindings.end(), sub_bindings.begin(), sub_bindings.end());
      }
    }
    if (satisfied < required) {
      reason = "pattern requires " + std::to_string(required) + " x " +
               std::string(to_string(pchild->kind())) + " under '" + concrete.id() +
               "', only " + std::to_string(satisfied) + " available";
      return false;
    }
  }
  return true;
}

bool match_pu(const ProcessingUnit& pattern, const ProcessingUnit& concrete,
              std::vector<MatchBinding>& bindings, std::string& reason) {
  if (pattern.kind() != concrete.kind()) {
    reason = "kind mismatch: pattern " + std::string(to_string(pattern.kind())) +
             " vs concrete " + std::string(to_string(concrete.kind())) + " ('" +
             concrete.id() + "')";
    return false;
  }
  if (!properties_satisfied(pattern, concrete, reason)) return false;
  if (!match_children(pattern, concrete, bindings, reason)) return false;
  bindings.push_back(MatchBinding{&pattern, &concrete});
  return true;
}

}  // namespace

util::Result<Platform> parse_pattern(std::string_view text) {
  return PatternParser(text).run();
}

namespace {

void render_pu(std::ostringstream& os, const ProcessingUnit& pu) {
  switch (pu.kind()) {
    case PuKind::kMaster: os << 'M'; break;
    case PuKind::kHybrid: os << 'H'; break;
    case PuKind::kWorker: os << 'W'; break;
  }
  if (!pu.descriptor().empty()) {
    os << '(';
    bool first = true;
    for (const auto& p : pu.descriptor().properties()) {
      if (!first) os << ',';
      first = false;
      os << p.name;
      if (p.fixed) os << '=' << p.value;
    }
    os << ')';
  }
  if (pu.quantity() != 1) os << 'x' << pu.quantity();
  if (!pu.children().empty()) {
    os << '[';
    bool first = true;
    for (const auto& child : pu.children()) {
      if (!first) os << ',';
      first = false;
      render_pu(os, *child);
    }
    os << ']';
  }
}

}  // namespace

std::string pattern_to_string(const ProcessingUnit& pu) {
  std::ostringstream os;
  render_pu(os, pu);
  return os.str();
}

std::string pattern_to_string(const Platform& pattern) {
  std::ostringstream os;
  bool first = true;
  for (const auto& master : pattern.masters()) {
    if (!first) os << ';';
    first = false;
    render_pu(os, *master);
  }
  return os.str();
}

bool pu_satisfies(const ProcessingUnit& pattern_pu, const ProcessingUnit& concrete) {
  if (pattern_pu.kind() != concrete.kind()) return false;
  std::string reason;
  return properties_satisfied(pattern_pu, concrete, reason);
}

MatchResult match(const ProcessingUnit& pattern, const ProcessingUnit& concrete) {
  MatchResult result;
  result.matched = match_pu(pattern, concrete, result.bindings, result.reason);
  if (!result.matched) result.bindings.clear();
  return result;
}

MatchResult match(const Platform& pattern, const Platform& concrete) {
  MatchResult result;
  std::vector<bool> used(concrete.masters().size(), false);
  for (const auto& pmaster : pattern.masters()) {
    bool satisfied = false;
    std::string last_reason = "no concrete master available";
    for (std::size_t i = 0; i < concrete.masters().size(); ++i) {
      if (used[i]) continue;
      std::vector<MatchBinding> bindings;
      std::string reason;
      if (match_pu(*pmaster, *concrete.masters()[i], bindings, reason)) {
        used[i] = true;
        satisfied = true;
        result.bindings.insert(result.bindings.end(), bindings.begin(), bindings.end());
        break;
      }
      last_reason = reason;
    }
    if (!satisfied) {
      result.matched = false;
      result.bindings.clear();
      result.reason = last_reason;
      return result;
    }
  }
  result.matched = true;
  return result;
}

MatchResult match(std::string_view compact_pattern, const Platform& concrete) {
  auto pattern = parse_pattern(compact_pattern);
  if (!pattern) {
    MatchResult result;
    result.matched = false;
    result.reason = "pattern syntax error: " + pattern.error().str();
    return result;
  }
  return match(pattern.value(), concrete);
}

}  // namespace pdl
