// Extension subschemas: the reproduction of the paper's XSD inheritance
// mechanism (§III-B).
//
// The base PDL property is an open key/value pair. Platform-specific
// vocabularies (OpenCL device properties, CUDA device properties, Cell
// local stores, ...) are *subschemas*: a namespace prefix + URI + version
// plus a set of typed property definitions. A Property selects its
// subschema via the xsi:type attribute ("ocl:oclDevicePropertyType") —
// exactly the shape of paper Listing 2.
//
// New subschemas can be registered at runtime by "application programmer,
// tool-developer or even hardware vendors" (paper); the built-in registry
// ships ocl/cuda/cell plus the base vocabulary.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pdl/diagnostics.hpp"
#include "pdl/model.hpp"

namespace pdl {

/// Value type a subschema assigns to a property.
enum class PropertyValueKind {
  kString,
  kInt,
  kDouble,
  kSizeBytes,  ///< integer with a required size unit (B/kB/MB/GB)
  kBool,       ///< "true"/"false"
};

std::string_view to_string(PropertyValueKind kind);

/// One property definition inside a subschema.
struct PropertyDef {
  std::string name;
  PropertyValueKind kind = PropertyValueKind::kString;
  bool unit_required = false;
  std::string doc;  ///< Short description for tooling output.
};

/// A namespaced property vocabulary with versioning (paper: "predefined
/// Descriptor and Property subschemas have unique identification and
/// versioning support provided by the XSD").
struct Subschema {
  std::string prefix;     ///< e.g. "ocl"
  std::string uri;        ///< unique identification
  std::string type_name;  ///< xsi:type value, e.g. "ocl:oclDevicePropertyType"
  int version_major = 1;
  int version_minor = 0;
  std::vector<PropertyDef> properties;

  const PropertyDef* find(std::string_view name) const;
  std::string version_string() const;
};

/// Registry of subschemas. Thread-compatible (register up front, then read).
class SchemaRegistry {
 public:
  /// A registry preloaded with the base vocabulary and the ocl/cuda/cell
  /// subschemas used throughout the paper and this reproduction.
  static SchemaRegistry with_builtins();

  /// Register or replace (same type_name + version) a subschema.
  /// Registering an *older* version than present is rejected (false).
  bool register_subschema(Subschema subschema);

  const Subschema* find_by_type(std::string_view xsi_type) const;
  const Subschema* find_by_prefix(std::string_view prefix) const;
  const std::vector<Subschema>& subschemas() const { return subschemas_; }

  /// Validate every property in the platform against its subschema:
  ///   * unknown xsi_type namespaces -> warning (future platforms tolerated)
  ///   * known subschema, unknown property name -> warning
  ///   * value not parseable as the declared kind -> error
  ///   * missing required unit -> error
  /// Returns !has_errors (counting only newly added diagnostics).
  bool validate_properties(const Platform& platform, Diagnostics& diags) const;

 private:
  std::vector<Subschema> subschemas_;
};

/// The process-wide default registry (with_builtins, constructed lazily).
const SchemaRegistry& builtin_registry();

}  // namespace pdl
