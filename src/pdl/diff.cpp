#include "pdl/diff.hpp"

#include <map>
#include <sstream>

#include "pdl/query.hpp"

namespace pdl {

std::string_view to_string(DiffKind kind) {
  switch (kind) {
    case DiffKind::kPuAdded: return "pu-added";
    case DiffKind::kPuRemoved: return "pu-removed";
    case DiffKind::kPuKindChanged: return "pu-kind-changed";
    case DiffKind::kQuantityChanged: return "quantity-changed";
    case DiffKind::kPropertyAdded: return "property-added";
    case DiffKind::kPropertyRemoved: return "property-removed";
    case DiffKind::kPropertyChanged: return "property-changed";
    case DiffKind::kGroupsChanged: return "groups-changed";
    case DiffKind::kMemoryRegionsChanged: return "memory-regions-changed";
    case DiffKind::kInterconnectsChanged: return "interconnects-changed";
  }
  return "?";
}

std::string DiffEntry::str() const {
  std::ostringstream os;
  os << to_string(kind) << " @ " << pu_path;
  if (!subject.empty()) os << " [" << subject << "]";
  if (!before.empty() || !after.empty()) {
    os << ": '" << before << "' -> '" << after << "'";
  }
  return os.str();
}

namespace {

/// "value|unit|fixed|type" fingerprint for change detection and reporting.
std::string property_repr(const Property& p) {
  std::string out = p.value;
  if (!p.unit.empty()) out += " " + p.unit;
  if (!p.fixed) out += " (unfixed)";
  if (!p.xsi_type.empty()) out += " {" + p.xsi_type + "}";
  return out;
}

std::string join_groups(const ProcessingUnit& pu) {
  std::string out;
  for (const auto& g : pu.logic_groups()) {
    if (!out.empty()) out += ",";
    out += g;
  }
  return out;
}

std::string interconnect_repr(const ProcessingUnit& pu) {
  std::string out;
  for (const auto& ic : pu.interconnects()) {
    if (!out.empty()) out += ";";
    out += ic.from + "->" + ic.to + ":" + ic.type;
  }
  return out;
}

std::string memory_region_repr(const ProcessingUnit& pu) {
  std::string out;
  for (const auto& mr : pu.memory_regions()) {
    if (!out.empty()) out += ";";
    out += mr.id;
  }
  return out;
}

void diff_pu(const ProcessingUnit& a, const ProcessingUnit& b,
             std::vector<DiffEntry>& out) {
  const std::string path = b.path();
  if (a.kind() != b.kind()) {
    out.push_back({DiffKind::kPuKindChanged, path, "", std::string(to_string(a.kind())),
                   std::string(to_string(b.kind()))});
  }
  if (a.quantity() != b.quantity()) {
    out.push_back({DiffKind::kQuantityChanged, path, "",
                   std::to_string(a.quantity()), std::to_string(b.quantity())});
  }
  // Properties by name (first occurrence wins, matching Descriptor::find).
  for (const auto& pb : b.descriptor().properties()) {
    const Property* pa = a.descriptor().find(pb.name);
    if (pa == nullptr) {
      out.push_back(
          {DiffKind::kPropertyAdded, path, pb.name, "", property_repr(pb)});
    } else if (property_repr(*pa) != property_repr(pb)) {
      out.push_back({DiffKind::kPropertyChanged, path, pb.name, property_repr(*pa),
                     property_repr(pb)});
    }
  }
  for (const auto& pa : a.descriptor().properties()) {
    if (b.descriptor().find(pa.name) == nullptr) {
      out.push_back(
          {DiffKind::kPropertyRemoved, path, pa.name, property_repr(pa), ""});
    }
  }
  if (join_groups(a) != join_groups(b)) {
    out.push_back(
        {DiffKind::kGroupsChanged, path, "", join_groups(a), join_groups(b)});
  }
  if (memory_region_repr(a) != memory_region_repr(b)) {
    out.push_back({DiffKind::kMemoryRegionsChanged, path, "",
                   memory_region_repr(a), memory_region_repr(b)});
  }
  if (interconnect_repr(a) != interconnect_repr(b)) {
    out.push_back({DiffKind::kInterconnectsChanged, path, "",
                   interconnect_repr(a), interconnect_repr(b)});
  }
}

}  // namespace

std::vector<DiffEntry> diff(const Platform& old_platform,
                            const Platform& new_platform) {
  std::vector<DiffEntry> out;
  std::map<std::string, const ProcessingUnit*> old_by_id;
  for (const auto* pu : all_pus(old_platform)) old_by_id[pu->id()] = pu;

  std::map<std::string, const ProcessingUnit*> new_by_id;
  for (const auto* pu : all_pus(new_platform)) new_by_id[pu->id()] = pu;

  for (const auto& [id, new_pu] : new_by_id) {
    const auto it = old_by_id.find(id);
    if (it == old_by_id.end()) {
      out.push_back({DiffKind::kPuAdded, new_pu->path(), "", "",
                     std::string(to_string(new_pu->kind()))});
    } else {
      diff_pu(*it->second, *new_pu, out);
    }
  }
  for (const auto& [id, old_pu] : old_by_id) {
    if (new_by_id.find(id) == new_by_id.end()) {
      out.push_back({DiffKind::kPuRemoved, old_pu->path(), "",
                     std::string(to_string(old_pu->kind())), ""});
    }
  }
  return out;
}

std::string to_string(const std::vector<DiffEntry>& entries) {
  if (entries.empty()) return "(no differences)\n";
  std::string out;
  for (const auto& e : entries) {
    out += e.str();
    out += '\n';
  }
  return out;
}

}  // namespace pdl
