#include "pdl/extension.hpp"

#include "pdl/query.hpp"
#include "pdl/well_known.hpp"
#include "util/string_util.hpp"

namespace pdl {

std::string_view to_string(PropertyValueKind kind) {
  switch (kind) {
    case PropertyValueKind::kString: return "string";
    case PropertyValueKind::kInt: return "int";
    case PropertyValueKind::kDouble: return "double";
    case PropertyValueKind::kSizeBytes: return "size";
    case PropertyValueKind::kBool: return "bool";
  }
  return "?";
}

const PropertyDef* Subschema::find(std::string_view name) const {
  for (const auto& p : properties) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::string Subschema::version_string() const {
  return std::to_string(version_major) + "." + std::to_string(version_minor);
}

SchemaRegistry SchemaRegistry::with_builtins() {
  SchemaRegistry registry;

  // Base vocabulary (prefix-less, applies to untyped properties).
  Subschema base;
  base.prefix = "";
  base.uri = "urn:pdl:base";
  base.type_name = "";
  base.properties = {
      {props::kArchitecture, PropertyValueKind::kString, false, "PU architecture class"},
      {props::kVendor, PropertyValueKind::kString, false, "hardware vendor"},
      {props::kModel, PropertyValueKind::kString, false, "hardware model"},
      {props::kCores, PropertyValueKind::kInt, false, "physical core count"},
      {props::kFrequencyMhz, PropertyValueKind::kInt, false, "clock frequency (MHz)"},
      {props::kPeakGflops, PropertyValueKind::kDouble, false, "DP peak GFLOP/s"},
      {props::kSustainedGflops, PropertyValueKind::kDouble, false,
       "sustained DGEMM GFLOP/s"},
      {props::kMeasuredGflops, PropertyValueKind::kDouble, false,
       "runtime-observed GFLOP/s (feedback)"},
      {props::kCompiler, PropertyValueKind::kString, false, "toolchain for this PU"},
      {props::kRuntimeLibrary, PropertyValueKind::kString, false, "runtime system"},
      {props::kSize, PropertyValueKind::kSizeBytes, true, "memory region size"},
      {props::kBandwidthGBs, PropertyValueKind::kDouble, false, "bandwidth (GB/s)"},
      {props::kLatencyNs, PropertyValueKind::kDouble, false, "latency (ns)"},
      {props::kShared, PropertyValueKind::kBool, false, "region shared between PUs"},
      {props::kAccuracy, PropertyValueKind::kDouble, false,
       "unit roundoff of the PU's native arithmetic"},
      {props::kIcLatencyUs, PropertyValueKind::kDouble, false, "link latency (us)"},
  };
  registry.register_subschema(std::move(base));

  // OpenCL device properties (paper Listing 2).
  Subschema ocl;
  ocl.prefix = props::kOclNamespace;
  ocl.uri = "urn:pdl:ext:opencl";
  ocl.type_name = props::kOclPropertyType;
  ocl.version_major = 1;
  ocl.version_minor = 1;  // OpenCL 1.1, as cited by the paper
  ocl.properties = {
      {props::kOclDeviceName, PropertyValueKind::kString, false, "CL_DEVICE_NAME"},
      {props::kOclMaxComputeUnits, PropertyValueKind::kInt, false,
       "CL_DEVICE_MAX_COMPUTE_UNITS"},
      {props::kOclMaxWorkItemDimensions, PropertyValueKind::kInt, false,
       "CL_DEVICE_MAX_WORK_ITEM_DIMENSIONS"},
      {props::kOclGlobalMemSize, PropertyValueKind::kSizeBytes, true,
       "CL_DEVICE_GLOBAL_MEM_SIZE"},
      {props::kOclLocalMemSize, PropertyValueKind::kSizeBytes, true,
       "CL_DEVICE_LOCAL_MEM_SIZE"},
      {props::kOclMaxClockFrequency, PropertyValueKind::kInt, false,
       "CL_DEVICE_MAX_CLOCK_FREQUENCY (MHz)"},
  };
  registry.register_subschema(std::move(ocl));

  // CUDA device properties (the paper's case study offloads via CUDA).
  Subschema cuda;
  cuda.prefix = props::kCudaNamespace;
  cuda.uri = "urn:pdl:ext:cuda";
  cuda.type_name = props::kCudaPropertyType;
  cuda.version_major = 3;
  cuda.version_minor = 2;  // CUDA Toolkit 3.2, as used by the paper
  cuda.properties = {
      {props::kCudaComputeCapability, PropertyValueKind::kString, false,
       "SM compute capability, e.g. 2.0"},
      {props::kCudaMultiprocessors, PropertyValueKind::kInt, false, "SM count"},
  };
  registry.register_subschema(std::move(cuda));

  // Cell B.E. properties (the paper's motivating heterogeneous platform).
  Subschema cell;
  cell.prefix = props::kCellNamespace;
  cell.uri = "urn:pdl:ext:cell";
  cell.type_name = props::kCellPropertyType;
  cell.properties = {
      {props::kCellLocalStoreSize, PropertyValueKind::kSizeBytes, true,
       "SPE local store size"},
  };
  registry.register_subschema(std::move(cell));

  return registry;
}

bool SchemaRegistry::register_subschema(Subschema subschema) {
  for (auto& existing : subschemas_) {
    if (existing.type_name == subschema.type_name &&
        existing.prefix == subschema.prefix) {
      // Versioning: only same-or-newer versions may replace.
      if (subschema.version_major < existing.version_major ||
          (subschema.version_major == existing.version_major &&
           subschema.version_minor < existing.version_minor)) {
        return false;
      }
      existing = std::move(subschema);
      return true;
    }
  }
  subschemas_.push_back(std::move(subschema));
  return true;
}

const Subschema* SchemaRegistry::find_by_type(std::string_view xsi_type) const {
  for (const auto& s : subschemas_) {
    if (s.type_name == xsi_type) return &s;
  }
  return nullptr;
}

const Subschema* SchemaRegistry::find_by_prefix(std::string_view prefix) const {
  for (const auto& s : subschemas_) {
    if (s.prefix == prefix) return &s;
  }
  return nullptr;
}

namespace {

void check_property(const SchemaRegistry& registry, const Property& prop,
                    const std::string& where, Diagnostics& diags) {
  const Subschema* schema = nullptr;
  if (prop.xsi_type.empty()) {
    schema = registry.find_by_type("");  // base vocabulary
  } else {
    schema = registry.find_by_type(prop.xsi_type);
    if (schema == nullptr) {
      add_warning(diags,
                  "unknown property subschema '" + prop.xsi_type +
                      "' (tolerated: future platform)",
                  where);
      return;
    }
  }
  if (schema == nullptr) return;

  const PropertyDef* def = schema->find(prop.name);
  if (def == nullptr) {
    // Open vocabulary: unknown names warn only for *extension* schemas,
    // where the subschema claims to enumerate its properties. Base
    // properties are free-form by design (§III-B holistic approach).
    if (!prop.xsi_type.empty()) {
      add_warning(diags,
                  "property '" + prop.name + "' not defined by subschema '" +
                      prop.xsi_type + "' v" + schema->version_string(),
                  where);
    }
    return;
  }

  // Unfixed properties may legitimately be blank (filled in later).
  if (!prop.fixed && prop.value.empty()) return;

  switch (def->kind) {
    case PropertyValueKind::kString:
      break;
    case PropertyValueKind::kInt:
      if (!prop.as_int()) {
        add_error(diags,
                  "property '" + prop.name + "' must be an integer, got '" +
                      prop.value + "'",
                  where);
      }
      break;
    case PropertyValueKind::kDouble:
      if (!prop.as_double()) {
        add_error(diags,
                  "property '" + prop.name + "' must be numeric, got '" + prop.value +
                      "'",
                  where);
      }
      break;
    case PropertyValueKind::kSizeBytes:
      if (!prop.as_bytes()) {
        add_error(diags,
                  "property '" + prop.name + "' must be a size with unit, got '" +
                      prop.value + "' unit '" + prop.unit + "'",
                  where);
      }
      break;
    case PropertyValueKind::kBool:
      if (!util::iequals(prop.value, "true") && !util::iequals(prop.value, "false")) {
        add_error(diags,
                  "property '" + prop.name + "' must be true/false, got '" + prop.value +
                      "'",
                  where);
      }
      break;
  }
  if (def->unit_required && prop.unit.empty()) {
    add_error(diags, "property '" + prop.name + "' requires a unit", where);
  }
}

}  // namespace

bool SchemaRegistry::validate_properties(const Platform& platform,
                                         Diagnostics& diags) const {
  const std::size_t errors_before = count_severity(diags, Severity::kError);
  visit(platform, [&](const ProcessingUnit& pu) {
    const std::string where = pu.path();
    for (const auto& p : pu.descriptor().properties()) {
      check_property(*this, p, where, diags);
    }
    for (const auto& mr : pu.memory_regions()) {
      for (const auto& p : mr.descriptor.properties()) {
        check_property(*this, p, where + "/MR:" + mr.id, diags);
      }
    }
    for (const auto& ic : pu.interconnects()) {
      for (const auto& p : ic.descriptor.properties()) {
        check_property(*this, p, where + "/IC:" + ic.from + "->" + ic.to, diags);
      }
    }
    return true;
  });
  return count_severity(diags, Severity::kError) == errors_before;
}

const SchemaRegistry& builtin_registry() {
  static const SchemaRegistry registry = SchemaRegistry::with_builtins();
  return registry;
}

}  // namespace pdl
