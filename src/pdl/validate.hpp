// Structural validation of platform descriptions against the rules of the
// hierarchical machine model (paper §III-A):
//
//   V1  a platform has at least one Master
//   V2  Master PUs appear only at the highest hierarchy level
//   V3  Worker PUs are leaves (carry out work, control nothing)
//   V4  Worker PUs are controlled by a Master or Hybrid (tree position)
//   V5  Hybrid PUs are inner nodes (control at least one Worker/Hybrid)
//   V6  PU ids are unique across the platform
//   V7  quantity >= 1 on every PU
//   V8  Interconnect endpoints reference existing PU ids
//   V9  an Interconnect should connect the declaring PU's scope (warning)
//   V10 MemoryRegion ids are unique across the platform (warning)
//   V11 Property names are non-empty; duplicates in one descriptor warn
//   V12 fixed properties must carry a value (unfixed may be blank)
//
// Violations of V1–V8 are errors; the rest are warnings. The checker never
// throws: PDL files are user input and tools want the full report.
#pragma once

#include "pdl/diagnostics.hpp"
#include "pdl/model.hpp"

namespace pdl {

/// Run all structural checks; appends to `diags` and returns !has_errors.
bool validate(const Platform& platform, Diagnostics& diags);

/// Convenience: validate and return only the verdict.
bool is_valid(const Platform& platform);

}  // namespace pdl
