// Structural diff of two platform descriptions.
//
// Tools that maintain descriptor catalogs, apply runtime feedback
// (cascabel/feedback.hpp) or hand-edit unfixed properties need to see
// *what changed* between two PDL documents; this module reports
// processing-unit and property-level differences keyed by PU id.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pdl/model.hpp"

namespace pdl {

enum class DiffKind {
  kPuAdded,            ///< PU id present only in the new platform
  kPuRemoved,          ///< PU id present only in the old platform
  kPuKindChanged,      ///< Master/Hybrid/Worker class changed
  kQuantityChanged,
  kPropertyAdded,
  kPropertyRemoved,
  kPropertyChanged,    ///< value, unit, fixedness or xsi:type differs
  kGroupsChanged,      ///< LogicGroupAttribute set differs
  kMemoryRegionsChanged,
  kInterconnectsChanged,
};

std::string_view to_string(DiffKind kind);

struct DiffEntry {
  DiffKind kind;
  std::string pu_path;  ///< path of the affected PU (new side when added)
  std::string subject;  ///< property/group/region name, "" for PU-level
  std::string before;   ///< old value ("" when not applicable)
  std::string after;    ///< new value ("" when not applicable)

  std::string str() const;
};

/// Differences transforming `old_platform` into `new_platform`.
/// PUs are matched by id; order changes are not reported.
std::vector<DiffEntry> diff(const Platform& old_platform,
                            const Platform& new_platform);

/// Multi-line rendering ("(no differences)\n" when empty).
std::string to_string(const std::vector<DiffEntry>& entries);

}  // namespace pdl
