// The hierarchical machine model of the paper (§III-A) as C++ types.
//
// Processing units come in three classes:
//   * Master — feature-rich general-purpose PU; program entry point; only at
//     the top level of the hierarchy; several Masters may co-exist.
//   * Hybrid — acts as master and worker; only at inner nodes; must be
//     controlled by a Master or another Hybrid.
//   * Worker — specialized compute resource; only at leaf nodes; must be
//     controlled by a Master or Hybrid.
// Communication entities: MemoryRegion (directly addressable memory visible
// to a PU) and Interconnect (PU-to-PU connectivity used to derive data
// transfer paths). Every entity carries an extensible Descriptor, a list of
// Property{name, value} items that may be `fixed` (authoritative) or
// `unfixed` (to be filled in by later tools — paper §III-B).
//
// The same types represent both *generic platform patterns* and *concrete
// platforms*; see pattern.hpp for the matching semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pdl/diagnostics.hpp"

namespace pdl {

enum class PuKind { kMaster, kHybrid, kWorker };

/// "Master" / "Hybrid" / "Worker" (also the XML element names).
std::string_view to_string(PuKind kind);
/// Inverse of to_string; nullopt for unknown names.
std::optional<PuKind> pu_kind_from_string(std::string_view name);

/// One key/value descriptor entry (paper: Property with name, value).
struct Property {
  std::string name;
  std::string value;
  std::string unit;      ///< Optional unit on the value ("kB", "MHz", ...).
  bool fixed = true;     ///< Unfixed values are editable by downstream tools.
  std::string xsi_type;  ///< Extension subschema type, e.g. "ocl:oclDevicePropertyType".
  SourceLoc loc;         ///< Where the <Property> element was parsed from.

  /// Integer view of the value; nullopt when non-numeric.
  std::optional<std::int64_t> as_int() const;
  /// Floating-point view of the value; nullopt when non-numeric.
  std::optional<double> as_double() const;
  /// SIZE-style values normalized to bytes using the unit ("kB","MB","GB",
  /// "B" or none). nullopt when the value is non-numeric or unit unknown.
  std::optional<std::int64_t> as_bytes() const;
};

/// Ordered property list shared by PUDescriptor / MRDescriptor / ICDescriptor.
class Descriptor {
 public:
  const std::vector<Property>& properties() const { return properties_; }
  std::vector<Property>& properties() { return properties_; }
  bool empty() const { return properties_.empty(); }
  std::size_t size() const { return properties_.size(); }

  /// First property with the given name (case-sensitive); nullptr if absent.
  const Property* find(std::string_view name) const;
  Property* find(std::string_view name);

  /// Value of the property, or "" when absent.
  std::string get(std::string_view name) const;
  /// Value of the property, or `fallback` when absent.
  std::string get_or(std::string_view name, std::string fallback) const;
  /// Integer value of the property; nullopt when absent/non-numeric.
  std::optional<std::int64_t> get_int(std::string_view name) const;
  /// Floating-point value; nullopt when absent/non-numeric.
  std::optional<double> get_double(std::string_view name) const;
  bool has(std::string_view name) const { return find(name) != nullptr; }

  /// Append a simple fixed property; returns a reference for chaining edits.
  Property& add(std::string name, std::string value);
  /// Append a fully specified property.
  Property& add(Property property);
  /// Set (replacing the first occurrence) or append.
  Property& set(std::string_view name, std::string_view value);
  /// Remove all properties with the name; returns the count removed.
  std::size_t remove(std::string_view name);

 private:
  std::vector<Property> properties_;
};

/// Directly addressable memory attached to a PU (paper §III-A).
struct MemoryRegion {
  std::string id;
  Descriptor descriptor;  ///< MRDescriptor: sizes, affinities, speeds, ...
  SourceLoc loc;          ///< Where the <MemoryRegion> element was parsed from.
};

/// Connectivity between two PUs, referenced by PU id (paper Listing 1:
/// <Interconnect type="rDMA" from="0" to="1" scheme=""/>).
struct Interconnect {
  std::string type;    ///< e.g. "rDMA", "PCIe", "QPI", "EIB".
  std::string from;    ///< PU id of one endpoint.
  std::string to;      ///< PU id of the other endpoint.
  std::string scheme;  ///< Communication scheme (free-form).
  Descriptor descriptor;  ///< ICDescriptor: bandwidth, latency, ...
  SourceLoc loc;          ///< Where the <Interconnect> element was parsed from.
};

/// A processing unit node of the hierarchy.
class ProcessingUnit {
 public:
  ProcessingUnit(PuKind kind, std::string id, int quantity = 1)
      : kind_(kind), id_(std::move(id)), quantity_(quantity) {}

  ProcessingUnit(const ProcessingUnit&) = delete;
  ProcessingUnit& operator=(const ProcessingUnit&) = delete;

  PuKind kind() const { return kind_; }
  const std::string& id() const { return id_; }
  void set_id(std::string id) { id_ = std::move(id); }

  /// How many identical units this node stands for (paper: quantity="1").
  int quantity() const { return quantity_; }
  void set_quantity(int quantity) { quantity_ = quantity; }

  Descriptor& descriptor() { return descriptor_; }
  const Descriptor& descriptor() const { return descriptor_; }

  std::vector<MemoryRegion>& memory_regions() { return memory_regions_; }
  const std::vector<MemoryRegion>& memory_regions() const { return memory_regions_; }
  /// Memory region by id under this PU; nullptr if absent.
  const MemoryRegion* find_memory_region(std::string_view id) const;

  std::vector<Interconnect>& interconnects() { return interconnects_; }
  const std::vector<Interconnect>& interconnects() const { return interconnects_; }

  /// LogicGroupAttribute values: named sub-sets of PUs (paper §III-B) that
  /// execute annotations reference via their executiongroup field.
  std::vector<std::string>& logic_groups() { return logic_groups_; }
  const std::vector<std::string>& logic_groups() const { return logic_groups_; }
  bool in_group(std::string_view group) const;

  ProcessingUnit* parent() const { return parent_; }
  const std::vector<std::unique_ptr<ProcessingUnit>>& children() const { return children_; }

  /// Attach a controlled PU; returns a raw pointer to the adopted child.
  ProcessingUnit* add_child(std::unique_ptr<ProcessingUnit> child);
  /// Convenience: create and attach a child.
  ProcessingUnit* add_child(PuKind kind, std::string id, int quantity = 1);

  /// Depth from the owning Master (Master itself = 0).
  int depth() const;
  /// True when this PU has no children.
  bool is_leaf() const { return children_.empty(); }

  /// "masterId/…/thisId" path used in diagnostics.
  std::string path() const;

  /// Where this PU's element was parsed from (invalid for in-memory trees).
  const SourceLoc& loc() const { return loc_; }
  void set_loc(SourceLoc loc) { loc_ = std::move(loc); }

 private:
  PuKind kind_;
  std::string id_;
  int quantity_;
  Descriptor descriptor_;
  std::vector<MemoryRegion> memory_regions_;
  std::vector<Interconnect> interconnects_;
  std::vector<std::string> logic_groups_;
  SourceLoc loc_;
  ProcessingUnit* parent_ = nullptr;
  std::vector<std::unique_ptr<ProcessingUnit>> children_;
};

/// A complete platform description: one or more top-level Masters plus
/// document metadata (name, schema version, extension namespaces).
class Platform {
 public:
  Platform() = default;
  explicit Platform(std::string name) : name_(std::move(name)) {}

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;
  Platform(Platform&&) = default;
  Platform& operator=(Platform&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// PDL schema version the document declares (paper: XSD versioning).
  const std::string& schema_version() const { return schema_version_; }
  void set_schema_version(std::string v) { schema_version_ = std::move(v); }

  /// The document this platform was parsed from ("" for in-memory models);
  /// diagnostics use it as the file part of their locations.
  const std::string& source_name() const { return source_name_; }
  void set_source_name(std::string name) { source_name_ = std::move(name); }

  const std::vector<std::unique_ptr<ProcessingUnit>>& masters() const { return masters_; }
  ProcessingUnit* add_master(std::unique_ptr<ProcessingUnit> master);
  ProcessingUnit* add_master(std::string id, int quantity = 1);

  /// Extension namespaces declared on the document: prefix -> URI.
  const std::vector<std::pair<std::string, std::string>>& namespaces() const {
    return namespaces_;
  }
  void declare_namespace(std::string prefix, std::string uri);

  /// Deep copy (the tree is move-only by default; copies are explicit).
  Platform clone() const;

 private:
  std::string name_;
  std::string schema_version_ = "1.0";
  std::string source_name_;
  std::vector<std::unique_ptr<ProcessingUnit>> masters_;
  std::vector<std::pair<std::string, std::string>> namespaces_;
};

/// Deep copy of a PU subtree.
std::unique_ptr<ProcessingUnit> clone_pu(const ProcessingUnit& pu);

}  // namespace pdl
