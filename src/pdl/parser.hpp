// PDL document parsing: XML text -> pdl::Platform.
//
// Accepted document shapes (both appear in the paper):
//   * a <Platform> root wrapping one or more <Master> elements, or
//   * a bare <Master> root (paper Listing 1).
//
// Parse errors (malformed XML, wrong element structure) fail the Result;
// recoverable issues (unknown elements, missing optional attributes) are
// appended to the Diagnostics out-parameter so tools can surface them.
#pragma once

#include <string>
#include <string_view>

#include "pdl/diagnostics.hpp"
#include "pdl/model.hpp"
#include "util/result.hpp"

namespace pdl {

/// Parse a platform from PDL XML text. `source_name` becomes the file part
/// of every diagnostic location and of the model entities' SourceLocs.
util::Result<Platform> parse_platform(std::string_view xml_text, Diagnostics& diags,
                                      std::string source_name);
util::Result<Platform> parse_platform(std::string_view xml_text, Diagnostics& diags);

/// Parse a platform from a PDL file (locations carry `path`).
util::Result<Platform> parse_platform_file(const std::string& path, Diagnostics& diags);

/// Convenience overloads that discard diagnostics.
util::Result<Platform> parse_platform(std::string_view xml_text);
util::Result<Platform> parse_platform_file(const std::string& path);

}  // namespace pdl
