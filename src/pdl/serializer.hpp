// PDL serialization: pdl::Platform -> XML text.
//
// Round-trips with pdl/parser.hpp: serialize(parse(x)) is structurally equal
// to x for every valid document (tested in tests/pdl_roundtrip_test.cpp).
#pragma once

#include <string>

#include "pdl/model.hpp"
#include "xml/dom.hpp"

namespace pdl {

struct SerializeOptions {
  /// Emit a bare <Master> root when the platform has exactly one master and
  /// no name (matching paper Listing 1); otherwise a <Platform> wrapper.
  bool bare_master_root = false;
  bool pretty = true;
};

/// Serialize to XML text.
std::string serialize(const Platform& platform, const SerializeOptions& options = {});

/// Build the DOM without rendering (used by tooling that post-processes).
xml::Document to_xml(const Platform& platform, const SerializeOptions& options = {});

}  // namespace pdl
