// The "simple query API" the case study builds Cascabel on (paper §IV):
// navigation, lookup and data-path derivation over a parsed Platform.
//
// The paper positions the PDL as a namespace for platform information that
// complements hwloc / OpenCL platform queries; this header is that query
// surface for C++ tools (compilers, auto-tuners, schedulers).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pdl/model.hpp"

namespace pdl {

// --- Traversal --------------------------------------------------------------

/// Every PU of the platform in pre-order (masters in declaration order).
std::vector<const ProcessingUnit*> all_pus(const Platform& platform);

/// Every PU in the subtree rooted at `pu` (pre-order, including `pu`).
std::vector<const ProcessingUnit*> subtree(const ProcessingUnit& pu);

/// Visit every PU; stop early when the visitor returns false.
void visit(const Platform& platform,
           const std::function<bool(const ProcessingUnit&)>& visitor);

// --- Lookup -----------------------------------------------------------------

/// PU by id anywhere in the platform; nullptr when absent.
const ProcessingUnit* find_pu(const Platform& platform, std::string_view id);

/// All PUs of a kind.
std::vector<const ProcessingUnit*> pus_of_kind(const Platform& platform, PuKind kind);

/// All PUs whose descriptor has property `name` equal to `value`
/// (case-insensitive on the value, matching how architectures are written).
std::vector<const ProcessingUnit*> pus_with_property(const Platform& platform,
                                                     std::string_view name,
                                                     std::string_view value);

/// All PUs that belong to the given logic group (LogicGroupAttribute).
std::vector<const ProcessingUnit*> group_members(const Platform& platform,
                                                 std::string_view group);

/// All logic group names declared anywhere in the platform (deduplicated).
std::vector<std::string> logic_groups(const Platform& platform);

// --- Derived metrics ----------------------------------------------------------

/// Sum of quantities of Worker PUs in the subtree (the paper's PUs stand
/// for `quantity` identical units).
int worker_count(const ProcessingUnit& pu);
int worker_count(const Platform& platform);

/// Total PU count (sum of quantities over all nodes).
int total_pu_count(const Platform& platform);

/// Maximum control-hierarchy depth (Master = depth 0; empty platform = -1).
int hierarchy_depth(const Platform& platform);

// --- Property resolution ------------------------------------------------------

/// Property lookup with upward inheritance: the PU's own descriptor first,
/// then each ancestor's. Models "workers inherit their controller's
/// environment" (e.g. COMPILER set once on the Master).
const Property* resolve_property(const ProcessingUnit& pu, std::string_view name);

/// Resolved value or "" — convenience over resolve_property.
std::string resolved_value(const ProcessingUnit& pu, std::string_view name);

// --- Data paths (paper §IV-C step 3) -------------------------------------------

/// One hop of a derived transfer route.
struct DataPathHop {
  const ProcessingUnit* from = nullptr;
  const ProcessingUnit* to = nullptr;
  const Interconnect* interconnect = nullptr;  ///< nullptr = implicit control link.
};

/// Derive the data path between two PUs: prefer an explicitly declared
/// Interconnect chain; fall back to routing along the control hierarchy
/// (up from `from` to the common ancestor, then down to `to`). Empty when
/// the PUs belong to different masters with no interconnect between them.
std::vector<DataPathHop> data_path(const Platform& platform, std::string_view from_id,
                                   std::string_view to_id);

/// The explicit interconnect between two PU ids, if any is declared
/// (searched in both directions).
const Interconnect* find_interconnect(const Platform& platform, std::string_view from_id,
                                      std::string_view to_id);

/// All interconnects declared anywhere in the platform.
std::vector<const Interconnect*> all_interconnects(const Platform& platform);

/// Modeled time [s] to move `bytes` along a derived data path, summing
/// latency + bytes/bandwidth per hop from the ICDescriptors
/// (BANDWIDTH_GB_S, LATENCY_US). Hops without an explicit interconnect —
/// control links — use `default_bandwidth_gbs` / `default_latency_us`.
/// Returns nullopt for an empty path (unconnected PUs).
std::optional<double> data_path_seconds(const Platform& platform,
                                        std::string_view from_id,
                                        std::string_view to_id, std::size_t bytes,
                                        double default_bandwidth_gbs = 10.0,
                                        double default_latency_us = 1.0);

}  // namespace pdl
