#include "pdl/parser.hpp"

#include <limits>
#include <memory>

#include "util/string_util.hpp"
#include "xml/dom.hpp"
#include "xml/parser.hpp"

namespace pdl {

namespace {

/// Shared parse state: the diagnostics sink plus the document name used as
/// the file part of every SourceLoc threaded onto the model.
struct ParseCtx {
  Diagnostics& diags;
  std::string source_name;

  SourceLoc loc_of(const xml::Element& e) const {
    const auto pos = e.pos();
    return SourceLoc{source_name, pos.line, pos.column};
  }

  std::string where_of(const xml::Element& e) const { return "<" + e.name() + ">"; }

  void error(const xml::Element& e, std::string message) {
    add_finding(diags, Severity::kError, {}, std::move(message), loc_of(e),
                where_of(e));
  }
  void warning(const xml::Element& e, std::string message) {
    add_finding(diags, Severity::kWarning, {}, std::move(message), loc_of(e),
                where_of(e));
  }
};

/// Parse a <Property> element (base or extension-typed).
///
/// Base form:      <Property fixed="true"><name>N</name><value>V</value></Property>
/// Extension form: <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
///                   <ocl:name>N</ocl:name><ocl:value unit="kB">V</ocl:value>
///                 </Property>
/// Child names are matched by local name so any extension prefix works.
Property parse_property(const xml::Element& e, ParseCtx& ctx) {
  Property prop;
  prop.fixed = !util::iequals(e.attribute_or("fixed", "true"), "false");
  prop.xsi_type = e.attribute_or("xsi:type", "");
  prop.loc = ctx.loc_of(e);

  const xml::Element* name_el = nullptr;
  const xml::Element* value_el = nullptr;
  for (const auto* child : e.child_elements()) {
    if (child->local_name() == "name") {
      name_el = child;
    } else if (child->local_name() == "value") {
      value_el = child;
    } else {
      ctx.warning(*child, "unknown element <" + child->name() + "> inside <Property>");
    }
  }
  if (name_el == nullptr) {
    ctx.error(e, "<Property> without <name>");
  } else {
    prop.name = name_el->text_content();
  }
  if (value_el != nullptr) {
    prop.value = value_el->text_content();
    prop.unit = value_el->attribute_or("unit", "");
  }
  return prop;
}

/// Parse a *Descriptor element (PUDescriptor / MRDescriptor / ICDescriptor):
/// a sequence of <Property> children.
Descriptor parse_descriptor(const xml::Element& e, ParseCtx& ctx) {
  Descriptor d;
  for (const auto* child : e.child_elements()) {
    if (child->local_name() == "Property") {
      d.add(parse_property(*child, ctx));
    } else {
      ctx.warning(*child, "unknown element <" + child->name() + "> inside <" +
                              e.name() + ">");
    }
  }
  return d;
}

MemoryRegion parse_memory_region(const xml::Element& e, ParseCtx& ctx) {
  MemoryRegion mr;
  mr.id = e.attribute_or("id", "");
  mr.loc = ctx.loc_of(e);
  if (mr.id.empty()) {
    ctx.warning(e, "<MemoryRegion> without id");
  }
  for (const auto* child : e.child_elements()) {
    if (child->local_name() == "MRDescriptor") {
      mr.descriptor = parse_descriptor(*child, ctx);
    } else if (child->local_name() == "Property") {
      // Tolerate properties directly under MemoryRegion.
      mr.descriptor.add(parse_property(*child, ctx));
    } else {
      ctx.warning(*child,
                  "unknown element <" + child->name() + "> inside <MemoryRegion>");
    }
  }
  return mr;
}

Interconnect parse_interconnect(const xml::Element& e, ParseCtx& ctx) {
  Interconnect ic;
  ic.type = e.attribute_or("type", "");
  ic.from = e.attribute_or("from", "");
  ic.to = e.attribute_or("to", "");
  ic.scheme = e.attribute_or("scheme", "");
  ic.loc = ctx.loc_of(e);
  if (ic.from.empty() || ic.to.empty()) {
    ctx.error(e, "<Interconnect> requires 'from' and 'to' PU ids");
  }
  for (const auto* child : e.child_elements()) {
    if (child->local_name() == "ICDescriptor") {
      ic.descriptor = parse_descriptor(*child, ctx);
    } else if (child->local_name() == "Property") {
      ic.descriptor.add(parse_property(*child, ctx));
    } else {
      ctx.warning(*child,
                  "unknown element <" + child->name() + "> inside <Interconnect>");
    }
  }
  return ic;
}

std::unique_ptr<ProcessingUnit> parse_pu(const xml::Element& e, ParseCtx& ctx);

void parse_pu_children(const xml::Element& e, ProcessingUnit& pu, ParseCtx& ctx) {
  for (const auto* child : e.child_elements()) {
    const auto local = child->local_name();
    if (local == "PUDescriptor") {
      pu.descriptor() = parse_descriptor(*child, ctx);
    } else if (local == "MemoryRegion") {
      pu.memory_regions().push_back(parse_memory_region(*child, ctx));
    } else if (local == "Interconnect") {
      pu.interconnects().push_back(parse_interconnect(*child, ctx));
    } else if (local == "LogicGroupAttribute") {
      // Group names can appear as a `group` attribute or as text content;
      // both are normalized to the PU's group list.
      std::string group = child->attribute_or("group", "");
      if (group.empty()) group = child->text_content();
      if (group.empty()) {
        ctx.warning(*child, "<LogicGroupAttribute> without group name");
      } else {
        pu.logic_groups().push_back(group);
      }
    } else if (pu_kind_from_string(std::string(local))) {
      auto sub = parse_pu(*child, ctx);
      if (sub) pu.add_child(std::move(sub));
    } else {
      ctx.warning(*child, "unknown element <" + child->name() + "> inside <" +
                              e.name() + ">");
    }
  }
}

std::unique_ptr<ProcessingUnit> parse_pu(const xml::Element& e, ParseCtx& ctx) {
  auto kind = pu_kind_from_string(std::string(e.local_name()));
  if (!kind) {
    ctx.error(e, "expected Master/Hybrid/Worker, got <" + e.name() + ">");
    return nullptr;
  }
  std::string id = e.attribute_or("id", "");
  if (id.empty()) {
    ctx.error(e, "<" + e.name() + "> without id");
  }
  int quantity = 1;
  if (auto q = e.attribute("quantity")) {
    auto parsed = util::parse_int(*q);
    // Upper bound matters too: parse_int yields int64, and quantity is
    // stored as int — "1e9"-style or absurd values must not wrap on the
    // narrowing cast and silently expand to garbage.
    if (!parsed || *parsed < 1 ||
        *parsed > std::numeric_limits<int>::max()) {
      ctx.error(e, "invalid quantity '" + *q + "' on <" + e.name() +
                       "> (expected an integer >= 1)");
    } else {
      quantity = static_cast<int>(*parsed);
    }
  }
  auto pu = std::make_unique<ProcessingUnit>(*kind, std::move(id), quantity);
  pu->set_loc(ctx.loc_of(e));
  parse_pu_children(e, *pu, ctx);
  return pu;
}

}  // namespace

util::Result<Platform> parse_platform(std::string_view xml_text, Diagnostics& diags,
                                      std::string source_name) {
  xml::ParseOptions xml_options;
  xml_options.source_name = source_name;
  auto doc = xml::parse(xml_text, xml_options);
  if (!doc) return doc.error();
  const xml::Element* root = doc.value().root();
  if (root == nullptr) return util::Error{"empty PDL document"};

  ParseCtx ctx{diags, std::move(source_name)};
  Platform platform;
  platform.set_source_name(ctx.source_name);

  // Collect namespace declarations from the root element.
  for (const auto& attr : root->attributes()) {
    if (util::starts_with(attr.name, "xmlns:")) {
      platform.declare_namespace(attr.name.substr(6), attr.value);
    } else if (attr.name == "xmlns") {
      platform.declare_namespace("", attr.value);
    }
  }

  if (root->local_name() == "Platform") {
    platform.set_name(root->attribute_or("name", ""));
    platform.set_schema_version(root->attribute_or("version", "1.0"));
    for (const auto* child : root->child_elements()) {
      if (child->local_name() == "Master") {
        auto pu = parse_pu(*child, ctx);
        if (pu) platform.add_master(std::move(pu));
      } else if (pu_kind_from_string(std::string(child->local_name()))) {
        ctx.error(*child, "top-level PU must be a Master, got <" + child->name() + ">");
      } else {
        ctx.warning(*child,
                    "unknown element <" + child->name() + "> inside <Platform>");
      }
    }
  } else if (root->local_name() == "Master") {
    // Paper Listing 1: a bare Master as document root.
    auto pu = parse_pu(*root, ctx);
    if (pu) platform.add_master(std::move(pu));
  } else {
    return util::Error{"PDL root must be <Platform> or <Master>, got <" +
                       std::string(root->name()) + ">"};
  }

  if (platform.masters().empty()) {
    add_error(diags, "platform has no Master processing unit");
  }
  return platform;
}

util::Result<Platform> parse_platform(std::string_view xml_text, Diagnostics& diags) {
  return parse_platform(xml_text, diags, "<memory>");
}

util::Result<Platform> parse_platform_file(const std::string& path, Diagnostics& diags) {
  auto contents = util::read_file(path);
  if (!contents) return util::Error{"cannot open file", path};
  return parse_platform(*contents, diags, path);
}

util::Result<Platform> parse_platform(std::string_view xml_text) {
  Diagnostics diags;
  return parse_platform(xml_text, diags);
}

util::Result<Platform> parse_platform_file(const std::string& path) {
  Diagnostics diags;
  return parse_platform_file(path, diags);
}

}  // namespace pdl
