#include "kernels/lu.hpp"

#include <algorithm>
#include <cmath>

namespace kernels {

bool getrf_nopiv(std::size_t n, double* a, std::size_t ld) {
  for (std::size_t k = 0; k < n; ++k) {
    const double pivot = a[k * ld + k];
    if (std::abs(pivot) < 1e-300) return false;
    for (std::size_t i = k + 1; i < n; ++i) {
      a[i * ld + k] /= pivot;
      const double lik = a[i * ld + k];
      for (std::size_t j = k + 1; j < n; ++j) {
        a[i * ld + j] -= lik * a[k * ld + j];
      }
    }
  }
  return true;
}

void trsm_lln_unit(std::size_t n, std::size_t m, const double* l, std::size_t ldl,
                   double* b, std::size_t ldb) {
  // Forward substitution with implicit unit diagonal, column-block RHS.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) {
      const double lik = l[i * ldl + k];
      if (lik == 0.0) continue;
      const double* bk = b + k * ldb;
      double* bi = b + i * ldb;
      for (std::size_t j = 0; j < m; ++j) bi[j] -= lik * bk[j];
    }
  }
}

void trsm_run(std::size_t m, std::size_t n, const double* u, std::size_t ldu,
              double* b, std::size_t ldb) {
  // Row-wise back substitution: x·U = b  =>  x_j = (b_j - Σ_{k<j} x_k u_kj)/u_jj.
  for (std::size_t i = 0; i < m; ++i) {
    double* row = b + i * ldb;
    for (std::size_t j = 0; j < n; ++j) {
      double v = row[j];
      for (std::size_t k = 0; k < j; ++k) v -= row[k] * u[k * ldu + j];
      row[j] = v / u[j * ldu + j];
    }
  }
}

void trsm_run_simd(std::size_t m, std::size_t n, const double* u, std::size_t ldu,
                   double* b, std::size_t ldb) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    double* r0 = b + i * ldb;
    double* r1 = r0 + ldb;
    double* r2 = r1 + ldb;
    double* r3 = r2 + ldb;
    for (std::size_t j = 0; j < n; ++j) {
      double v0 = r0[j];
      double v1 = r1[j];
      double v2 = r2[j];
      double v3 = r3[j];
      for (std::size_t k = 0; k < j; ++k) {
        const double ukj = u[k * ldu + j];
        v0 -= r0[k] * ukj;
        v1 -= r1[k] * ukj;
        v2 -= r2[k] * ukj;
        v3 -= r3[k] * ukj;
      }
      const double inv = 1.0 / u[j * ldu + j];
      r0[j] = v0 * inv;
      r1[j] = v1 * inv;
      r2[j] = v2 * inv;
      r3[j] = v3 * inv;
    }
  }
  if (i < m) trsm_run(m - i, n, u, ldu, b + i * ldb, ldb);
}

void gemm_nn_minus(std::size_t m, std::size_t n, std::size_t k, const double* a,
                   std::size_t lda, const double* b, std::size_t ldb, double* c,
                   std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c + i * ldc;
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = a[i * lda + p];
      if (aip == 0.0) continue;
      const double* bp = b + p * ldb;
      for (std::size_t j = 0; j < n; ++j) ci[j] -= aip * bp[j];
    }
  }
}

double getrf_flops(std::size_t n) {
  const double nd = static_cast<double>(n);
  return 2.0 * nd * nd * nd / 3.0;
}

double gemm_flops_nn(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

double lu_residual(std::size_t n, const double* lu, std::size_t ldlu,
                   const double* a, std::size_t lda) {
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // (L·U)ij = Σ_k L_ik U_kj with L unit-lower, U upper.
      const std::size_t kmax = std::min(i, j);
      double sum = 0.0;
      for (std::size_t k = 0; k < kmax; ++k) {
        sum += lu[i * ldlu + k] * lu[k * ldlu + j];
      }
      // k == kmax term: L_ii = 1 when i <= j; U_jj factor when j < i.
      if (i <= j) {
        sum += lu[i * ldlu + j];  // L_ii (=1) * U_ij
      } else {
        sum += lu[i * ldlu + j] * lu[j * ldlu + j];  // L_ij * U_jj
      }
      max_err = std::max(max_err, std::abs(sum - a[i * lda + j]));
    }
  }
  return max_err;
}

}  // namespace kernels
