// Tile kernels for blocked LU factorization without pivoting
// (A = L·U, L unit-lower, U upper; Doolittle, suitable for diagonally
// dominant matrices). Complements the Cholesky tiles as the second DAG
// workload. All kernels are ld-aware.
#pragma once

#include <cstddef>

namespace kernels {

/// In-place unblocked LU of the n x n tile (no pivoting). Returns false on
/// a (near-)zero pivot.
bool getrf_nopiv(std::size_t n, double* a, std::size_t ld);

/// B := L⁻¹·B for the unit-lower n x n tile `l` and n x m tile `b`
/// (the U row-panel update).
void trsm_lln_unit(std::size_t n, std::size_t m, const double* l, std::size_t ldl,
                   double* b, std::size_t ldb);

/// B := B·U⁻¹ for the upper n x n tile `u` and m x n tile `b`
/// (the L column-panel update).
void trsm_run(std::size_t m, std::size_t n, const double* u, std::size_t ldu,
              double* b, std::size_t ldb);

/// trsm_run restructured for SIMD: four B rows solve together so each U
/// element loads once per quartet and the compiler vectorizes across the
/// four accumulator chains; divisions become one reciprocal-multiply per
/// column (last-ulp differences vs trsm_run are possible).
void trsm_run_simd(std::size_t m, std::size_t n, const double* u, std::size_t ldu,
                   double* b, std::size_t ldb);

/// C := C - A·B for tiles A (m x k), B (k x n), C (m x n).
void gemm_nn_minus(std::size_t m, std::size_t n, std::size_t k, const double* a,
                   std::size_t lda, const double* b, std::size_t ldb, double* c,
                   std::size_t ldc);

/// FLOP counts.
double getrf_flops(std::size_t n);
double gemm_flops_nn(std::size_t m, std::size_t n, std::size_t k);

/// max |(L·U)ij - Aij| where `lu` holds the packed in-place factorization
/// (unit diagonal of L implicit) and `a` the original matrix.
double lu_residual(std::size_t n, const double* lu, std::size_t ldlu,
                   const double* a, std::size_t lda);

}  // namespace kernels
