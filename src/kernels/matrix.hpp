// Row-major dense matrix helpers shared by kernels, tests and benches.
#pragma once

#include <cstddef>
#include <random>
#include <vector>

namespace kernels {

/// Owning row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Deterministic pseudo-random fill in [-1, 1].
  void fill_random(unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (auto& v : data_) v = dist(rng);
  }

  void fill(double value) {
    for (auto& v : data_) v = value;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// max |a[i] - b[i]| over two equally sized buffers.
double max_abs_diff(const double* a, const double* b, std::size_t n);

}  // namespace kernels
