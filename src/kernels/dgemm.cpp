#include "kernels/dgemm.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/matrix.hpp"
#include "util/thread_pool.hpp"

namespace kernels {

double max_abs_diff(const double* a, const double* b, std::size_t n) {
  double max_diff = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

void dgemm_naive(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 const double* b, double* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        sum += a[i * k + p] * b[p * n + j];
      }
      c[i * n + j] += sum;
    }
  }
}

namespace {

/// One register-friendly tile: C[i0..i1) x [j0..j1) += A * B over [p0..p1).
/// i-k-j ordering streams B rows and keeps the C row hot.
void dgemm_tile(std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
                std::size_t p0, std::size_t p1, std::size_t n, std::size_t k,
                const double* a, const double* b, double* c) {
  for (std::size_t i = i0; i < i1; ++i) {
    for (std::size_t p = p0; p < p1; ++p) {
      const double aip = a[i * k + p];
      const double* b_row = b + p * n;
      double* c_row = c + i * n;
      for (std::size_t j = j0; j < j1; ++j) {
        c_row[j] += aip * b_row[j];
      }
    }
  }
}

constexpr std::size_t kDefaultBlock = 64;

void dgemm_blocked_rows(std::size_t row_begin, std::size_t row_end, std::size_t n,
                        std::size_t k, const double* a, const double* b, double* c,
                        std::size_t block) {
  for (std::size_t i0 = row_begin; i0 < row_end; i0 += block) {
    const std::size_t i1 = std::min(row_end, i0 + block);
    for (std::size_t p0 = 0; p0 < k; p0 += block) {
      const std::size_t p1 = std::min(k, p0 + block);
      for (std::size_t j0 = 0; j0 < n; j0 += block) {
        const std::size_t j1 = std::min(n, j0 + block);
        dgemm_tile(i0, i1, j0, j1, p0, p1, n, k, a, b, c);
      }
    }
  }
}

/// 4x4 register-blocked micro-kernel: C[i..i+4) x [j..j+4) += A*B over
/// [p0..p1). The 16 partial sums stay in registers for the whole k extent,
/// so each C element is loaded and stored once per tile instead of once
/// per p. The j-contiguous pairs are what the compiler vectorizes.
void dgemm_micro_4x4(std::size_t i, std::size_t j, std::size_t p0,
                     std::size_t p1, std::size_t n, std::size_t k,
                     const double* a, const double* b, double* c) {
  double c00 = 0.0, c01 = 0.0, c02 = 0.0, c03 = 0.0;
  double c10 = 0.0, c11 = 0.0, c12 = 0.0, c13 = 0.0;
  double c20 = 0.0, c21 = 0.0, c22 = 0.0, c23 = 0.0;
  double c30 = 0.0, c31 = 0.0, c32 = 0.0, c33 = 0.0;
  const double* a0 = a + i * k;
  const double* a1 = a0 + k;
  const double* a2 = a1 + k;
  const double* a3 = a2 + k;
  for (std::size_t p = p0; p < p1; ++p) {
    const double* b_row = b + p * n + j;
    const double b0 = b_row[0], b1 = b_row[1], b2 = b_row[2], b3 = b_row[3];
    const double va0 = a0[p], va1 = a1[p], va2 = a2[p], va3 = a3[p];
    c00 += va0 * b0; c01 += va0 * b1; c02 += va0 * b2; c03 += va0 * b3;
    c10 += va1 * b0; c11 += va1 * b1; c12 += va1 * b2; c13 += va1 * b3;
    c20 += va2 * b0; c21 += va2 * b1; c22 += va2 * b2; c23 += va2 * b3;
    c30 += va3 * b0; c31 += va3 * b1; c32 += va3 * b2; c33 += va3 * b3;
  }
  double* c0 = c + i * n + j;
  double* c1 = c0 + n;
  double* c2 = c1 + n;
  double* c3 = c2 + n;
  c0[0] += c00; c0[1] += c01; c0[2] += c02; c0[3] += c03;
  c1[0] += c10; c1[1] += c11; c1[2] += c12; c1[3] += c13;
  c2[0] += c20; c2[1] += c21; c2[2] += c22; c2[3] += c23;
  c3[0] += c30; c3[1] += c31; c3[2] += c32; c3[3] += c33;
}

void dgemm_tiled_rows(std::size_t row_begin, std::size_t row_end, std::size_t n,
                      std::size_t k, const double* a, const double* b, double* c,
                      std::size_t block) {
  for (std::size_t i0 = row_begin; i0 < row_end; i0 += block) {
    const std::size_t i1 = std::min(row_end, i0 + block);
    for (std::size_t p0 = 0; p0 < k; p0 += block) {
      const std::size_t p1 = std::min(k, p0 + block);
      for (std::size_t j0 = 0; j0 < n; j0 += block) {
        const std::size_t j1 = std::min(n, j0 + block);
        // Interior in 4x4 micro-tiles; fringes (tile edges not divisible
        // by 4) fall back to the scalar kernel.
        const std::size_t i4 = i0 + (i1 - i0) / 4 * 4;
        const std::size_t j4 = j0 + (j1 - j0) / 4 * 4;
        for (std::size_t i = i0; i < i4; i += 4) {
          for (std::size_t j = j0; j < j4; j += 4) {
            dgemm_micro_4x4(i, j, p0, p1, n, k, a, b, c);
          }
        }
        if (j4 < j1) dgemm_tile(i0, i4, j4, j1, p0, p1, n, k, a, b, c);
        if (i4 < i1) dgemm_tile(i4, i1, j0, j1, p0, p1, n, k, a, b, c);
      }
    }
  }
}

}  // namespace

void dgemm_blocked(std::size_t m, std::size_t n, std::size_t k, const double* a,
                   const double* b, double* c, std::size_t block) {
  if (block == 0) block = kDefaultBlock;
  dgemm_blocked_rows(0, m, n, k, a, b, c, block);
}

void dgemm_tiled(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 const double* b, double* c, std::size_t block) {
  if (block == 0) block = kDefaultBlock;
  dgemm_tiled_rows(0, m, n, k, a, b, c, block);
}

void dgemm_batched_ref(std::size_t batch, std::size_t m, std::size_t n,
                       std::size_t k, const double* a, const double* b,
                       double* c) {
  for (std::size_t e = 0; e < batch; ++e) {
    dgemm_naive(m, n, k, a + e * m * k, b + e * k * n, c + e * m * n);
  }
}

void dgemm_batched_small(std::size_t batch, std::size_t m, std::size_t n,
                         std::size_t k, const double* a, const double* b,
                         double* c) {
  // Each element is assumed cache-resident, so the win over the reference
  // is purely the loop order: i-k-j streams B rows and keeps the C row hot,
  // and the j-loop (inside dgemm_tile) autovectorizes.
  for (std::size_t e = 0; e < batch; ++e) {
    dgemm_tile(0, m, 0, n, 0, k, n, k, a + e * m * k, b + e * k * n,
               c + e * m * n);
  }
}

void dgemm_mixed(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 const double* b, double* c) {
  // Demote the inputs once up front: the hot loops then move half the bytes
  // of the double kernels while C still accumulates in double. Products are
  // formed in float, so the per-element error grows linearly in k with a
  // 2^-24 rounding constant (see the header's bound).
  std::vector<float> af(m * k);
  std::vector<float> bf(k * n);
  for (std::size_t i = 0; i < m * k; ++i) af[i] = static_cast<float>(a[i]);
  for (std::size_t i = 0; i < k * n; ++i) bf[i] = static_cast<float>(b[i]);
  for (std::size_t i = 0; i < m; ++i) {
    double* crow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = af[i * k + p];
      const float* brow = bf.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += static_cast<double>(aip * brow[j]);
      }
    }
  }
}

void dgemm_parallel(std::size_t m, std::size_t n, std::size_t k, const double* a,
                    const double* b, double* c, std::size_t threads) {
  // Row bands are disjoint in C, so no synchronization beyond the joins.
  const auto run_bands = [&](pdl::util::ThreadPool& pool) {
    const std::size_t bands = pool.size();
    const std::size_t rows_per_band = (m + bands - 1) / bands;
    pool.parallel_for(0, bands, [&](std::size_t band) {
      const std::size_t row_begin = band * rows_per_band;
      const std::size_t row_end = std::min(m, row_begin + rows_per_band);
      if (row_begin < row_end) {
        dgemm_blocked_rows(row_begin, row_end, n, k, a, b, c, kDefaultBlock);
      }
    });
  };
  if (threads == 0) {
    run_bands(pdl::util::global_pool());
  } else {
    pdl::util::ThreadPool pool(threads);
    run_bands(pool);
  }
}

}  // namespace kernels
