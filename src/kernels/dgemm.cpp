#include "kernels/dgemm.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/matrix.hpp"
#include "util/thread_pool.hpp"

namespace kernels {

double max_abs_diff(const double* a, const double* b, std::size_t n) {
  double max_diff = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

void dgemm_naive(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 const double* b, double* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        sum += a[i * k + p] * b[p * n + j];
      }
      c[i * n + j] += sum;
    }
  }
}

namespace {

/// One register-friendly tile: C[i0..i1) x [j0..j1) += A * B over [p0..p1).
/// i-k-j ordering streams B rows and keeps the C row hot.
void dgemm_tile(std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
                std::size_t p0, std::size_t p1, std::size_t n, std::size_t k,
                const double* a, const double* b, double* c) {
  for (std::size_t i = i0; i < i1; ++i) {
    for (std::size_t p = p0; p < p1; ++p) {
      const double aip = a[i * k + p];
      const double* b_row = b + p * n;
      double* c_row = c + i * n;
      for (std::size_t j = j0; j < j1; ++j) {
        c_row[j] += aip * b_row[j];
      }
    }
  }
}

constexpr std::size_t kDefaultBlock = 64;

void dgemm_blocked_rows(std::size_t row_begin, std::size_t row_end, std::size_t n,
                        std::size_t k, const double* a, const double* b, double* c,
                        std::size_t block) {
  for (std::size_t i0 = row_begin; i0 < row_end; i0 += block) {
    const std::size_t i1 = std::min(row_end, i0 + block);
    for (std::size_t p0 = 0; p0 < k; p0 += block) {
      const std::size_t p1 = std::min(k, p0 + block);
      for (std::size_t j0 = 0; j0 < n; j0 += block) {
        const std::size_t j1 = std::min(n, j0 + block);
        dgemm_tile(i0, i1, j0, j1, p0, p1, n, k, a, b, c);
      }
    }
  }
}

}  // namespace

void dgemm_blocked(std::size_t m, std::size_t n, std::size_t k, const double* a,
                   const double* b, double* c, std::size_t block) {
  if (block == 0) block = kDefaultBlock;
  dgemm_blocked_rows(0, m, n, k, a, b, c, block);
}

void dgemm_parallel(std::size_t m, std::size_t n, std::size_t k, const double* a,
                    const double* b, double* c, std::size_t threads) {
  pdl::util::ThreadPool pool(threads);
  // Row bands are disjoint in C, so no synchronization beyond the joins.
  const std::size_t bands = pool.size();
  const std::size_t rows_per_band = (m + bands - 1) / bands;
  pool.parallel_for(0, bands, [&](std::size_t band) {
    const std::size_t row_begin = band * rows_per_band;
    const std::size_t row_end = std::min(m, row_begin + rows_per_band);
    if (row_begin < row_end) {
      dgemm_blocked_rows(row_begin, row_end, n, k, a, b, c, kDefaultBlock);
    }
  });
}

}  // namespace kernels
