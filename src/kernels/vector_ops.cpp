#include "kernels/vector_ops.hpp"

#include <cmath>

namespace kernels {

void vector_add(double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] += b[i];
}

void daxpy(std::size_t n, double alpha, const double* x, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double ddot(std::size_t n, const double* x, const double* y) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

double dnrm2(std::size_t n, const double* x) { return std::sqrt(ddot(n, x, x)); }

void dscal(std::size_t n, double alpha, double* x) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

}  // namespace kernels
