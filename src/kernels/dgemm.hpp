// DGEMM implementations — the task-variant repository's compute payloads.
//
// The paper's case study calls GotoBlas2 (CPU) and CuBLAS (GPU) DGEMM. We
// substitute three from-scratch variants of C = A*B + C on row-major
// double matrices (m x k times k x n):
//   * dgemm_naive    — the textbook triple loop; the "serial input program"
//   * dgemm_blocked  — cache-tiled ikj loops; the tuned single-core variant
//   * dgemm_parallel — dgemm_blocked with rows split over a thread pool
// Absolute GFLOPS are below vendor BLAS, which is irrelevant for the
// reproduction: Figure 5 reports *speedup ratios* (see DESIGN.md).
#pragma once

#include <cstddef>

namespace kernels {

/// Textbook i-j-k triple loop. C += A*B.
void dgemm_naive(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 const double* b, double* c);

/// Cache-tiled i-k-j ordering with a configurable block size (0 = default).
void dgemm_blocked(std::size_t m, std::size_t n, std::size_t k, const double* a,
                   const double* b, double* c, std::size_t block = 0);

/// Cache-tiled like dgemm_blocked, with a 4x4 register-blocked micro-kernel
/// in the interior: 16 accumulators live in registers across the full k
/// extent of a tile, quartering the C traffic of the scalar kernel. The
/// inner loop is written for autovectorization; build with
/// -DPDL_ENABLE_NATIVE_ARCH=ON to let the compiler use the host's widest
/// SIMD ISA.
void dgemm_tiled(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 const double* b, double* c, std::size_t block = 0);

/// dgemm_blocked with row-band parallelism. `threads` == 0 (the default)
/// runs on the process-wide shared pool (pdl::util::global_pool()) so
/// per-call cost is one fan-out, not a pool construction + join; a nonzero
/// `threads` spins up a dedicated pool of that size for the call.
void dgemm_parallel(std::size_t m, std::size_t n, std::size_t k, const double* a,
                    const double* b, double* c, std::size_t threads = 0);

/// Reference batched GEMM: `batch` independent C_e += A_e·B_e products on
/// densely packed operands (A at e*m*k, B at e*k*n, C at e*m*n). The
/// textbook loop per element — the correctness baseline for the optimized
/// batched variant.
void dgemm_batched_ref(std::size_t batch, std::size_t m, std::size_t n,
                       std::size_t k, const double* a, const double* b,
                       double* c);

/// Batched small-GEMM: same contract as dgemm_batched_ref, tuned for
/// elements small enough to live in cache (the many-tiny-products shape
/// batched solvers and fringe sweeps produce). Per element it runs the
/// i-k-j streaming order whose inner loop autovectorizes; no cache
/// blocking — "small" means the whole element is the block.
void dgemm_batched_small(std::size_t batch, std::size_t m, std::size_t n,
                         std::size_t k, const double* a, const double* b,
                         double* c);

/// Mixed-precision C += A*B: inputs are demoted to float once (halving the
/// memory traffic of the inner loops) while C accumulates in double. The
/// result differs from the double kernels by at most about
/// 3 * k * max|A| * max|B| * 2^-24 per element (input + product rounding);
/// callers that need full double accuracy must not select this variant —
/// it is registered under its own Idgemm_mixed interface for exactly that
/// reason.
void dgemm_mixed(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 const double* b, double* c);

/// The documented worst-case per-element absolute error dgemm_mixed adds:
/// 3 * k * max|A| * max|B| * 2^-24 (one input demotion per operand plus the
/// float product rounding, accumulated over the k extent in double). Both
/// the registered error model and the soundness property test use this
/// exact expression, so the claim checked is the claim shipped.
inline double dgemm_mixed_error_bound(std::size_t k, double max_a,
                                      double max_b) {
  return 3.0 * static_cast<double>(k) * max_a * max_b * 0x1p-24;
}

/// FLOP count of one C += A*B (2*m*n*k).
inline double dgemm_flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

/// FLOP count of a batched GEMM (batch * 2*m*n*k).
inline double dgemm_batched_flops(std::size_t batch, std::size_t m,
                                  std::size_t n, std::size_t k) {
  return static_cast<double>(batch) * dgemm_flops(m, n, k);
}

}  // namespace kernels
