// DGEMM implementations — the task-variant repository's compute payloads.
//
// The paper's case study calls GotoBlas2 (CPU) and CuBLAS (GPU) DGEMM. We
// substitute three from-scratch variants of C = A*B + C on row-major
// double matrices (m x k times k x n):
//   * dgemm_naive    — the textbook triple loop; the "serial input program"
//   * dgemm_blocked  — cache-tiled ikj loops; the tuned single-core variant
//   * dgemm_parallel — dgemm_blocked with rows split over a thread pool
// Absolute GFLOPS are below vendor BLAS, which is irrelevant for the
// reproduction: Figure 5 reports *speedup ratios* (see DESIGN.md).
#pragma once

#include <cstddef>

namespace kernels {

/// Textbook i-j-k triple loop. C += A*B.
void dgemm_naive(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 const double* b, double* c);

/// Cache-tiled i-k-j ordering with a configurable block size (0 = default).
void dgemm_blocked(std::size_t m, std::size_t n, std::size_t k, const double* a,
                   const double* b, double* c, std::size_t block = 0);

/// Cache-tiled like dgemm_blocked, with a 4x4 register-blocked micro-kernel
/// in the interior: 16 accumulators live in registers across the full k
/// extent of a tile, quartering the C traffic of the scalar kernel. The
/// inner loop is written for autovectorization; build with
/// -DPDL_ENABLE_NATIVE_ARCH=ON to let the compiler use the host's widest
/// SIMD ISA.
void dgemm_tiled(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 const double* b, double* c, std::size_t block = 0);

/// dgemm_blocked with row-band parallelism. `threads` == 0 (the default)
/// runs on the process-wide shared pool (pdl::util::global_pool()) so
/// per-call cost is one fan-out, not a pool construction + join; a nonzero
/// `threads` spins up a dedicated pool of that size for the call.
void dgemm_parallel(std::size_t m, std::size_t n, std::size_t k, const double* a,
                    const double* b, double* c, std::size_t threads = 0);

/// FLOP count of one C += A*B (2*m*n*k).
inline double dgemm_flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace kernels
