#include "kernels/cholesky.hpp"

#include <algorithm>
#include <cmath>

namespace kernels {

bool potrf(std::size_t n, double* a, std::size_t ld) {
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * ld + j];
    for (std::size_t k = 0; k < j; ++k) {
      diag -= a[j * ld + k] * a[j * ld + k];
    }
    if (diag <= 0.0) return false;
    diag = std::sqrt(diag);
    a[j * ld + j] = diag;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a[i * ld + j];
      for (std::size_t k = 0; k < j; ++k) {
        v -= a[i * ld + k] * a[j * ld + k];
      }
      a[i * ld + j] = v / diag;
    }
  }
  return true;
}

void trsm_rlt(std::size_t m, std::size_t n, const double* l, std::size_t ldl,
              double* b, std::size_t ldb) {
  // Solve X * Lᵀ = B row by row: for each row of B, forward-substitute
  // against the columns of L (Lᵀ is upper-triangular).
  for (std::size_t i = 0; i < m; ++i) {
    double* row = b + i * ldb;
    for (std::size_t j = 0; j < n; ++j) {
      double v = row[j];
      for (std::size_t k = 0; k < j; ++k) {
        v -= row[k] * l[j * ldl + k];
      }
      row[j] = v / l[j * ldl + j];
    }
  }
}

void syrk_ln(std::size_t n, std::size_t k, const double* a, std::size_t lda,
             double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = 0.0;
      const double* ai = a + i * lda;
      const double* aj = a + j * lda;
      for (std::size_t p = 0; p < k; ++p) sum += ai[p] * aj[p];
      c[i * ldc + j] -= sum;
    }
  }
}

void trsm_rlt_simd(std::size_t m, std::size_t n, const double* l, std::size_t ldl,
                   double* b, std::size_t ldb) {
  // Rows of B are independent solves, so quartets of rows share every L
  // load and give the compiler four independent accumulator chains. The
  // remainder rows fall through to the scalar kernel.
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    double* r0 = b + i * ldb;
    double* r1 = r0 + ldb;
    double* r2 = r1 + ldb;
    double* r3 = r2 + ldb;
    for (std::size_t j = 0; j < n; ++j) {
      const double* lj = l + j * ldl;
      double v0 = r0[j];
      double v1 = r1[j];
      double v2 = r2[j];
      double v3 = r3[j];
      for (std::size_t p = 0; p < j; ++p) {
        const double ljp = lj[p];
        v0 -= r0[p] * ljp;
        v1 -= r1[p] * ljp;
        v2 -= r2[p] * ljp;
        v3 -= r3[p] * ljp;
      }
      const double inv = 1.0 / lj[j];
      r0[j] = v0 * inv;
      r1[j] = v1 * inv;
      r2[j] = v2 * inv;
      r3[j] = v3 * inv;
    }
  }
  if (i < m) trsm_rlt(m - i, n, l, ldl, b + i * ldb, ldb);
}

void syrk_ln_simd(std::size_t n, std::size_t k, const double* a, std::size_t lda,
                  double* c, std::size_t ldc) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double* ai0 = a + i * lda;
    const double* ai1 = ai0 + lda;
    double* ci0 = c + i * ldc;
    double* ci1 = ci0 + ldc;
    for (std::size_t j = 0; j < i; ++j) {
      const double* aj = a + j * lda;
      double s0 = 0.0;
      double s1 = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double v = aj[p];
        s0 += ai0[p] * v;
        s1 += ai1[p] * v;
      }
      ci0[j] -= s0;
      ci1[j] -= s1;
    }
    // The 2x2 diagonal corner: only the lower-triangle entries exist.
    double d00 = 0.0;
    double d10 = 0.0;
    double d11 = 0.0;
    for (std::size_t p = 0; p < k; ++p) {
      d00 += ai0[p] * ai0[p];
      d10 += ai1[p] * ai0[p];
      d11 += ai1[p] * ai1[p];
    }
    ci0[i] -= d00;
    ci1[i] -= d10;
    ci1[i + 1] -= d11;
  }
  if (i < n) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    for (std::size_t j = 0; j <= i; ++j) {
      const double* aj = a + j * lda;
      double sum = 0.0;
      for (std::size_t p = 0; p < k; ++p) sum += ai[p] * aj[p];
      ci[j] -= sum;
    }
  }
}

void gemm_nt_minus(std::size_t m, std::size_t n, std::size_t k, const double* a,
                   std::size_t lda, const double* b, std::size_t ldb, double* c,
                   std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    for (std::size_t j = 0; j < n; ++j) {
      const double* bj = b + j * ldb;
      double sum = 0.0;
      for (std::size_t p = 0; p < k; ++p) sum += ai[p] * bj[p];
      ci[j] -= sum;
    }
  }
}

double potrf_flops(std::size_t n) {
  const double nd = static_cast<double>(n);
  return nd * nd * nd / 3.0;
}

double trsm_flops(std::size_t m, std::size_t n) {
  return static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(n);
}

double syrk_flops(std::size_t n, std::size_t k) {
  return static_cast<double>(n) * static_cast<double>(n) * static_cast<double>(k);
}

double gemm_flops_nt(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

double cholesky_residual(std::size_t n, const double* l, std::size_t ldl,
                         const double* a, std::size_t lda) {
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = 0.0;
      const std::size_t kmax = std::min(i, j);
      for (std::size_t k = 0; k <= kmax; ++k) {
        sum += l[i * ldl + k] * l[j * ldl + k];
      }
      max_err = std::max(max_err, std::abs(sum - a[i * lda + j]));
    }
  }
  return max_err;
}

}  // namespace kernels
