// Tile kernels for blocked Cholesky factorization (A = L·Lᵀ, lower).
//
// The four classic tile operations (POTRF/TRSM/SYRK/GEMM) as used by
// StarPU's flagship demo — here they are the payloads of the DAG-workload
// example and the ABL7 bench. All kernels are ld-aware (they operate on
// tiles of a larger row-major matrix, stride `ld`).
#pragma once

#include <cstddef>

namespace kernels {

/// In-place unblocked Cholesky of the n x n tile `a` (lower triangle).
/// Returns false when the tile is not positive definite.
bool potrf(std::size_t n, double* a, std::size_t ld);

/// B := B * L^-T for the n x n lower-triangular tile `l` and m x n tile
/// `b` (the panel update right-solve: column tiles below the diagonal).
void trsm_rlt(std::size_t m, std::size_t n, const double* l, std::size_t ldl,
              double* b, std::size_t ldb);

/// C := C - A·Aᵀ on the lower triangle of the n x n tile `c`,
/// with A an n x k tile (symmetric rank-k update of a diagonal tile).
void syrk_ln(std::size_t n, std::size_t k, const double* a, std::size_t lda,
             double* c, std::size_t ldc);

/// trsm_rlt restructured for SIMD: four B rows are solved together, so each
/// L element loads once per quartet and the compiler vectorizes across the
/// row accumulators. Divisions become one reciprocal-multiply per column —
/// results may differ from trsm_rlt in the last ulps.
void trsm_rlt_simd(std::size_t m, std::size_t n, const double* l, std::size_t ldl,
                   double* b, std::size_t ldb);

/// syrk_ln restructured for SIMD: two C rows update together sharing the
/// streamed A row, and the k-loops are plain dot products the compiler
/// vectorizes. Same contract as syrk_ln.
void syrk_ln_simd(std::size_t n, std::size_t k, const double* a, std::size_t lda,
                  double* c, std::size_t ldc);

/// C := C - A·Bᵀ for tiles A (m x k), B (n x k), C (m x n)
/// (the trailing update of off-diagonal tiles).
void gemm_nt_minus(std::size_t m, std::size_t n, std::size_t k, const double* a,
                   std::size_t lda, const double* b, std::size_t ldb, double* c,
                   std::size_t ldc);

/// FLOP counts (standard LAPACK conventions) for the perf models.
double potrf_flops(std::size_t n);
double trsm_flops(std::size_t m, std::size_t n);
double syrk_flops(std::size_t n, std::size_t k);
double gemm_flops_nt(std::size_t m, std::size_t n, std::size_t k);

/// Reference check helper: max |(L·Lᵀ)ij - Aij| over the lower triangle,
/// where `l` is n x n lower-triangular (upper part ignored) and `a` the
/// original matrix; both row-major with the given strides.
double cholesky_residual(std::size_t n, const double* l, std::size_t ldl,
                         const double* a, std::size_t lda);

}  // namespace kernels
