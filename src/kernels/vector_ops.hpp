// Vector kernels for the paper's Listing 3/4 vecadd example and tests.
#pragma once

#include <cstddef>

namespace kernels {

/// A[i] += B[i] — exactly the paper's annotated vectoradd(double*, double*)
/// task (A is readwrite, B is read).
void vector_add(double* a, const double* b, std::size_t n);

/// y[i] += alpha * x[i].
void daxpy(std::size_t n, double alpha, const double* x, double* y);

/// Dot product.
double ddot(std::size_t n, const double* x, const double* y);

/// Euclidean norm.
double dnrm2(std::size_t n, const double* x);

/// x[i] *= alpha.
void dscal(std::size_t n, double alpha, double* x);

}  // namespace kernels
