// Static HEFT schedule simulation: place a recorded starvm::TaskGraph onto
// the device set a PDL platform describes, entirely at analysis time.
//
// The simulator mirrors the starvm bridge's reading of the platform (same
// PU classification, same GFLOPS precedence, same MemoryRegion/Interconnect
// lookups — via pdl::props accessors) and the engine's HEFT placement
// (earliest finish time including modeled transfers), but never executes
// anything: compute costs come from a side-effect-free PerfModel probe or
// the analytic FLOPs model, transfer costs from the declared BANDWIDTH_GB_S
// / LATENCY_US. The resulting SchedulePlan carries everything the A5xx
// capacity/interference rules (capacity.hpp) and the plan-summary renderer
// need: per-task placements, per-space peak footprints, per-interconnect
// contention windows, device loads, makespan, and the critical-path lower
// bound.
//
// Determinism: ties break on the lowest device index, input order is the
// graph's submission order (a valid topological order — effective edges
// only point backward), and no wall-clock or randomness is involved, so
// identical inputs give byte-identical plans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdl/diagnostics.hpp"
#include "pdl/model.hpp"
#include "starvm/graph.hpp"
#include "starvm/perf_model.hpp"

namespace analysis {

/// One schedulable device derived from the platform (a PU instance).
struct SimDevice {
  std::string name;      ///< PU id, "#i"-suffixed when quantity > 1.
  std::string pu_path;   ///< Master/…/pu path for diagnostics.
  pdl::SourceLoc loc;    ///< The PU's source location.
  bool is_cpu = true;
  double gflops = 0.0;
  int space = 0;   ///< Index into SchedulePlan::spaces.
  int ic = -1;     ///< Index into SchedulePlan::interconnects; -1 = none.
  double link_bandwidth_gbs = 0.0;
  double link_latency_us = 0.0;
  /// False when the PU has no declared Interconnect to its controller and
  /// transfers were modeled with control-link defaults (A502).
  bool has_declared_link = true;
};

/// One memory space buffers can be resident in: the host region (index 0,
/// shared by every CPU device) or an accelerator instance's local memory.
struct SimMemorySpace {
  std::string label;     ///< "<pu path>/<region id>" or "<host>".
  pdl::SourceLoc loc;    ///< The MemoryRegion's (or owning PU's) location.
  std::string pu_path;
  std::uint64_t capacity_bytes = 0;  ///< 0 = no SIZE declared (no A501).
  std::uint64_t peak_bytes = 0;      ///< Peak modeled footprint.
  double peak_seconds = 0.0;         ///< When the peak is reached.
};

/// One declared Interconnect transfers were charged on.
struct SimInterconnect {
  std::string label;   ///< "from<->to" plus the type when declared.
  pdl::SourceLoc loc;
  int transfers = 0;               ///< Modeled transfer count.
  double busy_seconds = 0.0;       ///< Sum of window lengths.
  double contended_seconds = 0.0;  ///< Time covered by >= 2 windows.
};

/// Where and when the modeled schedule runs one task.
struct TaskPlacement {
  int device = -1;
  double start_seconds = 0.0;     ///< Transfers begin here.
  double finish_seconds = 0.0;
  double compute_seconds = 0.0;
  double transfer_seconds = 0.0;  ///< Total modeled data movement.
  std::uint64_t transfer_bytes = 0;
};

struct SchedulePlan {
  std::vector<SimDevice> devices;
  std::vector<SimMemorySpace> spaces;
  std::vector<SimInterconnect> interconnects;
  std::vector<TaskPlacement> placements;      ///< One per graph task.
  std::vector<double> device_busy_seconds;    ///< One per device.
  std::vector<int> critical_path;             ///< Task indices, in order.
  double critical_path_seconds = 0.0;  ///< Lower bound: fastest device, no transfers.
  double makespan_seconds = 0.0;
};

/// Simulate a HEFT schedule of `graph` on `platform`. `model`, when given,
/// supplies calibrated per-(codelet, device-kind) history via its
/// side-effect-free probe; without it (the static-tool case) costs are
/// purely analytic. Platforms without any executing PU fall back to the
/// Master as a single CPU device, like the starvm bridge.
SchedulePlan simulate_schedule(const starvm::TaskGraph& graph,
                               const pdl::Platform& platform,
                               const starvm::PerfModel* model = nullptr);

/// Human-readable plan summary (makespan, lower bound, critical path,
/// per-device loads, per-space peaks); deterministic, millisecond-formatted.
std::string render_plan_text(const SchedulePlan& plan,
                             const starvm::TaskGraph& graph);

}  // namespace analysis
