#include "analysis/sarif.hpp"

#include <set>
#include <vector>

#include "analysis/rules.hpp"
#include "obs/trace.hpp"

namespace analysis {

namespace {

const char* sarif_level(pdl::Severity severity) {
  switch (severity) {
    case pdl::Severity::kError: return "error";
    case pdl::Severity::kWarning: return "warning";
    case pdl::Severity::kInfo: return "note";
  }
  return "none";
}

}  // namespace

std::string render_sarif(const pdl::Diagnostics& diags) {
  using obs::json_escape;

  // Driver rule table: the catalog rules the findings reference, in
  // catalog order (stable ruleIndex regardless of finding order).
  std::set<std::string_view> referenced;
  for (const pdl::Diagnostic& d : diags) {
    if (!d.rule.empty()) referenced.insert(d.rule);
  }
  std::vector<const RuleInfo*> rules;
  for (const RuleInfo& info : rule_catalog()) {
    if (referenced.count(info.id) > 0) rules.push_back(&info);
  }
  const auto rule_index = [&rules](std::string_view id) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (id == rules[i]->id) return static_cast<int>(i);
    }
    return -1;
  };

  std::string out =
      "{\"$schema\":"
      "\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"pdlcheck\","
      "\"informationUri\":\"docs/ANALYSIS.md\",\"rules\":[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"id\":\"" + json_escape(rules[i]->id) + "\"";
    out += ",\"shortDescription\":{\"text\":\"" +
           json_escape(rules[i]->summary) + "\"}";
    out += ",\"defaultConfiguration\":{\"level\":\"" +
           std::string(sarif_level(rules[i]->default_severity)) + "\"}}";
  }
  out += "]}},\"results\":[";
  bool first = true;
  for (const pdl::Diagnostic& d : diags) {
    if (!first) out += ",";
    first = false;
    out += "{";
    if (!d.rule.empty()) {
      out += "\"ruleId\":\"" + json_escape(d.rule) + "\",";
      const int index = rule_index(d.rule);
      if (index >= 0) {
        out += "\"ruleIndex\":" + std::to_string(index) + ",";
      }
    }
    out += "\"level\":\"" + std::string(sarif_level(d.severity)) + "\"";
    out += ",\"message\":{\"text\":\"" + json_escape(d.message) + "\"}";
    out += ",\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
           "{\"uri\":\"" +
           json_escape(d.loc.file.empty() ? "<input>" : d.loc.file) + "\"}";
    if (d.loc.valid()) {
      out += ",\"region\":{\"startLine\":" + std::to_string(d.loc.line);
      if (d.loc.column > 0) {
        out += ",\"startColumn\":" + std::to_string(d.loc.column);
      }
      out += "}";
    }
    out += "}";
    if (!d.where.empty()) {
      out += ",\"logicalLocations\":[{\"fullyQualifiedName\":\"" +
             json_escape(d.where) + "\"}]";
    }
    out += "}]}";
  }
  out += "]}]}";
  return out;
}

}  // namespace analysis
