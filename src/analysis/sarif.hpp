// SARIF 2.1.0 rendering of analyzer findings, for CI code-scanning
// integration (GitHub annotates PRs from uploaded SARIF files).
//
// Like report.hpp's text/JSON formats: callers pdl::normalize() first and
// the output is byte-stable given the same findings. One run, one driver
// ("pdlcheck"); the driver's rule table holds exactly the catalog rules the
// findings reference, in catalog order, so ruleIndex is stable too.
#pragma once

#include <string>

#include "pdl/diagnostics.hpp"

namespace analysis {

/// Findings as a complete SARIF 2.1.0 document (minified JSON).
std::string render_sarif(const pdl::Diagnostics& diags);

}  // namespace analysis
