// Text format for task-graph fixtures: lets tests, fixtures and the
// `pdlcheck --graph` / `pdltool plan` CLIs describe a DAG with real byte
// sizes and FLOP counts — the inputs the A4xx/A5xx analyses need — without
// writing C++ against the TaskGraph recorder.
//
// One directive per line; '#' starts a comment; blank lines are ignored:
//
//   buffer <name> <bytes> [base]
//   tolerance <buffer> <value>
//   range <buffer> <value>
//   task <name> [flops=<double>] [read=<buffer>] [write=<buffer>]
//               [rw=<buffer>] [after=<task>]
//               [model=exact|rounding|rounding32] [coeff=<double>]
//               [eps=<double>] [depth=<double>]
//
// `buffer` registers a root allocation (`base` places it explicitly so
// aliasing can be modeled, like TaskGraph::add_buffer_at). `task` records
// one task in submission order; each read=/write=/rw= names a previously
// declared buffer, each after= a previously declared task. Sizes accept an
// optional kB/MB/GB suffix (decimal, like PDL SIZE units).
//
// The accuracy directives feed the A7xx analysis (docs/ANALYSIS.md):
// `tolerance` declares the maximum acceptable per-element absolute error of
// a buffer's final contents, `range` the maximum |value| the program feeds
// in through it. `model=` attaches the task implementation's declared error
// model — exact, rounding (double, eps 2^-53) or rounding32 (single, eps
// 2^-24) — with `coeff=`/`eps=` overriding the bound's leading constant and
// unit roundoff, and `depth=` the accumulation depth (the k of a GEMM).
// Tolerance, range, coeff, eps and depth values must be finite and > 0
// (strict util::parse_double; inf/nan/hex are syntax errors).
#pragma once

#include <string>

#include "starvm/graph.hpp"
#include "util/result.hpp"

namespace analysis {

/// Parse the fixture text; `filename` seeds the SourceLocs threaded into
/// buffers and tasks (and therefore into diagnostics).
pdl::util::Result<starvm::TaskGraph> parse_graph_text(
    const std::string& text, const std::string& filename = "<graph>");

/// Parse a fixture file from disk.
pdl::util::Result<starvm::TaskGraph> load_graph_file(const std::string& path);

}  // namespace analysis
