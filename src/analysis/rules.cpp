#include "analysis/rules.hpp"

#include <string>

namespace analysis {

const std::vector<RuleInfo>& rule_catalog() {
  using pdl::Severity;
  static const std::vector<RuleInfo> catalog = {
      {kUnreachableWorkerMemory, Severity::kWarning,
       "Worker declares MemoryRegions but no Interconnect path reaches its "
       "controlling Master; transfers fall back to modeled control links"},
      {kUnreferencedMemoryRegion, Severity::kWarning,
       "MemoryRegion the toolchain cannot consume (beyond the Worker's first "
       "sized region, or without an id)"},
      {kPropertySanity, Severity::kWarning,
       "well-known property has a non-numeric, negative or unit-less value "
       "(CORES, FREQUENCY_MHZ, BANDWIDTH_GB_S, MTBF_HOURS, SIZE, ...)"},
      {kDescriptorConsistency, Severity::kError,
       "descriptor declares the same property twice with conflicting values "
       "(or mixes fixed and unfixed declarations of one name)"},
      {kUndeclaredExtensionNamespace, Severity::kError,
       "property uses an xsi:type prefix with no xmlns declaration on the "
       "document root"},
      {kDeadVariant, Severity::kWarning,
       "task variant whose platform requirements match no PU of the target "
       "platform (it can never be selected)"},
      {kNoExecutableVariant, Severity::kError,
       "execute site whose task interface has no variant usable on the "
       "target platform (guaranteed runtime failure)"},
      {kArityMismatch, Severity::kError,
       "execute site passes a different number of arguments than the task "
       "signature declares"},
      {kVariantSignatureConflict, Severity::kError,
       "variants of one task interface disagree on parameter count or "
       "access modes"},
      {kUnknownDistributionParam, Severity::kWarning,
       "execute-site distribution names a parameter the task signature does "
       "not have"},
      {kUnknownExecutionGroup, Severity::kWarning,
       "execute site references a LogicGroupAttribute no PU of the target "
       "platform declares"},
      {kUnorderedWriteWrite, Severity::kError,
       "two tasks write the same buffer with no ordering path between them "
       "(a race under relaxed consistency)"},
      {kUnorderedReadWrite, Severity::kError,
       "one task reads what another writes with no ordering path between "
       "them (a race under relaxed consistency)"},
      {kPartitionAliasing, Severity::kError,
       "two distinct buffers over overlapping byte ranges (parent handle "
       "and its blocks, or double registration) are accessed concurrently — "
       "the engine's per-handle dependency inference cannot order them"},
      {kDependencyCycle, Severity::kError,
       "declared task dependencies form a cycle; the engine silently drops "
       "forward dependencies, so the stated ordering is unenforceable"},
      {kUnknownDependency, Severity::kWarning,
       "declared dependency references an unknown or not-yet-submitted "
       "task; the engine treats it as already satisfied"},
      {kNeverSubmittedTask, Severity::kWarning,
       "task interface has implementation variants but no execute site ever "
       "submits it"},
  };
  return catalog;
}

const RuleInfo* find_rule(std::string_view id_or_number) {
  for (const RuleInfo& rule : rule_catalog()) {
    const std::string_view id = rule.id;
    if (id == id_or_number) return &rule;
    // Bare-number form: the prefix before the first '-'.
    const auto dash = id.find('-');
    if (dash != std::string_view::npos && id.substr(0, dash) == id_or_number) {
      return &rule;
    }
  }
  return nullptr;
}

}  // namespace analysis
