#include "analysis/rules.hpp"

#include <algorithm>
#include <string>

namespace analysis {

const std::vector<RuleInfo>& rule_catalog() {
  using pdl::Severity;
  static const std::vector<RuleInfo> catalog = {
      {kUnreachableWorkerMemory, Severity::kWarning,
       "Worker declares MemoryRegions but no Interconnect path reaches its "
       "controlling Master; transfers fall back to modeled control links"},
      {kUnreferencedMemoryRegion, Severity::kWarning,
       "MemoryRegion the toolchain cannot consume (beyond the Worker's first "
       "sized region, or without an id)"},
      {kPropertySanity, Severity::kWarning,
       "well-known property has a non-numeric, negative or unit-less value "
       "(CORES, FREQUENCY_MHZ, BANDWIDTH_GB_S, MTBF_HOURS, SIZE, ...)"},
      {kDescriptorConsistency, Severity::kError,
       "descriptor declares the same property twice with conflicting values "
       "(or mixes fixed and unfixed declarations of one name)"},
      {kUndeclaredExtensionNamespace, Severity::kError,
       "property uses an xsi:type prefix with no xmlns declaration on the "
       "document root"},
      {kQuantitySanity, Severity::kWarning,
       "PU quantity above the sanity threshold (65536): likely a typo or a "
       "unit mistake; each instance becomes a scheduled device"},
      {kDeadVariant, Severity::kWarning,
       "task variant whose platform requirements match no PU of the target "
       "platform (it can never be selected)"},
      {kNoExecutableVariant, Severity::kError,
       "execute site whose task interface has no variant usable on the "
       "target platform (guaranteed runtime failure)"},
      {kArityMismatch, Severity::kError,
       "execute site passes a different number of arguments than the task "
       "signature declares"},
      {kVariantSignatureConflict, Severity::kError,
       "variants of one task interface disagree on parameter count or "
       "access modes"},
      {kUnknownDistributionParam, Severity::kWarning,
       "execute-site distribution names a parameter the task signature does "
       "not have"},
      {kUnknownExecutionGroup, Severity::kWarning,
       "execute site references a LogicGroupAttribute no PU of the target "
       "platform declares"},
      {kUnorderedWriteWrite, Severity::kError,
       "two tasks write the same buffer with no ordering path between them "
       "(a race under relaxed consistency)"},
      {kUnorderedReadWrite, Severity::kError,
       "one task reads what another writes with no ordering path between "
       "them (a race under relaxed consistency)"},
      {kPartitionAliasing, Severity::kError,
       "two distinct buffers over overlapping byte ranges (parent handle "
       "and its blocks, or double registration) are accessed concurrently — "
       "the engine's per-handle dependency inference cannot order them"},
      {kDependencyCycle, Severity::kError,
       "declared task dependencies form a cycle; the engine silently drops "
       "forward dependencies, so the stated ordering is unenforceable"},
      {kUnknownDependency, Severity::kWarning,
       "declared dependency references an unknown or not-yet-submitted "
       "task; the engine treats it as already satisfied"},
      {kNeverSubmittedTask, Severity::kWarning,
       "task interface has implementation variants but no execute site ever "
       "submits it"},
      {kMemoryCapacityExceeded, Severity::kError,
       "peak working set placed on a device by the modeled HEFT schedule "
       "exceeds the capacity its PDL MemoryRegion declares (SIZE)"},
      {kNoTransferPath, Severity::kWarning,
       "modeled schedule moves data to a device whose PU has no declared "
       "Interconnect to its controller; transfer cost falls back to "
       "control-link defaults"},
      {kTransferBoundTask, Severity::kWarning,
       "task whose modeled transfer time under declared BANDWIDTH_GB_S / "
       "LATENCY_US exceeds its modeled compute time on the chosen device"},
      {kLoadImbalance, Severity::kWarning,
       "device left idle for most of the modeled makespan while the "
       "schedule runs far above its critical-path lower bound"},
      {kInterconnectOversubscribed, Severity::kWarning,
       "declared Interconnect carries overlapping modeled transfers for a "
       "significant fraction of the makespan (contention window)"},
      {kMcDeadlock, Severity::kError,
       "an explored interleaving left submitted tasks that never completed, "
       "failed, or were cancelled (scheduler went dry with work pending)"},
      {kMcDivergentReplay, Severity::kError,
       "an explored interleaving diverged from the canonical run (output "
       "hash, replay state, or device virtual-clock monotonicity)"},
      {kMcLostTask, Severity::kError,
       "exactly-once execution violated in an explored interleaving (double "
       "execution after re-routing, or completed-and-failed)"},
      {kMcUnboundedRetryCycle, Severity::kError,
       "a task consumed more execution attempts than the retry budget "
       "allows in an explored interleaving"},
      {kToleranceExceeded, Severity::kError,
       "propagated worst-case error bound of a buffer's final contents "
       "exceeds its declared tolerance"},
      {kUnmodeledWrite, Severity::kWarning,
       "task with no declared error model writes a tolerance-carrying "
       "buffer, so its bound cannot be established"},
      {kAccumulationBlowup, Severity::kWarning,
       "long RAW chain through rounding kernels whose compound error bound "
       "dwarfs any single step (accumulation-depth blow-up)"},
      {kVacuousTolerance, Severity::kInfo,
       "buffer declares a tolerance but no input range reaches it, so the "
       "propagated bound is vacuous (declare `range` on the inputs)"},
  };
  return catalog;
}

const RuleInfo* find_rule(std::string_view id_or_number) {
  for (const RuleInfo& rule : rule_catalog()) {
    const std::string_view id = rule.id;
    if (id == id_or_number) return &rule;
    // Bare-number form: the prefix before the first '-'.
    const auto dash = id.find('-');
    if (dash != std::string_view::npos && id.substr(0, dash) == id_or_number) {
      return &rule;
    }
  }
  return nullptr;
}

namespace {

std::size_t common_prefix(std::string_view a, std::string_view b) {
  std::size_t n = 0;
  while (n < a.size() && n < b.size() && a[n] == b[n]) ++n;
  return n;
}

/// Plain Levenshtein distance; the catalog is tiny, quadratic is fine.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t above = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diagonal + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diagonal = above;
    }
  }
  return row[b.size()];
}

}  // namespace

std::string suggest_rule(std::string_view id_or_number) {
  // Users write either the bare number ("A403") or the full id; suggest in
  // the same form they used so the fix is copy-pasteable.
  const bool bare = id_or_number.find('-') == std::string_view::npos;
  std::string best;
  std::size_t best_distance = 0;
  std::size_t best_prefix = 0;
  for (const RuleInfo& rule : rule_catalog()) {
    std::string_view candidate = rule.id;
    if (bare) {
      const auto dash = candidate.find('-');
      if (dash != std::string_view::npos) candidate = candidate.substr(0, dash);
    }
    const std::size_t distance = edit_distance(id_or_number, candidate);
    // Equal-distance ties go to the candidate sharing the longer prefix
    // ("A510" suggests "A501", not "A101"), then to catalog order.
    const std::size_t prefix = common_prefix(id_or_number, candidate);
    if (best.empty() || distance < best_distance ||
        (distance == best_distance && prefix > best_prefix)) {
      best = std::string(candidate);
      best_distance = distance;
      best_prefix = prefix;
    }
  }
  // "Plausibly close": a couple of edits, scaled up for long full ids (so
  // "A510" suggests "A501", but unrelated strings suggest nothing).
  const std::size_t budget = std::max<std::size_t>(2, id_or_number.size() / 3);
  if (best_distance > budget) return {};
  return best;
}

}  // namespace analysis
