#include "analysis/capacity.hpp"

#include <cstdio>
#include <optional>
#include <string>

#include "analysis/rules.hpp"

namespace analysis {

namespace {

// Gates keeping A5xx quiet on nominal graphs (unknown FLOPs, kB buffers):
// a schedule must be clearly degenerate before we call it a finding.
constexpr double kImbalanceIdleFraction = 0.9;     // A504: busy < 10%
constexpr double kImbalanceMakespanSlack = 1.25;   // A504: 25% over the bound
constexpr double kOversubscriptionFraction = 0.1;  // A505: 10% of makespan

std::string ms(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

struct Emit {
  const AnalysisOptions& options;
  pdl::Diagnostics& diags;

  void operator()(const char* rule, std::string message, pdl::SourceLoc loc,
                  std::string where) const {
    if (!rule_enabled(options, rule)) return;
    pdl::Severity severity = pdl::Severity::kWarning;
    if (const RuleInfo* info = find_rule(rule)) {
      severity = info->default_severity;
    }
    severity = effective_severity(options, rule, severity);
    pdl::add_finding(diags, severity, rule, std::move(message), std::move(loc),
                     std::move(where));
  }
};

}  // namespace

void analyze_schedule_plan(const SchedulePlan& plan,
                           const starvm::TaskGraph& graph,
                           const AnalysisOptions& options,
                           pdl::Diagnostics& diags) {
  const Emit emit{options, diags};
  const auto& tasks = graph.tasks();

  // A501: peak modeled footprint vs declared capacity.
  for (const SimMemorySpace& space : plan.spaces) {
    if (space.capacity_bytes == 0 || space.peak_bytes <= space.capacity_bytes) {
      continue;
    }
    emit(kMemoryCapacityExceeded,
         "modeled peak working set of " + std::to_string(space.peak_bytes) +
             " B (at " + ms(space.peak_seconds) + ") exceeds the " +
             std::to_string(space.capacity_bytes) +
             " B capacity MemoryRegion '" + space.label + "' declares",
         space.loc, space.pu_path);
  }

  // A502: transfers modeled onto a device with no declared Interconnect.
  for (std::size_t d = 0; d < plan.devices.size(); ++d) {
    const SimDevice& dev = plan.devices[d];
    if (dev.is_cpu || dev.has_declared_link) continue;
    std::uint64_t moved = 0;
    for (const TaskPlacement& p : plan.placements) {
      if (p.device == static_cast<int>(d)) moved += p.transfer_bytes;
    }
    if (moved == 0) continue;
    emit(kNoTransferPath,
         "modeled schedule moves " + std::to_string(moved) + " B to device '" +
             dev.name +
             "' but its PU declares no Interconnect to its controller; "
             "transfer costs use control-link defaults",
         dev.loc, dev.pu_path);
  }

  // A503: transfer-bound tasks under the declared link parameters.
  for (std::size_t t = 0; t < plan.placements.size(); ++t) {
    const TaskPlacement& p = plan.placements[t];
    if (p.device < 0 || p.transfer_bytes == 0) continue;
    if (p.transfer_seconds <= p.compute_seconds) continue;
    const SimDevice& dev = plan.devices[static_cast<std::size_t>(p.device)];
    emit(kTransferBoundTask,
         "task '" + tasks[t].name + "' on device '" + dev.name +
             "' spends " + ms(p.transfer_seconds) + " moving " +
             std::to_string(p.transfer_bytes) + " B but only " +
             ms(p.compute_seconds) +
             " computing; transfers dominate under the declared "
             "bandwidth/latency",
         tasks[t].loc, tasks[t].name);
  }

  // A504: devices left idle by a schedule already far over its lower bound.
  if (plan.devices.size() >= 2 && plan.makespan_seconds > 0.0 &&
      tasks.size() >= 2 * plan.devices.size() &&
      plan.makespan_seconds >
          plan.critical_path_seconds * kImbalanceMakespanSlack) {
    for (std::size_t d = 0; d < plan.devices.size(); ++d) {
      const double busy = plan.device_busy_seconds[d];
      const double idle = 1.0 - busy / plan.makespan_seconds;
      if (idle <= kImbalanceIdleFraction) continue;
      char pct[32];
      std::snprintf(pct, sizeof(pct), "%.0f%%", idle * 100.0);
      emit(kLoadImbalance,
           "device '" + plan.devices[d].name + "' is idle " + pct +
               " of the modeled makespan (" + ms(plan.makespan_seconds) +
               " vs a " + ms(plan.critical_path_seconds) +
               " critical-path lower bound) — the schedule cannot use it",
           plan.devices[d].loc, plan.devices[d].pu_path);
    }
  }

  // A505: interconnect oversubscription windows.
  for (const SimInterconnect& ic : plan.interconnects) {
    if (plan.makespan_seconds <= 0.0 || ic.contended_seconds <= 0.0) continue;
    if (ic.contended_seconds <=
        kOversubscriptionFraction * plan.makespan_seconds) {
      continue;
    }
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.0f%%",
                  ic.contended_seconds / plan.makespan_seconds * 100.0);
    emit(kInterconnectOversubscribed,
         "interconnect " + ic.label + " carries overlapping transfers for " +
             ms(ic.contended_seconds) + " (" + pct +
             " of the modeled makespan, " + std::to_string(ic.transfers) +
             " transfer(s)) — concurrent tasks contend for the same link",
         ic.loc, ic.label);
  }
}

SchedulePlan analyze_schedule(const starvm::TaskGraph& graph,
                              const pdl::Platform& platform,
                              const AnalysisOptions& options,
                              pdl::Diagnostics& diags,
                              const starvm::PerfModel* model) {
  SchedulePlan plan = simulate_schedule(graph, platform, model);
  analyze_schedule_plan(plan, graph, options, diags);
  return plan;
}

}  // namespace analysis
