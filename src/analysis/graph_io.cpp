#include "analysis/graph_io.hpp"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/string_util.hpp"

namespace analysis {

namespace {

pdl::util::Error at(const std::string& filename, int line, std::string message) {
  return pdl::util::Error{std::move(message),
                          filename + ":" + std::to_string(line)};
}

/// "1024", "64kB", "2MB", "1GB" -> bytes (decimal units, like PDL SIZE).
bool parse_bytes(const std::string& token, std::uint64_t* out) {
  std::size_t end = 0;
  while (end < token.size() &&
         (std::isdigit(static_cast<unsigned char>(token[end])) != 0)) {
    ++end;
  }
  if (end == 0) return false;
  std::uint64_t value = 0;
  try {
    value = std::stoull(token.substr(0, end));
  } catch (...) {
    return false;
  }
  const std::string unit = token.substr(end);
  std::uint64_t scale = 1;
  if (unit == "kB" || unit == "KB" || unit == "kb") {
    scale = 1000;
  } else if (unit == "MB" || unit == "mb") {
    scale = 1000 * 1000;
  } else if (unit == "GB" || unit == "gb") {
    scale = 1000 * 1000 * 1000;
  } else if (!unit.empty() && unit != "B") {
    return false;
  }
  if (scale != 1 && value > UINT64_MAX / scale) return false;
  *out = value * scale;
  return true;
}

/// Strict positive finite double for tolerance/range/depth values: rejects
/// "inf", "nan", hex floats and trailing garbage via util::parse_double,
/// plus zero and negatives (a non-positive tolerance or magnitude makes
/// every A7xx bound meaningless).
bool parse_positive(const std::string& token, double* out) {
  const auto value = pdl::util::parse_double(token);
  if (!value || !(*value > 0.0)) return false;
  *out = *value;
  return true;
}

}  // namespace

pdl::util::Result<starvm::TaskGraph> parse_graph_text(
    const std::string& text, const std::string& filename) {
  starvm::TaskGraph graph;
  std::map<std::string, int> buffer_ids;
  std::map<std::string, int> task_ids;

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) continue;

    pdl::SourceLoc loc{filename, lineno, 1};
    if (directive == "buffer") {
      std::string name;
      std::string size_token;
      if (!(fields >> name >> size_token)) {
        return at(filename, lineno, "buffer needs: buffer <name> <bytes> [base]");
      }
      if (buffer_ids.count(name) > 0) {
        return at(filename, lineno, "duplicate buffer '" + name + "'");
      }
      std::uint64_t bytes = 0;
      if (!parse_bytes(size_token, &bytes)) {
        return at(filename, lineno,
                  "bad size '" + size_token + "' (want bytes, kB, MB or GB)");
      }
      std::string base_token;
      int id = -1;
      if (fields >> base_token) {
        std::uint64_t base = 0;
        if (!parse_bytes(base_token, &base)) {
          return at(filename, lineno, "bad base '" + base_token + "'");
        }
        id = graph.add_buffer_at(name, base, bytes, loc);
        if (id < 0) {
          return at(filename, lineno,
                    "buffer '" + name + "' wraps past 2^64 (base + bytes)");
        }
      } else {
        id = graph.add_buffer(name, bytes, loc);
      }
      buffer_ids[name] = id;
      continue;
    }

    if (directive == "tolerance" || directive == "range") {
      std::string name;
      std::string value_token;
      if (!(fields >> name >> value_token)) {
        return at(filename, lineno,
                  directive + " needs: " + directive + " <buffer> <value>");
      }
      std::string extra;
      if (fields >> extra) {
        return at(filename, lineno, "trailing token '" + extra + "' after " +
                                        directive + " value");
      }
      const auto it = buffer_ids.find(name);
      if (it == buffer_ids.end()) {
        return at(filename, lineno, directive + " on unknown buffer '" + name +
                                        "' (declare the buffer first)");
      }
      double value = 0.0;
      if (!parse_positive(value_token, &value)) {
        return at(filename, lineno, "bad " + directive + " '" + value_token +
                                        "' (want a finite value > 0)");
      }
      const starvm::GraphBuffer& buf =
          graph.buffers()[static_cast<std::size_t>(it->second)];
      if (directive == "tolerance") {
        if (buf.has_tolerance) {
          return at(filename, lineno,
                    "duplicate tolerance for buffer '" + name + "'");
        }
        graph.set_buffer_tolerance(it->second, value, loc);
      } else {
        if (buf.has_range) {
          return at(filename, lineno,
                    "duplicate range for buffer '" + name + "'");
        }
        graph.set_buffer_range(it->second, value);
      }
      continue;
    }

    if (directive == "task") {
      std::string name;
      if (!(fields >> name)) {
        return at(filename, lineno, "task needs: task <name> [key=value...]");
      }
      if (task_ids.count(name) > 0) {
        return at(filename, lineno, "duplicate task '" + name + "'");
      }
      std::vector<starvm::GraphAccess> accesses;
      std::vector<int> deps;
      double flops = 0.0;
      starvm::ErrorModel model;
      double coeff = 0.0;  // 0 = not given
      double eps = 0.0;
      double depth = 0.0;
      std::string option;
      while (fields >> option) {
        const auto eq = option.find('=');
        if (eq == std::string::npos) {
          return at(filename, lineno, "bad task option '" + option +
                                          "' (want key=value)");
        }
        const std::string key = option.substr(0, eq);
        const std::string value = option.substr(eq + 1);
        if (key == "read" || key == "write" || key == "rw") {
          const auto it = buffer_ids.find(value);
          if (it == buffer_ids.end()) {
            return at(filename, lineno, "unknown buffer '" + value + "'");
          }
          starvm::Access mode = starvm::Access::kRead;
          if (key == "write") mode = starvm::Access::kWrite;
          if (key == "rw") mode = starvm::Access::kReadWrite;
          accesses.push_back({it->second, mode});
        } else if (key == "after") {
          const auto it = task_ids.find(value);
          if (it == task_ids.end()) {
            return at(filename, lineno, "unknown task '" + value + "'");
          }
          deps.push_back(it->second);
        } else if (key == "flops") {
          try {
            flops = std::stod(value);
          } catch (...) {
            return at(filename, lineno, "bad flops '" + value + "'");
          }
          if (flops < 0.0) {
            return at(filename, lineno, "negative flops '" + value + "'");
          }
        } else if (key == "model") {
          if (model.specified()) {
            return at(filename, lineno, "duplicate model for task '" + name + "'");
          }
          if (value == "exact") {
            model = starvm::ErrorModel::exact();
          } else if (value == "rounding") {
            model = starvm::ErrorModel::rounding(
                1.0, starvm::ErrorModel::kUlpDouble);
          } else if (value == "rounding32") {
            model = starvm::ErrorModel::rounding(
                1.0, starvm::ErrorModel::kUlpSingle);
          } else {
            return at(filename, lineno,
                      "bad model '" + value +
                          "' (want exact, rounding or rounding32)");
          }
        } else if (key == "coeff") {
          if (!parse_positive(value, &coeff)) {
            return at(filename, lineno,
                      "bad coeff '" + value + "' (want a finite value > 0)");
          }
        } else if (key == "eps") {
          if (!parse_positive(value, &eps)) {
            return at(filename, lineno,
                      "bad eps '" + value + "' (want a finite value > 0)");
          }
        } else if (key == "depth") {
          if (!parse_positive(value, &depth)) {
            return at(filename, lineno,
                      "bad depth '" + value + "' (want a finite value > 0)");
          }
        } else {
          return at(filename, lineno,
                    "unknown task option '" + key +
                        "' (want read/write/rw/after/flops/model/coeff/eps/"
                        "depth)");
        }
      }
      // coeff=/eps= refine a rounding model; without one they would be
      // silently dead, which is exactly the typo class this format rejects.
      if ((coeff > 0.0 || eps > 0.0) &&
          model.kind != starvm::ErrorModel::Kind::kRounding) {
        return at(filename, lineno,
                  "coeff=/eps= need model=rounding or model=rounding32");
      }
      if (coeff > 0.0) model.coefficient = coeff;
      if (eps > 0.0) model.epsilon = eps;
      const int id =
          graph.add_task(name, std::move(accesses), std::move(deps), loc);
      graph.set_task_flops(id, flops);
      if (model.specified()) graph.set_task_error_model(id, model);
      if (depth > 0.0) graph.set_task_depth(id, depth);
      task_ids[name] = id;
      continue;
    }

    return at(filename, lineno, "unknown directive '" + directive +
                                    "' (want buffer, tolerance, range or task)");
  }
  return graph;
}

pdl::util::Result<starvm::TaskGraph> load_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return pdl::util::Error{"cannot open graph file", path};
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_graph_text(text.str(), path);
}

}  // namespace analysis
