// Model-vs-measured critical-path profiler (the observability counterpart
// of schedule_sim): take the trace of a finished engine run, attribute each
// task's span to queue wait / transfer / compute / runtime overhead,
// extract the *measured* critical path by walking finish -> ready edges
// backwards, and diff the result against the modeled SchedulePlan the A5xx
// simulator predicted for the same graph and platform.
//
// The drift table is the paper's feedback loop made concrete: PDL declares
// SUSTAINED_GFLOPS per PU; the profiler reports, per (codelet label,
// device), the rate the run actually achieved — a declared rate that is
// consistently wrong is a platform-description bug, not a runtime bug.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/schedule_sim.hpp"
#include "pdl/model.hpp"
#include "starvm/graph.hpp"
#include "starvm/perf_store.hpp"
#include "starvm/stats.hpp"
#include "util/result.hpp"

namespace analysis {

/// One executed task with its span attributed to where the time went.
/// Invariant: finish - ready == queue_wait + overhead + transfer + compute
/// (up to clamping of a negative queue wait, which indicates an untracked
/// ready time rather than real anticipation).
struct TaskProfile {
  starvm::TaskId id = 0;
  std::string label;
  starvm::DeviceId device = -1;
  std::string device_name;
  double ready_seconds = 0.0;   ///< Every dependency finished here.
  double start_seconds = 0.0;   ///< Execution began (after overhead).
  double finish_seconds = 0.0;
  double queue_wait_seconds = 0.0;  ///< Device contention: dispatch - ready.
  double overhead_seconds = 0.0;    ///< EngineConfig::task_overhead_us.
  double transfer_seconds = 0.0;
  double compute_seconds = 0.0;
  bool on_critical_path = false;
};

/// Why a critical-path step had to wait for its predecessor.
enum class CriticalEdge {
  kStart,       ///< First step of the path.
  kDependency,  ///< Waited for a dependency to finish (ready-bound).
  kDevice,      ///< Waited for its device to drain earlier work.
};

const char* to_string(CriticalEdge edge);

/// One step of the measured critical path, in execution order.
struct CriticalStep {
  int task = -1;  ///< Index into RunProfile::tasks.
  CriticalEdge edge = CriticalEdge::kStart;
};

/// Achieved vs declared compute rate for one (task label, device) pair.
struct RateDrift {
  std::string label;
  starvm::DeviceId device = -1;
  std::string device_name;
  std::uint64_t tasks = 0;
  double flops = 0.0;
  double exec_seconds = 0.0;
  double measured_gflops = 0.0;
  double declared_gflops = 0.0;  ///< 0 = no declared rate to compare with.
  /// measured / declared; 0 when either side is unknown. 1.0 means the
  /// platform description told the truth.
  double drift_ratio = 0.0;
  /// Learned EMA rate from a persisted perf store (apply_store_rates);
  /// 0 = the store holds no entry for this (label, device).
  double store_gflops = 0.0;
  /// measured / store-learned; a ratio far from 1.0 flags a decayed store
  /// entry (the machine, or the kernel, changed since it was learned).
  double store_drift_ratio = 0.0;
};

struct RunProfile {
  std::vector<TaskProfile> tasks;        ///< Virtual-clock order.
  std::vector<CriticalStep> critical_path;
  double makespan_seconds = 0.0;
  // Attribution summed over the critical path only: where the makespan
  // actually went.
  double critical_queue_wait_seconds = 0.0;
  double critical_overhead_seconds = 0.0;
  double critical_transfer_seconds = 0.0;
  double critical_compute_seconds = 0.0;
  std::vector<RateDrift> drift;  ///< Sorted by label, then device.
  std::uint64_t flight_records = 0;
  std::uint64_t flight_overwritten = 0;
};

/// Profile a finished run from its statistics (call after wait_all()).
RunProfile profile_run(const starvm::EngineStats& stats);

/// Annotate the drift table with the learned rates of a persisted perf
/// store (RateDrift::store_gflops / store_drift_ratio): the third column of
/// the feedback loop — declared (PDL), learned (store), measured (this
/// run). The caller is responsible for having matched the store's
/// descriptor hash to the platform.
void apply_store_rates(RunProfile& profile,
                       const starvm::perf_store::Store& store);

/// Modeled vs measured, aggregated by task name (robust to the two sides
/// decomposing work differently: all same-named tasks pool together).
struct ModelComparison {
  struct NameDelta {
    std::string name;
    std::uint64_t modeled_tasks = 0;
    std::uint64_t measured_tasks = 0;
    double modeled_seconds = 0.0;   ///< Sum of placement spans.
    double measured_seconds = 0.0;  ///< Sum of start->finish spans.
    /// measured / modeled; 0 when either side never saw the name.
    double ratio = 0.0;
  };
  std::vector<NameDelta> tasks;  ///< Sorted by name.
  double modeled_makespan_seconds = 0.0;
  double measured_makespan_seconds = 0.0;
  double modeled_critical_seconds = 0.0;  ///< Plan's lower bound.
};

/// Diff a measured profile against the schedule the simulator predicted
/// for `graph` (names come from the graph's tasks / the trace's labels).
ModelComparison diff_against_plan(const RunProfile& profile,
                                  const SchedulePlan& plan,
                                  const starvm::TaskGraph& graph);

/// Execute a recorded graph on a platform for real (pure-sim engine built
/// through the PDL bridge, one synthetic codelet per task, deterministic)
/// and return the run's statistics for profiling. Fails when the bridge
/// rejects the platform.
pdl::util::Result<starvm::EngineStats> run_graph_on_platform(
    const starvm::TaskGraph& graph, const pdl::Platform& platform);

/// Human-readable report: critical path with per-step attribution, the
/// makespan breakdown, and the rate-drift table. Deterministic.
std::string render_profile_text(const RunProfile& profile);

/// Human-readable model-vs-measured table.
std::string render_comparison_text(const ModelComparison& comparison);

}  // namespace analysis
