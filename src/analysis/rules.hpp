// The pdlcheck rule catalog: stable ids, default severities and one-line
// summaries for every cross-layer static-analysis rule.
//
// Rule id scheme (docs/ANALYSIS.md has the full catalog with examples):
//   A1xx  PDL platform lint beyond the structural validator's V1-V12
//   A3xx  program-platform matching (Cascabel pragmas vs the target PDL)
//   A4xx  task-graph analysis (hazards, aliasing, cycles)
//   A5xx  schedule-aware capacity & interference analysis (modeled HEFT)
// Ids are of the form "A301-dead-variant"; user-facing options accept the
// full id or the bare number ("A301").
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pdl/diagnostics.hpp"

namespace analysis {

struct RuleInfo {
  const char* id;  ///< Full stable id, e.g. "A301-dead-variant".
  pdl::Severity default_severity = pdl::Severity::kWarning;
  const char* summary;  ///< One line for --list-rules and the docs.
};

/// Every rule pdlcheck knows, in id order.
const std::vector<RuleInfo>& rule_catalog();

/// Catalog entry by full id or bare number ("A301-dead-variant" or "A301");
/// nullptr when unknown.
const RuleInfo* find_rule(std::string_view id_or_number);

/// The catalog id closest to a misspelled rule id (edit distance over the
/// form the user wrote: bare numbers compare against bare numbers, full ids
/// against full ids). Empty when nothing is plausibly close — tools use
/// this for "unknown rule 'A999'; did you mean 'A403'?" errors.
std::string suggest_rule(std::string_view id_or_number);

// Full rule ids, shared between the analyzer and its tests.
inline constexpr const char* kUnreachableWorkerMemory = "A101-unreachable-worker-memory";
inline constexpr const char* kUnreferencedMemoryRegion = "A102-unreferenced-memory-region";
inline constexpr const char* kPropertySanity = "A103-property-sanity";
inline constexpr const char* kDescriptorConsistency = "A104-descriptor-consistency";
inline constexpr const char* kUndeclaredExtensionNamespace =
    "A105-undeclared-extension-namespace";
inline constexpr const char* kQuantitySanity = "A106-quantity-sanity";
inline constexpr const char* kDeadVariant = "A301-dead-variant";
inline constexpr const char* kNoExecutableVariant = "A302-no-executable-variant";
inline constexpr const char* kArityMismatch = "A303-arity-mismatch";
inline constexpr const char* kVariantSignatureConflict =
    "A304-variant-signature-conflict";
inline constexpr const char* kUnknownDistributionParam =
    "A305-unknown-distribution-param";
inline constexpr const char* kUnknownExecutionGroup = "A306-unknown-execution-group";
inline constexpr const char* kUnorderedWriteWrite = "A401-unordered-write-write";
inline constexpr const char* kUnorderedReadWrite = "A402-unordered-read-write";
inline constexpr const char* kPartitionAliasing = "A403-partition-aliasing";
inline constexpr const char* kDependencyCycle = "A404-dependency-cycle";
inline constexpr const char* kUnknownDependency = "A405-unknown-dependency";
inline constexpr const char* kNeverSubmittedTask = "A406-never-submitted-task";
inline constexpr const char* kMemoryCapacityExceeded = "A501-memory-capacity-exceeded";
inline constexpr const char* kNoTransferPath = "A502-no-transfer-path";
inline constexpr const char* kTransferBoundTask = "A503-transfer-bound-task";
inline constexpr const char* kLoadImbalance = "A504-load-imbalance";
inline constexpr const char* kInterconnectOversubscribed =
    "A505-interconnect-oversubscribed";

// A6xx — model-checking findings (docs/MODEL_CHECKING.md): safety
// invariants the starmc explorer checks at every terminal state of the
// deterministic engine's reduced interleaving space. Each finding carries a
// replayable decision trace as its evidence.
inline constexpr const char* kMcDeadlock = "A601-deadlock";
inline constexpr const char* kMcDivergentReplay = "A602-divergent-replay";
inline constexpr const char* kMcLostTask = "A603-lost-task";
inline constexpr const char* kMcUnboundedRetryCycle =
    "A604-unbounded-retry-cycle";

// A7xx — numerical-accuracy analysis (docs/ANALYSIS.md "Accuracy rules"):
// forward error-bound propagation over the task graph's RAW edges using the
// declared per-task error models and per-buffer tolerance/range directives.
inline constexpr const char* kToleranceExceeded = "A701-tolerance-exceeded";
inline constexpr const char* kUnmodeledWrite = "A702-unmodeled-write";
inline constexpr const char* kAccumulationBlowup = "A703-accumulation-blowup";
inline constexpr const char* kVacuousTolerance = "A704-vacuous-tolerance";

}  // namespace analysis
