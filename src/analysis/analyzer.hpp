// The cross-layer static analyzer behind pdlcheck, `pdltool lint` and
// `cascabelc --analyze`: rule-based checks over (a) PDL platform
// descriptions, (b) annotated Cascabel programs matched against a target
// platform, and (c) statically extracted task graphs.
//
// Each layer is a pure function from inputs to pdl::Diagnostics entries
// carrying a stable rule id (see rules.hpp) and a real source location;
// callers normalize() the sink before rendering (report.hpp).
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>

#include "annot/annotated_program.hpp"
#include "cascabel/repository.hpp"
#include "pdl/diagnostics.hpp"
#include "pdl/model.hpp"
#include "starvm/graph.hpp"

namespace analysis {

/// Per-run configuration: rule enablement, severity overrides, and the
/// consistency model assumed for hazard analysis.
struct AnalysisOptions {
  /// Full rule id -> forced severity (from `--rule <id>=<severity>`).
  std::map<std::string, pdl::Severity, std::less<>> severity_overrides;
  /// Rules turned off entirely (from `--rule <id>=off`).
  std::set<std::string, std::less<>> disabled;
  /// Analyze hazards as a relaxed-consistency runtime would see them: only
  /// explicitly declared dependencies order tasks, so same-buffer conflicts
  /// without an explicit edge are races (A401/A402). Off by default because
  /// starvm's engine enforces sequential consistency per buffer.
  bool relaxed = false;
};

/// False when the rule is disabled by the options.
bool rule_enabled(const AnalysisOptions& options, std::string_view rule);

/// The severity a finding of `rule` should carry: the per-run override if
/// present, otherwise `fallback` (normally the catalog default).
pdl::Severity effective_severity(const AnalysisOptions& options, std::string_view rule,
                                 pdl::Severity fallback);

// --- Layer (a): PDL platform lint (rules A1xx) ------------------------------

void analyze_platform(const pdl::Platform& platform, const AnalysisOptions& options,
                      pdl::Diagnostics& diags);

// --- Layer (b): program-platform matching (rules A3xx) ----------------------

/// Match every repository variant and every execute site of `program`
/// against `target`. The repository must already hold the program's
/// variants (plus any expert variants to consider).
void analyze_program(const cascabel::AnnotatedProgram& program,
                     const cascabel::TaskRepository& repository,
                     const pdl::Platform& target, const AnalysisOptions& options,
                     pdl::Diagnostics& diags);

// --- Layer (c): task-graph analysis (rules A4xx) ----------------------------

/// Extract the static task graph of an annotated program: one task per
/// execute site (accesses resolved positionally against the interface's
/// signature), one buffer per distinct argument expression.
starvm::TaskGraph graph_from_program(const cascabel::AnnotatedProgram& program,
                                     const cascabel::TaskRepository& repository);

void analyze_task_graph(const starvm::TaskGraph& graph, const AnalysisOptions& options,
                        pdl::Diagnostics& diags);

}  // namespace analysis
