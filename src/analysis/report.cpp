#include "analysis/report.hpp"

#include "obs/trace.hpp"

namespace analysis {

ReportSummary summarize(const pdl::Diagnostics& diags) {
  ReportSummary summary;
  for (const pdl::Diagnostic& d : diags) {
    switch (d.severity) {
      case pdl::Severity::kError: ++summary.errors; break;
      case pdl::Severity::kWarning: ++summary.warnings; break;
      case pdl::Severity::kInfo: ++summary.infos; break;
    }
  }
  return summary;
}

std::string render_text(const pdl::Diagnostics& diags) {
  std::string out;
  for (const pdl::Diagnostic& d : diags) {
    out += d.str() + "\n";
  }
  const ReportSummary summary = summarize(diags);
  out += std::to_string(summary.errors) + " error(s), " +
         std::to_string(summary.warnings) + " warning(s)";
  if (summary.infos > 0) out += ", " + std::to_string(summary.infos) + " note(s)";
  out += "\n";
  return out;
}

std::string render_json(const pdl::Diagnostics& diags) {
  using obs::json_escape;
  std::string out = "{\"version\":1,\"findings\":[";
  bool first = true;
  for (const pdl::Diagnostic& d : diags) {
    if (!first) out += ",";
    first = false;
    out += "{\"severity\":\"" + std::string(pdl::to_string(d.severity)) + "\"";
    out += ",\"rule\":\"" + json_escape(d.rule) + "\"";
    out += ",\"file\":\"" + json_escape(d.loc.file) + "\"";
    out += ",\"line\":" + std::to_string(d.loc.line);
    out += ",\"col\":" + std::to_string(d.loc.column);
    out += ",\"where\":\"" + json_escape(d.where) + "\"";
    out += ",\"message\":\"" + json_escape(d.message) + "\"}";
  }
  const ReportSummary summary = summarize(diags);
  out += "],\"summary\":{\"errors\":" + std::to_string(summary.errors) +
         ",\"warnings\":" + std::to_string(summary.warnings) +
         ",\"infos\":" + std::to_string(summary.infos) + "}}";
  return out;
}

int exit_code(const pdl::Diagnostics& diags, bool werror) {
  const ReportSummary summary = summarize(diags);
  if (summary.errors > 0) return 1;
  if (werror && summary.warnings > 0) return 1;
  return 0;
}

}  // namespace analysis
