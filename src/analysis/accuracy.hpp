// Layer (e) of the cross-layer analyzer: static numerical-accuracy rules
// (A7xx) — a forward error-bound dataflow analysis over the task graph.
//
// Every task carries a declared error model (starvm::ErrorModel, attached
// via graph `model=`/`coeff=`/`eps=` options or Codelet/TaskVariant
// metadata) claiming that one execution adds at most
//
//     coefficient * depth * (product of input magnitudes) * epsilon
//
// of absolute error per output element. Buffers carry declared magnitude
// ranges (`range`, the maximum |value| fed in) and tolerances
// (`tolerance`, the maximum acceptable error of the final contents). The
// analysis walks tasks in submission order — a topological order of the
// RAW edges Engine::submit would infer — propagating, per buffer, a
// worst-case absolute error bound E and a magnitude bound R under
// multiply-accumulate semantics: a task with pure-read inputs r1..rn and
// accumulation depth d contributes
//
//     R_out += d * prod_i R_ri                      (magnitude growth)
//     E_out += d * sum_i (E_ri * prod_{j!=i} R_rj)  (amplified input error)
//              + coefficient * d * prod_i R_ri * epsilon   (own rounding)
//
// to each written buffer (write replaces the running bounds, rw adds to
// them). For the mixed-precision DGEMM (coefficient 3, epsilon 2^-24,
// d = k) this reproduces the kernel's documented closed-form bound
// 3·k·max|A|·max|B|·2^-24 exactly.
//
//   A701  propagated bound of a tolerance-carrying buffer exceeds the
//         declared tolerance (error)
//   A702  task with no declared error model writes a tolerance-carrying
//         buffer — the bound cannot be established (warning)
//   A703  accumulation-depth blow-up: a RAW chain of >= 4 rounding tasks
//         whose compound bound exceeds 8x its largest single step; the
//         chain is reported as the finding's logical location so SARIF
//         viewers can render the path (warning)
//   A704  tolerance declared but no input range reaches the buffer, so
//         the propagated bound is vacuous (info)
//
// docs/ANALYSIS.md has the worked mixed-precision example.
#pragma once

#include "analysis/analyzer.hpp"

namespace analysis {

/// Run the A7xx rules over a recorded task graph. `epsilon_floor` (>= 0)
/// lifts every rounding model's unit roundoff to at least this value — the
/// platform's declared ACCURACY property (see accuracy_epsilon_floor), so a
/// program analyzed against an fp32-native platform is bounded by fp32
/// arithmetic no matter what the kernels claim. Exact models stay exact.
void analyze_accuracy(const starvm::TaskGraph& graph,
                      const AnalysisOptions& options, pdl::Diagnostics& diags,
                      double epsilon_floor = 0.0);

/// The platform's accuracy floor: the largest ACCURACY value (unit roundoff
/// of a PU's native arithmetic, a PDL base property) declared by any PU —
/// conservative because a dynamic scheduler may place any task on any
/// capable PU. 0 when no PU declares ACCURACY.
double accuracy_epsilon_floor(const pdl::Platform& platform);

}  // namespace analysis
