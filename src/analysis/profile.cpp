#include "analysis/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <sstream>
#include <utility>

#include "starvm/bridge.hpp"
#include "starvm/codelet.hpp"
#include "starvm/engine.hpp"

namespace analysis {

namespace {

/// Fixed-format milliseconds; deterministic across platforms.
std::string ms(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f ms", seconds * 1e3);
  return buf;
}

std::string gf(double gflops) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f", gflops);
  return buf;
}

std::string ratio2(double r) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f", r);
  return buf;
}

/// Codelet identity for aggregation: the translator stamps each expanded
/// call-site instance as "Idgemm[17]"; the static model only ever sees the
/// un-expanded "Idgemm". Stripping the trailing "[...]" lets drift and
/// model-vs-measured rows line up per codelet instead of per instance.
std::string base_label(const std::string& label) {
  if (!label.empty() && label.back() == ']') {
    const std::size_t open = label.rfind('[');
    if (open != std::string::npos && open > 0) {
      return label.substr(0, open);
    }
  }
  return label;
}

}  // namespace

const char* to_string(CriticalEdge edge) {
  switch (edge) {
    case CriticalEdge::kStart: return "start";
    case CriticalEdge::kDependency: return "dependency";
    case CriticalEdge::kDevice: return "device";
  }
  return "?";
}

RunProfile profile_run(const starvm::EngineStats& stats) {
  RunProfile profile;
  const double overhead = stats.task_overhead_us * 1e-6;
  profile.makespan_seconds = stats.makespan_seconds;
  profile.flight_records = stats.flight_records;
  profile.flight_overwritten = stats.flight_overwritten;

  profile.tasks.reserve(stats.trace.size());
  for (const starvm::TaskTrace& t : stats.trace) {
    TaskProfile p;
    p.id = t.id;
    p.label = t.label;
    p.device = t.device;
    if (t.device >= 0 &&
        static_cast<std::size_t>(t.device) < stats.devices.size()) {
      p.device_name = stats.devices[static_cast<std::size_t>(t.device)].name;
    }
    p.ready_seconds = t.ready_vtime;
    p.start_seconds = t.start_vtime;
    p.finish_seconds = t.finish_vtime;
    p.overhead_seconds = overhead;
    p.transfer_seconds = t.transfer_seconds;
    p.compute_seconds = t.exec_seconds;
    // start = max(device available, ready) + overhead, so everything between
    // ready and (start - overhead) is time spent queued behind other work.
    p.queue_wait_seconds =
        std::max(0.0, t.start_vtime - overhead - t.ready_vtime);
    profile.tasks.push_back(std::move(p));
  }
  if (profile.tasks.empty()) return profile;

  // --- Measured critical path: walk backwards from the last finisher. ------
  // At every step decide why the task started when it did: if dispatch time
  // (start - overhead) coincides with its ready time, a dependency was the
  // constraint — follow the predecessor whose finish set that ready time.
  // Otherwise the device was busy — follow the latest task on the same
  // device that finished by dispatch time.
  const double eps = 1e-9 * std::max(1.0, profile.makespan_seconds) + 1e-12;
  int cur = 0;
  for (std::size_t i = 1; i < profile.tasks.size(); ++i) {
    if (profile.tasks[i].finish_seconds >
        profile.tasks[static_cast<std::size_t>(cur)].finish_seconds) {
      cur = static_cast<int>(i);
    }
  }
  std::vector<CriticalStep> reversed;
  CriticalEdge incoming = CriticalEdge::kStart;  // why the *current* step waited
  for (std::size_t guard = 0; guard <= profile.tasks.size(); ++guard) {
    const TaskProfile& t = profile.tasks[static_cast<std::size_t>(cur)];
    const double dispatch = t.start_seconds - t.overhead_seconds;
    int pred = -1;
    CriticalEdge edge = CriticalEdge::kStart;
    if (t.ready_seconds > eps && dispatch <= t.ready_seconds + eps) {
      // Ready-bound: the predecessor is whichever task's finish equals the
      // ready time (ready_vtime is the max over dependency finishes).
      for (std::size_t j = 0; j < profile.tasks.size(); ++j) {
        if (static_cast<int>(j) == cur) continue;
        const double f = profile.tasks[j].finish_seconds;
        if (f <= t.ready_seconds + eps && f >= t.ready_seconds - eps &&
            (pred < 0 ||
             f > profile.tasks[static_cast<std::size_t>(pred)].finish_seconds)) {
          pred = static_cast<int>(j);
        }
      }
      if (pred >= 0) edge = CriticalEdge::kDependency;
    }
    if (pred < 0 && dispatch > eps) {
      // Device-bound: the device drained earlier work until dispatch time.
      for (std::size_t j = 0; j < profile.tasks.size(); ++j) {
        if (static_cast<int>(j) == cur) continue;
        const TaskProfile& c = profile.tasks[j];
        if (c.device != t.device || c.finish_seconds > dispatch + eps) continue;
        if (pred < 0 ||
            c.finish_seconds >
                profile.tasks[static_cast<std::size_t>(pred)].finish_seconds) {
          pred = static_cast<int>(j);
        }
      }
      if (pred >= 0) edge = CriticalEdge::kDevice;
    }
    reversed.push_back(CriticalStep{cur, incoming});
    if (pred < 0) break;
    incoming = edge;
    cur = pred;
  }
  profile.critical_path.assign(reversed.rbegin(), reversed.rend());
  // The walk recorded, at each step, why its *successor* waited; after the
  // reversal the first step is the path's origin.
  if (!profile.critical_path.empty()) {
    for (std::size_t i = profile.critical_path.size(); i-- > 1;) {
      profile.critical_path[i].edge = profile.critical_path[i - 1].edge;
    }
    profile.critical_path.front().edge = CriticalEdge::kStart;
  }
  for (const CriticalStep& step : profile.critical_path) {
    TaskProfile& t = profile.tasks[static_cast<std::size_t>(step.task)];
    t.on_critical_path = true;
    profile.critical_queue_wait_seconds += t.queue_wait_seconds;
    profile.critical_overhead_seconds += t.overhead_seconds;
    profile.critical_transfer_seconds += t.transfer_seconds;
    profile.critical_compute_seconds += t.compute_seconds;
  }

  // --- Rate drift per (codelet, device). -----------------------------------
  std::map<std::pair<std::string, starvm::DeviceId>, RateDrift> drift;
  for (const TaskProfile& t : profile.tasks) {
    RateDrift& d = drift[{base_label(t.label), t.device}];
    d.label = base_label(t.label);
    d.device = t.device;
    d.device_name = t.device_name;
    ++d.tasks;
    d.exec_seconds += t.compute_seconds;
  }
  for (const starvm::TaskTrace& t : stats.trace) {
    drift[{base_label(t.label), t.device}].flops += t.flops;
  }
  for (auto& [key, d] : drift) {
    if (d.exec_seconds > 0.0 && d.flops > 0.0) {
      d.measured_gflops = d.flops / d.exec_seconds / 1e9;
    }
    if (d.device >= 0 &&
        static_cast<std::size_t>(d.device) < stats.devices.size()) {
      d.declared_gflops =
          stats.devices[static_cast<std::size_t>(d.device)].declared_gflops;
    }
    if (d.measured_gflops > 0.0 && d.declared_gflops > 0.0) {
      d.drift_ratio = d.measured_gflops / d.declared_gflops;
    }
    profile.drift.push_back(d);
  }
  return profile;
}

void apply_store_rates(RunProfile& profile,
                       const starvm::perf_store::Store& store) {
  for (RateDrift& d : profile.drift) {
    for (const starvm::perf_store::Entry& entry : store.entries) {
      if (entry.codelet == d.label && entry.device == d.device &&
          entry.ema_gflops > 0.0) {
        d.store_gflops = entry.ema_gflops;
        if (d.measured_gflops > 0.0) {
          d.store_drift_ratio = d.measured_gflops / d.store_gflops;
        }
        break;
      }
    }
  }
}

ModelComparison diff_against_plan(const RunProfile& profile,
                                  const SchedulePlan& plan,
                                  const starvm::TaskGraph& graph) {
  ModelComparison cmp;
  cmp.modeled_makespan_seconds = plan.makespan_seconds;
  cmp.measured_makespan_seconds = profile.makespan_seconds;
  cmp.modeled_critical_seconds = plan.critical_path_seconds;

  std::map<std::string, ModelComparison::NameDelta> by_name;
  const std::vector<starvm::GraphTask>& tasks = graph.tasks();
  for (std::size_t i = 0; i < plan.placements.size() && i < tasks.size(); ++i) {
    ModelComparison::NameDelta& d = by_name[base_label(tasks[i].name)];
    d.name = base_label(tasks[i].name);
    ++d.modeled_tasks;
    d.modeled_seconds +=
        plan.placements[i].finish_seconds - plan.placements[i].start_seconds;
  }
  for (const TaskProfile& t : profile.tasks) {
    ModelComparison::NameDelta& d = by_name[base_label(t.label)];
    d.name = base_label(t.label);
    ++d.measured_tasks;
    d.measured_seconds += t.finish_seconds - t.start_seconds;
  }
  for (auto& [name, d] : by_name) {
    if (d.modeled_seconds > 0.0 && d.measured_seconds > 0.0) {
      d.ratio = d.measured_seconds / d.modeled_seconds;
    }
    cmp.tasks.push_back(std::move(d));
  }
  return cmp;
}

pdl::util::Result<starvm::EngineStats> run_graph_on_platform(
    const starvm::TaskGraph& graph, const pdl::Platform& platform) {
  starvm::BridgeOptions options;
  options.mode = starvm::ExecutionMode::kPureSim;
  // The static simulator schedules every PU; dropping driver cores here
  // would diff a smaller machine against the plan's larger one.
  options.dedicate_driver_cores = false;
  auto config = starvm::engine_config_from_platform(platform, options);
  if (!config.ok()) return config.error();

  // Synthetic backing store: the kernels never run in pure-sim mode, but
  // registration wants real byte ranges for the transfer model. Declared
  // before the engine so the engine (and its workers) die first.
  std::vector<std::vector<double>> storage;
  std::deque<starvm::Codelet> codelets;  // deque: stable addresses
  starvm::Engine engine(std::move(config).value());

  std::vector<starvm::DataHandle*> handles;
  handles.reserve(graph.buffers().size());
  storage.reserve(graph.buffers().size());
  for (const starvm::GraphBuffer& buffer : graph.buffers()) {
    const std::size_t doubles =
        std::max<std::size_t>(1, static_cast<std::size_t>(buffer.bytes / 8));
    storage.emplace_back(doubles, 0.0);
    handles.push_back(
        engine.register_vector(storage.back().data(), doubles, buffer.name));
  }

  const std::vector<starvm::GraphTask>& tasks = graph.tasks();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const starvm::GraphTask& task = tasks[i];
    starvm::Codelet& codelet = codelets.emplace_back();
    codelet.name = task.name;
    codelet.impls = {{starvm::DeviceKind::kCpu, {}},
                     {starvm::DeviceKind::kAccelerator, {}}};
    const double flops = task.flops;
    codelet.flops = [flops](const std::vector<starvm::BufferView>&) {
      return flops;
    };

    starvm::TaskDesc desc;
    desc.codelet = &codelet;
    desc.label = task.name;
    for (const starvm::GraphAccess& access : task.accesses) {
      if (access.buffer < 0 ||
          static_cast<std::size_t>(access.buffer) >= handles.size()) {
        continue;
      }
      desc.buffers.push_back(
          {handles[static_cast<std::size_t>(access.buffer)], access.mode});
    }
    // Task ids are dense from 1 in submission order, so graph index d maps
    // to id d + 1; forward references are dropped like the engine drops them.
    for (const int dep : task.declared_deps) {
      if (dep >= 0 && static_cast<std::size_t>(dep) < i) {
        desc.depends_on.push_back(static_cast<starvm::TaskId>(dep + 1));
      }
    }
    engine.submit(std::move(desc));
  }
  // A failed drain still yields a profile-worthy trace; the stats carry the
  // errors for the caller to surface.
  (void)engine.wait_all();
  return engine.stats();
}

std::string render_profile_text(const RunProfile& profile) {
  std::ostringstream os;
  if (profile.tasks.empty()) {
    os << "profile: empty trace\n";
    return os.str();
  }
  os << "measured critical path (" << profile.critical_path.size()
     << " steps, makespan " << ms(profile.makespan_seconds) << "):\n";
  for (const CriticalStep& step : profile.critical_path) {
    const TaskProfile& t = profile.tasks[static_cast<std::size_t>(step.task)];
    os << "  [" << to_string(step.edge) << "] task " << t.id << " '" << t.label
       << "' on " << (t.device_name.empty() ? "?" : t.device_name)
       << ": ready " << ms(t.ready_seconds) << ", start "
       << ms(t.start_seconds) << ", finish " << ms(t.finish_seconds)
       << " (wait " << ms(t.queue_wait_seconds) << ", transfer "
       << ms(t.transfer_seconds) << ", compute " << ms(t.compute_seconds)
       << ")\n";
  }
  os << "critical-path attribution: queue wait "
     << ms(profile.critical_queue_wait_seconds) << ", overhead "
     << ms(profile.critical_overhead_seconds) << ", transfer "
     << ms(profile.critical_transfer_seconds) << ", compute "
     << ms(profile.critical_compute_seconds) << "\n";
  os << "rate drift per (task, device):\n";
  for (const RateDrift& d : profile.drift) {
    os << "  " << d.label << " @ "
       << (d.device_name.empty() ? "?" : d.device_name) << ": " << d.tasks
       << " task(s), measured " << gf(d.measured_gflops)
       << " GFLOPS, declared " << gf(d.declared_gflops) << " GFLOPS";
    if (d.drift_ratio > 0.0) os << ", ratio " << ratio2(d.drift_ratio);
    if (d.store_gflops > 0.0) {
      os << ", store " << gf(d.store_gflops) << " GFLOPS";
      if (d.store_drift_ratio > 0.0) {
        os << " (x" << ratio2(d.store_drift_ratio) << ")";
      }
    }
    os << "\n";
  }
  os << "flight recorder: " << profile.flight_records << " record(s), "
     << profile.flight_overwritten << " overwritten\n";
  return os.str();
}

std::string render_comparison_text(const ModelComparison& cmp) {
  std::ostringstream os;
  os << "model vs measured:\n";
  os << "  makespan: modeled " << ms(cmp.modeled_makespan_seconds)
     << ", measured " << ms(cmp.measured_makespan_seconds);
  if (cmp.modeled_makespan_seconds > 0.0 &&
      cmp.measured_makespan_seconds > 0.0) {
    os << " (ratio "
       << ratio2(cmp.measured_makespan_seconds / cmp.modeled_makespan_seconds)
       << ")";
  }
  os << "; critical-path lower bound " << ms(cmp.modeled_critical_seconds)
     << "\n";
  os << "  per-task (by name):\n";
  for (const ModelComparison::NameDelta& d : cmp.tasks) {
    os << "    " << d.name << ": modeled " << d.modeled_tasks << " x "
       << ms(d.modeled_seconds) << ", measured " << d.measured_tasks << " x "
       << ms(d.measured_seconds);
    if (d.ratio > 0.0) os << ", ratio " << ratio2(d.ratio);
    os << "\n";
  }
  return os.str();
}

}  // namespace analysis
