#include "analysis/analyzer.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/rules.hpp"
#include "cascabel/selection.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pdl/query.hpp"
#include "pdl/well_known.hpp"
#include "util/string_util.hpp"

namespace analysis {

bool rule_enabled(const AnalysisOptions& options, std::string_view rule) {
  return options.disabled.find(rule) == options.disabled.end();
}

pdl::Severity effective_severity(const AnalysisOptions& options, std::string_view rule,
                                 pdl::Severity fallback) {
  const auto it = options.severity_overrides.find(rule);
  return it == options.severity_overrides.end() ? fallback : it->second;
}

namespace {

/// Shared emit path: drops disabled rules, applies severity overrides on
/// top of the catalog default (or an explicit per-finding base severity).
struct Emitter {
  const AnalysisOptions& options;
  pdl::Diagnostics& diags;

  void emit(const char* rule, std::string message, pdl::SourceLoc loc,
            std::string where, std::optional<pdl::Severity> base = std::nullopt) {
    if (!rule_enabled(options, rule)) return;
    pdl::Severity severity = pdl::Severity::kWarning;
    if (base) {
      severity = *base;
    } else if (const RuleInfo* info = find_rule(rule)) {
      severity = info->default_severity;
    }
    severity = effective_severity(options, rule, severity);
    pdl::add_finding(diags, severity, rule, std::move(message), std::move(loc),
                     std::move(where));
  }
};

// --- Layer (a): platform lint ------------------------------------------------

/// A101: BFS over *explicit* interconnects only — the control-hierarchy
/// fallback of pdl::data_path always connects everything, so the question
/// is whether declared links reach the Worker's controlling Master.
void check_worker_memory_reachability(const pdl::Platform& platform, Emitter& out) {
  std::map<std::string, std::vector<std::string>> adjacency;
  for (const pdl::Interconnect* ic : pdl::all_interconnects(platform)) {
    if (ic->from.empty() || ic->to.empty()) continue;
    adjacency[ic->from].push_back(ic->to);
    adjacency[ic->to].push_back(ic->from);
  }
  for (const pdl::ProcessingUnit* pu : pdl::all_pus(platform)) {
    if (pu->kind() != pdl::PuKind::kWorker || pu->memory_regions().empty() ||
        pu->id().empty()) {
      continue;
    }
    const pdl::ProcessingUnit* master = pu;
    while (master->parent() != nullptr) master = master->parent();

    std::set<std::string> visited{pu->id()};
    std::queue<std::string> frontier;
    frontier.push(pu->id());
    bool reached = false;
    while (!frontier.empty() && !reached) {
      const std::string node = frontier.front();
      frontier.pop();
      if (node == master->id()) {
        reached = true;
        break;
      }
      const auto it = adjacency.find(node);
      if (it == adjacency.end()) continue;
      for (const std::string& next : it->second) {
        if (visited.insert(next).second) frontier.push(next);
      }
    }
    if (!reached) {
      const pdl::MemoryRegion& mr = pu->memory_regions().front();
      out.emit(kUnreachableWorkerMemory,
               "Worker '" + pu->id() + "' declares memory region '" + mr.id +
                   "' but no Interconnect path reaches its controlling Master '" +
                   master->id() + "'; transfers use modeled control-link defaults",
               mr.loc.valid() ? mr.loc : pu->loc(), pu->path());
    }
  }
}

/// A102: regions the toolchain cannot consume — the starvm bridge uses only
/// a Worker's first sized MemoryRegion, and id-less regions cannot be
/// referenced at all.
void check_unreferenced_memory_regions(const pdl::Platform& platform, Emitter& out) {
  for (const pdl::ProcessingUnit* pu : pdl::all_pus(platform)) {
    const auto& regions = pu->memory_regions();
    for (std::size_t i = 0; i < regions.size(); ++i) {
      const pdl::MemoryRegion& mr = regions[i];
      const pdl::SourceLoc loc = mr.loc.valid() ? mr.loc : pu->loc();
      if (mr.id.empty()) {
        out.emit(kUnreferencedMemoryRegion,
                 "memory region without id cannot be referenced by tools", loc,
                 pu->path());
      } else if (pu->kind() == pdl::PuKind::kWorker && i > 0) {
        out.emit(kUnreferencedMemoryRegion,
                 "memory region '" + mr.id +
                     "' is ignored by the starvm bridge (only a Worker's first "
                     "region is consumed)",
                 loc, pu->path());
      }
    }
  }
}

/// A103: unit/value sanity on the well-known property vocabulary.
void check_property_values(const pdl::Descriptor& descriptor,
                           const pdl::SourceLoc& fallback_loc,
                           const std::string& where, Emitter& out) {
  namespace props = pdl::props;
  const auto loc_of = [&](const pdl::Property& p) {
    return p.loc.valid() ? p.loc : fallback_loc;
  };
  for (const pdl::Property& p : descriptor.properties()) {
    // Unfixed properties may legitimately be empty placeholders (to be
    // filled in by later tools); V12 covers empty *fixed* values.
    if (p.value.empty()) continue;

    const auto bad = [&](const std::string& expected) {
      out.emit(kPropertySanity,
               "property '" + p.name + "' has value '" + p.value +
                   (p.unit.empty() ? "" : "' with unit '" + p.unit) +
                   "' but " + expected,
               loc_of(p), where);
    };
    if (p.name == props::kCores || p.name == "CORE_COUNT") {
      const auto n = p.as_int();
      if (!n || *n < 1) bad("expects a positive integer core count");
    } else if (p.name == props::kMaxRetries) {
      const auto n = p.as_int();
      if (!n || *n < 0) bad("expects a non-negative integer retry budget");
    } else if (p.name == props::kFrequencyMhz || p.name == props::kPeakGflops ||
               p.name == props::kSustainedGflops || p.name == props::kMeasuredGflops ||
               p.name == props::kBandwidthGBs || p.name == props::kMtbfHours) {
      const auto d = p.as_double();
      if (!d || *d <= 0.0) bad("expects a positive number");
    } else if (p.name == props::kIcLatencyUs || p.name == props::kLatencyNs) {
      const auto d = p.as_double();
      if (!d || *d < 0.0) bad("expects a non-negative number");
    } else if (p.name == props::kSize) {
      if (!p.as_bytes()) {
        bad("expects an integer with a size unit (B, kB, MB or GB)");
      }
    }
  }
}

/// A104: one descriptor declaring a property twice with conflicting values
/// (error) or with mixed fixed/unfixed flags (warning) — a pattern cannot
/// be satisfied and a concrete descriptor cannot be resolved consistently.
void check_descriptor_consistency(const pdl::Descriptor& descriptor,
                                  const pdl::SourceLoc& fallback_loc,
                                  const std::string& where, Emitter& out) {
  std::map<std::string, const pdl::Property*> first_seen;
  for (const pdl::Property& p : descriptor.properties()) {
    if (p.name.empty()) continue;
    const auto [it, inserted] = first_seen.emplace(p.name, &p);
    if (inserted) continue;
    const pdl::Property& first = *it->second;
    const pdl::SourceLoc loc = p.loc.valid() ? p.loc : fallback_loc;
    if (!first.value.empty() && !p.value.empty() && first.value != p.value) {
      out.emit(kDescriptorConsistency,
               "property '" + p.name + "' declared twice with conflicting values ('" +
                   first.value + "' vs '" + p.value + "')",
               loc, where);
    } else if (first.fixed != p.fixed) {
      out.emit(kDescriptorConsistency,
               "property '" + p.name + "' declared both fixed and unfixed", loc, where,
               pdl::Severity::kWarning);
    }
  }
}

/// A105: every xsi:type prefix must be declared as an xmlns on the root.
void check_extension_namespaces(const pdl::Platform& platform,
                                const pdl::Descriptor& descriptor,
                                const pdl::SourceLoc& fallback_loc,
                                const std::string& where, Emitter& out) {
  for (const pdl::Property& p : descriptor.properties()) {
    const auto colon = p.xsi_type.find(':');
    if (colon == std::string::npos || colon == 0) continue;
    const std::string prefix = p.xsi_type.substr(0, colon);
    bool declared = false;
    for (const auto& [known_prefix, uri] : platform.namespaces()) {
      if (known_prefix == prefix) {
        declared = true;
        break;
      }
    }
    if (!declared) {
      out.emit(kUndeclaredExtensionNamespace,
               "property '" + p.name + "' uses extension type '" + p.xsi_type +
                   "' but namespace prefix '" + prefix +
                   "' is not declared on the document root",
               p.loc.valid() ? p.loc : fallback_loc, where);
    }
  }
}

void for_each_descriptor(
    const pdl::Platform& platform,
    const std::function<void(const pdl::Descriptor&, const pdl::SourceLoc&,
                             const std::string&)>& fn) {
  for (const pdl::ProcessingUnit* pu : pdl::all_pus(platform)) {
    fn(pu->descriptor(), pu->loc(), pu->path());
    for (const pdl::MemoryRegion& mr : pu->memory_regions()) {
      fn(mr.descriptor, mr.loc.valid() ? mr.loc : pu->loc(), pu->path() + "/MR:" + mr.id);
    }
    for (const pdl::Interconnect& ic : pu->interconnects()) {
      fn(ic.descriptor, ic.loc.valid() ? ic.loc : pu->loc(),
         pu->path() + "/IC:" + ic.from + "->" + ic.to);
    }
  }
}

/// A106: quantities the parser accepts but that almost certainly encode a
/// typo or unit mistake — every expanded instance becomes a scheduled
/// device, so "131072" where "1024" was meant melts tools downstream. The
/// threshold sits well above real many-core parts (ET-SOC1: ~1.1k cores).
constexpr int kQuantitySanityThreshold = 65536;

void check_quantity_sanity(const pdl::Platform& platform, Emitter& out) {
  for (const pdl::ProcessingUnit* pu : pdl::all_pus(platform)) {
    if (pu->quantity() > kQuantitySanityThreshold) {
      out.emit(kQuantitySanity,
               "PU '" + pu->id() + "' declares quantity " +
                   std::to_string(pu->quantity()) + " (sanity threshold " +
                   std::to_string(kQuantitySanityThreshold) +
                   "); every instance becomes a scheduled device",
               pu->loc(), pu->path());
    }
  }
}

}  // namespace

void analyze_platform(const pdl::Platform& platform, const AnalysisOptions& options,
                      pdl::Diagnostics& diags) {
  obs::Span span("analysis.platform", platform.name());
  static obs::Counter& runs = obs::counter("analysis.platform_runs");
  runs.inc();
  Emitter out{options, diags};
  check_worker_memory_reachability(platform, out);
  check_unreferenced_memory_regions(platform, out);
  check_quantity_sanity(platform, out);
  for_each_descriptor(platform, [&](const pdl::Descriptor& d, const pdl::SourceLoc& loc,
                                    const std::string& where) {
    check_property_values(d, loc, where, out);
    check_descriptor_consistency(d, loc, where, out);
    check_extension_namespaces(platform, d, loc, where, out);
  });
}

// --- Layer (b): program-platform matching ------------------------------------

namespace {

pdl::SourceLoc range_loc(const cascabel::AnnotatedProgram& program,
                         const cascabel::SourceRange& range) {
  return pdl::SourceLoc{program.source_name, range.line, 0};
}

/// The variant whose signature an execute site is checked against: prefer
/// the program's own definition, fall back to any repository variant.
const cascabel::TaskVariant* reference_variant(
    const cascabel::AnnotatedProgram& program,
    const cascabel::TaskRepository& repository, const std::string& interface_name) {
  auto own = program.variants_of(interface_name);
  if (!own.empty()) return own.front();
  auto any = repository.variants_of(interface_name);
  return any.empty() ? nullptr : any.front();
}

}  // namespace

void analyze_program(const cascabel::AnnotatedProgram& program,
                     const cascabel::TaskRepository& repository,
                     const pdl::Platform& target, const AnalysisOptions& options,
                     pdl::Diagnostics& diags) {
  obs::Span span("analysis.program", program.source_name);
  static obs::Counter& runs = obs::counter("analysis.program_runs");
  runs.inc();
  Emitter out{options, diags};

  // Pre-selection drives A301/A302; its own ad-hoc notes (pruning info,
  // fall-back errors) stay out of the rule-tagged output.
  pdl::Diagnostics scratch;
  const cascabel::SelectionResult selection =
      cascabel::preselect(repository, target, scratch);

  // A301: variants no target entry selected.
  for (const cascabel::TaskVariant& variant : repository.variants()) {
    bool selected = false;
    if (const auto* candidates =
            selection.candidates(variant.pragma.task_interface)) {
      for (const cascabel::SelectedVariant& sel : *candidates) {
        if (sel.variant == &variant) {
          selected = true;
          break;
        }
      }
    }
    if (!selected) {
      pdl::SourceLoc loc;
      if (program.find_variant(variant.pragma.variant_name) != nullptr) {
        loc = range_loc(program, variant.pragma.range);
      }
      std::string targets;
      for (const std::string& t : variant.pragma.target_platforms) {
        if (!targets.empty()) targets += ", ";
        targets += t;
      }
      out.emit(kDeadVariant,
               "variant '" + variant.pragma.variant_name + "' (targets: " + targets +
                   ") matches no PU of platform '" + target.name() +
                   "' and can never be selected",
               loc, variant.pragma.task_interface);
    }
  }

  // A304: variants of one interface must agree on the parameter signature.
  for (const std::string& interface_name : repository.interfaces()) {
    const auto variants = repository.variants_of(interface_name);
    for (std::size_t i = 1; i < variants.size(); ++i) {
      const auto& base = variants.front()->pragma.params;
      const auto& other = variants[i]->pragma.params;
      bool conflict = base.size() != other.size();
      for (std::size_t k = 0; !conflict && k < base.size(); ++k) {
        conflict = base[k].mode != other[k].mode;
      }
      if (conflict) {
        pdl::SourceLoc loc;
        if (program.find_variant(variants[i]->pragma.variant_name) != nullptr) {
          loc = range_loc(program, variants[i]->pragma.range);
        }
        out.emit(kVariantSignatureConflict,
                 "variant '" + variants[i]->pragma.variant_name +
                     "' declares a different parameter signature than '" +
                     variants.front()->pragma.variant_name + "' for interface '" +
                     interface_name + "'",
                 loc, interface_name);
      }
    }
  }

  // Per execute site: A302, A303, A305, A306.
  std::set<std::string> executed;
  for (const cascabel::CallSite& call : program.calls) {
    const std::string& interface_name = call.pragma.task_interface;
    executed.insert(interface_name);
    const pdl::SourceLoc loc = range_loc(program, call.pragma.range);

    const auto* candidates = selection.candidates(interface_name);
    if (candidates == nullptr || candidates->empty()) {
      out.emit(kNoExecutableVariant,
               "no variant of task interface '" + interface_name +
                   "' is usable on platform '" + target.name() +
                   "' — this execute site cannot run",
               loc, interface_name);
    }

    const cascabel::TaskVariant* reference =
        reference_variant(program, repository, interface_name);
    if (reference != nullptr) {
      // A303: the call must pass exactly the annotated function's arity.
      const std::size_t expected = reference->function.param_names.size();
      if (call.args.size() != expected) {
        out.emit(kArityMismatch,
                 "execute site calls '" + call.callee + "' with " +
                     std::to_string(call.args.size()) + " argument(s) but task '" +
                     reference->pragma.variant_name + "' declares " +
                     std::to_string(expected),
                 loc, interface_name);
      }
      // A305: distribution entries must name declared parameters.
      for (const cascabel::DistributionSpec& dist : call.pragma.distributions) {
        bool known = false;
        for (const auto& p : reference->pragma.params) known |= p.name == dist.param;
        for (const auto& n : reference->function.param_names) known |= n == dist.param;
        if (!known) {
          out.emit(kUnknownDistributionParam,
                   "distribution names parameter '" + dist.param + "' but task '" +
                       reference->pragma.variant_name + "' has no such parameter",
                   loc, interface_name);
        }
      }
    }

    // A306: the execution group should exist in the target platform.
    if (!call.pragma.execution_group.empty() &&
        pdl::group_members(target, call.pragma.execution_group).empty()) {
      out.emit(kUnknownExecutionGroup,
               "execution group '" + call.pragma.execution_group +
                   "' names no PU of platform '" + target.name() +
                   "'; the runtime would fall back to all PUs",
               loc, interface_name);
    }
  }

  // A406: interfaces with implementations nothing ever submits. Only
  // interfaces with at least one variant defined *in this program* count —
  // repositories often carry builtin library tasks (Idgemm, ...) the
  // program under analysis legitimately never touches.
  for (const std::string& interface_name : repository.interfaces()) {
    if (executed.count(interface_name) != 0) continue;
    const auto variants = repository.variants_of(interface_name);
    pdl::SourceLoc loc;
    bool defined_in_program = false;
    for (const auto* v : variants) {
      if (program.find_variant(v->pragma.variant_name) != nullptr) {
        loc = range_loc(program, v->pragma.range);
        defined_in_program = true;
        break;
      }
    }
    if (!defined_in_program) continue;
    out.emit(kNeverSubmittedTask,
             "task interface '" + interface_name +
                 "' has implementation variants but no execute site submits it",
             loc, interface_name);
  }
}

// --- Layer (c): task-graph analysis ------------------------------------------

starvm::TaskGraph graph_from_program(const cascabel::AnnotatedProgram& program,
                                     const cascabel::TaskRepository& repository) {
  starvm::TaskGraph graph;
  // One buffer per distinct argument expression; equal text = same data.
  // Sizes are unknown statically, so every buffer gets the same nominal
  // extent on a disjoint abstract range (overlap analysis then reduces to
  // same-expression identity, which is exactly what the engine sees too).
  constexpr std::uint64_t kNominalBytes = 1024;
  std::map<std::string, int> buffer_of;

  for (const cascabel::CallSite& call : program.calls) {
    const cascabel::TaskVariant* reference =
        reference_variant(program, repository, call.pragma.task_interface);
    const pdl::SourceLoc loc{program.source_name, call.pragma.range.line, 0};

    std::vector<starvm::GraphAccess> accesses;
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      const std::string& expr = call.args[i];
      auto it = buffer_of.find(expr);
      if (it == buffer_of.end()) {
        it = buffer_of.emplace(expr, graph.add_buffer(expr, kNominalBytes, loc)).first;
      }
      // Access mode: the pragma's spec for the function parameter this
      // argument binds to; parameters outside the spec list (scalars like
      // the problem size) are read-only.
      starvm::Access mode = starvm::Access::kRead;
      if (reference != nullptr && i < reference->function.param_names.size()) {
        const std::string& param = reference->function.param_names[i];
        for (const cascabel::ParamSpec& spec : reference->pragma.params) {
          if (spec.name != param) continue;
          switch (spec.mode) {
            case cascabel::AccessMode::kRead: mode = starvm::Access::kRead; break;
            case cascabel::AccessMode::kWrite: mode = starvm::Access::kWrite; break;
            case cascabel::AccessMode::kReadWrite:
              mode = starvm::Access::kReadWrite;
              break;
          }
          break;
        }
      }
      accesses.push_back({it->second, mode});
    }
    graph.add_task(call.pragma.task_interface, std::move(accesses), {}, loc);
  }
  return graph;
}

void analyze_task_graph(const starvm::TaskGraph& graph, const AnalysisOptions& options,
                        pdl::Diagnostics& diags) {
  obs::Span span("analysis.task_graph");
  static obs::Counter& runs = obs::counter("analysis.graph_runs");
  runs.inc();
  Emitter out{options, diags};
  const auto& tasks = graph.tasks();
  const auto& buffers = graph.buffers();
  const int n = static_cast<int>(tasks.size());

  // Ordering: under sequential consistency the engine's inferred edges
  // count; under --relaxed only explicitly declared dependencies do.
  const auto reach = graph.reachability(graph.edges(!options.relaxed));

  // One finding per (task pair, buffer pair, rule).
  std::set<std::tuple<int, int, int, int, const void*>> reported;
  const auto emit_pair = [&](int a, int b, int buf_a, int buf_b, const char* rule,
                             std::string message) {
    if (!reported.emplace(a, b, buf_a, buf_b, rule).second) return;
    out.emit(rule, std::move(message), tasks[a].loc,
             tasks[a].name + " <-> " + tasks[b].name);
  };

  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (reach.ordered(a, b)) continue;
      for (const starvm::GraphAccess& x : tasks[a].accesses) {
        for (const starvm::GraphAccess& y : tasks[b].accesses) {
          const bool conflict = starvm::writes(x.mode) || starvm::writes(y.mode);
          if (!conflict) continue;
          if (x.buffer == y.buffer) {
            // Same handle: the engine orders these itself, so they are
            // hazards only when the relaxed model is requested.
            if (!options.relaxed || x.buffer < 0) continue;
            const std::string& buf = buffers[x.buffer].name;
            if (starvm::writes(x.mode) && starvm::writes(y.mode)) {
              emit_pair(a, b, x.buffer, y.buffer, kUnorderedWriteWrite,
                        "tasks '" + tasks[a].name + "' and '" + tasks[b].name +
                            "' both write buffer '" + buf +
                            "' with no declared ordering between them");
            } else {
              emit_pair(a, b, x.buffer, y.buffer, kUnorderedReadWrite,
                        "task '" + tasks[starvm::writes(x.mode) ? a : b].name +
                            "' writes buffer '" + buf + "' while task '" +
                            tasks[starvm::writes(x.mode) ? b : a].name +
                            "' reads it with no declared ordering between them");
            }
          } else if (graph.ranges_overlap(x.buffer, y.buffer)) {
            // Distinct handles over one memory range: invisible to the
            // engine's per-handle inference in every mode.
            const std::string& buf_x = buffers[x.buffer].name;
            const std::string& buf_y = buffers[y.buffer].name;
            std::string message;
            if (graph.same_lineage(x.buffer, y.buffer)) {
              message = "task '" + tasks[a].name + "' accesses buffer '" + buf_x +
                        "' while task '" + tasks[b].name + "' accesses '" + buf_y +
                        "' — a parent handle and its partition block used "
                        "concurrently";
            } else {
              message = "tasks '" + tasks[a].name + "' and '" + tasks[b].name +
                        "' access distinct buffers '" + buf_x + "' and '" + buf_y +
                        "' that overlap the same memory with no ordering between "
                        "them";
            }
            emit_pair(a, b, std::min(x.buffer, y.buffer), std::max(x.buffer, y.buffer),
                      kPartitionAliasing, std::move(message));
          }
        }
      }
    }
  }

  // A404: declared-dependency cycles.
  const std::vector<int> cycle = graph.find_declared_cycle();
  if (!cycle.empty()) {
    std::string chain;
    for (int t : cycle) {
      if (!chain.empty()) chain += " -> ";
      chain += tasks[t].name;
    }
    chain += " -> " + tasks[cycle.front()].name;
    out.emit(kDependencyCycle,
             "declared task dependencies form a cycle (" + chain +
                 "); the engine silently drops forward dependencies, so this "
                 "ordering is not enforced",
             tasks[cycle.front()].loc, tasks[cycle.front()].name);
  }

  // A405: dependencies the engine would silently satisfy.
  for (int t = 0; t < n; ++t) {
    for (int dep : tasks[t].declared_deps) {
      if (dep >= 0 && dep < t) continue;
      std::string message;
      if (dep < 0 || dep >= n) {
        message = "task '" + tasks[t].name + "' depends on unknown task index " +
                  std::to_string(dep);
      } else {
        message = "task '" + tasks[t].name + "' depends on task '" +
                  tasks[dep].name +
                  "' which is submitted later; the engine treats the dependency "
                  "as already satisfied";
      }
      out.emit(kUnknownDependency, std::move(message), tasks[t].loc, tasks[t].name);
    }
  }
}

}  // namespace analysis
