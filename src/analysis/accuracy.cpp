#include "analysis/accuracy.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "analysis/rules.hpp"
#include "pdl/query.hpp"
#include "pdl/well_known.hpp"

namespace analysis {

namespace {

// A703 gates: a chain only counts as a blow-up when it is long enough that
// no single kernel dominates it — short pipelines and one heavy GEMM
// surrounded by cheap steps stay clean.
constexpr int kChainMinSteps = 4;
constexpr double kChainBlowupFactor = 8.0;

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

struct Emit {
  const AnalysisOptions& options;
  pdl::Diagnostics& diags;

  void operator()(const char* rule, std::string message, pdl::SourceLoc loc,
                  std::string where) const {
    if (!rule_enabled(options, rule)) return;
    pdl::Severity severity = pdl::Severity::kWarning;
    if (const RuleInfo* info = find_rule(rule)) {
      severity = info->default_severity;
    }
    severity = effective_severity(options, rule, severity);
    pdl::add_finding(diags, severity, rule, std::move(message), std::move(loc),
                     std::move(where));
  }
};

/// Why a propagated bound is not a number: a declared range is missing
/// somewhere upstream (A704), or an unmodeled task touched the value
/// (A702). kNoModel dominates — it is the stronger statement.
enum class Why { kKnown, kMissingRange, kNoModel };

Why worse(Why a, Why b) { return a > b ? a : b; }

/// Per-buffer dataflow facts, updated in submission order.
struct BufferState {
  double magnitude = 0.0;  ///< bound on the max |value| the buffer holds
  Why magnitude_why = Why::kKnown;
  double error = 0.0;  ///< worst-case absolute error of the contents
  Why error_why = Why::kKnown;
  /// First unmodeled task that poisoned this value (error_why == kNoModel);
  /// the A702 finding points at it.
  int no_model_task = -1;

  // A703 bookkeeping: the heaviest RAW chain of rounding steps whose error
  // terms make up this buffer's bound.
  std::vector<int> chain;
  double chain_sum = 0.0;
  double chain_max = 0.0;
};

}  // namespace

double accuracy_epsilon_floor(const pdl::Platform& platform) {
  double floor = 0.0;
  for (const pdl::ProcessingUnit* pu : pdl::all_pus(platform)) {
    const pdl::Property* prop = pdl::resolve_property(*pu, pdl::props::kAccuracy);
    if (prop == nullptr) continue;
    const auto value = prop->as_double();
    if (value && *value > 0.0) floor = std::max(floor, *value);
  }
  return floor;
}

void analyze_accuracy(const starvm::TaskGraph& graph,
                      const AnalysisOptions& options, pdl::Diagnostics& diags,
                      double epsilon_floor) {
  const Emit emit{options, diags};
  const auto& buffers = graph.buffers();
  const auto& tasks = graph.tasks();

  std::vector<BufferState> state(buffers.size());
  for (std::size_t b = 0; b < buffers.size(); ++b) {
    if (buffers[b].has_range) {
      state[b].magnitude = buffers[b].range;
    } else {
      state[b].magnitude_why = Why::kMissingRange;
    }
  }

  // Submission order is a topological order of the RAW edges the engine
  // would infer (readers always follow the writer they depend on), so one
  // forward sweep reaches the fixpoint.
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const starvm::GraphTask& task = tasks[t];
    starvm::ErrorModel model = task.error_model;
    if (model.kind == starvm::ErrorModel::Kind::kRounding) {
      model.epsilon = std::max(model.epsilon, epsilon_floor);
    }
    const double depth =
        task.depth > 0.0 ? task.depth : (model.depth > 0.0 ? model.depth : 1.0);

    std::vector<int> pure_reads;
    for (const starvm::GraphAccess& a : task.accesses) {
      if (a.buffer >= 0 && a.mode == starvm::Access::kRead) {
        pure_reads.push_back(a.buffer);
      }
    }

    // Magnitude product over the pure-read inputs (1 for generator tasks).
    double product = 1.0;
    Why product_why = Why::kKnown;
    int product_no_model = -1;
    for (const int r : pure_reads) {
      product *= state[static_cast<std::size_t>(r)].magnitude;
      const Why why = state[static_cast<std::size_t>(r)].magnitude_why;
      product_why = worse(product_why, why);
      if (why == Why::kNoModel && product_no_model < 0) {
        product_no_model = state[static_cast<std::size_t>(r)].no_model_task;
      }
    }

    // Amplified input error: d * sum_i (E_i * prod_{j!=i} R_j). An input
    // with a zero known error contributes nothing even when the sibling
    // magnitudes are unknown, so exact pipelines over clean inputs stay
    // exactly zero.
    double input_error = 0.0;
    Why input_why = Why::kKnown;
    int input_no_model = -1;
    const BufferState* heaviest_chain = nullptr;
    for (std::size_t i = 0; i < pure_reads.size(); ++i) {
      const BufferState& in = state[static_cast<std::size_t>(pure_reads[i])];
      if (in.error_why == Why::kKnown && in.error == 0.0) continue;
      double amplified = in.error * depth;
      Why why = in.error_why;
      int no_model = in.no_model_task;
      for (std::size_t j = 0; j < pure_reads.size(); ++j) {
        if (j == i) continue;
        const BufferState& other = state[static_cast<std::size_t>(pure_reads[j])];
        amplified *= other.magnitude;
        why = worse(why, other.magnitude_why);
        if (other.magnitude_why == Why::kNoModel && no_model < 0) {
          no_model = other.no_model_task;
        }
      }
      input_error += amplified;
      input_why = worse(input_why, why);
      if (why == Why::kNoModel && input_no_model < 0) input_no_model = no_model;
      if (in.error_why == Why::kKnown &&
          (heaviest_chain == nullptr || in.chain_sum > heaviest_chain->chain_sum)) {
        heaviest_chain = &in;
      }
    }

    // The task's own rounding contribution at this depth and magnitude.
    double own_term = 0.0;
    Why own_why = Why::kKnown;
    if (model.kind == starvm::ErrorModel::Kind::kRounding) {
      own_term = model.term(depth, product);
      own_why = product_why;
    }

    for (const starvm::GraphAccess& a : task.accesses) {
      if (a.buffer < 0 || a.mode == starvm::Access::kRead) continue;
      const auto b = static_cast<std::size_t>(a.buffer);
      BufferState& out = state[b];

      if (!model.specified()) {
        // No claim to propagate: the written value is unbounded. A702
        // points at the first such task once the poison reaches a
        // tolerance-carrying buffer (possibly transitively).
        out.error_why = Why::kNoModel;
        out.magnitude_why = Why::kNoModel;
        if (out.no_model_task < 0) out.no_model_task = static_cast<int>(t);
        out.chain.clear();
        out.chain_sum = 0.0;
        out.chain_max = 0.0;
        continue;
      }

      // own_why already carries the product's unknownness for rounding
      // models; exact models add no rounding error, so an unknown magnitude
      // must not poison their (zero) error contribution.
      const double contribution = input_error + own_term;
      const Why contribution_why = worse(input_why, own_why);
      int contribution_no_model = input_no_model >= 0 ? input_no_model
                                                      : product_no_model;
      const double magnitude_growth = depth * product;

      if (a.mode == starvm::Access::kWrite) {
        out.error = contribution;
        out.error_why = contribution_why;
        out.no_model_task = contribution_no_model;
        out.magnitude = magnitude_growth;
        out.magnitude_why = product_why;
        out.chain.clear();
        out.chain_sum = 0.0;
        out.chain_max = 0.0;
        if (heaviest_chain != nullptr) {
          out.chain = heaviest_chain->chain;
          out.chain_sum = heaviest_chain->chain_sum;
          out.chain_max = heaviest_chain->chain_max;
        }
      } else {  // kReadWrite accumulates into the previous contents
        out.error += contribution;
        out.error_why = worse(out.error_why, contribution_why);
        if (out.no_model_task < 0) out.no_model_task = contribution_no_model;
        out.magnitude += magnitude_growth;
        out.magnitude_why = worse(out.magnitude_why, product_why);
        if (heaviest_chain != nullptr &&
            heaviest_chain->chain_sum > out.chain_sum) {
          out.chain = heaviest_chain->chain;
          out.chain_sum = heaviest_chain->chain_sum;
          out.chain_max = heaviest_chain->chain_max;
        }
      }

      if (out.error_why == Why::kKnown && own_term > 0.0) {
        out.chain.push_back(static_cast<int>(t));
        out.chain_sum += own_term;
        out.chain_max = std::max(out.chain_max, own_term);
      } else if (out.error_why != Why::kKnown) {
        out.chain.clear();
      }
    }
  }

  // A701 / A702 / A704: judge every tolerance-carrying buffer's final bound.
  for (std::size_t b = 0; b < buffers.size(); ++b) {
    const starvm::GraphBuffer& buffer = buffers[b];
    if (!buffer.has_tolerance) continue;
    const BufferState& final_state = state[b];
    switch (final_state.error_why) {
      case Why::kKnown:
        if (final_state.error > buffer.tolerance) {
          emit(kToleranceExceeded,
               "worst-case absolute error bound " + num(final_state.error) +
                   " of buffer '" + buffer.name +
                   "' exceeds its declared tolerance " + num(buffer.tolerance),
               buffer.tolerance_loc, buffer.name);
        }
        break;
      case Why::kMissingRange:
        emit(kVacuousTolerance,
             "buffer '" + buffer.name +
                 "' declares tolerance " + num(buffer.tolerance) +
                 " but no `range` reaches it, so its propagated error bound "
                 "is vacuous (declare ranges on the input buffers)",
             buffer.tolerance_loc, buffer.name);
        break;
      case Why::kNoModel: {
        const int t = final_state.no_model_task;
        const bool valid = t >= 0 && t < static_cast<int>(tasks.size());
        const std::string task_name =
            valid ? tasks[static_cast<std::size_t>(t)].name : "<unknown>";
        emit(kUnmodeledWrite,
             "task '" + task_name +
                 "' has no declared error model but its output reaches "
                 "tolerance-carrying buffer '" +
                 buffer.name + "' — the bound cannot be established",
             valid ? tasks[static_cast<std::size_t>(t)].loc : pdl::SourceLoc{},
             task_name);
        break;
      }
    }
  }

  // A703: accumulation blow-up. Collect each buffer's final chain, drop
  // chains that are a prefix of a longer candidate (the long chain is the
  // finding; its prefixes are the same story truncated), and report the
  // survivors with the chain as the logical location.
  struct Candidate {
    std::size_t buffer;
    const BufferState* st;
  };
  std::vector<Candidate> candidates;
  for (std::size_t b = 0; b < buffers.size(); ++b) {
    const BufferState& st = state[b];
    if (st.error_why != Why::kKnown) continue;
    if (static_cast<int>(st.chain.size()) < kChainMinSteps) continue;
    if (!(st.chain_max > 0.0)) continue;
    if (!(st.chain_sum > kChainBlowupFactor * st.chain_max)) continue;
    candidates.push_back({b, &st});
  }
  std::set<std::vector<int>> reported;
  for (const Candidate& c : candidates) {
    const std::vector<int>& chain = c.st->chain;
    bool is_prefix = false;
    for (const Candidate& other : candidates) {
      const std::vector<int>& longer = other.st->chain;
      if (longer.size() <= chain.size()) continue;
      if (std::equal(chain.begin(), chain.end(), longer.begin())) {
        is_prefix = true;
        break;
      }
    }
    if (is_prefix || !reported.insert(chain).second) continue;
    std::string path;
    for (const int t : chain) {
      if (!path.empty()) path += "->";
      path += tasks[static_cast<std::size_t>(t)].name;
    }
    const int last = chain.back();
    emit(kAccumulationBlowup,
         "RAW chain of " + std::to_string(chain.size()) +
             " rounding steps accumulates an error bound of " +
             num(c.st->chain_sum) + " on buffer '" + buffers[c.buffer].name +
             "', " + num(c.st->chain_sum / c.st->chain_max) +
             "x its largest single step (" + num(c.st->chain_max) + ")",
         tasks[static_cast<std::size_t>(last)].loc, path);
  }
}

}  // namespace analysis
