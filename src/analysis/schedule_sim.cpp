#include "analysis/schedule_sim.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>

#include "pdl/query.hpp"
#include "pdl/well_known.hpp"
#include "util/string_util.hpp"

namespace analysis {

namespace {

// Mirrors BridgeOptions defaults so the modeled schedule agrees with the
// engine the bridge would actually build.
constexpr double kDefaultCpuGflops = 5.0;
constexpr double kDefaultAccelGflops = 50.0;
// Control-link fallback when no Interconnect is declared (A502 fires, but
// the schedule still needs a number); matches pdl::data_path_seconds.
constexpr double kControlLinkBandwidthGbs = 10.0;
constexpr double kControlLinkLatencyUs = 1.0;

bool is_cpu_architecture(const pdl::ProcessingUnit& pu) {
  const std::string arch = pdl::resolved_value(pu, pdl::props::kArchitecture);
  return pdl::util::iequals(arch, "x86_core") ||
         pdl::util::iequals(arch, "x86") ||
         pdl::util::iequals(arch, "cpu_core") ||
         pdl::util::iequals(arch, "ppe") ||
         pdl::util::iequals(arch, "riscv") ||
         pdl::util::iequals(arch, "riscv_core") || arch.empty();
}

/// Host memory space (index 0): the first sized MemoryRegion found on a
/// Master, in declaration order. No capacity (0) when none declares SIZE.
SimMemorySpace host_space(const pdl::Platform& platform) {
  SimMemorySpace space;
  space.label = "<host>";
  for (const pdl::ProcessingUnit* master :
       pdl::pus_of_kind(platform, pdl::PuKind::kMaster)) {
    for (const pdl::MemoryRegion& mr : master->memory_regions()) {
      if (auto bytes = pdl::props::memory_capacity_bytes(mr)) {
        space.label = master->path() + "/" + mr.id;
        space.loc = mr.loc.valid() ? mr.loc : master->loc();
        space.pu_path = master->path();
        space.capacity_bytes = *bytes;
        return space;
      }
    }
  }
  return space;
}

struct Derived {
  std::vector<SimDevice> devices;
  std::vector<SimMemorySpace> spaces;
  std::vector<SimInterconnect> interconnects;
};

Derived derive_devices(const pdl::Platform& platform) {
  Derived d;
  d.spaces.push_back(host_space(platform));

  // Same executing set as the starvm bridge: Workers plus Hybrids.
  std::vector<const pdl::ProcessingUnit*> executing =
      pdl::pus_of_kind(platform, pdl::PuKind::kWorker);
  for (const pdl::ProcessingUnit* hybrid :
       pdl::pus_of_kind(platform, pdl::PuKind::kHybrid)) {
    executing.push_back(hybrid);
  }

  std::map<const pdl::Interconnect*, int> ic_index;
  for (const pdl::ProcessingUnit* pu : executing) {
    if (is_cpu_architecture(*pu)) {
      SimDevice dev;
      dev.is_cpu = true;
      dev.pu_path = pu->path();
      dev.loc = pu->loc();
      dev.gflops =
          pdl::props::sustained_gflops(*pu, 0.9, kDefaultCpuGflops);
      dev.space = 0;
      // Bridge naming rule: `id` for quantity 1, `id#i` for expansions.
      for (int i = 0; i < pu->quantity(); ++i) {
        dev.name = pu->quantity() == 1 ? pu->id()
                                       : pu->id() + "#" + std::to_string(i);
        d.devices.push_back(dev);
      }
      continue;
    }

    SimDevice dev;
    dev.is_cpu = false;
    dev.pu_path = pu->path();
    dev.loc = pu->loc();
    dev.gflops = pdl::props::sustained_gflops(*pu, 0.65, kDefaultAccelGflops);
    dev.link_bandwidth_gbs = kControlLinkBandwidthGbs;
    dev.link_latency_us = kControlLinkLatencyUs;
    dev.has_declared_link = false;
    if (const pdl::ProcessingUnit* controller = pu->parent()) {
      if (const pdl::Interconnect* ic = pdl::find_interconnect(
              platform, controller->id(), pu->id())) {
        dev.has_declared_link = true;
        if (auto bw = pdl::props::link_bandwidth_gbs(*ic)) {
          dev.link_bandwidth_gbs = *bw;
        }
        if (auto lat = pdl::props::link_latency_us(*ic)) {
          dev.link_latency_us = *lat;
        }
        auto [it, inserted] =
            ic_index.emplace(ic, static_cast<int>(d.interconnects.size()));
        if (inserted) {
          SimInterconnect sic;
          sic.label = ic->from + "<->" + ic->to;
          if (!ic->type.empty()) sic.label += " (" + ic->type + ")";
          sic.loc = ic->loc;
          d.interconnects.push_back(std::move(sic));
        }
        dev.ic = it->second;
      }
    }

    // One memory space per accelerator *instance*: each carries its own
    // copy of the declared capacity (quantity="2" means two physical
    // devices with two local memories, not one shared pool).
    const pdl::MemoryRegion* sized = nullptr;
    std::uint64_t capacity = 0;
    for (const pdl::MemoryRegion& mr : pu->memory_regions()) {
      if (auto bytes = pdl::props::memory_capacity_bytes(mr)) {
        sized = &mr;
        capacity = *bytes;
        break;
      }
    }
    for (int i = 0; i < pu->quantity(); ++i) {
      dev.name = pu->quantity() == 1 ? pu->id()
                                     : pu->id() + "#" + std::to_string(i);
      SimMemorySpace space;
      space.label = sized != nullptr
                        ? dev.name + "/" + sized->id
                        : dev.name + "/<no sized MemoryRegion>";
      space.loc = sized != nullptr && sized->loc.valid() ? sized->loc
                                                         : pu->loc();
      space.pu_path = pu->path();
      space.capacity_bytes = capacity;
      dev.space = static_cast<int>(d.spaces.size());
      d.spaces.push_back(std::move(space));
      d.devices.push_back(dev);
    }
  }

  if (d.devices.empty() && !platform.masters().empty()) {
    // The "single" configuration: the Master executes everything itself.
    const pdl::ProcessingUnit& master = *platform.masters().front();
    SimDevice dev;
    dev.is_cpu = true;
    dev.name = "master:" + master.id();
    dev.pu_path = master.path();
    dev.loc = master.loc();
    dev.gflops = pdl::props::sustained_gflops(master, 0.9, kDefaultCpuGflops);
    dev.space = 0;
    d.devices.push_back(std::move(dev));
  }
  return d;
}

double compute_estimate(const starvm::GraphTask& task, const SimDevice& dev,
                        int device_index, const starvm::PerfModel* model) {
  if (model != nullptr) {
    if (auto h = model->history_estimate(task.name, device_index)) return *h;
  }
  if (task.flops > 0.0 && dev.gflops > 0.0) {
    return task.flops / (dev.gflops * 1e9);
  }
  return starvm::PerfModel::default_estimate_seconds();
}

/// One closed residency interval of a root buffer in a memory space,
/// collected for the peak-footprint sweep.
struct FootprintInterval {
  int space = 0;
  std::uint64_t bytes = 0;
  double begin = 0.0;
  double end = 0.0;
};

/// One modeled transfer window on an interconnect.
struct TransferWindow {
  int ic = -1;
  double begin = 0.0;
  double end = 0.0;
};

/// Peak concurrent footprint of one space via an event sweep; arrivals at
/// time t count before releases at t so back-to-back reuse is conservative.
void sweep_peak(const std::vector<FootprintInterval>& intervals,
                SimMemorySpace& space, int space_index) {
  struct Event {
    double time;
    int kind;  // 0 = arrival, 1 = release
    std::uint64_t bytes;
  };
  std::vector<Event> events;
  for (const FootprintInterval& iv : intervals) {
    if (iv.space != space_index || iv.bytes == 0) continue;
    events.push_back({iv.begin, 0, iv.bytes});
    events.push_back({iv.end, 1, iv.bytes});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.kind < b.kind;
  });
  std::uint64_t current = 0;
  for (const Event& e : events) {
    if (e.kind == 0) {
      current += e.bytes;
      if (current > space.peak_bytes) {
        space.peak_bytes = current;
        space.peak_seconds = e.time;
      }
    } else {
      current -= e.bytes;
    }
  }
}

/// Time covered by >= 2 overlapping windows on one interconnect.
double contended_time(const std::vector<TransferWindow>& windows, int ic) {
  struct Edge {
    double time;
    int delta;
  };
  std::vector<Edge> edges;
  for (const TransferWindow& w : windows) {
    if (w.ic != ic || w.end <= w.begin) continue;
    edges.push_back({w.begin, +1});
    edges.push_back({w.end, -1});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta < b.delta;  // closings first: touching windows don't overlap
  });
  double contended = 0.0;
  double last = 0.0;
  int depth = 0;
  for (const Edge& e : edges) {
    if (depth >= 2) contended += e.time - last;
    depth += e.delta;
    last = e.time;
  }
  return contended;
}

std::string format_ms(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  return buf;
}

std::string format_pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}

}  // namespace

SchedulePlan simulate_schedule(const starvm::TaskGraph& graph,
                               const pdl::Platform& platform,
                               const starvm::PerfModel* model) {
  SchedulePlan plan;
  Derived derived = derive_devices(platform);
  plan.devices = std::move(derived.devices);
  plan.spaces = std::move(derived.spaces);
  plan.interconnects = std::move(derived.interconnects);

  const auto& tasks = graph.tasks();
  const auto& buffers = graph.buffers();
  const int n = static_cast<int>(tasks.size());
  const int ndev = static_cast<int>(plan.devices.size());
  plan.placements.assign(tasks.size(), TaskPlacement{});
  plan.device_busy_seconds.assign(plan.devices.size(), 0.0);
  if (ndev == 0) return plan;

  // --- Placement classes: interchangeable devices evaluated once ------------
  // Mirrors the runtime's grouping (Engine::build_placement_classes): same
  // kind/rate/link/space means one candidate per class, and accelerators
  // stay singleton because each owns a private space. Keeps this model
  // O(classes) per task — and consistent with what the engine actually
  // evaluates — on quantity-expanded 1k-worker platforms. Classes are
  // created in order of their lowest member, preserving the exhaustive
  // loop's lowest-index tie-breaking.
  std::vector<int> class_rep;                   // representative device index
  std::vector<int> class_of(plan.devices.size(), 0);
  {
    std::map<std::tuple<bool, double, double, double, int, int>, int> flavors;
    for (int d = 0; d < ndev; ++d) {
      const SimDevice& dev = plan.devices[d];
      const auto key =
          std::make_tuple(dev.is_cpu, dev.gflops, dev.link_bandwidth_gbs,
                          dev.link_latency_us, dev.space, dev.ic);
      const auto [it, inserted] =
          flavors.emplace(key, static_cast<int>(class_rep.size()));
      if (inserted) class_rep.push_back(d);
      class_of[d] = it->second;
    }
  }
  const int nclasses = static_cast<int>(class_rep.size());

  // --- Critical path on the fastest device (the makespan lower bound) -------
  std::vector<double> fastest(tasks.size(), 0.0);
  for (int t = 0; t < n; ++t) {
    double best = 0.0;
    for (int c = 0; c < nclasses; ++c) {
      const int d = class_rep[c];
      const double est = compute_estimate(tasks[t], plan.devices[d], d, model);
      if (c == 0 || est < best) best = est;
    }
    fastest[t] = best;
  }
  const std::vector<starvm::TaskGraph::Edge> edges = graph.edges();
  {
    std::vector<std::vector<int>> preds(tasks.size());
    for (const auto& e : edges) {
      if (e.from >= 0 && e.from < n && e.to >= 0 && e.to < n) {
        preds[e.to].push_back(e.from);
      }
    }
    std::vector<double> dp(tasks.size(), 0.0);
    std::vector<int> via(tasks.size(), -1);
    int tail = -1;
    for (int t = 0; t < n; ++t) {  // submission order is topological
      double longest = 0.0;
      for (int p : preds[t]) {
        if (dp[p] > longest) {
          longest = dp[p];
          via[t] = p;
        } else if (dp[p] == longest && via[t] >= 0 && p < via[t]) {
          via[t] = p;  // deterministic tie-break
        }
      }
      dp[t] = longest + fastest[t];
      if (tail < 0 || dp[t] > dp[tail]) tail = t;
    }
    if (tail >= 0) {
      plan.critical_path_seconds = dp[tail];
      for (int node = tail; node >= 0; node = via[node]) {
        plan.critical_path.push_back(node);
      }
      std::reverse(plan.critical_path.begin(), plan.critical_path.end());
    }
  }

  // --- HEFT placement with residency-aware transfer modeling ----------------
  std::vector<std::vector<int>> preds(tasks.size());
  for (const auto& e : edges) {
    if (e.from >= 0 && e.from < n && e.to >= 0 && e.to < n) {
      preds[e.to].push_back(e.from);
    }
  }

  // Residency: which spaces hold a current copy of each root, and since when.
  std::vector<std::map<int, double>> resident(buffers.size());
  for (int b = 0; b < static_cast<int>(buffers.size()); ++b) {
    if (buffers[b].parent < 0) resident[b][0] = 0.0;  // roots start on host
  }
  std::vector<FootprintInterval> intervals;
  std::vector<TransferWindow> windows;
  std::vector<double> device_free(plan.devices.size(), 0.0);
  // Per-class members ordered by (free time, index): begin() is the member
  // the exhaustive scan would pick from that class, so placement evaluates
  // one candidate per class instead of one per device.
  std::vector<std::set<std::pair<double, int>>> class_free(
      static_cast<std::size_t>(nclasses));
  for (int d = 0; d < ndev; ++d) {
    class_free[static_cast<std::size_t>(class_of[d])].insert({0.0, d});
  }

  // The legs data must travel for task access on `dev` given residency:
  // nothing when a copy is already in dev's space, otherwise source->host
  // (when no host copy exists) then host->dev, each leg on the owning
  // device's link. Returns total seconds; `charge` records the windows.
  const auto transfer_legs = [&](int root, const SimDevice& dev, double start,
                                 bool charge, std::uint64_t* bytes_moved) {
    const std::uint64_t bytes = buffers[root].bytes;
    if (resident[root].count(dev.space) > 0) return 0.0;
    double total = 0.0;
    double clock = start;
    if (resident[root].count(0) == 0) {
      // Copy lives only in accelerator spaces; stage through the host on
      // the owning device's link. Pick the lowest-index resident space for
      // determinism.
      const int src_space = resident[root].begin()->first;
      const SimDevice* src_dev = nullptr;
      for (const SimDevice& d : plan.devices) {
        if (d.space == src_space) {
          src_dev = &d;
          break;
        }
      }
      const double leg =
          src_dev != nullptr
              ? starvm::transfer_seconds(bytes, src_dev->link_bandwidth_gbs,
                                         src_dev->link_latency_us)
              : starvm::transfer_seconds(bytes, kControlLinkBandwidthGbs,
                                         kControlLinkLatencyUs);
      if (charge && src_dev != nullptr && src_dev->ic >= 0) {
        windows.push_back({src_dev->ic, clock, clock + leg});
        plan.interconnects[src_dev->ic].transfers += 1;
        plan.interconnects[src_dev->ic].busy_seconds += leg;
      }
      clock += leg;
      total += leg;
      if (charge) {
        resident[root][0] = clock;
        if (bytes_moved != nullptr) *bytes_moved += bytes;
      }
    }
    if (dev.space != 0) {
      const double leg = starvm::transfer_seconds(
          bytes, dev.link_bandwidth_gbs, dev.link_latency_us);
      if (charge && dev.ic >= 0) {
        windows.push_back({dev.ic, clock, clock + leg});
        plan.interconnects[dev.ic].transfers += 1;
        plan.interconnects[dev.ic].busy_seconds += leg;
      }
      clock += leg;
      total += leg;
      if (charge) {
        resident[root][dev.space] = clock;
        if (bytes_moved != nullptr) *bytes_moved += bytes;
      }
    }
    return total;
  };

  for (int t = 0; t < n; ++t) {
    double ready = 0.0;
    for (int p : preds[t]) {
      ready = std::max(ready, plan.placements[p].finish_seconds);
    }

    // Distinct accessed roots, in first-access order (deterministic).
    std::vector<int> roots;
    bool writes_any = false;
    std::vector<int> written_roots;
    for (const starvm::GraphAccess& access : tasks[t].accesses) {
      const int root = graph.root_of(access.buffer);
      if (root < 0) continue;
      if (std::find(roots.begin(), roots.end(), root) == roots.end()) {
        roots.push_back(root);
      }
      if (starvm::writes(access.mode)) {
        writes_any = true;
        if (std::find(written_roots.begin(), written_roots.end(), root) ==
            written_roots.end()) {
          written_roots.push_back(root);
        }
      }
    }

    int best = 0;
    double best_finish = 0.0;
    double best_transfer = 0.0;
    double best_compute = 0.0;
    double best_start = 0.0;
    for (int c = 0; c < nclasses; ++c) {
      // Least-loaded member stands for the class: any other member only
      // starts later and costs the same, so it can never win.
      const int d = class_free[static_cast<std::size_t>(c)].begin()->second;
      const SimDevice& dev = plan.devices[d];
      const double start = std::max(ready, device_free[d]);
      double transfer = 0.0;
      for (int root : roots) {
        transfer += transfer_legs(root, dev, start + transfer, false, nullptr);
      }
      const double compute =
          compute_estimate(tasks[t], dev, class_rep[c], model);
      const double finish = start + transfer + compute;
      if (c == 0 || finish < best_finish) {
        best = d;
        best_finish = finish;
        best_transfer = transfer;
        best_compute = compute;
        best_start = start;
      }
    }

    // Commit: charge the windows and move residency for real.
    const SimDevice& dev = plan.devices[best];
    TaskPlacement& placement = plan.placements[t];
    placement.device = best;
    placement.start_seconds = best_start;
    double clock = best_start;
    for (int root : roots) {
      clock += transfer_legs(root, dev, clock, true, &placement.transfer_bytes);
    }
    placement.transfer_seconds = best_transfer;
    placement.compute_seconds = best_compute;
    placement.finish_seconds = best_finish;
    class_free[static_cast<std::size_t>(class_of[best])].erase(
        {device_free[best], best});
    device_free[best] = best_finish;
    class_free[static_cast<std::size_t>(class_of[best])].insert(
        {best_finish, best});
    plan.device_busy_seconds[best] += best_finish - best_start;
    plan.makespan_seconds = std::max(plan.makespan_seconds, best_finish);

    // A write leaves the only valid copy in the executing space: close the
    // other copies' residency intervals here.
    if (writes_any) {
      for (int root : written_roots) {
        for (auto it = resident[root].begin(); it != resident[root].end();) {
          if (it->first != dev.space) {
            intervals.push_back({it->first, buffers[root].bytes, it->second,
                                 placement.finish_seconds});
            it = resident[root].erase(it);
          } else {
            ++it;
          }
        }
        resident[root][dev.space] =
            resident[root].count(dev.space) > 0 ? resident[root][dev.space]
                                                : placement.start_seconds;
      }
    }
  }

  // Close the remaining residency intervals: a copy is held until the
  // owning root's last use finishes (or for never-used roots, forever —
  // they occupy their initial space for the whole modeled run).
  const auto live = graph.root_live_intervals();
  for (int b = 0; b < static_cast<int>(buffers.size()); ++b) {
    for (const auto& [space, since] : resident[b]) {
      double release = plan.makespan_seconds;
      if (live[b].last_task >= 0) {
        release = std::max(since,
                           plan.placements[live[b].last_task].finish_seconds);
      }
      intervals.push_back({space, buffers[b].bytes, since, release});
    }
  }
  for (int s = 0; s < static_cast<int>(plan.spaces.size()); ++s) {
    sweep_peak(intervals, plan.spaces[s], s);
  }
  for (int ic = 0; ic < static_cast<int>(plan.interconnects.size()); ++ic) {
    plan.interconnects[ic].contended_seconds = contended_time(windows, ic);
  }
  return plan;
}

std::string render_plan_text(const SchedulePlan& plan,
                             const starvm::TaskGraph& graph) {
  std::string out;
  out += "schedule plan: " + std::to_string(graph.tasks().size()) +
         " task(s) on " + std::to_string(plan.devices.size()) +
         " device(s)\n";
  out += "  makespan: " + format_ms(plan.makespan_seconds) + " ms";
  out += "  (critical-path lower bound: " +
         format_ms(plan.critical_path_seconds) + " ms)\n";
  if (!plan.critical_path.empty()) {
    out += "  critical path:";
    for (int t : plan.critical_path) {
      out += " " + graph.tasks()[static_cast<std::size_t>(t)].name;
    }
    out += "\n";
  }
  for (std::size_t d = 0; d < plan.devices.size(); ++d) {
    const double busy = plan.device_busy_seconds[d];
    const double util =
        plan.makespan_seconds > 0.0 ? busy / plan.makespan_seconds : 0.0;
    out += "  device " + plan.devices[d].name + ": busy " + format_ms(busy) +
           " ms (" + format_pct(util) + ")\n";
  }
  for (const SimMemorySpace& space : plan.spaces) {
    if (space.peak_bytes == 0) continue;
    out += "  memory " + space.label + ": peak " +
           std::to_string(space.peak_bytes) + " B";
    if (space.capacity_bytes > 0) {
      out += " of " + std::to_string(space.capacity_bytes) + " B";
    }
    out += "\n";
  }
  for (const SimInterconnect& ic : plan.interconnects) {
    if (ic.transfers == 0) continue;
    out += "  interconnect " + ic.label + ": " +
           std::to_string(ic.transfers) + " transfer(s), busy " +
           format_ms(ic.busy_seconds) + " ms, contended " +
           format_ms(ic.contended_seconds) + " ms\n";
  }
  return out;
}

}  // namespace analysis
