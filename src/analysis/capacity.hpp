// Layer (d) of the cross-layer analyzer: schedule-aware capacity and
// interference rules (A5xx) over a modeled HEFT schedule (schedule_sim.hpp).
//
// Where A1xx-A4xx ask "is this structurally correct?", A5xx asks "does the
// program fit and perform on the described platform?" — in the spirit of
// PML-style interference analysis: the PDL's declared MemoryRegion sizes,
// BANDWIDTH_GB_S and LATENCY_US are strong enough to bound peak footprints,
// transfer costs and contention windows before anything runs.
//
//   A501  peak modeled footprint exceeds a declared MemoryRegion SIZE
//   A502  schedule moves data to a PU with no declared Interconnect path
//   A503  task whose modeled transfer time exceeds its modeled compute
//   A504  device idle almost the whole modeled makespan (load imbalance)
//   A505  interconnect carrying overlapping transfers for a significant
//         fraction of the makespan (oversubscription window)
//
// The thresholds are deliberately conservative so nominal static graphs
// (1 kB buffers, unknown FLOPs) stay clean; see docs/ANALYSIS.md.
#pragma once

#include "analysis/analyzer.hpp"
#include "analysis/schedule_sim.hpp"

namespace analysis {

/// Run the A5xx rules over a precomputed plan.
void analyze_schedule_plan(const SchedulePlan& plan,
                           const starvm::TaskGraph& graph,
                           const AnalysisOptions& options,
                           pdl::Diagnostics& diags);

/// Convenience: simulate (schedule_sim.hpp) and analyze in one call. The
/// returned plan lets tools also render the plan summary.
SchedulePlan analyze_schedule(const starvm::TaskGraph& graph,
                              const pdl::Platform& platform,
                              const AnalysisOptions& options,
                              pdl::Diagnostics& diags,
                              const starvm::PerfModel* model = nullptr);

}  // namespace analysis
