// Rendering of analyzer findings: the text and JSON output formats shared
// by pdlcheck, `pdltool lint` and `cascabelc --analyze`.
//
// Callers pdl::normalize() the diagnostics first so output is sorted by
// location and deduplicated — both formats are byte-stable given the same
// findings.
#pragma once

#include <cstddef>
#include <string>

#include "pdl/diagnostics.hpp"

namespace analysis {

struct ReportSummary {
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;
};

ReportSummary summarize(const pdl::Diagnostics& diags);

/// One "file:line:col: severity: message [rule]" line per finding, plus a
/// trailing "N error(s), M warning(s)" summary line.
std::string render_text(const pdl::Diagnostics& diags);

/// {"version":1,"findings":[{severity,rule,file,line,col,where,message}...],
///  "summary":{"errors":N,"warnings":M,"infos":K}}
std::string render_json(const pdl::Diagnostics& diags);

/// Exit code contract shared by the tools: 1 when errors are present (or
/// warnings with `werror`), else 0.
int exit_code(const pdl::Diagnostics& diags, bool werror);

}  // namespace analysis
