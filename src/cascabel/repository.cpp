#include "cascabel/repository.hpp"

#include <set>

#include "util/string_util.hpp"

namespace cascabel {

TaskRepository TaskRepository::with_defaults() {
  TaskRepository repo;
  repo.set_platform_requirement("x86", "M");
  repo.set_platform_requirement("smp", "M[W(ARCHITECTURE=x86_core)]");
  repo.set_platform_requirement("cuda", "M[W(ARCHITECTURE=gpu)]");
  repo.set_platform_requirement("opencl", "M[W(ARCHITECTURE=gpu)]");
  repo.set_platform_requirement("cell", "M[W(ARCHITECTURE=spe)]");
  return repo;
}

bool TaskRepository::register_program(const AnnotatedProgram& program) {
  for (const auto& v : program.variants) {
    if (find_variant(v.pragma.variant_name) != nullptr) return false;
  }
  for (const auto& v : program.variants) {
    variants_.push_back(v);
  }
  return true;
}

bool TaskRepository::add_variant(TaskVariant variant) {
  if (find_variant(variant.pragma.variant_name) != nullptr) return false;
  variants_.push_back(std::move(variant));
  return true;
}

const TaskVariant* TaskRepository::find_variant(std::string_view name) const {
  for (const auto& v : variants_) {
    if (v.pragma.variant_name == name) return &v;
  }
  return nullptr;
}

std::vector<const TaskVariant*> TaskRepository::variants_of(
    std::string_view interface_name) const {
  std::vector<const TaskVariant*> out;
  for (const auto& v : variants_) {
    if (v.pragma.task_interface == interface_name) out.push_back(&v);
  }
  return out;
}

std::vector<std::string> TaskRepository::interfaces() const {
  std::set<std::string> seen;
  std::vector<std::string> out;
  for (const auto& v : variants_) {
    if (seen.insert(v.pragma.task_interface).second) {
      out.push_back(v.pragma.task_interface);
    }
  }
  return out;
}

void TaskRepository::bind(BoundImpl impl) {
  bound_[impl.variant_name] = std::move(impl);
}

const BoundImpl* TaskRepository::bound(std::string_view variant_name) const {
  const auto it = bound_.find(variant_name);
  return it == bound_.end() ? nullptr : &it->second;
}

void TaskRepository::set_platform_requirement(std::string platform_name,
                                              std::string pattern) {
  requirements_[std::move(platform_name)] = std::move(pattern);
}

const std::string* TaskRepository::requirement(std::string_view platform_name) const {
  const auto it = requirements_.find(platform_name);
  return it == requirements_.end() ? nullptr : &it->second;
}

bool TaskRepository::is_fallback_platform(std::string_view platform_name) {
  return pdl::util::iequals(platform_name, "x86");
}

}  // namespace cascabel
