// Runtime -> descriptor feedback: the paper's §VI future work, implemented.
//
// "We have observed that tracking dynamically changing system resources
//  via platform descriptors can be difficult. In future we will
//  investigate how platform descriptors could be utilized for supporting
//  highly dynamic run-time schedulers."
//
// The PDL already provides the mechanism: *unfixed* properties are
// "marked to be editable by other tools or users ... with later
// instantiation by a runtime" (§III-B). This module closes that loop: the
// rates a starvm execution actually observed per device are written back
// into a clone of the platform description as unfixed MEASURED_GFLOPS
// properties, and any *unfixed* SUSTAINED_GFLOPS is re-instantiated with
// the observed value — so the next translation/scheduling round runs on
// measured rather than datasheet numbers.
//
// Device -> PU mapping: the starvm bridge names devices after the Worker
// PU they came from ("cpu_cores#3", "gpu1", "master:0"); refine_platform
// inverts that naming.
#pragma once

#include "pdl/model.hpp"
#include "starvm/stats.hpp"

namespace cascabel {

struct RefineReport {
  int pus_updated = 0;        ///< PUs that received MEASURED_GFLOPS
  int sustained_updated = 0;  ///< unfixed SUSTAINED_GFLOPS re-instantiated
};

/// Clone `platform` and instantiate measurement feedback from `stats`
/// (per-device observed GFLOPS = sum of task FLOPs / busy seconds; devices
/// expanded from one PU with quantity>1 are averaged). Devices without
/// FLOPs-modeled tasks are skipped. `report` (optional) receives counts.
pdl::Platform refine_platform(const pdl::Platform& platform,
                              const starvm::EngineStats& stats,
                              RefineReport* report = nullptr);

}  // namespace cascabel
