#include "cascabel/translator.hpp"

#include "cascabel/builtin_variants.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cascabel {

pdl::util::Result<TranslationResult> translate(std::string_view source,
                                               std::string source_name,
                                               const pdl::Platform& target,
                                               const TranslationOptions& options) {
  obs::Span translate_span("cascabel.translate", source_name);
  static obs::Counter& translations = obs::counter("cascabel.translations");
  TranslationResult result;

  // Step 1 — task registration.
  auto program = [&] {
    obs::Span span("cascabel.parse", source_name);
    return parse_annotated_source(source, std::move(source_name),
                                  result.diagnostics);
  }();
  if (!program) return program.error();
  result.program = std::move(program).value();

  result.repository = TaskRepository::with_defaults();
  if (options.use_builtin_variants) {
    register_builtin_variants(result.repository);
  }
  result.repository.register_program(result.program);

  // Expert variant files (paper Figure 1): variants only, call sites ignored.
  for (const auto& [name, text] : options.variant_sources) {
    auto extra = parse_annotated_source(text, name, result.diagnostics);
    if (!extra) return extra.error();
    if (!result.repository.register_program(extra.value())) {
      return pdl::util::Error{"duplicate variant name in variant source", name};
    }
    if (!extra.value().calls.empty()) {
      pdl::add_warning(result.diagnostics,
                       "variant source contains execute annotations; ignored",
                       name);
    }
  }

  // Step 2 — static pre-selection against the target PDL.
  result.selection = preselect(result.repository, target, result.diagnostics);
  if (pdl::has_errors(result.diagnostics)) {
    return pdl::util::Error{"pre-selection failed (see diagnostics)",
                            result.program.source_name};
  }

  // Step 3 — output generation.
  auto output = [&] {
    obs::Span span("cascabel.codegen", options.codegen.program_name);
    return generate_source(result.program, target, options.codegen,
                           result.diagnostics);
  }();
  if (!output) return output.error();
  result.output_source = std::move(output).value();

  // Step 4 — compilation plan.
  const std::string generated_name = options.codegen.program_name + ".cascabel.cpp";
  {
    obs::Span span("cascabel.compile_plan", generated_name);
    result.compile_plan =
        derive_compile_plan(target, generated_name, options.executable_name);
  }

  translations.inc();
  return result;
}

}  // namespace cascabel
