// Static task pre-selection and mapping (paper §IV-C step 2 and §IV-B).
//
// For every variant the repository holds, the platform patterns implied by
// its targetplatformlist are matched against the target PDL. Variants whose
// patterns do not match are pruned; matching variants are statically mapped
// to the processing units their pattern bound to. The paper requires at
// least one sequential fall-back variant per used interface so the program
// can always run on a Master PU.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cascabel/repository.hpp"
#include "pdl/diagnostics.hpp"
#include "pdl/model.hpp"
#include "starvm/perf_store.hpp"
#include "starvm/types.hpp"

namespace cascabel {

/// One variant that survived pre-selection for a concrete target.
struct SelectedVariant {
  const TaskVariant* variant = nullptr;
  std::string matched_platform;  ///< which targetplatformlist entry matched
  /// Worker/Master PUs the pattern bound to (candidate execution sites).
  std::vector<const pdl::ProcessingUnit*> mapped_pus;
  /// Device class this variant executes on when run by starvm.
  starvm::DeviceKind device_kind = starvm::DeviceKind::kCpu;
  bool is_fallback = false;  ///< sequential Master-only variant

  /// How constrained the matched requirement pattern is (PU nodes +
  /// property constraints). Among usable candidates of one device class,
  /// the most specific wins (paper §II: expert variants declare tighter
  /// requirements precisely because they are the optimized ones).
  int specificity = 0;

  /// Learned rate from the persisted perf store (best device's EMA over
  /// entries with at least SelectionOptions::min_samples observations);
  /// 0 = no trustworthy measurement. When non-zero, rt's per-call ranking
  /// prefers the measured-fastest variant over the declared-specificity
  /// order — the autotuning loop's pay-off.
  double measured_gflops = 0.0;

  /// Static per-element error bound of this variant's declared error model
  /// evaluated at the AccuracyGuard's depth and magnitude; negative when
  /// the variant declares no model (nothing to judge).
  double static_error_bound = -1.0;
  /// True when the guard is enabled and the declared bound exceeds its
  /// tolerance: rt::execute refuses to flip onto this variant for speed
  /// (the accuracy veto), logging the refused trade.
  bool accuracy_vetoed = false;
};

/// Static accuracy requirement the autotuner enforces at selection time
/// (docs/RUNTIME.md "Accuracy-guarded selection"). When enabled, every
/// candidate's declared error model is evaluated at `depth`/`magnitude`
/// (the same closed form the A7xx analysis propagates, A701) and variants
/// whose bound exceeds `tolerance` are vetoed: a measured-rate flip in
/// rt::execute may not trade the program's accuracy away for speed.
struct AccuracyGuard {
  bool enabled = false;
  /// Maximum acceptable per-element absolute error of the call's outputs.
  double tolerance = 0.0;
  /// Input-magnitude product the bounds are evaluated at (max|A|*max|B|).
  double magnitude = 1.0;
  /// Accumulation depth (the k extent); variants with a model-default
  /// depth use their own when this is 0.
  double depth = 1.0;
};

/// Measurement input for pre-selection: the persisted perf store of the
/// target platform (docs/RUNTIME.md "Persisted performance models").
struct SelectionOptions {
  /// Store whose descriptor hash already matched the target; non-owning,
  /// may be null (pure declared-rate selection).
  const starvm::perf_store::Store* perf_store = nullptr;
  /// Confidence threshold: entries with fewer recorded observations do not
  /// override declared rates (a single noisy sample must not flip a
  /// variant choice for every future run).
  std::uint64_t min_samples = 3;
  /// Accuracy requirement evaluated against every candidate's declared
  /// error model (SelectedVariant::accuracy_vetoed); disabled by default.
  AccuracyGuard accuracy;
};

/// Pre-selection output for a whole repository against one target platform.
struct SelectionResult {
  /// interface name -> surviving variants (fall-back first).
  std::map<std::string, std::vector<SelectedVariant>> by_interface;

  const std::vector<SelectedVariant>* candidates(const std::string& interface_name) const {
    const auto it = by_interface.find(interface_name);
    return it == by_interface.end() ? nullptr : &it->second;
  }
};

/// Run pre-selection of every repository variant against `target`.
/// Emits diagnostics for pruned variants (info), interfaces left without
/// any variant (error) and interfaces without a fall-back (error, paper
/// §IV-C step 3: "At least one sequential fall-back variant must be
/// provided").
SelectionResult preselect(const TaskRepository& repository,
                          const pdl::Platform& target, pdl::Diagnostics& diags);

/// As above, additionally annotating every surviving variant with its
/// measured rate from the perf store (SelectedVariant::measured_gflops).
SelectionResult preselect(const TaskRepository& repository,
                          const pdl::Platform& target, pdl::Diagnostics& diags,
                          const SelectionOptions& options);

/// Device class a target-platform name executes on: cuda/opencl/cell run
/// on (simulated) accelerators, everything else on CPUs.
starvm::DeviceKind device_kind_for_target(std::string_view platform_name);

/// Resolve an execute annotation's executiongroup against the target PDL:
/// the PUs carrying that LogicGroupAttribute, or every PU when the group
/// is empty/unknown (with a warning for unknown names).
std::vector<const pdl::ProcessingUnit*> resolve_execution_group(
    const pdl::Platform& target, const std::string& group, pdl::Diagnostics& diags);

}  // namespace cascabel
