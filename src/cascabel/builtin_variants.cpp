#include "cascabel/builtin_variants.hpp"

#include "kernels/dgemm.hpp"
#include "kernels/vector_ops.hpp"

namespace cascabel {

namespace {

TaskVariant make_variant(std::string interface_name, std::string variant_name,
                         std::vector<std::string> platforms,
                         std::vector<ParamSpec> params) {
  TaskVariant v;
  v.pragma.task_interface = std::move(interface_name);
  v.pragma.variant_name = std::move(variant_name);
  v.pragma.target_platforms = std::move(platforms);
  v.pragma.params = std::move(params);
  v.function.name = v.pragma.variant_name;  // synthetic: no source text
  return v;
}

/// C (rows x cols) += A (rows x k) * B (k x cols); geometry from handles.
void dgemm_exec(const starvm::ExecContext& ctx) {
  const auto& c = ctx.handle(0);
  const auto& a = ctx.handle(1);
  kernels::dgemm_blocked(c.rows(), c.cols(), a.cols(), ctx.buffer(1), ctx.buffer(2),
                         ctx.buffer(0));
}

/// Register-blocked/SIMD variant of the same interface (see dgemm_tiled).
void dgemm_tiled_exec(const starvm::ExecContext& ctx) {
  const auto& c = ctx.handle(0);
  const auto& a = ctx.handle(1);
  kernels::dgemm_tiled(c.rows(), c.cols(), a.cols(), ctx.buffer(1), ctx.buffer(2),
                       ctx.buffer(0));
}

double dgemm_flops(const std::vector<starvm::BufferView>& buffers) {
  const auto& c = *buffers[0].handle;
  const auto& a = *buffers[1].handle;
  return kernels::dgemm_flops(c.rows(), c.cols(), a.cols());
}

void vecadd_exec(const starvm::ExecContext& ctx) {
  kernels::vector_add(ctx.buffer(0), ctx.buffer(1), ctx.handle(0).cols());
}

double vecadd_flops(const std::vector<starvm::BufferView>& buffers) {
  return static_cast<double>(buffers[0].handle->cols());
}

}  // namespace

void register_builtin_variants(TaskRepository& repo) {
  const std::vector<ParamSpec> dgemm_params = {
      {"C", AccessMode::kReadWrite}, {"A", AccessMode::kRead}, {"B", AccessMode::kRead}};
  const std::vector<ParamSpec> vecadd_params = {{"A", AccessMode::kReadWrite},
                                                {"B", AccessMode::kRead}};

  repo.add_variant(make_variant("Idgemm", "dgemm_seq", {"x86"}, dgemm_params));
  repo.bind(BoundImpl{"dgemm_seq", starvm::DeviceKind::kCpu, dgemm_exec, dgemm_flops});

  // Tuned single-core variant: register-blocked 4x4 micro-kernel (SIMD
  // when the build enables PDL_ENABLE_NATIVE_ARCH). Same fallback platform
  // as dgemm_seq — the selector keeps both and the runtime's performance
  // model learns which one wins on the host.
  repo.add_variant(make_variant("Idgemm", "dgemm_tiled", {"x86"}, dgemm_params));
  repo.bind(BoundImpl{"dgemm_tiled", starvm::DeviceKind::kCpu, dgemm_tiled_exec,
                      dgemm_flops});

  repo.add_variant(make_variant("Idgemm", "dgemm_smp", {"smp"}, dgemm_params));
  repo.bind(BoundImpl{"dgemm_smp", starvm::DeviceKind::kCpu, dgemm_exec, dgemm_flops});

  repo.add_variant(make_variant("Idgemm", "dgemm_cublas", {"cuda"}, dgemm_params));
  repo.bind(BoundImpl{"dgemm_cublas", starvm::DeviceKind::kAccelerator, dgemm_exec,
                      dgemm_flops});

  repo.add_variant(make_variant("Ivecadd", "vecadd_seq", {"x86"}, vecadd_params));
  repo.bind(BoundImpl{"vecadd_seq", starvm::DeviceKind::kCpu, vecadd_exec, vecadd_flops});

  repo.add_variant(make_variant("Ivecadd", "vecadd_smp", {"smp"}, vecadd_params));
  repo.bind(BoundImpl{"vecadd_smp", starvm::DeviceKind::kCpu, vecadd_exec, vecadd_flops});

  repo.add_variant(make_variant("Ivecadd", "vecadd_ocl", {"opencl"}, vecadd_params));
  repo.bind(BoundImpl{"vecadd_ocl", starvm::DeviceKind::kAccelerator, vecadd_exec,
                      vecadd_flops});
}

}  // namespace cascabel
