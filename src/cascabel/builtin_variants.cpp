#include "cascabel/builtin_variants.hpp"

#include "kernels/cholesky.hpp"
#include "kernels/dgemm.hpp"
#include "kernels/vector_ops.hpp"

namespace cascabel {

namespace {

TaskVariant make_variant(std::string interface_name, std::string variant_name,
                         std::vector<std::string> platforms,
                         std::vector<ParamSpec> params,
                         starvm::ErrorModel model = {}) {
  TaskVariant v;
  v.pragma.task_interface = std::move(interface_name);
  v.pragma.variant_name = std::move(variant_name);
  v.pragma.target_platforms = std::move(platforms);
  v.pragma.params = std::move(params);
  v.function.name = v.pragma.variant_name;  // synthetic: no source text
  v.error_model = model;
  return v;
}

// Declared error models of the builtin kernels (starvm::ErrorModel: one
// execution adds <= coefficient * k * prod|inputs| * epsilon per element).
// Depth (the k extent) comes from the call site / guard, so it is left 0.
//
//   * double GEMM-likes: blocked summation over k is gamma_k ~ k*u; the
//     coefficient 2 covers the product rounding and tile reassociation.
//   * mixed-precision GEMM: the kernel's documented closed form — input
//     demotion + float products, double accumulation (dgemm.hpp).
//   * triangular solve: substitution adds a division per step on top of
//     the multiply-accumulate recurrence.
constexpr double kUlp = starvm::ErrorModel::kUlpDouble;
const starvm::ErrorModel kGemmModel = starvm::ErrorModel::rounding(2.0, kUlp);
const starvm::ErrorModel kMixedModel =
    starvm::ErrorModel::rounding(3.0, starvm::ErrorModel::kUlpSingle);
const starvm::ErrorModel kTrsmModel = starvm::ErrorModel::rounding(4.0, kUlp);
const starvm::ErrorModel kSyrkModel = starvm::ErrorModel::rounding(2.0, kUlp);
const starvm::ErrorModel kVecaddModel =
    starvm::ErrorModel::rounding(1.0, kUlp, 1.0);

/// C (rows x cols) += A (rows x k) * B (k x cols); geometry from handles.
void dgemm_exec(const starvm::ExecContext& ctx) {
  const auto& c = ctx.handle(0);
  const auto& a = ctx.handle(1);
  kernels::dgemm_blocked(c.rows(), c.cols(), a.cols(), ctx.buffer(1), ctx.buffer(2),
                         ctx.buffer(0));
}

/// Register-blocked/SIMD variant of the same interface (see dgemm_tiled).
void dgemm_tiled_exec(const starvm::ExecContext& ctx) {
  const auto& c = ctx.handle(0);
  const auto& a = ctx.handle(1);
  kernels::dgemm_tiled(c.rows(), c.cols(), a.cols(), ctx.buffer(1), ctx.buffer(2),
                       ctx.buffer(0));
}

double dgemm_flops(const std::vector<starvm::BufferView>& buffers) {
  const auto& c = *buffers[0].handle;
  const auto& a = *buffers[1].handle;
  return kernels::dgemm_flops(c.rows(), c.cols(), a.cols());
}

/// Mixed-precision dgemm on the same Idgemm geometry; own interface so
/// measured-rate selection can never swap it in for full-precision callers.
void dgemm_mixed_exec(const starvm::ExecContext& ctx) {
  const auto& c = ctx.handle(0);
  const auto& a = ctx.handle(1);
  kernels::dgemm_mixed(c.rows(), c.cols(), a.cols(), ctx.buffer(1), ctx.buffer(2),
                       ctx.buffer(0));
}

/// Batched square elements, packed convention: every handle is a
/// (batch*t x t) stack of t x t elements with t = cols (row-band
/// decomposition preserves it: a band of b rows is b/t whole elements).
void dgemm_batch_seq_exec(const starvm::ExecContext& ctx) {
  const auto& c = ctx.handle(0);
  const std::size_t t = c.cols();
  const std::size_t batch = t == 0 ? 0 : c.rows() / t;
  kernels::dgemm_batched_ref(batch, t, t, t, ctx.buffer(1), ctx.buffer(2),
                             ctx.buffer(0));
}

void dgemm_batch_small_exec(const starvm::ExecContext& ctx) {
  const auto& c = ctx.handle(0);
  const std::size_t t = c.cols();
  const std::size_t batch = t == 0 ? 0 : c.rows() / t;
  kernels::dgemm_batched_small(batch, t, t, t, ctx.buffer(1), ctx.buffer(2),
                               ctx.buffer(0));
}

double dgemm_batch_flops(const std::vector<starvm::BufferView>& buffers) {
  const auto& c = *buffers[0].handle;
  const std::size_t t = c.cols();
  const std::size_t batch = t == 0 ? 0 : c.rows() / t;
  return kernels::dgemm_batched_flops(batch, t, t, t);
}

/// B (m x n) := B·L⁻ᵀ with L the n x n lower-triangular second operand.
void dtrsm_seq_exec(const starvm::ExecContext& ctx) {
  const auto& bh = ctx.handle(0);
  const auto& lh = ctx.handle(1);
  kernels::trsm_rlt(bh.rows(), lh.rows(), ctx.buffer(1), lh.ld(), ctx.buffer(0),
                    bh.ld());
}

void dtrsm_simd_exec(const starvm::ExecContext& ctx) {
  const auto& bh = ctx.handle(0);
  const auto& lh = ctx.handle(1);
  kernels::trsm_rlt_simd(bh.rows(), lh.rows(), ctx.buffer(1), lh.ld(),
                         ctx.buffer(0), bh.ld());
}

double dtrsm_flops(const std::vector<starvm::BufferView>& buffers) {
  return kernels::trsm_flops(buffers[0].handle->rows(),
                             buffers[1].handle->rows());
}

/// C (n x n) := C - A·Aᵀ on the lower triangle, A an n x k tile.
void dsyrk_seq_exec(const starvm::ExecContext& ctx) {
  const auto& ch = ctx.handle(0);
  const auto& ah = ctx.handle(1);
  kernels::syrk_ln(ch.rows(), ah.cols(), ctx.buffer(1), ah.ld(), ctx.buffer(0),
                   ch.ld());
}

void dsyrk_simd_exec(const starvm::ExecContext& ctx) {
  const auto& ch = ctx.handle(0);
  const auto& ah = ctx.handle(1);
  kernels::syrk_ln_simd(ch.rows(), ah.cols(), ctx.buffer(1), ah.ld(),
                        ctx.buffer(0), ch.ld());
}

double dsyrk_flops(const std::vector<starvm::BufferView>& buffers) {
  return kernels::syrk_flops(buffers[0].handle->rows(),
                             buffers[1].handle->cols());
}

void vecadd_exec(const starvm::ExecContext& ctx) {
  kernels::vector_add(ctx.buffer(0), ctx.buffer(1), ctx.handle(0).cols());
}

double vecadd_flops(const std::vector<starvm::BufferView>& buffers) {
  return static_cast<double>(buffers[0].handle->cols());
}

}  // namespace

void register_builtin_variants(TaskRepository& repo) {
  const std::vector<ParamSpec> dgemm_params = {
      {"C", AccessMode::kReadWrite}, {"A", AccessMode::kRead}, {"B", AccessMode::kRead}};
  const std::vector<ParamSpec> vecadd_params = {{"A", AccessMode::kReadWrite},
                                                {"B", AccessMode::kRead}};

  repo.add_variant(make_variant("Idgemm", "dgemm_seq", {"x86"}, dgemm_params, kGemmModel));
  repo.bind(BoundImpl{"dgemm_seq", starvm::DeviceKind::kCpu, dgemm_exec, dgemm_flops});

  // Tuned single-core variant: register-blocked 4x4 micro-kernel (SIMD
  // when the build enables PDL_ENABLE_NATIVE_ARCH). Same fallback platform
  // as dgemm_seq — the selector keeps both and the runtime's performance
  // model learns which one wins on the host.
  repo.add_variant(make_variant("Idgemm", "dgemm_tiled", {"x86"}, dgemm_params, kGemmModel));
  repo.bind(BoundImpl{"dgemm_tiled", starvm::DeviceKind::kCpu, dgemm_tiled_exec,
                      dgemm_flops});

  repo.add_variant(make_variant("Idgemm", "dgemm_smp", {"smp"}, dgemm_params, kGemmModel));
  repo.bind(BoundImpl{"dgemm_smp", starvm::DeviceKind::kCpu, dgemm_exec, dgemm_flops});

  repo.add_variant(make_variant("Idgemm", "dgemm_cublas", {"cuda"}, dgemm_params, kGemmModel));
  repo.bind(BoundImpl{"dgemm_cublas", starvm::DeviceKind::kAccelerator, dgemm_exec,
                      dgemm_flops});

  // Mixed-precision dgemm lives under its own interface: callers opt into
  // the reduced accuracy explicitly, and the measured-rate selector can
  // never flip a full-precision Idgemm call onto it.
  repo.add_variant(make_variant("Idgemm_mixed", "dgemm_mixed", {"x86"}, dgemm_params,
                               kMixedModel));
  repo.bind(BoundImpl{"dgemm_mixed", starvm::DeviceKind::kCpu, dgemm_mixed_exec,
                      dgemm_flops});

  // Batched small-GEMM: reference + cache-resident streaming variant. Both
  // are fall-backs; the perf store learns which wins on the host and the
  // selector flips once the sample threshold is met.
  const std::vector<ParamSpec> batch_params = {
      {"C", AccessMode::kReadWrite}, {"A", AccessMode::kRead}, {"B", AccessMode::kRead}};
  repo.add_variant(make_variant("Idgemm_batch", "dgemm_batch_seq", {"x86"}, batch_params,
                               kGemmModel));
  repo.bind(BoundImpl{"dgemm_batch_seq", starvm::DeviceKind::kCpu,
                      dgemm_batch_seq_exec, dgemm_batch_flops});
  repo.add_variant(
      make_variant("Idgemm_batch", "dgemm_batch_small", {"x86"}, batch_params,
                   kGemmModel));
  repo.bind(BoundImpl{"dgemm_batch_small", starvm::DeviceKind::kCpu,
                      dgemm_batch_small_exec, dgemm_batch_flops});

  // Triangular solve and rank-k update pairs (scalar + SIMD restructure),
  // the tile operations of the Cholesky/LU solvers exposed as repository
  // interfaces so selection flips show up in the decision log.
  const std::vector<ParamSpec> dtrsm_params = {{"B", AccessMode::kReadWrite},
                                               {"L", AccessMode::kRead}};
  repo.add_variant(make_variant("Idtrsm", "dtrsm_seq", {"x86"}, dtrsm_params, kTrsmModel));
  repo.bind(BoundImpl{"dtrsm_seq", starvm::DeviceKind::kCpu, dtrsm_seq_exec,
                      dtrsm_flops});
  repo.add_variant(make_variant("Idtrsm", "dtrsm_simd", {"x86"}, dtrsm_params, kTrsmModel));
  repo.bind(BoundImpl{"dtrsm_simd", starvm::DeviceKind::kCpu, dtrsm_simd_exec,
                      dtrsm_flops});

  const std::vector<ParamSpec> dsyrk_params = {{"C", AccessMode::kReadWrite},
                                               {"A", AccessMode::kRead}};
  repo.add_variant(make_variant("Idsyrk", "dsyrk_seq", {"x86"}, dsyrk_params, kSyrkModel));
  repo.bind(BoundImpl{"dsyrk_seq", starvm::DeviceKind::kCpu, dsyrk_seq_exec,
                      dsyrk_flops});
  repo.add_variant(make_variant("Idsyrk", "dsyrk_simd", {"x86"}, dsyrk_params, kSyrkModel));
  repo.bind(BoundImpl{"dsyrk_simd", starvm::DeviceKind::kCpu, dsyrk_simd_exec,
                      dsyrk_flops});

  repo.add_variant(make_variant("Ivecadd", "vecadd_seq", {"x86"}, vecadd_params, kVecaddModel));
  repo.bind(BoundImpl{"vecadd_seq", starvm::DeviceKind::kCpu, vecadd_exec, vecadd_flops});

  repo.add_variant(make_variant("Ivecadd", "vecadd_smp", {"smp"}, vecadd_params, kVecaddModel));
  repo.bind(BoundImpl{"vecadd_smp", starvm::DeviceKind::kCpu, vecadd_exec, vecadd_flops});

  repo.add_variant(make_variant("Ivecadd", "vecadd_ocl", {"opencl"}, vecadd_params,
                               kVecaddModel));
  repo.bind(BoundImpl{"vecadd_ocl", starvm::DeviceKind::kAccelerator, vecadd_exec,
                      vecadd_flops});
}

}  // namespace cascabel
