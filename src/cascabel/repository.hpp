// The task implementation repository (paper Figure 4: "repository for
// managing task implementation variants tailored for different
// heterogeneous platforms"; §IV-C step 1 "task registration").
//
// The repository holds two coupled things:
//   * task *variants*: annotated source-level implementations, either
//     scanned from the input program or contributed by expert programmers
//     for specific platforms (paper Figure 1); and
//   * *bound implementations*: the executable form of a variant (a C++
//     callable against the starvm block API) used when translated programs
//     run in-process.
// It also owns the mapping from target-platform names (the pragma's
// targetplatformlist entries: "x86", "smp", "cuda", ...) to the PDL
// platform *patterns* a target environment must match (§IV-C step 2).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "annot/annotated_program.hpp"
#include "annot/task_model.hpp"
#include "starvm/codelet.hpp"

namespace cascabel {

/// Executable form of a variant.
struct BoundImpl {
  std::string variant_name;
  starvm::DeviceKind device_kind = starvm::DeviceKind::kCpu;
  std::function<void(const starvm::ExecContext&)> fn;
  /// Optional FLOPs estimate (feeds the runtime's performance model).
  std::function<double(const std::vector<starvm::BufferView>&)> flops;
};

class TaskRepository {
 public:
  /// A repository with the default platform-requirement table:
  ///   x86  -> "M"                          (any Master: the fall-back)
  ///   smp  -> "M[W(ARCHITECTURE=x86_core)]"
  ///   cuda -> "M[W(ARCHITECTURE=gpu)]"
  ///   opencl -> "M[W(ARCHITECTURE=gpu)]"
  ///   cell -> "M[W(ARCHITECTURE=spe)]"
  static TaskRepository with_defaults();

  // --- Variants ---------------------------------------------------------------

  /// Register every variant of a scanned program (§IV-C step 1). Variants
  /// with duplicate names are rejected with false.
  bool register_program(const AnnotatedProgram& program);

  /// Register a single (e.g. expert-provided) variant.
  bool add_variant(TaskVariant variant);

  const TaskVariant* find_variant(std::string_view name) const;
  std::vector<const TaskVariant*> variants_of(std::string_view interface_name) const;
  const std::vector<TaskVariant>& variants() const { return variants_; }
  /// All distinct task interfaces.
  std::vector<std::string> interfaces() const;

  // --- Bound implementations -----------------------------------------------------

  void bind(BoundImpl impl);
  const BoundImpl* bound(std::string_view variant_name) const;

  // --- Platform requirements -------------------------------------------------------

  /// Map a target-platform name to a compact PDL pattern (pattern.hpp syntax).
  void set_platform_requirement(std::string platform_name, std::string pattern);
  /// The pattern for a platform name; nullptr when unknown.
  const std::string* requirement(std::string_view platform_name) const;
  /// Whether `platform_name` designates the sequential fall-back target.
  static bool is_fallback_platform(std::string_view platform_name);

 private:
  std::vector<TaskVariant> variants_;
  std::map<std::string, BoundImpl, std::less<>> bound_;
  std::map<std::string, std::string, std::less<>> requirements_;
};

}  // namespace cascabel
