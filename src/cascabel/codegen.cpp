#include "cascabel/codegen.hpp"

#include <algorithm>
#include <sstream>

#include "pdl/serializer.hpp"
#include "util/string_util.hpp"

namespace cascabel {

namespace {

struct Edit {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string text;
};

const char* access_enum(AccessMode mode) {
  switch (mode) {
    case AccessMode::kRead: return "::cascabel::AccessMode::kRead";
    case AccessMode::kWrite: return "::cascabel::AccessMode::kWrite";
    case AccessMode::kReadWrite: return "::cascabel::AccessMode::kReadWrite";
  }
  return "::cascabel::AccessMode::kRead";
}

const char* dist_enum(DistributionKind kind) {
  switch (kind) {
    case DistributionKind::kNone: return "::cascabel::DistributionKind::kNone";
    case DistributionKind::kBlock: return "::cascabel::DistributionKind::kBlock";
    case DistributionKind::kCyclic: return "::cascabel::DistributionKind::kCyclic";
    case DistributionKind::kBlockCyclic:
      return "::cascabel::DistributionKind::kBlockCyclic";
  }
  return "::cascabel::DistributionKind::kNone";
}

const char* kind_enum(starvm::DeviceKind kind) {
  return kind == starvm::DeviceKind::kAccelerator
             ? "::starvm::DeviceKind::kAccelerator"
             : "::starvm::DeviceKind::kCpu";
}

/// Comment out every line of a source span.
std::string comment_out(std::string_view text) {
  std::string out;
  for (const auto& line : pdl::util::split(text, '\n')) {
    out += "// ";
    out += line;
    out += '\n';
  }
  if (!out.empty()) out.pop_back();  // drop the extra trailing newline
  return out;
}

/// The generated replacement for one annotated call site, or nullopt when
/// the call cannot be translated (diagnostic added; original call kept).
std::optional<std::string> generate_call_block(const AnnotatedProgram& program,
                                               const CallSite& call,
                                               const CodegenOptions& options,
                                               pdl::Diagnostics& diags) {
  const auto variants = program.variants_of(call.pragma.task_interface);
  if (variants.empty()) return std::nullopt;  // already diagnosed by the front-end
  const TaskVariant& variant = *variants.front();

  const auto where = program.source_name + ":" + std::to_string(call.pragma.range.line);

  std::ostringstream os;
  os << "{ // cascabel: execute " << call.pragma.task_interface;
  if (!call.pragma.execution_group.empty()) {
    os << " on group '" << call.pragma.execution_group << "'";
  }
  os << " (generated)\n";
  os << "  ::cascabel::rt::execute(\"" << call.pragma.task_interface << "\", \""
     << call.pragma.execution_group << "\", {\n";

  // Arguments in paramlist order (the buffer-index convention adapters use).
  for (std::size_t p = 0; p < variant.pragma.params.size(); ++p) {
    const ParamSpec& param = variant.pragma.params[p];

    // Pointer expression: positional — the call argument at the parameter's
    // position in the function signature.
    std::string pointer_expr = param.name;
    for (std::size_t i = 0; i < variant.function.param_names.size(); ++i) {
      if (variant.function.param_names[i] == param.name && i < call.args.size()) {
        pointer_expr = call.args[i];
        break;
      }
    }

    // Extents from the matching distribution entry.
    const DistributionSpec* dist = nullptr;
    for (const auto& d : call.pragma.distributions) {
      if (d.param == param.name) dist = &d;
    }
    if (dist == nullptr || dist->sizes.empty()) {
      add_warning(diags,
                  "call to '" + call.pragma.task_interface + "': parameter '" +
                      param.name +
                      "' has no distribution sizes; call left untranslated",
                  where);
      return std::nullopt;
    }
    os << "    ";
    if (dist->sizes.size() == 1) {
      os << "::cascabel::rt::arg(" << pointer_expr << ", static_cast<std::size_t>("
         << dist->sizes[0] << "), " << access_enum(param.mode) << ", "
         << dist_enum(dist->kind) << ")";
    } else {
      os << "::cascabel::rt::arg_matrix(" << pointer_expr
         << ", static_cast<std::size_t>(" << dist->sizes[0]
         << "), static_cast<std::size_t>(" << dist->sizes[1] << "), "
         << access_enum(param.mode) << ", " << dist_enum(dist->kind) << ")";
    }
    os << (p + 1 < variant.pragma.params.size() ? ",\n" : "\n");
  }
  os << "  });\n";
  if (options.sync_each_call) {
    os << "  ::cascabel::rt::wait();\n";
  }
  os << "}";
  return os.str();
}

/// Adapter body: call the in-file function with buffers in paramlist order
/// and block geometry for trailing scalars (see DESIGN.md conventions).
std::string generate_adapter(const TaskVariant& variant, pdl::Diagnostics& diags,
                             const std::string& where) {
  std::ostringstream os;
  os << variant.function.name << "(";
  int scalar_index = 0;
  // Count scalars to choose the geometry convention:
  //   one scalar  -> cols(0)            (square matrices / vector length)
  //   two scalars -> rows(0), cols(0)
  int scalar_count = 0;
  for (const auto& name : variant.function.param_names) {
    bool in_paramlist = false;
    for (const auto& p : variant.pragma.params) in_paramlist |= p.name == name;
    if (!in_paramlist) ++scalar_count;
  }
  for (std::size_t i = 0; i < variant.function.param_names.size(); ++i) {
    if (i != 0) os << ", ";
    const std::string& name = variant.function.param_names[i];
    int buffer_index = -1;
    for (std::size_t p = 0; p < variant.pragma.params.size(); ++p) {
      if (variant.pragma.params[p].name == name) {
        buffer_index = static_cast<int>(p);
      }
    }
    if (buffer_index >= 0) {
      os << "ctx.buffer(" << buffer_index << ")";
      continue;
    }
    // Trailing scalar: block geometry of buffer 0.
    const std::string& type = i < variant.function.param_types.size()
                                  ? variant.function.param_types[i]
                                  : std::string();
    const bool want_rows = scalar_count == 2 && scalar_index == 0;
    std::string expr = want_rows ? "ctx.handle(0).rows()" : "ctx.handle(0).cols()";
    if (!type.empty() && type != "std::size_t" && type != "size_t") {
      expr = "static_cast<" + type + ">(" + expr + ")";
    }
    os << expr;
    ++scalar_index;
    if (type.find('*') != std::string::npos) {
      add_warning(diags,
                  "adapter for '" + variant.pragma.variant_name +
                      "': pointer parameter '" + name +
                      "' is not in the pragma parameterlist",
                  where);
    }
  }
  os << ");";
  return os.str();
}

}  // namespace

pdl::util::Result<std::string> generate_source(const AnnotatedProgram& program,
                                               const pdl::Platform& target,
                                               const CodegenOptions& options,
                                               pdl::Diagnostics& diags) {
  std::vector<Edit> edits;

  // Task pragmas: comment out (unknown to downstream compilers).
  for (const auto& variant : program.variants) {
    const SourceRange& r = variant.pragma.range;
    edits.push_back(
        Edit{r.begin, r.end, comment_out(program.source.substr(r.begin, r.end - r.begin))});
  }

  // Call sites: pragma + statement replaced by the generated block.
  for (const auto& call : program.calls) {
    auto block = generate_call_block(program, call, options, diags);
    const std::size_t begin = call.pragma.range.begin;
    const std::size_t end = call.statement.end;
    if (!block) {
      // Keep the original call; just comment the pragma.
      const SourceRange& r = call.pragma.range;
      edits.push_back(Edit{
          r.begin, r.end, comment_out(program.source.substr(r.begin, r.end - r.begin))});
      continue;
    }
    edits.push_back(Edit{begin, end, std::move(*block)});
  }

  // Apply edits back-to-front.
  std::sort(edits.begin(), edits.end(),
            [](const Edit& a, const Edit& b) { return a.begin > b.begin; });
  std::string body = program.source;
  for (const auto& edit : edits) {
    body.replace(edit.begin, edit.end - edit.begin, edit.text);
  }

  // Prologue.
  std::ostringstream out;
  out << "// ===== Generated by cascabel =====\n";
  out << "// input:  " << program.source_name << "\n";
  out << "// target: " << (target.name().empty() ? "<unnamed platform>" : target.name())
      << "\n";
  out << "// Do not edit; regenerate from the annotated input program.\n";
  out << "#include <cstddef>\n";
  out << "#include \"cascabel/rt.hpp\"\n\n";
  out << body;
  out << "\n\n// ===== cascabel epilogue: variant registration & runtime init =====\n";
  out << "namespace {\n";

  // Adapters + registrations for in-file variants.
  for (const auto& variant : program.variants) {
    const std::string where =
        program.source_name + ":" + std::to_string(variant.pragma.range.line);
    out << "[[maybe_unused]] const bool cascabel_reg_" << variant.pragma.variant_name
        << " = ::cascabel::rt::register_variant(\n";
    out << "    \"" << variant.pragma.task_interface << "\", \""
        << variant.pragma.variant_name << "\",\n    {";
    for (std::size_t i = 0; i < variant.pragma.target_platforms.size(); ++i) {
      out << (i ? ", " : "") << "\"" << variant.pragma.target_platforms[i] << "\"";
    }
    // The in-file variant's device class follows its first target platform.
    out << "},\n    "
        << kind_enum(device_kind_for_target(variant.pragma.target_platforms.front()))
        << ",\n";
    out << "    [](const ::starvm::ExecContext& ctx) { "
        << generate_adapter(variant, diags, where) << " });\n";
  }

  if (options.emit_initialize) {
    pdl::SerializeOptions so;
    so.pretty = true;
    out << "\nconst char cascabel_target_pdl[] = R\"CASCABEL_PDL(\n"
        << pdl::serialize(target, so) << ")CASCABEL_PDL\";\n";
    out << "[[maybe_unused]] const bool cascabel_rt_ready =\n"
        << "    ::cascabel::rt::initialize(cascabel_target_pdl);\n";
  }
  out << "}  // namespace\n";
  return out.str();
}

}  // namespace cascabel
