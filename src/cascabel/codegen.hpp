// Output generation (paper §IV-C step 3): construct the translated source
// file from the annotated input program, the pre-selection result and the
// target platform description.
//
// The transformation is source-to-source:
//   * a prologue includes cascabel/rt.hpp and embeds the target PDL;
//   * every cascabel pragma is commented out (the annotated function
//     definitions remain — they are the sequential fall-backs);
//   * every annotated call statement is replaced by a generated block that
//     registers/decomposes the data per the distribution specifiers and
//     submits tasks through cascabel::rt;
//   * an epilogue registers adapters for the in-file variants and
//     initializes the global runtime context from the embedded PDL.
//
// The result is a self-contained C++ translation unit compilable against
// this repository's headers and libraries (verified by an integration
// test that really compiles and runs one).
#pragma once

#include <string>

#include "annot/annotated_program.hpp"
#include "cascabel/selection.hpp"
#include "pdl/diagnostics.hpp"
#include "pdl/model.hpp"
#include "util/result.hpp"

namespace cascabel {

struct CodegenOptions {
  std::string program_name = "cascabel_program";
  /// Insert `cascabel::rt::wait()` after every generated call block so the
  /// translated program preserves the serial program's semantics at every
  /// statement boundary.
  bool sync_each_call = true;
  /// Emit the embedded-PDL + initialize() epilogue (disable when the host
  /// application initializes the runtime itself).
  bool emit_initialize = true;
};

/// Generate the translated source. Problems that make a specific call site
/// untranslatable (e.g. a parameter without extent information) keep the
/// original call and add a warning; structural problems fail the Result.
pdl::util::Result<std::string> generate_source(const AnnotatedProgram& program,
                                               const pdl::Platform& target,
                                               const CodegenOptions& options,
                                               pdl::Diagnostics& diags);

}  // namespace cascabel
