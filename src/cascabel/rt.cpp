#include "cascabel/rt.hpp"

#include <algorithm>
#include <mutex>

#include "cascabel/builtin_variants.hpp"
#include "obs/trace.hpp"
#include "pdl/parser.hpp"
#include "util/logging.hpp"

namespace cascabel::rt {

namespace {

starvm::Access to_starvm(AccessMode mode) {
  switch (mode) {
    case AccessMode::kRead: return starvm::Access::kRead;
    case AccessMode::kWrite: return starvm::Access::kWrite;
    case AccessMode::kReadWrite: return starvm::Access::kReadWrite;
  }
  return starvm::Access::kRead;
}

}  // namespace

Context::Context(const pdl::Platform& target, TaskRepository repository,
                 Options options)
    : platform_(target.clone()),
      repository_(std::move(repository)),
      options_(options) {
  // Engine config first: the perf store is keyed by the hash of the device
  // descriptors the bridge derives, so pre-selection can only trust the
  // store after that hash has been checked.
  starvm::BridgeOptions bridge = options_.bridge;
  bridge.scheduler = options_.scheduler;
  bridge.mode = options_.mode;
  auto config = starvm::engine_config_from_platform(platform_, bridge);
  starvm::EngineConfig engine_config;
  if (!config) {
    // An engine is still required for the object to be usable; fall back to
    // a single CPU and record the problem.
    pdl::add_error(diags_, "engine construction: " + config.error().str());
    engine_config = starvm::EngineConfig::cpus(1);
  } else {
    engine_config = std::move(config).value();
  }
  engine_config.fault_tolerance = options_.fault_tolerance;
  engine_config.fault_plan = options_.fault_plan;
  engine_config.perf_store_path = options_.perf_store_path;

  // Load the same store the engine will preload, so static pre-selection
  // ranks variants by measured rate (paper §IV-C step 2, but from learned
  // history instead of declared properties). Any rejection degrades to
  // declared-rate selection — the engine counts it in EngineStats too.
  const std::string store_path = options_.perf_store_path.empty()
                                     ? starvm::perf_store::env_store_path()
                                     : options_.perf_store_path;
  SelectionOptions sel_options;
  sel_options.min_samples = options_.perf_min_samples;
  sel_options.accuracy = options_.accuracy;
  if (!store_path.empty()) {
    auto loaded = starvm::perf_store::load(store_path);
    if (loaded.status == starvm::perf_store::LoadStatus::kLoaded) {
      if (loaded.store.descriptor_hash ==
          starvm::perf_store::descriptor_hash(engine_config.devices)) {
        perf_store_ = std::move(loaded.store);
        perf_store_loaded_ = true;
        sel_options.perf_store = &perf_store_;
      } else {
        pdl::add_info(diags_, "perf store '" + store_path +
                                  "' ignored: descriptor hash mismatch "
                                  "(stale store from another platform)");
      }
    } else if (loaded.status != starvm::perf_store::LoadStatus::kMissing) {
      pdl::add_info(diags_,
                    "perf store '" + store_path + "' ignored: " + loaded.detail);
    }
  }
  selection_ = preselect(repository_, platform_, diags_, sel_options);
  engine_ = std::make_unique<starvm::Engine>(std::move(engine_config));
}

Context::Registered& Context::find_or_register(const Arg& a) {
  auto it = registered_.find(a.ptr);
  if (it != registered_.end()) {
    Registered& reg = it->second;
    if (reg.handle->rows() == a.rows && reg.handle->cols() == a.cols) {
      return reg;
    }
    // The pointer is being reused with different geometry (e.g. the same
    // scratch buffer viewed as a different matrix). Drain in-flight tasks,
    // drop the old registration and fall through to a fresh one. Task
    // failures stay sticky in the engine; wait() reports them.
    (void)engine_->wait_all();
    if (reg.nblocks != 0) engine_->unpartition(reg.handle);
    registered_.erase(it);
  }
  Registered reg;
  reg.handle = a.rows <= 1
                   ? engine_->register_vector(a.ptr, a.cols)
                   : engine_->register_matrix(a.ptr, a.rows, a.cols);
  return registered_.emplace(a.ptr, std::move(reg)).first->second;
}

void Context::repartition(Registered& reg, const Arg& a, int nblocks) {
  if (reg.nblocks == nblocks) return;
  // In-flight tasks may reference the old blocks; drain before replacing.
  // Task failures stay sticky in the engine; wait() reports them.
  (void)engine_->wait_all();
  if (reg.nblocks != 0) {
    engine_->unpartition(reg.handle);
    reg.blocks.clear();
  }
  if (nblocks > 1) {
    reg.blocks = a.rows <= 1 ? engine_->partition_vector(reg.handle, nblocks)
                             : engine_->partition_rows(reg.handle, nblocks);
    reg.nblocks = static_cast<int>(reg.blocks.size());
  } else {
    reg.nblocks = 0;
  }
}

pdl::util::Status Context::execute(std::string_view interface_name,
                                   std::string_view group, std::vector<Arg> args) {
  const std::string iface(interface_name);
  obs::Span span("rt.execute", iface);
  const auto* candidates = selection_.candidates(iface);
  if (candidates == nullptr || candidates->empty()) {
    return pdl::util::Status::failure("no variant of task interface '" + iface +
                                      "' matches the target platform");
  }

  // Which device classes may run this call: the execution group restricts
  // the candidate PUs (paper §IV-B, LogicGroupAttribute).
  const auto group_pus = resolve_execution_group(platform_, std::string(group), diags_);
  const auto pu_in_group = [&](const pdl::ProcessingUnit* pu) {
    return std::find(group_pus.begin(), group_pus.end(), pu) != group_pus.end();
  };

  // Pick one bound implementation per device kind: among usable (group-
  // compatible, executable) candidates, a measured rate from the perf
  // store beats the declared order outright (and the faster learned rate
  // wins among measured candidates); without measurements, non-fallback
  // beats fallback and higher pattern specificity beats lower (ties:
  // later registration). The declared-only winner is tracked alongside so
  // a store-induced flip is visible in the diagnostics. Accuracy-vetoed
  // candidates (static error bound above Options::accuracy.tolerance) are
  // excluded outright — a measured-rate flip may not trade the program's
  // declared accuracy for speed — and only reconsidered when a device
  // class has nothing else to run.
  const BoundImpl* impl_per_kind[2] = {nullptr, nullptr};
  const SelectedVariant* chosen[2] = {nullptr, nullptr};
  const BoundImpl* declared_choice[2] = {nullptr, nullptr};
  const SelectedVariant* vetoed_fastest[2] = {nullptr, nullptr};
  std::function<double(const std::vector<starvm::BufferView>&)> flops_fn;
  for (int pass = 0; pass < 2; ++pass) {
    const bool allow_vetoed = pass == 1;
    int best_rank[2] = {-1, -1};
    int declared_rank[2] = {-1, -1};
    double best_measured[2] = {0.0, 0.0};
    for (const auto& candidate : *candidates) {
      bool usable = candidate.mapped_pus.empty();
      for (const auto* pu : candidate.mapped_pus) {
        usable = usable || pu_in_group(pu);
      }
      if (!usable) continue;
      const BoundImpl* impl = repository_.bound(candidate.variant->pragma.variant_name);
      if (impl == nullptr || !impl->fn) continue;  // source-only variant
      const auto slot = static_cast<std::size_t>(impl->device_kind);
      if (candidate.accuracy_vetoed && !allow_vetoed) {
        // Remember the measured-fastest refusal so the veto is loggable.
        if (vetoed_fastest[slot] == nullptr ||
            candidate.measured_gflops > vetoed_fastest[slot]->measured_gflops) {
          vetoed_fastest[slot] = &candidate;
        }
        continue;
      }
      if (allow_vetoed && impl_per_kind[slot] != nullptr) continue;
      const int rank =
          (candidate.is_fallback ? 0 : 1000000) + candidate.specificity;
      if (rank >= declared_rank[slot]) {
        declared_rank[slot] = rank;
        declared_choice[slot] = impl;
      }
      const double measured = candidate.measured_gflops;
      const bool better =
          measured > 0.0
              ? best_measured[slot] == 0.0 || measured >= best_measured[slot]
              : best_measured[slot] == 0.0 && rank >= best_rank[slot];
      if (!better) continue;
      best_rank[slot] = rank;
      best_measured[slot] = measured;
      impl_per_kind[slot] = impl;
      chosen[slot] = &candidate;
      if (impl->flops) flops_fn = impl->flops;
    }
    // The second pass only fills device classes the veto left empty.
    if (impl_per_kind[0] != nullptr || impl_per_kind[1] != nullptr) break;
  }

  // Restrict to device kinds the engine actually has.
  bool engine_has_kind[2] = {false, false};
  for (const auto& spec : engine_->config().devices) {
    engine_has_kind[static_cast<std::size_t>(spec.kind)] = true;
  }

  const std::string codelet_key = iface + "@" + std::string(group);
  auto codelet_it = codelets_.find(codelet_key);
  if (codelet_it == codelets_.end()) {
    auto codelet = std::make_unique<starvm::Codelet>();
    codelet->name = codelet_key;
    bool model_known = true;
    for (std::size_t kind = 0; kind < 2; ++kind) {
      if (impl_per_kind[kind] != nullptr && engine_has_kind[kind]) {
        codelet->impls.push_back(starvm::Implementation{
            static_cast<starvm::DeviceKind>(kind), impl_per_kind[kind]->fn});
        // The engine records this codelet's observations additionally
        // under the chosen variant's name, so the persisted store learns
        // per-variant rates for the next run's pre-selection.
        codelet->calibration_alias[kind] = impl_per_kind[kind]->variant_name;
        if (declared_choice[kind] != nullptr &&
            impl_per_kind[kind] != declared_choice[kind]) {
          pdl::add_info(diags_,
                        "perf store: interface '" + iface +
                            "' selects measured-fastest variant '" +
                            impl_per_kind[kind]->variant_name + "' over '" +
                            declared_choice[kind]->variant_name +
                            "' (declared-rate choice)");
        }
        // Codelet metadata carries the loosest claim among the selected
        // implementations (any unspecified one makes the whole claim
        // unspecified) so downstream analyses judge the worst case.
        const starvm::ErrorModel& model = chosen[kind]->variant->error_model;
        if (!model.specified()) {
          model_known = false;
        } else if (model_known &&
                   (!codelet->error_model.specified() ||
                    model.coefficient * model.epsilon >
                        codelet->error_model.coefficient *
                            codelet->error_model.epsilon)) {
          codelet->error_model = model;
        }
        // The accuracy veto's visible trace: a vetoed candidate was on the
        // table for this device class and a tighter variant won instead.
        if (vetoed_fastest[kind] != nullptr &&
            chosen[kind] != vetoed_fastest[kind] &&
            !chosen[kind]->accuracy_vetoed) {
          pdl::add_info(
              diags_,
              "accuracy guard: veto variant '" +
                  vetoed_fastest[kind]->variant->pragma.variant_name +
                  "' of interface '" + iface + "' (static error bound " +
                  std::to_string(vetoed_fastest[kind]->static_error_bound) +
                  " > tolerance " + std::to_string(options_.accuracy.tolerance) +
                  "); keeping '" + chosen[kind]->variant->pragma.variant_name +
                  "'");
        } else if (chosen[kind]->accuracy_vetoed) {
          pdl::add_warning(
              diags_,
              "accuracy guard: no candidate of interface '" + iface +
                  "' meets the tolerance; using vetoed variant '" +
                  chosen[kind]->variant->pragma.variant_name + "'");
        }
      }
    }
    if (!model_known) codelet->error_model = starvm::ErrorModel{};
    if (codelet->impls.empty()) {
      return pdl::util::Status::failure(
          "no executable implementation of '" + iface +
          "' for the devices of this platform (group '" + std::string(group) + "')");
    }
    codelet->flops = flops_fn;
    codelet_it = codelets_.emplace(codelet_key, std::move(codelet)).first;
  }
  starvm::Codelet* codelet = codelet_it->second.get();

  // Data registration and decomposition. Every BLOCK/CYCLIC argument is
  // split into the same number of blocks; un-distributed arguments are
  // passed whole to every task (e.g. the B matrix of row-banded DGEMM).
  int nblocks = 1;
  std::size_t min_extent = SIZE_MAX;
  bool any_distributed = false;
  for (const auto& a : args) {
    if (a.dist != DistributionKind::kNone) {
      any_distributed = true;
      min_extent = std::min(min_extent, a.rows > 1 ? a.rows : a.cols);
    }
  }
  if (any_distributed) {
    const int target_blocks =
        options_.blocks_per_device * static_cast<int>(engine_->device_count());
    nblocks = std::max(1, std::min<int>(target_blocks,
                                        static_cast<int>(min_extent)));
  }

  std::vector<Registered*> regs;
  regs.reserve(args.size());
  for (const auto& a : args) {
    Registered& reg = find_or_register(a);
    if (a.dist != DistributionKind::kNone) {
      repartition(reg, a, nblocks);
    } else if (reg.nblocks != 0) {
      repartition(reg, a, 1);  // whole-buffer use after being partitioned
    }
    regs.push_back(&reg);
  }
  // Partitioning may produce fewer blocks than requested (extent clamp).
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].dist != DistributionKind::kNone && regs[i]->nblocks != 0) {
      nblocks = std::min(nblocks, regs[i]->nblocks);
    }
  }

  // CYCLIC distributions submit blocks in round-robin order over a stride;
  // with a dynamic scheduler this only changes issue order (the paper's
  // distributions hint placement, the runtime decides).
  std::vector<int> order(static_cast<std::size_t>(nblocks));
  for (int b = 0; b < nblocks; ++b) order[static_cast<std::size_t>(b)] = b;
  bool cyclic = false;
  for (const auto& a : args) {
    cyclic |= a.dist == DistributionKind::kCyclic ||
              a.dist == DistributionKind::kBlockCyclic;
  }
  if (cyclic && nblocks > 1) {
    const int stride = std::max(1, nblocks / std::max<int>(
                                        1, static_cast<int>(engine_->device_count())));
    std::vector<int> permuted;
    permuted.reserve(order.size());
    for (int offset = 0; offset < stride; ++offset) {
      for (int b = offset; b < nblocks; b += stride) permuted.push_back(b);
    }
    order = std::move(permuted);
  }

  // One batched submission for the whole block sweep: dependencies are
  // inferred once, task nodes are pre-reserved and the workers are woken
  // once per involved device instead of once per block.
  std::vector<starvm::TaskDesc> batch;
  batch.reserve(order.size());
  for (const int b : order) {
    starvm::TaskDesc desc;
    desc.codelet = codelet;
    desc.label = iface + "[" + std::to_string(b) + "]";
    for (std::size_t i = 0; i < args.size(); ++i) {
      starvm::DataHandle* handle =
          (args[i].dist != DistributionKind::kNone && regs[i]->nblocks > 0)
              ? regs[i]->blocks[static_cast<std::size_t>(b)]
              : regs[i]->handle;
      desc.buffers.push_back(starvm::BufferView{handle, to_starvm(args[i].mode)});
    }
    batch.push_back(std::move(desc));
  }
  engine_->submit_batch(std::move(batch));
  return {};
}

pdl::util::Status Context::wait() { return engine_->wait_all(); }

void Context::host_modified(double* ptr) {
  const auto it = registered_.find(ptr);
  if (it == registered_.end()) return;
  engine_->host_write(it->second.handle);
}

// --- Global context -----------------------------------------------------------

namespace {

struct PendingVariant {
  std::string interface_name;
  std::string variant_name;
  std::vector<std::string> target_platforms;
  starvm::DeviceKind kind;
  std::function<void(const starvm::ExecContext&)> fn;
  std::function<double(const std::vector<starvm::BufferView>&)> flops;
  starvm::ErrorModel error_model;
};

std::vector<PendingVariant>& pending_variants() {
  static std::vector<PendingVariant> pending;
  return pending;
}

std::unique_ptr<Context>& global_context() {
  static std::unique_ptr<Context> ctx;
  return ctx;
}

std::mutex g_mutex;

}  // namespace

bool register_variant(const std::string& interface_name,
                      const std::string& variant_name,
                      const std::vector<std::string>& target_platforms,
                      starvm::DeviceKind kind,
                      std::function<void(const starvm::ExecContext&)> fn,
                      std::function<double(const std::vector<starvm::BufferView>&)>
                          flops,
                      starvm::ErrorModel error_model) {
  std::lock_guard<std::mutex> lock(g_mutex);
  pending_variants().push_back(PendingVariant{interface_name, variant_name,
                                              target_platforms, kind, std::move(fn),
                                              std::move(flops), error_model});
  return true;
}

bool initialize(const char* pdl_xml, Options options) {
  std::lock_guard<std::mutex> lock(g_mutex);
  pdl::Diagnostics diags;
  auto platform = pdl::parse_platform(pdl_xml, diags);
  if (!platform || pdl::has_errors(diags)) {
    PDL_LOG_ERROR << "cascabel::rt::initialize: invalid PDL"
                  << (!platform ? ": " + platform.error().str() : "");
    for (const auto& d : diags) PDL_LOG_ERROR << d.str();
    return false;
  }

  TaskRepository repo = TaskRepository::with_defaults();
  register_builtin_variants(repo);
  for (const auto& pv : pending_variants()) {
    TaskVariant variant;
    variant.pragma.task_interface = pv.interface_name;
    variant.pragma.variant_name = pv.variant_name;
    variant.pragma.target_platforms = pv.target_platforms;
    variant.error_model = pv.error_model;
    repo.add_variant(std::move(variant));
    repo.bind(BoundImpl{pv.variant_name, pv.kind, pv.fn, pv.flops});
  }

  global_context() =
      std::make_unique<Context>(platform.value(), std::move(repo), options);
  return true;
}

bool initialized() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return global_context() != nullptr;
}

bool execute(const char* interface_name, const char* group, std::vector<Arg> args) {
  Context* ctx = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    ctx = global_context().get();
  }
  if (ctx == nullptr) {
    PDL_LOG_ERROR << "cascabel::rt::execute before initialize";
    return false;
  }
  auto status = ctx->execute(interface_name, group ? group : "", std::move(args));
  if (!status.ok()) {
    PDL_LOG_ERROR << "cascabel::rt::execute('" << interface_name
                  << "'): " << status.error().str();
    return false;
  }
  return true;
}

bool wait() {
  Context* ctx = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    ctx = global_context().get();
  }
  if (ctx == nullptr) return true;
  auto status = ctx->wait();
  if (!status.ok()) {
    PDL_LOG_ERROR << "cascabel::rt::wait: " << status.error().str();
    return false;
  }
  return true;
}

starvm::EngineStats stats() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return global_context() ? global_context()->stats() : starvm::EngineStats{};
}

void shutdown() {
  std::lock_guard<std::mutex> lock(g_mutex);
  global_context().reset();
}

}  // namespace cascabel::rt
