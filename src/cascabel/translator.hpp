// The Cascabel driver: annotated serial C/C++ in, translated program +
// compile plan out, parameterized by a target PDL description (paper
// Figure 4). Running the same input against different PDL descriptors
// yields the paper's "starpu" / "starpu+2gpu" style program variants
// without modifying the input source (§IV-D).
#pragma once

#include <string>
#include <string_view>

#include "annot/annotated_program.hpp"
#include "cascabel/codegen.hpp"
#include "cascabel/compile_plan.hpp"
#include "cascabel/repository.hpp"
#include "cascabel/selection.hpp"
#include "pdl/diagnostics.hpp"
#include "pdl/model.hpp"
#include "util/result.hpp"

namespace cascabel {

struct TranslationOptions {
  CodegenOptions codegen;
  std::string executable_name = "a.out";
  /// Extra (expert) variants merged into the repository before selection;
  /// defaults to the built-in DGEMM/vecadd variants.
  bool use_builtin_variants = true;
  /// Additional annotated sources whose task *variants* join the repository
  /// (paper Figure 1: expert programmers contribute per-platform variant
  /// files). Each entry is (source name, source text); call sites in these
  /// files are ignored. Duplicate variant names are an error.
  std::vector<std::pair<std::string, std::string>> variant_sources;
};

/// Everything one translation produces.
///
/// Lifetime: `selection` holds pointers into `repository` and into the
/// caller's target Platform; keep both alive while using it.
struct TranslationResult {
  AnnotatedProgram program;      ///< the scanned input
  TaskRepository repository;     ///< input variants + expert variants
  SelectionResult selection;     ///< §IV-C step 2 output
  std::string output_source;     ///< §IV-C step 3 output
  CompilePlan compile_plan;      ///< §IV-C step 4 output
  pdl::Diagnostics diagnostics;  ///< full report (info/warning/error)
};

/// Translate an annotated program for a target platform. Fails when the
/// input cannot be scanned or any selected interface loses its fall-back.
pdl::util::Result<TranslationResult> translate(std::string_view source,
                                               std::string source_name,
                                               const pdl::Platform& target,
                                               const TranslationOptions& options = {});

}  // namespace cascabel
