// cascabel::rt — the runtime veneer translated programs execute against.
//
// The paper's generated output programs call StarPU; ours call this veneer,
// which binds a target PDL description, the task repository and a starvm
// engine together:
//
//   * Context — an explicit object API used by examples, tests and benches;
//   * a process-global context driven by initialize()/execute()/wait(),
//     which is what Cascabel-generated source files use (they cannot thread
//     a context object through unmodified application code).
//
// One execute() call implements paper §IV-C step 3 for a single call site:
// data registration, BLOCK/CYCLIC decomposition, variant choice per device
// class, and submission of one starvm task per block.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "annot/task_model.hpp"
#include "cascabel/repository.hpp"
#include "cascabel/selection.hpp"
#include "pdl/diagnostics.hpp"
#include "pdl/model.hpp"
#include "starvm/bridge.hpp"
#include "starvm/engine.hpp"
#include "starvm/perf_store.hpp"
#include "util/result.hpp"

namespace cascabel::rt {

/// One data argument of an executed task.
struct Arg {
  double* ptr = nullptr;
  std::size_t rows = 1;
  std::size_t cols = 0;
  AccessMode mode = AccessMode::kRead;
  DistributionKind dist = DistributionKind::kNone;
};

/// Vector argument of `n` doubles.
inline Arg arg(double* ptr, std::size_t n, AccessMode mode,
               DistributionKind dist = DistributionKind::kNone) {
  return Arg{ptr, 1, n, mode, dist};
}

/// Row-major matrix argument.
inline Arg arg_matrix(double* ptr, std::size_t rows, std::size_t cols, AccessMode mode,
                      DistributionKind dist = DistributionKind::kNone) {
  return Arg{ptr, rows, cols, mode, dist};
}

struct Options {
  starvm::SchedulerKind scheduler = starvm::SchedulerKind::kHeft;
  starvm::ExecutionMode mode = starvm::ExecutionMode::kHybrid;
  /// BLOCK distributions split data into blocks_per_device * device_count
  /// row bands (clamped to the data extent).
  int blocks_per_device = 4;
  starvm::BridgeOptions bridge;
  /// Engine recovery policy (retries, backoff, blacklist, watchdog).
  starvm::FaultToleranceConfig fault_tolerance;
  /// Deterministic fault injection; nullptr = engine consults PDL_FAULT_PLAN.
  std::shared_ptr<const starvm::FaultPlan> fault_plan;
  /// Persisted perf store (docs/RUNTIME.md "Persisted performance models"):
  /// forwarded to EngineConfig::perf_store_path, and the same file is read
  /// up front so static pre-selection ranks variants by measured rate.
  /// Empty = consult PDL_PERF_STORE ("0"/unset disables persistence).
  std::string perf_store_path;
  /// Sample-count threshold before a store entry may override declared
  /// rates in pre-selection (SelectionOptions::min_samples).
  std::uint64_t perf_min_samples = 3;
  /// Accuracy requirement of the program (docs/RUNTIME.md "Accuracy-guarded
  /// selection"): when enabled, a measured-rate flip may not select a
  /// variant whose declared static error bound exceeds the tolerance, no
  /// matter how much faster the perf store says it is. The veto is logged
  /// in diagnostics().
  AccuracyGuard accuracy;
};

/// An executable translation context: target platform + repository + engine.
class Context {
 public:
  /// Takes ownership of a clone of `target`; the repository is copied.
  /// Pre-selection runs immediately; check diagnostics() for pruning info.
  Context(const pdl::Platform& target, TaskRepository repository,
          Options options = {});

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// Execute one annotated call site: decompose and submit (asynchronous —
  /// follow with wait()).
  pdl::util::Status execute(std::string_view interface_name, std::string_view group,
                            std::vector<Arg> args);

  /// Block until every submitted task completed, failed, or was cancelled;
  /// the status aggregates task failures (see Engine::wait_all).
  pdl::util::Status wait();

  /// Tell the runtime the host modified a previously used buffer directly
  /// (between wait() and the next execute): invalidates device replicas in
  /// the transfer model. No-op for unknown pointers.
  void host_modified(double* ptr);

  starvm::Engine& engine() { return *engine_; }
  starvm::EngineStats stats() const { return engine_->stats(); }
  const SelectionResult& selection() const { return selection_; }
  /// The perf store pre-selection consumed, or null when none was loaded
  /// (no path configured, missing file, or a rejected/stale store).
  const starvm::perf_store::Store* perf_store() const {
    return perf_store_loaded_ ? &perf_store_ : nullptr;
  }
  const pdl::Platform& platform() const { return platform_; }
  const pdl::Diagnostics& diagnostics() const { return diags_; }
  const Options& options() const { return options_; }

 private:
  struct Registered {
    starvm::DataHandle* handle = nullptr;
    std::vector<starvm::DataHandle*> blocks;
    int nblocks = 0;  ///< 0 = unpartitioned
  };

  Registered& find_or_register(const Arg& a);
  void repartition(Registered& reg, const Arg& a, int nblocks);

  pdl::Platform platform_;
  TaskRepository repository_;
  Options options_;
  pdl::Diagnostics diags_;
  SelectionResult selection_;
  std::unique_ptr<starvm::Engine> engine_;
  /// Perf store loaded at construction (descriptor hash already verified
  /// against the engine config); kept alive for selection() introspection.
  starvm::perf_store::Store perf_store_;
  bool perf_store_loaded_ = false;

  /// ptr -> registration (keyed by base pointer; geometry must be stable).
  std::map<double*, Registered> registered_;
  /// Codelets must outlive their tasks; cached per interface+group.
  std::map<std::string, std::unique_ptr<starvm::Codelet>> codelets_;
};

// --- Process-global context (used by Cascabel-generated sources) -------------

/// Register an executable variant before initialize(). Safe to call from
/// static initializers (the generated file's registration thunks).
/// `error_model` is the implementation's declared accuracy claim (see
/// starvm::ErrorModel); unspecified variants are never vetoed by the
/// AccuracyGuard but make every bound they touch unknown (A702).
bool register_variant(const std::string& interface_name,
                      const std::string& variant_name,
                      const std::vector<std::string>& target_platforms,
                      starvm::DeviceKind kind,
                      std::function<void(const starvm::ExecContext&)> fn,
                      std::function<double(const std::vector<starvm::BufferView>&)>
                          flops = nullptr,
                      starvm::ErrorModel error_model = {});

/// Create the global context from PDL XML text. Also loads the built-in
/// expert variants (builtin_variants.hpp) and everything registered via
/// register_variant. Returns false (and logs) on invalid PDL.
bool initialize(const char* pdl_xml, Options options = {});

/// True between a successful initialize() and shutdown().
bool initialized();

/// Execute on the global context; logs and returns false on error.
bool execute(const char* interface_name, const char* group, std::vector<Arg> args);

/// Drain the global context; false (and a log line) when tasks failed.
bool wait();

/// Stats of the global context (empty when uninitialized).
starvm::EngineStats stats();

/// Destroy the global context (idempotent).
void shutdown();

}  // namespace cascabel::rt
