// Compilation-plan derivation (paper §IV-C step 4): "the required
// compilation and linking plan is derived from information available in
// the platform description file" — platform-specific compilers (nvcc,
// gcc-spu, xlc, ...) per processing unit, then one link step.
//
// The plan is a data structure plus Makefile/shell renderings; the
// toolchain does not execute it (this machine has no nvcc), matching the
// paper's prototype where the user runs the produced plan.
#pragma once

#include <string>
#include <vector>

#include "pdl/model.hpp"

namespace cascabel {

struct CompileStep {
  std::string compiler;             ///< e.g. "gcc", "nvcc", "xlc"
  std::vector<std::string> flags;
  std::string source;               ///< input file
  std::string output;               ///< object file
  std::string for_pu;               ///< PU id this step serves
};

struct LinkStep {
  std::string linker;
  std::vector<std::string> inputs;
  std::string output;
  std::vector<std::string> libraries;
};

struct CompilePlan {
  std::vector<CompileStep> steps;
  LinkStep link;

  /// Render as a Makefile.
  std::string to_makefile() const;
  /// Render as a shell script.
  std::string to_script() const;
};

/// Derive the plan for one generated source file targeting `platform`.
/// The compiler per PU comes from its (upward-inherited) COMPILER property;
/// PUs without one get a default by architecture (x86 -> gcc, gpu -> nvcc,
/// spe -> spu-gcc). Identical (compiler, flags) pairs are merged into one
/// step.
CompilePlan derive_compile_plan(const pdl::Platform& platform,
                                const std::string& generated_source,
                                const std::string& executable_name);

}  // namespace cascabel
